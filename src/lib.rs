//! # astra — reproduction of *Astra: Exploiting Predictability to Optimize Deep Learning*
//!
//! A facade over the workspace crates. See the README for the architecture
//! overview and `astra_core` for the optimizer itself.
//!
//! * [`gpu`] — deterministic GPU simulator (device, engine, cost models).
//! * [`ir`] — tensor IR, data-flow graphs, autodiff, reference interpreter.
//! * [`models`] — the paper's five evaluation models.
//! * [`exec`] — lowering and the native / cuDNN-like / XLA-like baselines.
//! * [`core`] — the Astra enumerator + custom wirer.
//! * [`verify`] — static schedule verifier (happens-before hazard analysis).
//! * [`lint`] — static resource/performance linter (peak memory, redundant
//!   syncs, critical-path lower bounds).
//! * [`predict`] — online-learned cost model pruning the candidate space.
//! * [`store`] — crash-safe on-disk store for warm exploration state
//!   (journaled writes, corruption quarantine, crash-resume).
//! * [`distrib`] — adaptive data-parallel scaling (the paper's §3.4 extension).
//!
//! ## Quickstart
//!
//! ```
//! use astra::core::{Astra, AstraOptions, Dims};
//! use astra::gpu::DeviceSpec;
//! use astra::models::{Model, ModelConfig};
//!
//! let cfg = ModelConfig { seq_len: 2, hidden: 32, input: 32, vocab: 64,
//!                         ..ModelConfig::ptb(8) };
//! let built = Model::SubLstm.build(&cfg);
//! let dev = DeviceSpec::p100();
//! let mut astra = Astra::new(&built.graph, &dev,
//!     AstraOptions { dims: Dims::fk(), ..Default::default() });
//! let report = astra.optimize().unwrap();
//! assert!(report.speedup() >= 1.0);
//! ```

#![forbid(unsafe_code)]

pub use astra_core as core;
pub use astra_distrib as distrib;
pub use astra_exec as exec;
pub use astra_gpu as gpu;
pub use astra_ir as ir;
pub use astra_lint as lint;
pub use astra_models as models;
pub use astra_predict as predict;
pub use astra_store as store;
pub use astra_verify as verify;
