#!/usr/bin/env bash
# Offline CI gate: tier-1 (release build + workspace tests) plus the
# worker-count determinism suite, all under -D warnings so dead code and
# unused paths cannot land. Needs no network — the workspace has no
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

# `ci.sh bench` regenerates the exploration throughput benchmark.  The
# binary asserts its own acceptance bar (>= 2x simulated-trial throughput
# with the sim cache at workers=1; steady-state driver resumed_fraction
# >= 0.7 and warm cache-on strictly beating cache-off wall-clock per
# model; bit-identical results throughout), so a passing run is also a
# gate.
if [[ "${1:-}" == "bench" ]]; then
    echo "== bench: exploration throughput =="
    cargo build --release -p astra-bench --bin explore_speed
    ./target/release/explore_speed > BENCH_explore_speed.json
    cat BENCH_explore_speed.json
    exit 0
fi

echo "== build (release) =="
cargo build --release

echo "== tier-1 tests =="
cargo test -q

echo "== determinism (workers=1 vs N bit-identity) =="
cargo test -q --test determinism

echo "== robustness (fault-injected convergence, release) =="
cargo test -q --release --test robustness

echo "== distributed tier (multi-device placement search, release) =="
# Sweep-optimality of the chosen placement per topology (heterogeneous
# included), 5% convergence under faults, and bit-identical reports at
# any worker count.
cargo test -q --release --test distrib_search

echo "== no ignored tests =="
# An #[ignore] attribute silently shrinks the gate; fail loudly instead.
if grep -rn '#\[ignore' tests crates --include='*.rs'; then
    echo "ci: FAIL — #[ignore]d tests found (listed above); fix or delete them" >&2
    exit 1
fi

echo "== static schedule verification (fixtures + enumerated plans) =="
# Every rendered golden fixture must pass the event-liveness audit, and
# every enumerated plan of every zoo model must verify hazard-free (the
# CLI exits nonzero on any error-severity finding).
cargo build --release -p astra-cli
./target/release/astra-cli verify --fixtures tests/golden
for m in scrnn milstm sublstm stackedlstm gnmt rhn; do
    ./target/release/astra-cli verify --model "$m" --batch 8 --streams 4
done
# Multi-device plans: every candidate placement on homogeneous and
# heterogeneous nodes must pass the cross-device rules (transfer
# ordering, all-reduce deadlock, replica coherence).
for devs in 2 4 p100,v100; do
    ./target/release/astra-cli verify --model sublstm --batch 8 --devices "$devs"
done

echo "== predictor gate (>= 30% trials saved, best plan unchanged) =="
# The learned cost model must prune at least 30% of the lookahead trials
# on the gate workload while the surviving search still selects a plan
# whose steady state is bit-identical to the unpruned baseline's — and
# `--predictor off` must reproduce the pre-predictor driver exactly
# (zero counters).
gate_args=(optimize --model milstm --batch 16 --dims all --top-k 1 --json)
on_json=$(./target/release/astra-cli "${gate_args[@]}")
off_json=$(./target/release/astra-cli "${gate_args[@]}" --predictor off)
field() { printf '%s' "$1" | grep -o "\"$2\":[0-9.e+-]*" | head -1 | cut -d: -f2; }
steady_on=$(field "$on_json" steady_ns); steady_off=$(field "$off_json" steady_ns)
pruned=$(field "$on_json" trials_pruned); simulated=$(field "$on_json" configs_explored)
total=$(field "$off_json" configs_explored); mae=$(field "$on_json" predicted_vs_measured_mae_ns)
if [[ "$steady_on" != "$steady_off" ]]; then
    echo "ci: FAIL — pruned search changed the plan (steady $steady_on vs $steady_off)" >&2
    exit 1
fi
if (( simulated + pruned != total )); then
    echo "ci: FAIL — simulated ($simulated) + pruned ($pruned) != unpruned trials ($total)" >&2
    exit 1
fi
if (( pruned * 100 < total * 30 )); then
    echo "ci: FAIL — predictor saved only $pruned of $total trials (< 30%)" >&2
    exit 1
fi
if [[ "$(field "$off_json" trials_pruned)" != 0 || "$(field "$off_json" predictor_updates)" != 0 ]]; then
    echo "ci: FAIL — predictor off must report zero counters" >&2
    exit 1
fi
echo "predictor gate: $pruned of $total trials pruned ($((pruned * 100 / total))%), MAE ${mae}ns, plan unchanged"

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== full workspace check (all targets) =="
cargo check --workspace --all-targets

echo "== clippy (all targets, deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "ci: OK"
