#!/usr/bin/env bash
# Offline CI gate: tier-1 (release build + workspace tests) plus the
# worker-count determinism suite, all under -D warnings so dead code and
# unused paths cannot land. Needs no network — the workspace has no
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

# `ci.sh bench` regenerates the exploration throughput benchmark.  The
# binary asserts its own acceptance bar (>= 2x simulated-trial throughput
# with the sim cache at workers=1; steady-state driver resumed_fraction
# >= 0.7 and warm cache-on strictly beating cache-off wall-clock per
# model; bit-identical results throughout), so a passing run is also a
# gate.
if [[ "${1:-}" == "bench" ]]; then
    echo "== bench: exploration throughput =="
    cargo build --release -p astra-bench --bin explore_speed
    ./target/release/explore_speed > BENCH_explore_speed.json
    cat BENCH_explore_speed.json
    exit 0
fi

echo "== build (release) =="
cargo build --release

echo "== tier-1 tests =="
cargo test -q

echo "== determinism (workers=1 vs N bit-identity) =="
cargo test -q --test determinism

echo "== robustness (fault-injected convergence, release) =="
cargo test -q --release --test robustness

echo "== distributed tier (multi-device placement search, release) =="
# Sweep-optimality of the chosen placement per topology (heterogeneous
# included), 5% convergence under faults, and bit-identical reports at
# any worker count.
cargo test -q --release --test distrib_search

echo "== no ignored tests =="
# An #[ignore] attribute silently shrinks the gate; fail loudly instead.
if grep -rn '#\[ignore' tests crates --include='*.rs'; then
    echo "ci: FAIL — #[ignore]d tests found (listed above); fix or delete them" >&2
    exit 1
fi

echo "== static schedule verification (fixtures + enumerated plans) =="
# Every rendered golden fixture must pass the event-liveness audit, and
# every enumerated plan of every zoo model must verify hazard-free (the
# CLI exits nonzero on any error-severity finding).
cargo build --release -p astra-cli
./target/release/astra-cli verify --fixtures tests/golden
for m in scrnn milstm sublstm stackedlstm gnmt rhn; do
    ./target/release/astra-cli verify --model "$m" --batch 8 --streams 4
done
# Multi-device plans: every candidate placement on homogeneous and
# heterogeneous nodes must pass the cross-device rules (transfer
# ordering, all-reduce deadlock, replica coherence).
for devs in 2 4 p100,v100; do
    ./target/release/astra-cli verify --model sublstm --batch 8 --devices "$devs"
done

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== full workspace check (all targets) =="
cargo check --workspace --all-targets

echo "== clippy (all targets, deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "ci: OK"
