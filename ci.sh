#!/usr/bin/env bash
# Offline CI gate: tier-1 (release build + workspace tests) plus the
# worker-count determinism suite, all under -D warnings so dead code and
# unused paths cannot land. Needs no network — the workspace has no
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

# `ci.sh bench` regenerates the exploration throughput benchmark.  The
# binary asserts its own acceptance bar (>= 2x simulated-trial throughput
# with the sim cache at workers=1; steady-state driver resumed_fraction
# >= 0.7 and warm cache-on strictly beating cache-off wall-clock per
# model; bit-identical results throughout), so a passing run is also a
# gate.
if [[ "${1:-}" == "bench" ]]; then
    echo "== bench: exploration throughput =="
    cargo build --release -p astra-bench --bin explore_speed
    ./target/release/explore_speed > BENCH_explore_speed.json
    cat BENCH_explore_speed.json
    exit 0
fi

echo "== build (release) =="
cargo build --release

echo "== tier-1 tests =="
cargo test -q

echo "== determinism (workers=1 vs N bit-identity) =="
cargo test -q --test determinism

echo "== robustness (fault-injected convergence, release) =="
cargo test -q --release --test robustness

echo "== distributed tier (multi-device placement search, release) =="
# Sweep-optimality of the chosen placement per topology (heterogeneous
# included), 5% convergence under faults, and bit-identical reports at
# any worker count.
cargo test -q --release --test distrib_search

echo "== no ignored tests =="
# An #[ignore] attribute silently shrinks the gate; fail loudly instead.
if grep -rn '#\[ignore' tests crates --include='*.rs'; then
    echo "ci: FAIL — #[ignore]d tests found (listed above); fix or delete them" >&2
    exit 1
fi

echo "== static schedule verification (fixtures + enumerated plans) =="
# Every rendered golden fixture must pass the event-liveness audit, and
# every enumerated plan of every zoo model must verify hazard-free (the
# CLI exits nonzero on any error-severity finding).
cargo build --release -p astra-cli
./target/release/astra-cli verify --fixtures tests/golden
for m in scrnn milstm sublstm stackedlstm gnmt rhn; do
    ./target/release/astra-cli verify --model "$m" --batch 8 --streams 4
done
# Multi-device plans: every candidate placement on homogeneous and
# heterogeneous nodes must pass the cross-device rules (transfer
# ordering, all-reduce deadlock, replica coherence).
for devs in 2 4 p100,v100; do
    ./target/release/astra-cli verify --model sublstm --batch 8 --devices "$devs"
done

echo "== predictor gate (>= 30% trials saved, best plan unchanged) =="
# The learned cost model must prune at least 30% of the lookahead trials
# on the gate workload while the surviving search still selects a plan
# whose steady state is bit-identical to the unpruned baseline's — and
# `--predictor off` must reproduce the pre-predictor driver exactly
# (zero counters).
gate_args=(optimize --model milstm --batch 16 --dims all --top-k 1 --json)
on_json=$(./target/release/astra-cli "${gate_args[@]}")
off_json=$(./target/release/astra-cli "${gate_args[@]}" --predictor off)
field() { printf '%s' "$1" | grep -o "\"$2\":[0-9.e+-]*" | head -1 | cut -d: -f2; }
steady_on=$(field "$on_json" steady_ns); steady_off=$(field "$off_json" steady_ns)
pruned=$(field "$on_json" trials_pruned); simulated=$(field "$on_json" configs_explored)
total=$(field "$off_json" configs_explored); mae=$(field "$on_json" predicted_vs_measured_mae_ns)
if [[ "$steady_on" != "$steady_off" ]]; then
    echo "ci: FAIL — pruned search changed the plan (steady $steady_on vs $steady_off)" >&2
    exit 1
fi
if (( simulated + pruned != total )); then
    echo "ci: FAIL — simulated ($simulated) + pruned ($pruned) != unpruned trials ($total)" >&2
    exit 1
fi
if (( pruned * 100 < total * 30 )); then
    echo "ci: FAIL — predictor saved only $pruned of $total trials (< 30%)" >&2
    exit 1
fi
if [[ "$(field "$off_json" trials_pruned)" != 0 || "$(field "$off_json" predictor_updates)" != 0 ]]; then
    echo "ci: FAIL — predictor off must report zero counters" >&2
    exit 1
fi
echo "predictor gate: $pruned of $total trials pruned ($((pruned * 100 / total))%), MAE ${mae}ns, plan unchanged"

echo "== lint gate (zoo clean, capacity rejection, sound bound pruning) =="
# Every enumerated plan of every zoo model must lint with zero errors,
# and so must the rendered golden fixtures (including the multi-device
# ones, which size the lint topology from their device map).
./target/release/astra-cli lint --fixtures tests/golden
for m in scrnn milstm sublstm stackedlstm gnmt rhn; do
    ./target/release/astra-cli lint --model "$m" --batch 8 --streams 4
done
# A deliberately undersized device must fail every plan with
# lint-mem-capacity and a nonzero exit.
if cap_out=$(./target/release/astra-cli lint --model milstm --batch 16 --mem-mib 64 2>&1); then
    echo "ci: FAIL — 64 MiB device passed lint (expected capacity rejection)" >&2
    exit 1
elif ! grep -q "lint-mem-capacity" <<< "$cap_out"; then
    echo "ci: FAIL — capacity rejection did not cite lint-mem-capacity:" >&2
    printf '%s\n' "$cap_out" >&2
    exit 1
fi
# Bound pruning must skip >= 10% of simulated trials on the MI-LSTM
# fusion+kernel gate — on top of the predictor's own savings — while the
# surviving search selects a bit-identical plan; with the flag off the
# counter must be exactly zero.
bp_args=(optimize --model milstm --batch 16 --dims fk --top-k 1 --json)
bp_on=$(./target/release/astra-cli "${bp_args[@]}" --bound-prune on)
bp_off=$(./target/release/astra-cli "${bp_args[@]}")
bp_steady_on=$(field "$bp_on" steady_ns); bp_steady_off=$(field "$bp_off" steady_ns)
bp_pruned=$(field "$bp_on" bound_pruned); bp_sim=$(field "$bp_on" configs_explored)
if [[ "$bp_steady_on" != "$bp_steady_off" ]]; then
    echo "ci: FAIL — bound pruning changed the plan (steady $bp_steady_on vs $bp_steady_off)" >&2
    exit 1
fi
if (( bp_pruned * 10 < (bp_sim + bp_pruned) )); then
    echo "ci: FAIL — bound pruning skipped only $bp_pruned of $((bp_sim + bp_pruned)) trials (< 10%)" >&2
    exit 1
fi
if [[ "$(field "$bp_off" bound_pruned)" != 0 || "$(field "$bp_off" syncs_elided)" != 0 || "$(field "$bp_off" lint_rejects)" != 0 ]]; then
    echo "ci: FAIL — lint counters must be zero with the features off" >&2
    exit 1
fi
echo "lint gate: zoo clean, capacity rejected, $bp_pruned of $((bp_sim + bp_pruned)) trials bound-pruned, plan unchanged"

echo "== durability gate (crash-resume bit-identity, corruption quarantine) =="
# A run interrupted at an arbitrary byte of its store writes must resume
# from the surviving files to the bit-identical plan, and a flipped
# journal byte must be caught by fsck and quarantined by recovery without
# the optimizer losing the plan or the unaffected keys.
bool_field() { printf '%s' "$1" | grep -o "\"$2\":\(true\|false\)" | head -1 | cut -d: -f2; }
plan_field() { printf '%s' "$1" | grep -o '"best_plan":"[^"]*"' | head -1; }
st_args=(optimize --model scrnn --batch 8 --dims fk --json)
st_dir=$(mktemp -d) && cr_dir=$(mktemp -d)
ref_json=$(./target/release/astra-cli "${st_args[@]}")
cold_json=$(./target/release/astra-cli "${st_args[@]}" --store "$st_dir")
if [[ "$(field "$cold_json" steady_ns)" != "$(field "$ref_json" steady_ns)" \
   || "$(plan_field "$cold_json")" != "$(plan_field "$ref_json")" ]]; then
    echo "ci: FAIL — storing warm state changed the plan" >&2
    exit 1
fi
# Crash the store mid-run (the optimize itself must still succeed), then
# resume against whatever survived.
ASTRA_STORE_CRASH_AFTER=4096 ./target/release/astra-cli "${st_args[@]}" --store "$cr_dir" >/dev/null
resumed_json=$(./target/release/astra-cli "${st_args[@]}" --store "$cr_dir")
if [[ "$(bool_field "$resumed_json" warm_start)" != "true" ]]; then
    echo "ci: FAIL — resumed run did not warm-start from the crashed store" >&2
    exit 1
fi
if [[ "$(field "$resumed_json" steady_ns)" != "$(field "$ref_json" steady_ns)" \
   || "$(plan_field "$resumed_json")" != "$(plan_field "$ref_json")" ]]; then
    echo "ci: FAIL — crash-resume changed the plan" >&2
    exit 1
fi
# Flip one journal byte: fsck must flag it (nonzero exit), optimize must
# quarantine it, keep the unaffected keys, and land on the same plan.
journal="$st_dir/journal.astra"
jlen=$(wc -c < "$journal") && joff=$((jlen / 2))
jbyte=$(od -An -tu1 -j "$joff" -N1 "$journal" | tr -d ' ')
printf "\\$(printf '%03o' $(( (jbyte + 1) % 256 )))" \
    | dd of="$journal" bs=1 seek="$joff" count=1 conv=notrunc status=none
if ./target/release/astra-cli store fsck --dir "$st_dir" >/dev/null 2>&1; then
    echo "ci: FAIL — fsck passed a store with a flipped journal byte" >&2
    exit 1
fi
flip_json=$(./target/release/astra-cli "${st_args[@]}" --store "$st_dir")
if [[ "$(field "$flip_json" store_corrupt_records)" == 0 \
   || "$(field "$flip_json" store_loaded_keys)" == 0 \
   || "$(field "$flip_json" steady_ns)" != "$(field "$ref_json" steady_ns)" ]]; then
    echo "ci: FAIL — corrupt journal byte not quarantined cleanly" >&2
    exit 1
fi
./target/release/astra-cli store fsck --dir "$st_dir" >/dev/null   # clean after recovery
# Maintenance commands work and a compacted store still resumes identically.
./target/release/astra-cli store stats --dir "$st_dir" >/dev/null
./target/release/astra-cli store compact --dir "$st_dir" >/dev/null
post_json=$(./target/release/astra-cli "${st_args[@]}" --store "$st_dir")
if [[ "$(bool_field "$post_json" warm_start)" != "true" \
   || "$(field "$post_json" steady_ns)" != "$(field "$ref_json" steady_ns)" \
   || "$(plan_field "$post_json")" != "$(plan_field "$ref_json")" ]]; then
    echo "ci: FAIL — compacted store does not resume to the same plan" >&2
    exit 1
fi
# With no store configured every store field must be zero/false.
if [[ "$(bool_field "$ref_json" warm_start)" != "false" \
   || "$(field "$ref_json" store_journal_appends)" != 0 ]]; then
    echo "ci: FAIL — store counters must be zero/false without --store" >&2
    exit 1
fi
rm -rf "$st_dir" "$cr_dir"
echo "durability gate: crash-resume and corruption quarantine hold, plans bit-identical"

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== full workspace check (all targets) =="
cargo check --workspace --all-targets

echo "== clippy (all targets, deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "ci: OK"
