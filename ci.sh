#!/usr/bin/env bash
# Offline CI gate: tier-1 (release build + workspace tests) plus the
# worker-count determinism suite, all under -D warnings so dead code and
# unused paths cannot land. Needs no network — the workspace has no
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

export RUSTFLAGS="${RUSTFLAGS:--D warnings}"

echo "== build (release) =="
cargo build --release

echo "== tier-1 tests =="
cargo test -q

echo "== determinism (workers=1 vs N bit-identity) =="
cargo test -q --test determinism

echo "== robustness (fault-injected convergence, release) =="
cargo test -q --release --test robustness

echo "== no ignored tests =="
# An #[ignore] attribute silently shrinks the gate; fail loudly instead.
if grep -rn '#\[ignore' tests crates --include='*.rs'; then
    echo "ci: FAIL — #[ignore]d tests found (listed above); fix or delete them" >&2
    exit 1
fi

echo "== full workspace check (all targets) =="
cargo check --workspace --all-targets

echo "ci: OK"
