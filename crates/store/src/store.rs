//! The on-disk store: an append-only journal plus an atomically-compacted
//! snapshot, both built from checksummed frames.
//!
//! # File layout
//!
//! A store directory holds up to three files:
//!
//! * `snapshot.astra` — the compacted state, rewritten atomically by
//!   [`Store::compact`] (write `snapshot.astra.tmp`, fsync, rename).
//! * `journal.astra` — records appended since the last compaction.
//! * `store.corrupt` — the quarantine sidecar: one structured text line
//!   per rejected record (file, offset, reason, hex prefix), appended on
//!   recovery, never read back by the store itself.
//!
//! Both data files start with an 8-byte magic (`ASTORE01`) followed by
//! frames: `[len: u32][fnv1a64(payload): u64][payload]`, payload being a
//! tagged, versioned record body ([`crate::record`]).
//!
//! # Recovery
//!
//! [`Store::open`] replays snapshot then journal. Each frame is checked in
//! order: a frame that doesn't fully fit is a *torn tail* (the expected
//! `kill -9` shape) and ends the file; an implausible length means the
//! framing itself can't be trusted and also ends the file; a complete
//! frame whose checksum or body fails is *quarantined individually* and
//! the scan continues, so one flipped byte loses one record, not the
//! store. After a lossy recovery the journal is rewritten in place
//! (temp + fsync + rename) to contain exactly the surviving records, so
//! corruption is reported once and the next append lands on a clean tail.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::codec::fnv1a64;
use crate::record::Record;

/// Magic bytes opening every store data file.
pub const MAGIC: &[u8; 8] = b"ASTORE01";

/// Frames longer than this are treated as framing corruption, not records.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

const SNAPSHOT: &str = "snapshot.astra";
const JOURNAL: &str = "journal.astra";
const SIDECAR: &str = "store.corrupt";

/// Environment variable the CLI-level crash hook reads: after this many
/// bytes of store writes, every further write is silently dropped,
/// simulating the process dying mid-write.
pub const CRASH_AFTER_ENV: &str = "ASTRA_STORE_CRASH_AFTER";

/// Store behaviour knobs, including the crash-injection hook the recovery
/// tests drive.
#[derive(Debug, Clone, Default)]
pub struct StoreOptions {
    /// Write-fault hook: after this many bytes have been written (across
    /// journal appends and compactions), drop everything — partial final
    /// write included — exactly like a `kill -9` mid-write. `None` writes
    /// normally.
    pub fail_after_bytes: Option<u64>,
}

impl StoreOptions {
    /// Reads the crash hook from [`CRASH_AFTER_ENV`], for CLI-level
    /// crash-injection gates. Unset or unparsable means no fault.
    pub fn from_env() -> Self {
        let fail_after_bytes =
            std::env::var(CRASH_AFTER_ENV).ok().and_then(|v| v.parse::<u64>().ok());
        StoreOptions { fail_after_bytes }
    }
}

/// One quarantined record's diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptDiag {
    /// File the record was found in (`snapshot.astra` / `journal.astra`).
    pub file: String,
    /// Byte offset of the frame start.
    pub offset: u64,
    /// Why the record was rejected.
    pub reason: String,
    /// Whether the scan stopped here (torn tail / untrusted framing) or
    /// continued to the next frame (checksum/body failure).
    pub fatal: bool,
}

impl CorruptDiag {
    /// Renders the sidecar line: stable `key=value` fields plus a hex
    /// prefix of the rejected bytes.
    fn sidecar_line(&self, bytes: &[u8]) -> String {
        let mut hex = String::new();
        for b in bytes.iter().take(64) {
            let _ = write!(hex, "{b:02x}");
        }
        format!(
            "file={} offset={} fatal={} reason=\"{}\" hex={}\n",
            self.file, self.offset, self.fatal, self.reason, hex
        )
    }
}

/// What [`Store::open`] recovered.
#[derive(Debug, Default)]
pub struct LoadSummary {
    /// Records that decoded cleanly.
    pub records: u64,
    /// Records quarantined into the sidecar.
    pub corrupt_records: u64,
    /// Snapshot file size at open, bytes.
    pub snapshot_bytes: u64,
    /// Journal file size at open, bytes.
    pub journal_bytes: u64,
}

/// Read-only integrity report from [`fsck`].
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Clean record counts by kind name.
    pub counts: BTreeMap<&'static str, u64>,
    /// Total bytes across snapshot and journal.
    pub bytes: u64,
    /// Corruption found in the data files (empty for a healthy store).
    pub corrupt: Vec<CorruptDiag>,
    /// Lines already quarantined in the sidecar by past recoveries.
    pub quarantined_lines: u64,
}

impl FsckReport {
    /// Total clean records.
    pub fn total_records(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// Result of scanning one data file.
struct Scan {
    records: Vec<Record>,
    diags: Vec<(CorruptDiag, Vec<u8>)>,
    /// Byte ranges of surviving frames, for lossless rewrite.
    clean_frames: Vec<(u64, u64)>,
}

/// Scans `bytes` (a whole data file) into records and diagnostics.
fn scan(file: &str, bytes: &[u8]) -> Scan {
    let mut out = Scan { records: Vec::new(), diags: Vec::new(), clean_frames: Vec::new() };
    if bytes.is_empty() {
        return out;
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        out.diags.push((
            CorruptDiag {
                file: file.to_string(),
                offset: 0,
                reason: "bad or missing file magic".to_string(),
                fatal: true,
            },
            bytes[..bytes.len().min(64)].to_vec(),
        ));
        return out;
    }
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        let frame_start = pos as u64;
        let left = bytes.len() - pos;
        if left < 12 {
            out.diags.push((
                CorruptDiag {
                    file: file.to_string(),
                    offset: frame_start,
                    reason: format!("torn tail: {left} bytes, frame header needs 12"),
                    fatal: true,
                },
                bytes[pos..].to_vec(),
            ));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            out.diags.push((
                CorruptDiag {
                    file: file.to_string(),
                    offset: frame_start,
                    reason: format!("implausible frame length {len}; framing untrusted"),
                    fatal: true,
                },
                bytes[pos..(pos + 64).min(bytes.len())].to_vec(),
            ));
            break;
        }
        let len = len as usize;
        if left < 12 + len {
            out.diags.push((
                CorruptDiag {
                    file: file.to_string(),
                    offset: frame_start,
                    reason: format!(
                        "torn tail: frame claims {len} payload bytes, {} remain",
                        left - 12
                    ),
                    fatal: true,
                },
                bytes[pos..].to_vec(),
            ));
            break;
        }
        let stored =
            u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let payload = &bytes[pos + 12..pos + 12 + len];
        let computed = fnv1a64(payload);
        pos += 12 + len;
        if stored != computed {
            out.diags.push((
                CorruptDiag {
                    file: file.to_string(),
                    offset: frame_start,
                    reason: format!(
                        "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                    ),
                    fatal: false,
                },
                payload[..payload.len().min(64)].to_vec(),
            ));
            continue;
        }
        match Record::decode(payload) {
            Ok(r) => {
                out.records.push(r);
                out.clean_frames.push((frame_start, (12 + len) as u64));
            }
            Err(e) => out.diags.push((
                CorruptDiag {
                    file: file.to_string(),
                    offset: frame_start,
                    reason: format!("body rejected: {e}"),
                    fatal: false,
                },
                payload[..payload.len().min(64)].to_vec(),
            )),
        }
    }
    out
}

/// Frames a payload: length, checksum, bytes.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A crash-safe record store rooted at one directory.
///
/// All writes honour the [`StoreOptions::fail_after_bytes`] crash hook:
/// once the byte budget is exhausted the store behaves as if the process
/// died — the in-flight write is truncated at the budget boundary and
/// every subsequent write, fsync, and rename is silently skipped.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    journal: Option<File>,
    /// Remaining write budget under the crash hook; `None` = unlimited.
    budget: Option<u64>,
    crashed: bool,
    journal_appends: u64,
    compactions: u64,
    load: LoadSummary,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, recovering whatever
    /// state survives. Returns the store and every clean record, snapshot
    /// first then journal in append order.
    ///
    /// # Errors
    ///
    /// Propagates real I/O failures (permissions, `dir` is a file, ...).
    /// Corrupt *contents* are never an error — they are quarantined.
    pub fn open(dir: &Path, opts: &StoreOptions) -> io::Result<(Store, Vec<Record>)> {
        fs::create_dir_all(dir)?;
        // Stale temp files are debris from a crash mid-compaction or
        // mid-recovery; the rename never happened, so they carry nothing.
        for name in [SNAPSHOT, JOURNAL] {
            let _ = fs::remove_file(dir.join(format!("{name}.tmp")));
        }
        let mut records = Vec::new();
        let mut load = LoadSummary::default();
        let mut sidecar: Vec<String> = Vec::new();

        for (name, is_journal) in [(SNAPSHOT, false), (JOURNAL, true)] {
            let path = dir.join(name);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e),
            };
            if is_journal {
                load.journal_bytes = bytes.len() as u64;
            } else {
                load.snapshot_bytes = bytes.len() as u64;
            }
            let scanned = scan(name, &bytes);
            load.records += scanned.records.len() as u64;
            load.corrupt_records += scanned.diags.len() as u64;
            for (diag, raw) in &scanned.diags {
                sidecar.push(diag.sidecar_line(raw));
            }
            if !scanned.diags.is_empty() {
                // Lossy recovery: rewrite the file with exactly the
                // surviving frames so corruption is reported once and the
                // next append lands on a clean tail.
                let mut clean = Vec::with_capacity(bytes.len());
                clean.extend_from_slice(MAGIC);
                for &(off, len) in &scanned.clean_frames {
                    clean.extend_from_slice(&bytes[off as usize..(off + len) as usize]);
                }
                let tmp = dir.join(format!("{name}.tmp"));
                fs::write(&tmp, &clean)?;
                File::open(&tmp)?.sync_data()?;
                fs::rename(&tmp, &path)?;
            }
            records.extend(scanned.records);
        }

        if !sidecar.is_empty() {
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join(SIDECAR))?;
            for line in &sidecar {
                f.write_all(line.as_bytes())?;
            }
            f.sync_data()?;
        }

        let journal_path = dir.join(JOURNAL);
        let fresh = !journal_path.exists();
        let mut journal =
            OpenOptions::new().create(true).append(true).open(&journal_path)?;
        let mut store = Store {
            dir: dir.to_path_buf(),
            journal: None,
            budget: opts.fail_after_bytes,
            crashed: false,
            journal_appends: 0,
            compactions: 0,
            load,
        };
        if fresh {
            // New journal: write the magic through the budgeted path so a
            // crash hook can even tear the header.
            store.budgeted_write(&mut journal, MAGIC)?;
        }
        store.journal = Some(journal);
        Ok((store, records))
    }

    /// What recovery found at open time.
    pub fn load_summary(&self) -> &LoadSummary {
        &self.load
    }

    /// Records appended since open.
    pub fn journal_appends(&self) -> u64 {
        self.journal_appends
    }

    /// Compactions performed since open.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether the crash hook has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes through the crash hook: consumes budget, truncates the write
    /// at the boundary, and goes silent once the budget is spent.
    fn budgeted_write(&mut self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        let allowed = match self.budget {
            None => bytes.len(),
            Some(left) => {
                let allowed = (left as usize).min(bytes.len());
                let left = left - allowed as u64;
                self.budget = Some(left);
                if left == 0 {
                    self.crashed = true;
                }
                allowed
            }
        };
        if allowed > 0 {
            file.write_all(&bytes[..allowed])?;
        }
        Ok(())
    }

    /// Appends one record to the journal.
    ///
    /// # Errors
    ///
    /// Real I/O failures only; a fired crash hook swallows writes silently
    /// (that is the point of the hook).
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        let framed = frame(&rec.encode());
        let mut journal = self.journal.take().expect("journal is open");
        let r = self.budgeted_write(&mut journal, &framed);
        self.journal = Some(journal);
        r?;
        self.journal_appends += 1;
        Ok(())
    }

    /// Forces journal bytes to disk (no-op after a crash-hook fire).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        if let Some(j) = &mut self.journal {
            j.sync_data()?;
        }
        Ok(())
    }

    /// Replaces the snapshot with `records` and truncates the journal —
    /// the atomic compaction step: write `snapshot.astra.tmp`, fsync,
    /// rename over `snapshot.astra`, then reset the journal. A crash
    /// anywhere in between leaves either the old state (rename not yet
    /// done) or the new snapshot plus a journal whose replay is harmless
    /// (records are idempotent re-applications of the same state).
    ///
    /// # Errors
    ///
    /// Real I/O failures only.
    pub fn compact(&mut self, records: &[Record]) -> io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        for r in records {
            body.extend_from_slice(&frame(&r.encode()));
        }
        let tmp = self.dir.join(format!("{SNAPSHOT}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            let r = self.budgeted_write(&mut f, &body);
            if !self.crashed {
                f.sync_data()?;
            }
            r?;
        }
        if self.crashed {
            // Died mid-snapshot-write: the temp file stays, the real
            // snapshot and journal are untouched.
            return Ok(());
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT))?;
        // Reset the journal to just its header. Recreate rather than
        // truncate the shared handle: append mode keeps its own cursor.
        let journal_path = self.dir.join(JOURNAL);
        let mut f = File::create(&journal_path)?;
        f.write_all(MAGIC)?;
        f.sync_data()?;
        self.journal = Some(OpenOptions::new().append(true).open(&journal_path)?);
        self.compactions += 1;
        Ok(())
    }
}

/// Read-only integrity check of the store at `dir` — nothing is written,
/// quarantined, or repaired.
///
/// # Errors
///
/// Real I/O failures only; corruption lands in [`FsckReport::corrupt`].
pub fn fsck(dir: &Path) -> io::Result<FsckReport> {
    let mut report = FsckReport::default();
    for name in [SNAPSHOT, JOURNAL] {
        let bytes = match fs::read(dir.join(name)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        report.bytes += bytes.len() as u64;
        let scanned = scan(name, &bytes);
        for r in &scanned.records {
            *report.counts.entry(r.kind_name()).or_insert(0) += 1;
        }
        report.corrupt.extend(scanned.diags.into_iter().map(|(d, _)| d));
    }
    match fs::read_to_string(dir.join(SIDECAR)) {
        Ok(s) => report.quarantined_lines = s.lines().count() as u64,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ProfileSampleRec, VerdictKind, VerdictRec};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("astra-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample(i: u64) -> Record {
        Record::ProfileSample(ProfileSampleRec {
            contexts: vec![format!("ctx{i}")],
            entity: format!("fuse:{i}"),
            choice: i,
            value_ns: 100.0 + i as f64,
        })
    }

    #[test]
    fn append_reopen_roundtrips() {
        let dir = tmpdir("roundtrip");
        let (mut s, loaded) = Store::open(&dir, &StoreOptions::default()).unwrap();
        assert!(loaded.is_empty());
        for i in 0..10 {
            s.append(&sample(i)).unwrap();
        }
        s.sync().unwrap();
        drop(s);
        let (s2, loaded) = Store::open(&dir, &StoreOptions::default()).unwrap();
        assert_eq!(loaded.len(), 10);
        assert_eq!(loaded[3], sample(3));
        assert_eq!(s2.load_summary().corrupt_records, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_crash_point_recovers_a_consistent_prefix() {
        // Write 20 records cleanly to learn the byte length, then replay
        // with the crash hook at every byte boundary.
        let dir = tmpdir("crashpoints");
        let (mut s, _) = Store::open(&dir, &StoreOptions::default()).unwrap();
        for i in 0..20 {
            s.append(&sample(i)).unwrap();
        }
        s.sync().unwrap();
        let total = fs::metadata(dir.join(JOURNAL)).unwrap().len();
        fs::remove_dir_all(&dir).unwrap();

        for cut in 0..=total {
            let dir = tmpdir(&format!("crash{cut}"));
            let (mut s, _) =
                Store::open(&dir, &StoreOptions { fail_after_bytes: Some(cut) }).unwrap();
            for i in 0..20 {
                s.append(&sample(i)).unwrap();
            }
            drop(s);
            let (s2, loaded) = Store::open(&dir, &StoreOptions::default()).unwrap();
            // The recovered prefix must be exactly the first k records.
            for (i, rec) in loaded.iter().enumerate() {
                assert_eq!(*rec, sample(i as u64), "cut={cut}");
            }
            assert!(s2.load_summary().corrupt_records <= 1, "cut={cut}");
            // Recovery rewrote the tail: reopening again is clean.
            drop(s2);
            let (s3, loaded2) = Store::open(&dir, &StoreOptions::default()).unwrap();
            assert_eq!(loaded2.len(), loaded.len(), "cut={cut}");
            assert_eq!(s3.load_summary().corrupt_records, 0, "cut={cut}");
            drop(s3);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn flipped_byte_quarantines_one_record_and_keeps_the_rest() {
        let dir = tmpdir("flip");
        let (mut s, _) = Store::open(&dir, &StoreOptions::default()).unwrap();
        for i in 0..8 {
            s.append(&sample(i)).unwrap();
        }
        s.sync().unwrap();
        drop(s);
        // Flip one payload byte in the middle of the journal.
        let path = dir.join(JOURNAL);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let report = fsck(&dir).unwrap();
        assert_eq!(report.corrupt.len(), 1);
        assert!(report.corrupt[0].reason.contains("checksum"));

        let (s2, loaded) = Store::open(&dir, &StoreOptions::default()).unwrap();
        assert_eq!(s2.load_summary().corrupt_records, 1);
        assert_eq!(loaded.len(), 7, "one record lost, the rest survive");
        assert!(fs::read_to_string(dir.join(SIDECAR)).unwrap().contains("checksum"));
        drop(s2);
        // The rewrite scrubbed the corruption: fsck is clean now.
        let report = fsck(&dir).unwrap();
        assert!(report.corrupt.is_empty());
        assert_eq!(report.quarantined_lines, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_moves_state_to_the_snapshot_atomically() {
        let dir = tmpdir("compact");
        let (mut s, _) = Store::open(&dir, &StoreOptions::default()).unwrap();
        for i in 0..5 {
            s.append(&sample(i)).unwrap();
        }
        let state: Vec<Record> = (0..5).map(sample).collect();
        s.compact(&state).unwrap();
        assert_eq!(s.compactions(), 1);
        s.append(&sample(5)).unwrap();
        s.sync().unwrap();
        drop(s);
        let (_, loaded) = Store::open(&dir, &StoreOptions::default()).unwrap();
        assert_eq!(loaded.len(), 6);
        assert_eq!(loaded[5], sample(5));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_during_compaction_preserves_old_state() {
        let dir = tmpdir("compact-crash");
        let (mut s, _) = Store::open(&dir, &StoreOptions::default()).unwrap();
        for i in 0..5 {
            s.append(&sample(i)).unwrap();
        }
        s.sync().unwrap();
        let journal_len = fs::metadata(dir.join(JOURNAL)).unwrap().len();
        drop(s);
        // Budget covers the existing journal is irrelevant on reopen (no
        // rewrite); give just enough to die inside the snapshot body.
        let (mut s, loaded) =
            Store::open(&dir, &StoreOptions { fail_after_bytes: Some(40) }).unwrap();
        assert_eq!(loaded.len(), 5);
        s.compact(&loaded).unwrap();
        assert!(s.crashed());
        drop(s);
        let (_, reloaded) = Store::open(&dir, &StoreOptions::default()).unwrap();
        assert_eq!(reloaded.len(), 5, "old state intact after compaction crash");
        assert_eq!(fs::metadata(dir.join(JOURNAL)).unwrap().len(), journal_len);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_counts_kinds() {
        let dir = tmpdir("fsck");
        let (mut s, _) = Store::open(&dir, &StoreOptions::default()).unwrap();
        s.append(&sample(0)).unwrap();
        s.append(&Record::Verdict(VerdictRec {
            kind: VerdictKind::Lint,
            plan_fp: 9,
            clean: true,
        }))
        .unwrap();
        s.sync().unwrap();
        drop(s);
        let report = fsck(&dir).unwrap();
        assert_eq!(report.counts["profile_sample"], 1);
        assert_eq!(report.counts["verdict"], 1);
        assert_eq!(report.total_records(), 2);
        assert!(report.corrupt.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
