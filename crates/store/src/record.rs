//! Typed store records and their on-disk encoding.
//!
//! Each record is a self-describing payload: a one-byte type tag, a
//! one-byte version, then a type-specific body written with the [`codec`]
//! primitives. The store frames payloads with a length and an FNV-1a
//! checksum (see [`Store`]); this module only defines what is *inside*
//! a frame.
//!
//! The record vocabulary mirrors Astra's warm exploration state —
//! profile samples, plan verdicts, quarantine marks, predictor weights,
//! full-run simulation memos — but deliberately uses only plain data
//! (strings, integers, floats), so this crate depends on nothing and the
//! domain crates convert at their edge.
//!
//! [`codec`]: crate::codec
//! [`Store`]: crate::Store

use crate::codec::{CodecError, Decoder, Encoder};

/// Largest sequence any record may carry; decode rejects bigger claims
/// before allocating.
const MAX_SEQ: usize = 1 << 24;

/// One warm-state record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// One profiled sample for one `(context, entity, choice)` key. The
    /// journal form: replaying samples in append order rebuilds the exact
    /// Welford running stats.
    ProfileSample(ProfileSampleRec),
    /// A snapshotted running stat for one profile key — the compacted form
    /// of a run of [`Record::ProfileSample`]s.
    ProfileStats(ProfileStatsRec),
    /// A verifier or linter verdict for one plan fingerprint.
    Verdict(VerdictRec),
    /// A quarantine mark: this profile key repeatedly failed under the
    /// given fault profile and should not be re-probed.
    Quarantine(QuarantineRec),
    /// A learned cost-model snapshot for one phase kind.
    Predictor(PredictorRec),
    /// A full-run simulation memo: a finished engine checkpoint keyed the
    /// same way the in-memory SimCache keys it.
    Memo(Box<MemoRec>),
}

/// Journal form of one profile observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSampleRec {
    /// Mangled context strings, outermost first.
    pub contexts: Vec<String>,
    /// The adaptive variable's entity name.
    pub entity: String,
    /// Choice index within the variable.
    pub choice: u64,
    /// Measured value, nanoseconds.
    pub value_ns: f64,
}

/// Snapshot form of one profile key's running stats.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStatsRec {
    /// Mangled context strings, outermost first.
    pub contexts: Vec<String>,
    /// The adaptive variable's entity name.
    pub entity: String,
    /// Choice index within the variable.
    pub choice: u64,
    /// Welford sample count.
    pub count: u64,
    /// Welford running mean.
    pub mean: f64,
    /// Welford running sum of squared deviations.
    pub m2: f64,
    /// Minimum observed value (the decision statistic).
    pub min: f64,
}

/// Which analysis produced a [`VerdictRec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// The happens-before schedule verifier.
    Verify,
    /// The static plan linter.
    Lint,
}

/// A cached pass/fail verdict for one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictRec {
    /// Which analysis ran.
    pub kind: VerdictKind,
    /// Fingerprint of the canonical `(plan, placement)` rendering.
    pub plan_fp: u64,
    /// `true` if the plan passed.
    pub clean: bool,
}

/// A persisted quarantine mark.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRec {
    /// Mangled context strings of the poisoned profile key.
    pub contexts: Vec<String>,
    /// The adaptive variable's entity name.
    pub entity: String,
    /// Choice index that kept failing.
    pub choice: u64,
    /// Fingerprint of the fault profile the failures happened under; the
    /// mark only applies to runs with a matching profile.
    pub fault_fp: u64,
}

/// A cost-model snapshot for one phase kind.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorRec {
    /// Phase kind the model predicts (`"fuse"`, `"kern"`, ...).
    pub kind: String,
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
    /// Online updates applied so far.
    pub updates: u64,
    /// Calibration envelope, low edge (ns).
    pub t_min: f64,
    /// Calibration envelope, high edge (ns).
    pub t_max: f64,
}

/// The cache key of a [`MemoRec`], mirroring the in-memory SimCache key.
/// Totally ordered so callers can keep memo sets in deterministic
/// (compaction-stable) order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemoKey {
    /// Schedule prefix hash at the capture boundary.
    pub prefix_hash: u64,
    /// Device/topology fingerprint.
    pub device: u64,
    /// Clock mode: 0 = fixed, 1 = autoboost.
    pub clock_tag: u8,
    /// Autoboost seed (0 under a fixed clock).
    pub clock_seed: u64,
    /// Fault plan fingerprint (0 when faults are off).
    pub fault_fp: u64,
    /// Fault salt (0-normalized for clean plans).
    pub salt: u64,
}

/// One kernel span inside a memo, labels interned in the record's string
/// table.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoSpan {
    /// Index into [`MemoRec::labels`].
    pub label: u32,
    /// Stream index.
    pub stream: u64,
    /// Span start, ns.
    pub start_ns: f64,
    /// Span end, ns.
    pub end_ns: f64,
    /// Originating command index.
    pub cmd_idx: u64,
}

/// One persisted all-reduce rendezvous arrival: stream, arrival time (ns),
/// payload bytes, originating command index.
pub type ArArrivalRec = (u64, f64, u64, u64);

/// A persisted full-run engine memo: everything a resume reads, as plain
/// data. Field meanings follow the engine checkpoint they serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoRec {
    /// Cache key.
    pub key: MemoKey,
    /// Capture boundary command index (the schedule length).
    pub cmd_idx: u64,
    /// Stream count.
    pub num_streams: u64,
    /// Dispatcher clock at capture.
    pub cpu_ns: f64,
    /// Barriers dispatched.
    pub barrier_seq: u64,
    /// Device clock at capture.
    pub now: f64,
    /// Fired events (engine event table), key-sorted.
    pub events: Vec<(u32, f64)>,
    /// Barrier arrivals, id-sorted.
    pub barrier_arrivals: Vec<(u64, Vec<(u64, f64)>)>,
    /// Expected arrivals per barrier, id-sorted.
    pub barrier_expect: Vec<(u64, u64)>,
    /// All-reduce arrivals ([`ArArrivalRec`]), group-sorted.
    pub ar_arrivals: Vec<(u32, Vec<ArArrivalRec>)>,
    /// Cached per-stream rates.
    pub rates: Vec<f64>,
    /// Whether the rate cache needs recomputing.
    pub rates_dirty: bool,
    /// Jitter RNG position, if the clock carries one.
    pub clock_rng_state: Option<u64>,
    /// Result: makespan, ns.
    pub total_ns: f64,
    /// Result: fired events as reported to callers (kept separately from
    /// `events` so the round trip is faithful even if the two tables ever
    /// diverge).
    pub event_ns: Vec<(u32, f64)>,
    /// Result: kernels launched.
    pub num_launches: u64,
    /// Result: events recorded.
    pub num_records: u64,
    /// Result: profiling overhead, ns.
    pub profiling_overhead_ns: f64,
    /// Result: fault counters (spikes, launch retries, alloc retries,
    /// straggler streams) — all zero for the clean runs memos cover.
    pub faults: [u32; 4],
    /// Interned span labels.
    pub labels: Vec<String>,
    /// Result: completed spans.
    pub spans: Vec<MemoSpan>,
}

const TAG_PROFILE_SAMPLE: u8 = 1;
const TAG_PROFILE_STATS: u8 = 2;
const TAG_VERDICT: u8 = 3;
const TAG_QUARANTINE: u8 = 4;
const TAG_PREDICTOR: u8 = 5;
const TAG_MEMO: u8 = 6;

/// Current version of every record body. Bump per-tag when a body changes;
/// decode rejects unknown versions into quarantine rather than guessing.
const VERSION: u8 = 1;

fn enc_key(e: &mut Encoder, contexts: &[String], entity: &str, choice: u64) {
    e.seq(contexts.len());
    for c in contexts {
        e.str(c);
    }
    e.str(entity);
    e.u64(choice);
}

fn dec_key(d: &mut Decoder<'_>) -> Result<(Vec<String>, String, u64), CodecError> {
    let n = d.seq(4)?;
    let mut contexts = Vec::with_capacity(n);
    for _ in 0..n {
        contexts.push(d.str()?);
    }
    let entity = d.str()?;
    let choice = d.u64()?;
    Ok((contexts, entity, choice))
}

impl Record {
    /// A short stable name for stats/fsck reporting.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Record::ProfileSample(_) => "profile_sample",
            Record::ProfileStats(_) => "profile_stats",
            Record::Verdict(_) => "verdict",
            Record::Quarantine(_) => "quarantine",
            Record::Predictor(_) => "predictor",
            Record::Memo(_) => "memo",
        }
    }

    /// Encodes the record into a payload (tag, version, body). The caller
    /// frames it with a length and checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Record::ProfileSample(r) => {
                e.u8(TAG_PROFILE_SAMPLE);
                e.u8(VERSION);
                enc_key(&mut e, &r.contexts, &r.entity, r.choice);
                e.f64(r.value_ns);
            }
            Record::ProfileStats(r) => {
                e.u8(TAG_PROFILE_STATS);
                e.u8(VERSION);
                enc_key(&mut e, &r.contexts, &r.entity, r.choice);
                e.u64(r.count);
                e.f64(r.mean);
                e.f64(r.m2);
                e.f64(r.min);
            }
            Record::Verdict(r) => {
                e.u8(TAG_VERDICT);
                e.u8(VERSION);
                e.u8(match r.kind {
                    VerdictKind::Verify => 0,
                    VerdictKind::Lint => 1,
                });
                e.u64(r.plan_fp);
                e.bool(r.clean);
            }
            Record::Quarantine(r) => {
                e.u8(TAG_QUARANTINE);
                e.u8(VERSION);
                enc_key(&mut e, &r.contexts, &r.entity, r.choice);
                e.u64(r.fault_fp);
            }
            Record::Predictor(r) => {
                e.u8(TAG_PREDICTOR);
                e.u8(VERSION);
                e.str(&r.kind);
                e.seq(r.weights.len());
                for &w in &r.weights {
                    e.f64(w);
                }
                e.f64(r.bias);
                e.u64(r.updates);
                e.f64(r.t_min);
                e.f64(r.t_max);
            }
            Record::Memo(r) => {
                e.u8(TAG_MEMO);
                e.u8(VERSION);
                e.u64(r.key.prefix_hash);
                e.u64(r.key.device);
                e.u8(r.key.clock_tag);
                e.u64(r.key.clock_seed);
                e.u64(r.key.fault_fp);
                e.u64(r.key.salt);
                e.u64(r.cmd_idx);
                e.u64(r.num_streams);
                e.f64(r.cpu_ns);
                e.u64(r.barrier_seq);
                e.f64(r.now);
                e.seq(r.events.len());
                for &(ev, t) in &r.events {
                    e.u32(ev);
                    e.f64(t);
                }
                e.seq(r.barrier_arrivals.len());
                for (id, arr) in &r.barrier_arrivals {
                    e.u64(*id);
                    e.seq(arr.len());
                    for &(s, t) in arr {
                        e.u64(s);
                        e.f64(t);
                    }
                }
                e.seq(r.barrier_expect.len());
                for &(id, n) in &r.barrier_expect {
                    e.u64(id);
                    e.u64(n);
                }
                e.seq(r.ar_arrivals.len());
                for (id, arr) in &r.ar_arrivals {
                    e.u32(*id);
                    e.seq(arr.len());
                    for &(s, t, b, c) in arr {
                        e.u64(s);
                        e.f64(t);
                        e.u64(b);
                        e.u64(c);
                    }
                }
                e.seq(r.rates.len());
                for &x in &r.rates {
                    e.f64(x);
                }
                e.bool(r.rates_dirty);
                match r.clock_rng_state {
                    Some(s) => {
                        e.bool(true);
                        e.u64(s);
                    }
                    None => e.bool(false),
                }
                e.f64(r.total_ns);
                e.seq(r.event_ns.len());
                for &(ev, t) in &r.event_ns {
                    e.u32(ev);
                    e.f64(t);
                }
                e.u64(r.num_launches);
                e.u64(r.num_records);
                e.f64(r.profiling_overhead_ns);
                for f in r.faults {
                    e.u32(f);
                }
                e.seq(r.labels.len());
                for l in &r.labels {
                    e.str(l);
                }
                e.seq(r.spans.len());
                for s in &r.spans {
                    e.u32(s.label);
                    e.u64(s.stream);
                    e.f64(s.start_ns);
                    e.f64(s.end_ns);
                    e.u64(s.cmd_idx);
                }
            }
        }
        e.into_bytes()
    }

    /// Decodes a payload, checking the tag, version, and that the body
    /// consumes the payload exactly.
    pub fn decode(payload: &[u8]) -> Result<Record, CodecError> {
        let mut d = Decoder::new(payload);
        let tag = d.u8()?;
        let version = d.u8()?;
        if version != VERSION {
            return Err(CodecError::BadVersion { tag, version });
        }
        let rec = match tag {
            TAG_PROFILE_SAMPLE => {
                let (contexts, entity, choice) = dec_key(&mut d)?;
                let value_ns = d.f64()?;
                Record::ProfileSample(ProfileSampleRec { contexts, entity, choice, value_ns })
            }
            TAG_PROFILE_STATS => {
                let (contexts, entity, choice) = dec_key(&mut d)?;
                Record::ProfileStats(ProfileStatsRec {
                    contexts,
                    entity,
                    choice,
                    count: d.u64()?,
                    mean: d.f64()?,
                    m2: d.f64()?,
                    min: d.f64()?,
                })
            }
            TAG_VERDICT => {
                let kind = match d.u8()? {
                    0 => VerdictKind::Verify,
                    1 => VerdictKind::Lint,
                    k => return Err(CodecError::BadTag(k)),
                };
                Record::Verdict(VerdictRec { kind, plan_fp: d.u64()?, clean: d.bool()? })
            }
            TAG_QUARANTINE => {
                let (contexts, entity, choice) = dec_key(&mut d)?;
                Record::Quarantine(QuarantineRec {
                    contexts,
                    entity,
                    choice,
                    fault_fp: d.u64()?,
                })
            }
            TAG_PREDICTOR => {
                let kind = d.str()?;
                let n = d.seq(8)?;
                if n > MAX_SEQ {
                    return Err(CodecError::BadLength(n as u64));
                }
                let mut weights = Vec::with_capacity(n);
                for _ in 0..n {
                    weights.push(d.f64()?);
                }
                Record::Predictor(PredictorRec {
                    kind,
                    weights,
                    bias: d.f64()?,
                    updates: d.u64()?,
                    t_min: d.f64()?,
                    t_max: d.f64()?,
                })
            }
            TAG_MEMO => Record::Memo(Box::new(decode_memo(&mut d)?)),
            t => return Err(CodecError::BadTag(t)),
        };
        d.finish()?;
        Ok(rec)
    }
}

fn decode_memo(d: &mut Decoder<'_>) -> Result<MemoRec, CodecError> {
    let key = MemoKey {
        prefix_hash: d.u64()?,
        device: d.u64()?,
        clock_tag: d.u8()?,
        clock_seed: d.u64()?,
        fault_fp: d.u64()?,
        salt: d.u64()?,
    };
    let cmd_idx = d.u64()?;
    let num_streams = d.u64()?;
    let cpu_ns = d.f64()?;
    let barrier_seq = d.u64()?;
    let now = d.f64()?;
    let n = d.seq(12)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push((d.u32()?, d.f64()?));
    }
    let n = d.seq(12)?;
    let mut barrier_arrivals = Vec::with_capacity(n);
    for _ in 0..n {
        let id = d.u64()?;
        let m = d.seq(16)?;
        let mut arr = Vec::with_capacity(m);
        for _ in 0..m {
            arr.push((d.u64()?, d.f64()?));
        }
        barrier_arrivals.push((id, arr));
    }
    let n = d.seq(16)?;
    let mut barrier_expect = Vec::with_capacity(n);
    for _ in 0..n {
        barrier_expect.push((d.u64()?, d.u64()?));
    }
    let n = d.seq(8)?;
    let mut ar_arrivals = Vec::with_capacity(n);
    for _ in 0..n {
        let id = d.u32()?;
        let m = d.seq(32)?;
        let mut arr = Vec::with_capacity(m);
        for _ in 0..m {
            arr.push((d.u64()?, d.f64()?, d.u64()?, d.u64()?));
        }
        ar_arrivals.push((id, arr));
    }
    let n = d.seq(8)?;
    let mut rates = Vec::with_capacity(n);
    for _ in 0..n {
        rates.push(d.f64()?);
    }
    let rates_dirty = d.bool()?;
    let clock_rng_state = if d.bool()? { Some(d.u64()?) } else { None };
    let total_ns = d.f64()?;
    let n = d.seq(12)?;
    let mut event_ns = Vec::with_capacity(n);
    for _ in 0..n {
        event_ns.push((d.u32()?, d.f64()?));
    }
    let num_launches = d.u64()?;
    let num_records = d.u64()?;
    let profiling_overhead_ns = d.f64()?;
    let faults = [d.u32()?, d.u32()?, d.u32()?, d.u32()?];
    let n = d.seq(4)?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(d.str()?);
    }
    let n = d.seq(36)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push(MemoSpan {
            label: d.u32()?,
            stream: d.u64()?,
            start_ns: d.f64()?,
            end_ns: d.f64()?,
            cmd_idx: d.u64()?,
        });
    }
    Ok(MemoRec {
        key,
        cmd_idx,
        num_streams,
        cpu_ns,
        barrier_seq,
        now,
        events,
        barrier_arrivals,
        barrier_expect,
        ar_arrivals,
        rates,
        rates_dirty,
        clock_rng_state,
        total_ns,
        event_ns,
        num_launches,
        num_records,
        profiling_overhead_ns,
        faults,
        labels,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::ProfileSample(ProfileSampleRec {
                contexts: vec!["milstm[b8]".into(), "epoch3".into()],
                entity: "fuse:12".into(),
                choice: 2,
                value_ns: 1234.5,
            }),
            Record::ProfileStats(ProfileStatsRec {
                contexts: vec![],
                entity: "kern:gemm64".into(),
                choice: 0,
                count: 7,
                mean: 900.25,
                m2: 12.5,
                min: 881.0,
            }),
            Record::Verdict(VerdictRec {
                kind: VerdictKind::Verify,
                plan_fp: 0xABCD_EF01_2345_6789,
                clean: true,
            }),
            Record::Verdict(VerdictRec { kind: VerdictKind::Lint, plan_fp: 42, clean: false }),
            Record::Quarantine(QuarantineRec {
                contexts: vec!["ptb".into()],
                entity: "fuse:3".into(),
                choice: 1,
                fault_fp: 99,
            }),
            Record::Predictor(PredictorRec {
                kind: "fuse".into(),
                weights: (0..256).map(|i| i as f64 * 0.125).collect(),
                bias: -3.5,
                updates: 1000,
                t_min: 100.0,
                t_max: 1e6,
            }),
            Record::Memo(Box::new(MemoRec {
                key: MemoKey {
                    prefix_hash: 1,
                    device: 2,
                    clock_tag: 1,
                    clock_seed: 7,
                    fault_fp: 0,
                    salt: 0,
                },
                cmd_idx: 10,
                num_streams: 2,
                cpu_ns: 5.5,
                barrier_seq: 1,
                now: 99.875,
                events: vec![(0, 1.5), (3, 2.25)],
                barrier_arrivals: vec![(0, vec![(0, 1.0), (1, 2.0)])],
                barrier_expect: vec![(0, 2)],
                ar_arrivals: vec![(5, vec![(1, 3.0, 4096, 7)])],
                rates: vec![1.0, 0.5],
                rates_dirty: true,
                clock_rng_state: Some(0xFEED),
                total_ns: 123.0625,
                event_ns: vec![(0, 1.5), (3, 2.25)],
                num_launches: 6,
                num_records: 2,
                profiling_overhead_ns: 1.25,
                faults: [0, 0, 0, 0],
                labels: vec!["gemm".into(), "add".into()],
                spans: vec![
                    MemoSpan { label: 0, stream: 0, start_ns: 0.0, end_ns: 10.0, cmd_idx: 0 },
                    MemoSpan { label: 1, stream: 1, start_ns: 5.0, end_ns: 7.5, cmd_idx: 3 },
                ],
            })),
        ]
    }

    #[test]
    fn every_record_kind_roundtrips() {
        for rec in sample_records() {
            let payload = rec.encode();
            let back = Record::decode(&payload).unwrap();
            assert_eq!(rec, back, "{} roundtrips", rec.kind_name());
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut payload = sample_records()[0].encode();
        payload[1] = 99;
        assert!(matches!(
            Record::decode(&payload),
            Err(CodecError::BadVersion { version: 99, .. })
        ));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut payload = sample_records()[0].encode();
        payload[0] = 200;
        assert!(matches!(Record::decode(&payload), Err(CodecError::BadTag(200))));
    }

    #[test]
    fn truncated_body_is_rejected() {
        let payload = sample_records()[5].encode();
        assert!(Record::decode(&payload[..payload.len() - 3]).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = sample_records()[2].encode();
        payload.push(0);
        assert!(matches!(Record::decode(&payload), Err(CodecError::Trailing(1))));
    }
}
