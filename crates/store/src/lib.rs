//! # astra-store — crash-safe persistence for Astra's warm exploration state
//!
//! Astra's economics rest on measurements being *reusable*: profile
//! samples, verified-plan verdicts, learned cost-model weights, and
//! full-run simulation memos are all worth more than the mini-batches
//! spent collecting them. This crate is the layer that lets that state
//! survive the process — a zero-dependency, hand-rolled binary store
//! with the durability properties a crash-resume driver needs:
//!
//! * **Checksummed framing** ([`codec`], [`record`]) — every record is
//!   `[len][fnv1a64][tag, version, body]`; torn writes and flipped bytes
//!   are detected, never silently decoded.
//! * **Append-only journal + atomic snapshot** ([`Store`]) — appends go
//!   to `journal.astra`; [`Store::compact`] folds state into
//!   `snapshot.astra` via write-temp → fsync → rename, so a `kill -9`
//!   at any byte boundary leaves a store that loads to a consistent
//!   prefix.
//! * **Corruption quarantine** — recovery rejects bad records into a
//!   `store.corrupt` sidecar with structured diagnostics and keeps every
//!   unaffected record; one flipped byte costs one record, not the
//!   store. [`fsck`] is the read-only integrity check.
//! * **Crash injection** ([`StoreOptions::fail_after_bytes`]) — a
//!   write-fault hook that drops everything past a byte budget, so the
//!   recovery tests can prove the above at every byte boundary.
//!
//! The crate is deliberately domain-blind: records carry plain strings,
//! integers, and floats ([`record::Record`]), and `astra-core` converts
//! its own types at the edge. That keeps the dependency arrow pointing
//! one way (core → store) and the on-disk format auditable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod record;
mod store;

pub use codec::{fnv1a64, CodecError, Decoder, Encoder};
pub use record::{
    ArArrivalRec, MemoKey, MemoRec, MemoSpan, PredictorRec, ProfileSampleRec,
    ProfileStatsRec, QuarantineRec, Record, VerdictKind, VerdictRec,
};
pub use store::{
    fsck, CorruptDiag, FsckReport, LoadSummary, Store, StoreOptions, CRASH_AFTER_ENV,
    MAGIC, MAX_RECORD_BYTES,
};
