//! Hand-rolled binary codec primitives.
//!
//! Everything the store writes goes through [`Encoder`] and comes back
//! through [`Decoder`]: little-endian fixed-width integers, bit-exact
//! `f64`s, length-prefixed UTF-8 strings, and length-prefixed sequences.
//! No serde, no varints, no surprises — the format is simple enough to
//! audit with `xxd` and stable enough to version with a single byte.

use std::fmt;

/// Checksum/decode failure. Carries enough context for the quarantine
/// sidecar to say *why* a record was rejected, not just that it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the read needed.
        want: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// An unknown record type tag.
    BadTag(u8),
    /// A known record type at an unknown version.
    BadVersion {
        /// The record's type tag.
        tag: u8,
        /// The version byte found.
        version: u8,
    },
    /// A sequence length field implies more data than the record holds.
    BadLength(u64),
    /// The record decoded cleanly but left unread bytes behind.
    Trailing(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { want, have } => {
                write!(f, "truncated: wanted {want} bytes, had {have}")
            }
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            CodecError::BadTag(t) => write!(f, "unknown record tag {t}"),
            CodecError::BadVersion { tag, version } => {
                write!(f, "record tag {tag} at unsupported version {version}")
            }
            CodecError::BadLength(n) => write!(f, "implausible sequence length {n}"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after record body"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash — the frame checksum. Not cryptographic; it exists to
/// catch torn writes and bit rot, and its 8-byte state keeps the codec
/// dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append-only byte sink with typed write methods.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the on-disk format is
    /// pointer-width-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` bit-exactly (IEEE-754 bits, little-endian).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a sequence length prefix (callers then write each element).
    pub fn seq(&mut self, len: usize) {
        self.u32(len as u32);
    }
}

/// Cursor over encoded bytes with typed read methods. Every read is
/// bounds-checked and returns [`CodecError::Truncated`] rather than
/// panicking — corrupt input is an expected condition here.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors if any bytes remain — a well-formed record consumes exactly
    /// its payload.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Trailing(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { want: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadLength(v))
    }

    /// Reads an `f64` bit-exactly.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool (any nonzero byte is `true`).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength(len as u64));
        }
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a sequence length prefix, rejecting lengths that cannot fit in
    /// the remaining bytes at `min_elem_bytes` per element.
    pub fn seq(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::BadLength(len as u64));
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        // A value whose bits exercise the full mantissa.
        let dense = std::f64::consts::PI * 1e9 + 1.0 / 3.0;
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.usize(12345);
        e.f64(-0.0);
        e.f64(dense);
        e.bool(true);
        e.bool(false);
        e.str("héllo ∆ world");
        e.str("");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0_f64).to_bits());
        assert_eq!(d.f64().unwrap().to_bits(), dense.to_bits());
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo ∆ world");
        assert_eq!(d.str().unwrap(), "");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut e = Encoder::new();
        e.u64(42);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..5]);
        assert!(matches!(d.u64(), Err(CodecError::Truncated { want: 8, have: 5 })));
    }

    #[test]
    fn implausible_string_length_is_rejected() {
        let mut e = Encoder::new();
        e.u32(1_000_000); // claims a megabyte follows
        e.u8(1);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.str(), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut e = Encoder::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        d.u8().unwrap();
        assert!(matches!(d.finish(), Err(CodecError::Trailing(1))));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }
}
