//! Negative suite: every `lint-*` rule id fires on a purpose-built
//! schedule — and every report is bit-identical at any worker count.

use astra_gpu::{BufId, DeviceSpec, KernelDesc, Schedule, StreamId, Topology};
use astra_lint::{lint, LintOptions, LintReport};
use astra_verify::AccessTable;

fn copy(bytes: f64) -> KernelDesc {
    KernelDesc::MemCopy { bytes }
}

fn small_device(mem_bytes: u64) -> Topology {
    let mut d = DeviceSpec::p100();
    d.mem_bytes = mem_bytes;
    Topology::single(d)
}

/// Lints at one and four workers, asserts the rendered and JSON reports
/// are bit-identical, and returns the single-worker report.
fn lint_invariant(
    sched: &Schedule,
    topo: &Topology,
    access: Option<&AccessTable>,
    buf_bytes: Option<&dyn Fn(BufId) -> u64>,
) -> LintReport {
    let one = lint(sched, topo, access, buf_bytes, &LintOptions { workers: 1 });
    let four = lint(sched, topo, access, buf_bytes, &LintOptions { workers: 4 });
    assert_eq!(one.render(), four.render(), "report must not depend on worker count");
    assert_eq!(one.to_json(), four.to_json(), "JSON must not depend on worker count");
    one
}

#[test]
fn lint_mem_capacity_fires_on_an_oversubscribed_device() {
    let mut s = Schedule::new(1);
    s.launch(StreamId(0), copy(1.0));
    let mut access = AccessTable::new(s.cmds().len());
    // Two 600-byte buffers live at the same command on a 1000-byte device.
    let a = access.intern_slices(&[BufId(0), BufId(1)], &[]);
    access.assign(0, a);
    let topo = small_device(1000);
    let report =
        lint_invariant(&s, &topo, Some(&access), Some(&|_| 600));
    assert_eq!(report.errors(), 1, "over-capacity must be an error");
    assert!(!report.is_clean());
    assert_eq!(report.peak_bytes, vec![1200]);
    assert!(report.render().contains("lint-mem-capacity"), "{}", report.render());
}

#[test]
fn lint_mem_occupancy_warns_above_ninety_percent() {
    let mut s = Schedule::new(1);
    s.launch(StreamId(0), copy(1.0));
    let mut access = AccessTable::new(s.cmds().len());
    let a = access.intern_slices(&[BufId(0)], &[]);
    access.assign(0, a);
    let topo = small_device(1000);
    // 950 of 1000 bytes: above the 90% advisory line, below capacity.
    let report = lint_invariant(&s, &topo, Some(&access), Some(&|_| 950));
    assert_eq!(report.errors(), 0, "occupancy is advisory, not an error");
    assert!(report.is_clean());
    assert!(report.render().contains("lint-mem-occupancy"), "{}", report.render());
}

#[test]
fn lint_redundant_sync_fires_on_a_stream_order_implied_wait() {
    let mut s = Schedule::new(2);
    s.launch(StreamId(0), copy(1.0));
    let e_same = s.record(StreamId(0));
    s.launch(StreamId(1), copy(1.0));
    let e_cross = s.record(StreamId(1));
    // The same-stream wait is implied by FIFO order; the cross-stream one
    // is load-bearing and keeps the list non-empty (the pass never empties
    // a wait list, so a lone implied wait would be kept, not reported).
    s.launch_after(StreamId(0), copy(1.0), vec![e_same, e_cross]);
    let topo = Topology::single(DeviceSpec::p100());
    let report = lint_invariant(&s, &topo, None, None);
    assert_eq!(report.errors(), 0, "redundant syncs are advisories");
    assert_eq!(report.redundant_waits.len(), 1);
    assert!(report.render().contains("lint-redundant-sync"), "{}", report.render());
}

#[test]
fn a_clean_schedule_reports_nothing() {
    let mut s = Schedule::new(2);
    s.launch(StreamId(0), copy(1.0));
    let e = s.record(StreamId(0));
    // Cross-stream wait with no other ordering: genuinely necessary.
    s.launch_after(StreamId(1), copy(1.0), vec![e]);
    let mut access = AccessTable::new(s.cmds().len());
    let a = access.intern_slices(&[BufId(0)], &[]);
    access.assign(0, a);
    let topo = small_device(1 << 20);
    let report = lint_invariant(&s, &topo, Some(&access), Some(&|_| 64));
    assert!(report.is_clean());
    assert!(report.redundant_waits.is_empty());
    for rule in ["lint-mem-capacity", "lint-mem-occupancy", "lint-redundant-sync"] {
        assert!(!report.render().contains(rule), "unexpected {rule}: {}", report.render());
    }
    assert!(report.critical_path_floor_ns > 0.0);
}
