//! Sound lower bounds on simulated schedule time.
//!
//! Every engine cost source only ever *adds* to the floors used here: the
//! SM-sharing rate never exceeds 1 (a kernel is never faster than solo),
//! clock jitter multiplies by ≥ 1, fault injection (spikes, launch
//! retries, allocation stalls) adds time, shared-link contention splits
//! bandwidth, and sync penalties are nonnegative. So
//! [`critical_path_floor`] ≤ simulated `total_ns` and a region floor ≤ the
//! measured probe elapsed, for every seed and fault plan whose straggler
//! factor is ≥ 1 (a sub-unit straggler *speeds kernels up*; the driver
//! gates bound pruning on that).

use std::collections::HashMap;

use astra_gpu::{Cmd, DeviceSpec, EventId, KernelDesc, Schedule, StreamId, Topology};
use astra_verify::happens_before_edges;

/// Fraction of a full dispatch a [`Cmd::Record`] costs on the dispatcher.
const RECORD_DISPATCH_FRACTION: f64 = 0.25;

/// Floor on the time command `idx` occupies its stream (or the link),
/// excluding queueing and sync penalties. `observed` may return a
/// profile-backed minimum for a kernel on a device; the static cost model
/// is always the baseline.
fn node_floor(
    sched: &Schedule,
    topo: &Topology,
    idx: usize,
    observed: &dyn Fn(&KernelDesc, usize) -> Option<f64>,
) -> f64 {
    let dev = |d: usize| topo.device(d);
    let min_over = |f: &dyn Fn(&DeviceSpec) -> f64| {
        topo.devices().iter().map(f).fold(f64::INFINITY, f64::min)
    };
    match &sched.cmds()[idx] {
        Cmd::Launch { stream, kernel, .. } => {
            let di = sched.stream_devices()[stream.0];
            let d = dev(di);
            let exec = kernel.cost(d).exec_ns.max(observed(kernel, di).unwrap_or(0.0));
            d.launch_overhead_ns + exec
        }
        Cmd::Record { stream, .. } => dev(sched.stream_devices()[stream.0]).event_record_cost_ns,
        Cmd::Barrier => min_over(&|d| d.barrier_sync_cost_ns),
        Cmd::HostSync => min_over(&|d| d.host_roundtrip_ns),
        Cmd::Transfer { bytes, .. } => {
            topo.link().latency_ns + *bytes as f64 / topo.link().bytes_per_ns()
        }
        Cmd::AllReduce { bytes, group, .. } => {
            topo.link().ring_allreduce_ns(*bytes as f64, sched.allreduce_expect(*group))
        }
    }
}

/// Sound lower bound (ns) on the engine's `total_ns` for `sched` on
/// `topo`: the max of the happens-before critical path under per-command
/// duration floors and the serial dispatch floor (the host dispatcher
/// issues every command in order before the device can drain). `observed`
/// may tighten per-kernel floors with profiled minima (return `None` for
/// "no observation"); pass `&|_, _| None` for the purely static bound.
///
/// The bound holds for every simulation seed, clock mode, and fault plan
/// with a straggler factor ≥ 1. A cyclic schedule (which the verifier
/// rejects before anything simulates it) falls back to the dispatch floor.
pub fn critical_path_floor(
    sched: &Schedule,
    topo: &Topology,
    observed: &dyn Fn(&KernelDesc, usize) -> Option<f64>,
) -> f64 {
    let n = sched.cmds().len();
    if n == 0 {
        return 0.0;
    }

    // The dispatcher is serial: every command pays its dispatch slice
    // before the next is issued. Min across devices keeps the bound sound
    // on heterogeneous mixes.
    let min_dispatch =
        topo.devices().iter().map(|d| d.dispatch_cost_ns).fold(f64::INFINITY, f64::min);
    let min_roundtrip =
        topo.devices().iter().map(|d| d.host_roundtrip_ns).fold(f64::INFINITY, f64::min);
    let mut dispatch = 0.0;
    for cmd in sched.cmds() {
        dispatch += match cmd {
            Cmd::Record { .. } => RECORD_DISPATCH_FRACTION * min_dispatch,
            Cmd::HostSync => min_dispatch + min_roundtrip,
            _ => min_dispatch,
        };
    }

    // Longest path over the happens-before DAG with node-duration floors:
    // a command cannot complete before every predecessor completes plus
    // its own floor.
    let mut adj: Vec<(u32, u32)> = Vec::new();
    let mut indeg = vec![0u32; n];
    happens_before_edges(sched, |u, v, _| {
        adj.push((u as u32, v as u32));
        indeg[v] += 1;
    });
    adj.sort_unstable();
    let mut off = vec![0usize; n + 1];
    for &(u, _) in &adj {
        off[u as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }

    let mut finish: Vec<f64> =
        (0..n).map(|i| node_floor(sched, topo, i, observed)).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    let mut visited = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        visited += 1;
        for &(_, v) in &adj[off[u]..off[u + 1]] {
            let v = v as usize;
            let cand = finish[u] + node_floor(sched, topo, v, observed);
            if cand > finish[v] {
                finish[v] = cand;
            }
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    if visited < n {
        return dispatch; // cyclic: the critical path is undefined
    }
    finish.into_iter().fold(dispatch, f64::max)
}

/// First record index of every event in `sched`.
fn record_indices(sched: &Schedule) -> HashMap<u32, usize> {
    let mut record_at: HashMap<u32, usize> = HashMap::new();
    for (i, cmd) in sched.cmds().iter().enumerate() {
        if let Cmd::Record { event, .. } = cmd {
            record_at.entry(event.0).or_insert(i);
        }
    }
    record_at
}

/// Sum of busy-time floors of the commands on `stream` with indices in
/// `(s, e]` — everything that must execute serially on that stream between
/// the two records. Work on other streams, barriers, and host syncs only
/// ever delay the span further.
fn stream_span_sum(
    sched: &Schedule,
    topo: &Topology,
    s: usize,
    e: usize,
    stream: StreamId,
    observed: &dyn Fn(&KernelDesc, usize) -> Option<f64>,
) -> f64 {
    let mut floor = 0.0;
    for i in s + 1..=e {
        match &sched.cmds()[i] {
            Cmd::Launch { stream: st, .. }
            | Cmd::Record { stream: st, .. }
            | Cmd::Transfer { stream: st, .. }
            | Cmd::AllReduce { stream: st, .. }
                if *st == stream =>
            {
                floor += node_floor(sched, topo, i, observed);
            }
            _ => {}
        }
    }
    floor
}

/// Floors for probe regions: for each `(start, end)` event pair, a sound
/// lower bound on `elapsed(start, end)` — the stream-timeline gap between
/// the two records. The bound sums the busy-time floors of every command
/// on the start record's stream after it, up to and including the end
/// record. Regions whose records are missing floor at zero.
pub fn region_floors(
    sched: &Schedule,
    regions: &[(EventId, EventId)],
    topo: &Topology,
    observed: &dyn Fn(&KernelDesc, usize) -> Option<f64>,
) -> Vec<f64> {
    let record_at = record_indices(sched);
    regions
        .iter()
        .map(|&(start, end)| {
            let (Some(&s), Some(&e)) = (record_at.get(&start.0), record_at.get(&end.0)) else {
                return 0.0;
            };
            if e <= s {
                return 0.0;
            }
            let Cmd::Record { stream, .. } = sched.cmds()[s] else { return 0.0 };
            stream_span_sum(sched, topo, s, e, stream, observed)
        })
        .collect()
}

/// Floors for super-epoch spans (the §4.7 epoch metric): for each
/// `(start, ends)` pair — a super-epoch start record plus an epoch's
/// per-stream end records — a sound lower bound on
/// `max over ends of t(end) - t(start)`.
///
/// Two independent bounds, combined by max over every end record:
///
/// * **Critical path.** The longest happens-before path from the start
///   record to the end record, under per-command duration floors: along
///   any happens-before chain each command completes before its successor
///   starts — the same argument [`critical_path_floor`] rests on.
/// * **Device busy work.** The engine's processor sharing gives stream
///   `i` rate `(d_i / D) · U(D) / U(d_i)`, so a device's *normalized*
///   throughput — each kernel's progress weighted by its own solo
///   utilization `U(d_i)` — totals `U(D) ≤ 1` per nanosecond. Summing
///   `exec · U(demand)` over launches that provably execute inside the
///   span therefore bounds it from below, no matter how the streams
///   overlap. When the start record directly follows a schedule-wide
///   sync (a barrier, a host sync, or the schedule start — the emitter's
///   super-epoch layout), *every* later launch that happens-before the
///   end record qualifies: the serial dispatcher issues it after the
///   record, and its stream was released no earlier than the record's
///   stream, so it cannot start before the record does — the record's
///   fixed duration (records take exactly `event_record_cost_ns`: no
///   jitter, spikes, or stragglers apply) is the only work the span may
///   have lost to a head start. Otherwise only launches the start record
///   happens-before count.
///
/// The measured metric takes the max over end records, so any one
/// reachable end already bounds it from below. Ends the start record does
/// not happen-before (and spans whose records are missing, or cyclic
/// schedules) floor at zero.
pub fn span_floors(
    sched: &Schedule,
    spans: &[(EventId, &[EventId])],
    topo: &Topology,
    observed: &dyn Fn(&KernelDesc, usize) -> Option<f64>,
) -> Vec<f64> {
    let n = sched.cmds().len();
    let mut out = vec![0.0; spans.len()];
    if n == 0 || spans.is_empty() {
        return out;
    }
    let record_at = record_indices(sched);

    // Happens-before DAG in CSR form plus one topological order, shared
    // by every span.
    let mut adj: Vec<(u32, u32)> = Vec::new();
    let mut indeg = vec![0u32; n];
    happens_before_edges(sched, |u, v, _| {
        adj.push((u as u32, v as u32));
        indeg[v] += 1;
    });
    adj.sort_unstable();
    let mut off = vec![0usize; n + 1];
    for &(u, _) in &adj {
        off[u as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut order: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for &(_, v) in &adj[off[u]..off[u + 1]] {
            let v = v as usize;
            indeg[v] -= 1;
            if indeg[v] == 0 {
                order.push(v);
            }
        }
    }
    if order.len() < n {
        return out; // cyclic: the verifier rejects it before simulation
    }
    let node_floors: Vec<f64> =
        (0..n).map(|i| node_floor(sched, topo, i, observed)).collect();

    // Normalized execution work per launch: solo exec floor × wave-aware
    // utilization — the unit in which a device under processor sharing
    // makes at most one nanosecond of progress per nanosecond.
    let norm_work: Vec<Option<(usize, f64)>> = (0..n)
        .map(|i| match &sched.cmds()[i] {
            Cmd::Launch { stream, kernel, .. } => {
                let di = sched.stream_devices()[stream.0];
                let d = topo.device(di);
                let cost = kernel.cost(d);
                let exec = cost.exec_ns.max(observed(kernel, di).unwrap_or(0.0));
                let slots = f64::from(d.total_slots());
                let blocks = f64::from(cost.demand_blocks);
                let util = if blocks <= 0.0 {
                    1.0
                } else {
                    let waves = (blocks / slots).ceil().max(1.0);
                    (blocks / (waves * slots)).sqrt()
                };
                Some((di, exec * util))
            }
            _ => None,
        })
        .collect();

    // Reverse CSR for backward reachability from end records; reach sets
    // are cached because epochs repeat end records across spans.
    let mut radj: Vec<(u32, u32)> = adj.iter().map(|&(u, v)| (v, u)).collect();
    radj.sort_unstable();
    let mut roff = vec![0usize; n + 1];
    for &(v, _) in &radj {
        roff[v as usize + 1] += 1;
    }
    for i in 0..n {
        roff[i + 1] += roff[i];
    }
    let mut back_cache: HashMap<usize, Vec<bool>> = HashMap::new();

    // One longest-path propagation per distinct start record; spans of the
    // same super-epoch share it.
    let mut starts: Vec<usize> =
        spans.iter().filter_map(|&(st, _)| record_at.get(&st.0).copied()).collect();
    starts.sort_unstable();
    starts.dedup();
    let rec_cost =
        topo.devices().iter().map(|d| d.event_record_cost_ns).fold(0.0, f64::max);
    for &s in &starts {
        let mut dist = vec![f64::NEG_INFINITY; n];
        dist[s] = 0.0;
        for &u in &order {
            if dist[u] == f64::NEG_INFINITY {
                continue;
            }
            for &(_, v) in &adj[off[u]..off[u + 1]] {
                let v = v as usize;
                let cand = dist[u] + node_floors[v];
                if cand > dist[v] {
                    dist[v] = cand;
                }
            }
        }
        // Post-sync start records anchor the busy-work bound at the sync:
        // every later launch then starts no earlier than the record does.
        let anchored =
            s == 0 || matches!(sched.cmds()[s - 1], Cmd::Barrier | Cmd::HostSync);
        for (k, &(st, ends)) in spans.iter().enumerate() {
            if record_at.get(&st.0) != Some(&s) {
                continue;
            }
            let mut floor = 0.0_f64;
            for e in ends.iter().filter_map(|e| record_at.get(&e.0).copied()) {
                if dist[e] == f64::NEG_INFINITY {
                    continue;
                }
                let back = back_cache.entry(e).or_insert_with(|| {
                    let mut seen = vec![false; n];
                    seen[e] = true;
                    let mut stack = vec![e];
                    while let Some(u) = stack.pop() {
                        for &(_, p) in &radj[roff[u]..roff[u + 1]] {
                            let p = p as usize;
                            if !seen[p] {
                                seen[p] = true;
                                stack.push(p);
                            }
                        }
                    }
                    seen
                });
                // Launches provably inside the span: started no earlier
                // than the start record, completed before the end record.
                // Each device drains their normalized work at rate ≤ 1,
                // less the record-length head start an anchored span
                // allows the other streams.
                let mut busy: HashMap<usize, f64> = HashMap::new();
                for c in s + 1..n {
                    if back[c] && (anchored || dist[c] != f64::NEG_INFINITY) {
                        if let Some((dev, w)) = norm_work[c] {
                            *busy.entry(dev).or_insert(0.0) += w;
                        }
                    }
                }
                let head_start = if anchored { rec_cost } else { 0.0 };
                let busy = busy.into_values().fold(0.0, f64::max) - head_start;
                floor = floor.max(dist[e]).max(busy);
            }
            out[k] = floor;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{DeviceSpec, StreamId};

    fn copy(bytes: f64) -> KernelDesc {
        KernelDesc::MemCopy { bytes }
    }

    fn none() -> impl Fn(&KernelDesc, usize) -> Option<f64> {
        |_: &KernelDesc, _: usize| None
    }

    #[test]
    fn serial_chain_floor_sums_the_chain() {
        let dev = DeviceSpec::p100();
        let topo = Topology::single(dev.clone());
        let mut s = Schedule::new(1);
        for _ in 0..4 {
            s.launch(StreamId(0), copy(1.0));
        }
        let floor = critical_path_floor(&s, &topo, &none());
        let per = dev.launch_overhead_ns + copy(1.0).cost(&dev).exec_ns;
        assert!(floor >= 4.0 * per, "floor {floor} < chain {}", 4.0 * per);
    }

    #[test]
    fn parallel_streams_do_not_sum() {
        let topo = Topology::single(DeviceSpec::p100());
        let mut chain = Schedule::new(1);
        let mut wide = Schedule::new(4);
        for i in 0..4 {
            chain.launch(StreamId(0), copy(1e6));
            wide.launch(StreamId(i), copy(1e6));
        }
        let fc = critical_path_floor(&chain, &topo, &none());
        let fw = critical_path_floor(&wide, &topo, &none());
        assert!(fw < fc, "independent work must not serialize: {fw} vs {fc}");
    }

    #[test]
    fn observed_minima_tighten_the_floor() {
        let topo = Topology::single(DeviceSpec::p100());
        let mut s = Schedule::new(1);
        s.launch(StreamId(0), copy(1.0));
        let base = critical_path_floor(&s, &topo, &none());
        let tighter =
            critical_path_floor(&s, &topo, &|_: &KernelDesc, _: usize| Some(1e9));
        assert!(tighter > base);
    }

    #[test]
    fn region_floor_covers_only_the_span() {
        let dev = DeviceSpec::p100();
        let topo = Topology::single(dev.clone());
        let mut s = Schedule::new(1);
        s.launch(StreamId(0), copy(1.0));
        let a = s.record(StreamId(0));
        s.launch(StreamId(0), copy(1.0));
        s.launch(StreamId(0), copy(1.0));
        let b = s.record(StreamId(0));
        s.launch(StreamId(0), copy(1.0));
        let floors = region_floors(&s, &[(a, b), (b, a)], &topo, &none());
        let per = dev.launch_overhead_ns + copy(1.0).cost(&dev).exec_ns;
        assert!(floors[0] >= 2.0 * per + dev.event_record_cost_ns);
        assert!(floors[0] < 3.0 * per, "the tail launch is outside the region");
        assert_eq!(floors[1], 0.0, "inverted region floors at zero");
    }

    #[test]
    fn span_floor_uses_only_ends_the_start_happens_before() {
        let dev = DeviceSpec::p100();
        let topo = Topology::single(dev.clone());
        let mut s = Schedule::new(2);
        let start = s.record(StreamId(0));
        s.launch(StreamId(0), copy(1.0));
        s.launch(StreamId(0), copy(1.0));
        let end0 = s.record(StreamId(0));
        s.launch(StreamId(1), copy(1.0));
        let end1 = s.record(StreamId(1));
        let ends = [end0, end1];
        let floors = span_floors(&s, &[(start, &ends[..])], &topo, &none());
        let per = dev.launch_overhead_ns + copy(1.0).cost(&dev).exec_ns;
        assert!(floors[0] >= 2.0 * per + dev.event_record_cost_ns);
        assert!(
            floors[0] < 3.0 * per + 2.0 * dev.event_record_cost_ns,
            "the unordered cross-stream end must not add its stream's work"
        );
        // A span whose only end record the start does not happen-before
        // carries no ordering to bound, so it floors at zero.
        let other = [end1];
        let floors = span_floors(&s, &[(start, &other[..])], &topo, &none());
        assert_eq!(floors[0], 0.0);
    }

    #[test]
    fn empty_schedule_floors_at_zero() {
        let topo = Topology::single(DeviceSpec::p100());
        assert_eq!(critical_path_floor(&Schedule::new(1), &topo, &none()), 0.0);
    }
}
