//! Redundant-sync detection and elision via transitive reduction of the
//! happens-before graph.
//!
//! A wait edge `record → waiter` is *redundant* when some other path
//! already orders the pair: then removing the wait cannot change
//! reachability. Removing any set of transitively-implied edges at once is
//! sound — every removed edge is justified by a path whose own edges span
//! strictly fewer topological positions, so by induction on span the kept
//! edges alone reproduce the relation (and span-adjacent edges are never
//! removable). Two waits can therefore never justify each other in a
//! cycle.
//!
//! Cost bit-identity: the engine charges one cross-stream sync penalty per
//! command with a *non-empty* wait list, and a redundant wait's event has
//! always fired by the time the command reaches its stream head — so
//! removing redundant entries (while keeping one wait whenever every entry
//! of a list is redundant) leaves every issue time, and hence the whole
//! simulated timeline, bit-identical.

use std::collections::HashMap;

use astra_gpu::{Cmd, EventId, Schedule};
use astra_verify::{happens_before_edges, HbEdge, HbGraph};

/// One happens-before in-neighbor of a command.
#[derive(Clone, Copy)]
struct InEdge {
    src: usize,
    /// The waited event when this is a record→wait edge.
    wait: Option<EventId>,
}

/// Finds every elidable wait as `(command index, wait-list position)`,
/// in dispatch order. Duplicate occurrences of one event in a wait list
/// are elidable past the first; a wait is otherwise elidable when its
/// (unique) record is a non-wait in-neighbor of the command or reaches
/// another in-neighbor. When *every* entry of a list is elidable the first
/// is kept, preserving the engine's non-empty-list sync penalty.
pub(crate) fn find_redundant(sched: &Schedule, workers: usize) -> Vec<(usize, usize)> {
    let hb = HbGraph::build(sched);
    if hb.is_cyclic() {
        // A deadlocked schedule is the verifier's problem; reachability
        // queries are meaningless here.
        return Vec::new();
    }

    let mut in_edges: Vec<Vec<InEdge>> = vec![Vec::new(); sched.cmds().len()];
    happens_before_edges(sched, |u, v, kind| {
        let wait = match kind {
            HbEdge::Wait(e) => Some(e),
            _ => None,
        };
        in_edges[v].push(InEdge { src: u, wait });
    });

    let mut records: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, cmd) in sched.cmds().iter().enumerate() {
        if let Cmd::Record { event, .. } = cmd {
            records.entry(event.0).or_default().push(i);
        }
    }

    let candidates: Vec<usize> = sched
        .cmds()
        .iter()
        .enumerate()
        .filter_map(|(i, c)| match c {
            Cmd::Launch { waits, .. } | Cmd::Transfer { waits, .. } if !waits.is_empty() => {
                Some(i)
            }
            _ => None,
        })
        .collect();

    let scan = |chunk: &[usize]| -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for &i in chunk {
            scan_cmd(sched, &hb, &in_edges, &records, i, &mut out);
        }
        out
    };

    let workers = workers.clamp(1, candidates.len().max(1));
    if workers <= 1 {
        return scan(&candidates);
    }
    let chunk = candidates.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> =
            candidates.chunks(chunk).map(|c| s.spawn(move || scan(c))).collect();
        handles.into_iter().flat_map(|h| h.join().expect("lint worker panicked")).collect()
    })
}

/// Appends command `i`'s elidable wait positions to `out`.
fn scan_cmd(
    sched: &Schedule,
    hb: &HbGraph,
    in_edges: &[Vec<InEdge>],
    records: &HashMap<u32, Vec<usize>>,
    i: usize,
    out: &mut Vec<(usize, usize)>,
) {
    let waits = match &sched.cmds()[i] {
        Cmd::Launch { waits, .. } | Cmd::Transfer { waits, .. } => waits,
        _ => return,
    };
    let mut elide = vec![false; waits.len()];
    for (p, w) in waits.iter().enumerate() {
        if waits[..p].contains(w) {
            elide[p] = true; // duplicate occurrence adds nothing
            continue;
        }
        // Only a uniquely-recorded event has an unambiguous source; waits
        // on unrecorded or double-recorded events are left for the
        // verifier's liveness rules.
        let Some([r]) = records.get(&w.0).map(Vec::as_slice) else { continue };
        let implied = in_edges[i].iter().any(|e| {
            if e.wait == Some(*w) {
                return false; // the wait's own edge cannot justify it
            }
            match e.wait {
                // Another structural in-edge from the record itself, or
                // from anything the record reaches, already orders the
                // pair.
                None => e.src == *r || hb.reaches(*r, e.src),
                Some(_) => e.src != *r && hb.reaches(*r, e.src),
            }
        });
        if implied {
            elide[p] = true;
        }
    }
    if elide.iter().all(|&e| e) {
        elide[0] = false; // keep one wait: the sync penalty must survive
    }
    for (p, e) in elide.into_iter().enumerate() {
        if e {
            out.push((i, p));
        }
    }
}

/// The event a `(command, position)` pair waits on and its record's
/// command index.
///
/// # Panics
///
/// Panics if the pair does not name a wait with a recorded event — pairs
/// from [`find_redundant`] always do.
pub(crate) fn wait_source(sched: &Schedule, cmd: usize, pos: usize) -> (EventId, usize) {
    let waits = match &sched.cmds()[cmd] {
        Cmd::Launch { waits, .. } | Cmd::Transfer { waits, .. } => waits,
        other => panic!("command {cmd} ({other:?}) has no waits"),
    };
    let w = waits[pos];
    let record = sched
        .cmds()
        .iter()
        .position(|c| matches!(c, Cmd::Record { event, .. } if *event == w))
        .expect("redundant wait must have a record");
    (w, record)
}

/// Rewrites `sched` without its redundant event waits (see
/// `find_redundant` for the soundness rules — reachability is preserved
/// exactly and every non-empty wait list stays non-empty). Returns the
/// rewritten schedule and the number of waits removed; zero removals
/// still returns a full (identical) rebuild.
///
/// Everything else — command order, streams, kernels, labels, tags,
/// boundaries, the device map — is replayed verbatim, so event ids
/// renumber identically and the schedule is interchangeable with the
/// original everywhere but its prefix hash.
pub fn elide_redundant_syncs(sched: &Schedule) -> (Schedule, usize) {
    let drop: std::collections::HashSet<(usize, usize)> =
        find_redundant(sched, 1).into_iter().collect();
    let mut out = Schedule::with_devices(sched.num_streams(), sched.stream_devices().to_vec());
    let mut boundaries = sched.boundaries().iter().map(|&(at, _)| at).peekable();
    for (i, cmd) in sched.cmds().iter().enumerate() {
        while boundaries.next_if(|&at| at == i).is_some() {
            out.mark_boundary();
        }
        let keep = |waits: &[EventId]| -> Vec<EventId> {
            waits
                .iter()
                .enumerate()
                .filter(|&(p, _)| !drop.contains(&(i, p)))
                .map(|(_, &w)| w)
                .collect()
        };
        match cmd {
            Cmd::Launch { stream, kernel, waits, label } => match label {
                Some(l) => {
                    out.launch_labeled(*stream, *kernel, keep(waits), l.clone());
                }
                None => {
                    out.launch_after(*stream, *kernel, keep(waits));
                }
            },
            Cmd::Record { stream, event } => {
                let ev = out.record(*stream);
                debug_assert_eq!(ev, *event, "records must renumber identically");
            }
            Cmd::Barrier => out.barrier(),
            Cmd::HostSync => out.host_sync(),
            Cmd::Transfer { stream, bytes, src, dst, waits } => {
                out.transfer(*stream, *bytes, *src, *dst, keep(waits));
            }
            Cmd::AllReduce { stream, bytes, group } => {
                out.all_reduce(*stream, *bytes, *group);
            }
        }
        if let Some(t) = sched.tags()[i] {
            let last = out.cmds().len() - 1;
            out.set_tag(last, t);
        }
    }
    while boundaries.next().is_some() {
        out.mark_boundary();
    }
    (out, drop.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{KernelDesc, StreamId};

    fn copy() -> KernelDesc {
        KernelDesc::MemCopy { bytes: 1.0 }
    }

    #[test]
    fn wait_implied_by_stream_order_is_elided() {
        // The same-stream wait is covered by FIFO order; the cross-stream
        // one is load-bearing and keeps the list non-empty.
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), copy());
        let e_same = s.record(StreamId(0));
        s.launch(StreamId(1), copy());
        let e_cross = s.record(StreamId(1));
        let w = s.launch_after(StreamId(0), copy(), vec![e_same, e_cross]);
        assert_eq!(find_redundant(&s, 1), vec![(w, 0)]);
        let (elided, n) = elide_redundant_syncs(&s);
        assert_eq!(n, 1);
        match &elided.cmds()[w] {
            Cmd::Launch { waits, .. } => assert_eq!(waits, &vec![e_cross]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn a_sole_redundant_wait_is_kept_for_its_sync_penalty() {
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), copy());
        let e = s.record(StreamId(0));
        s.launch_after(StreamId(0), copy(), vec![e]);
        assert!(find_redundant(&s, 1).is_empty());
        let (_, n) = elide_redundant_syncs(&s);
        assert_eq!(n, 0);
    }

    #[test]
    fn wait_implied_by_another_wait_is_elided_once() {
        // e0 recorded before e1 on stream 0; a stream-1 launch waiting on
        // both needs only e1.
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), copy());
        let e0 = s.record(StreamId(0));
        s.launch(StreamId(0), copy());
        let e1 = s.record(StreamId(0));
        let w = s.launch_after(StreamId(1), copy(), vec![e0, e1]);
        assert_eq!(find_redundant(&s, 1), vec![(w, 0)]);
        let (elided, n) = elide_redundant_syncs(&s);
        assert_eq!(n, 1);
        match &elided.cmds()[w] {
            Cmd::Launch { waits, .. } => assert_eq!(waits, &vec![e1]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn necessary_cross_stream_wait_survives() {
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), copy());
        let e = s.record(StreamId(0));
        s.launch_after(StreamId(1), copy(), vec![e]);
        assert!(find_redundant(&s, 1).is_empty());
        let (elided, n) = elide_redundant_syncs(&s);
        assert_eq!(n, 0);
        assert_eq!(elided.render(), s.render());
        assert_eq!(elided.prefix_hash(), s.prefix_hash());
    }

    #[test]
    fn fully_redundant_list_keeps_its_first_wait() {
        // Barrier orders everything, making both waits redundant — but one
        // must survive so the sync penalty is unchanged.
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), copy());
        let e0 = s.record(StreamId(0));
        s.launch(StreamId(1), copy());
        let e1 = s.record(StreamId(1));
        s.barrier();
        let w = s.launch_after(StreamId(0), copy(), vec![e0, e1]);
        assert_eq!(find_redundant(&s, 1), vec![(w, 1)]);
        let (elided, _) = elide_redundant_syncs(&s);
        match &elided.cmds()[w] {
            Cmd::Launch { waits, .. } => assert_eq!(waits, &vec![e0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_wait_occurrences_collapse() {
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), copy());
        let e = s.record(StreamId(0));
        let w = s.launch_after(StreamId(1), copy(), vec![e, e]);
        assert_eq!(find_redundant(&s, 1), vec![(w, 1)]);
    }

    #[test]
    fn scan_is_worker_invariant() {
        let mut s = Schedule::new(3);
        let mut evs = Vec::new();
        for i in 0..12 {
            s.launch(StreamId(i % 3), copy());
            evs.push(s.record(StreamId(i % 3)));
        }
        s.barrier();
        for i in 0..6 {
            s.launch_after(StreamId(i % 3), copy(), vec![evs[i], evs[i + 6]]);
        }
        let r1 = find_redundant(&s, 1);
        let r4 = find_redundant(&s, 4);
        let r9 = find_redundant(&s, 9);
        assert!(!r1.is_empty());
        assert_eq!(r1, r4);
        assert_eq!(r1, r9);
    }

    #[test]
    fn elision_preserves_metadata() {
        let mut s = Schedule::with_devices(2, vec![0, 1]);
        let a = s.launch_labeled(StreamId(0), copy(), vec![], "producer");
        s.set_tag(a, 7);
        let e = s.record(StreamId(0));
        s.mark_boundary();
        let t = s.transfer(StreamId(1), 64, 0, 1, vec![e]);
        s.set_tag(t, 9);
        s.all_reduce(StreamId(1), 128, 0);
        let (elided, n) = elide_redundant_syncs(&s);
        assert_eq!(n, 0);
        assert_eq!(elided.render(), s.render());
        assert_eq!(elided.tags(), s.tags());
        assert_eq!(
            elided.boundaries().iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            s.boundaries().iter().map(|&(i, _)| i).collect::<Vec<_>>()
        );
        assert_eq!(elided.stream_devices(), s.stream_devices());
    }
}
