//! Liveness-based peak-memory accounting.
//!
//! A buffer is live from its first to its last accessing command (in
//! dispatch order); it is charged to the device of the stream that first
//! touches it (replica footprints arrive with per-device buffer ids from
//! the emitter, so one buffer never spans devices). The sweep accumulates
//! live bytes per device and records each device's peak and the command at
//! which it is first reached.

use std::collections::BTreeMap;

use astra_gpu::{BufId, Schedule};
use astra_verify::AccessTable;

/// Result of one peak-memory sweep.
pub(crate) struct MemScan {
    /// Peak live bytes per device.
    pub peaks: Vec<u64>,
    /// Command index at which each device's peak is first reached.
    pub peak_cmd: Vec<Option<usize>>,
}

impl MemScan {
    /// A scan with nothing to charge (no footprints or byte sizes).
    pub fn empty(num_devices: usize) -> MemScan {
        MemScan { peaks: vec![0; num_devices], peak_cmd: vec![None; num_devices] }
    }
}

/// Live interval of one buffer.
struct Interval {
    first: usize,
    last: usize,
    device: usize,
    bytes: u64,
}

pub(crate) fn scan(
    sched: &Schedule,
    access: &AccessTable,
    buf_bytes: &dyn Fn(BufId) -> u64,
    num_devices: usize,
) -> MemScan {
    // BTreeMap keeps the interval iteration deterministic regardless of
    // how buffer ids hash.
    let mut intervals: BTreeMap<BufId, Interval> = BTreeMap::new();
    for i in 0..sched.cmds().len() {
        let Some(view) = access.get(i) else { continue };
        let dev = crate::device_of(sched, i).unwrap_or(0);
        for &b in view.reads.iter().chain(view.writes) {
            intervals
                .entry(b)
                .and_modify(|iv| iv.last = i)
                .or_insert(Interval { first: i, last: i, device: dev, bytes: buf_bytes(b) });
        }
    }

    let n = sched.cmds().len();
    let mut alloc_at: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    let mut free_at: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for iv in intervals.values() {
        alloc_at[iv.first].push((iv.device, iv.bytes));
        free_at[iv.last].push((iv.device, iv.bytes));
    }

    let mut live = vec![0u64; num_devices];
    let mut scan = MemScan::empty(num_devices);
    for i in 0..n {
        for &(d, b) in &alloc_at[i] {
            live[d] += b;
        }
        for (d, l) in live.iter().enumerate() {
            if *l > scan.peaks[d] {
                scan.peaks[d] = *l;
                scan.peak_cmd[d] = Some(i);
            }
        }
        for &(d, b) in &free_at[i] {
            live[d] -= b;
        }
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{KernelDesc, StreamId};
    use astra_verify::Access;

    fn copy() -> KernelDesc {
        KernelDesc::MemCopy { bytes: 1.0 }
    }

    #[test]
    fn peak_counts_overlapping_lifetimes_only() {
        // b0 live over cmds 0..=1, b1 live over 1..=2: peak is both at cmd 1.
        let mut s = Schedule::new(1);
        let a = s.launch(StreamId(0), copy());
        let b = s.launch(StreamId(0), copy());
        let c = s.launch(StreamId(0), copy());
        let mut t = AccessTable::new(s.cmds().len());
        t.set(a, Access { reads: vec![], writes: vec![BufId(0)] });
        t.set(b, Access { reads: vec![BufId(0)], writes: vec![BufId(1)] });
        t.set(c, Access { reads: vec![BufId(1)], writes: vec![] });
        let scan = scan(&s, &t, &|_| 100, 1);
        assert_eq!(scan.peaks, vec![200]);
        assert_eq!(scan.peak_cmd, vec![Some(b)]);
    }

    #[test]
    fn charges_follow_the_first_touching_device() {
        let mut s = Schedule::with_devices(2, vec![0, 1]);
        let a = s.launch(StreamId(0), copy());
        let b = s.launch(StreamId(1), copy());
        let mut t = AccessTable::new(s.cmds().len());
        t.set(a, Access { reads: vec![], writes: vec![BufId(0)] });
        t.set(b, Access { reads: vec![], writes: vec![BufId(1)] });
        let scan = scan(&s, &t, &|bid| if bid == BufId(0) { 64 } else { 32 }, 2);
        assert_eq!(scan.peaks, vec![64, 32]);
    }
}
