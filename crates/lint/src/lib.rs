//! Static resource and performance linter for emitted schedules.
//!
//! `astra-verify` answers "is this schedule *correct*?"; this crate answers
//! "is it *executable and worth simulating*?". It reuses the verifier's
//! happens-before graph and diagnostics machinery (rule ids in the `lint-*`
//! namespace — see [`astra_verify::RuleId`]) for three analyses:
//!
//! 1. **Peak-memory accounting** — a live-interval sweep of placed buffers
//!    per device against [`DeviceSpec::mem_bytes`]. A device whose live set
//!    ever exceeds capacity gets a `lint-mem-capacity` error (the driver
//!    rejects the plan before simulating it); above
//!    [`OCCUPANCY_WARN_FRACTION`] of capacity it gets a `lint-mem-occupancy`
//!    advisory.
//! 2. **Redundant-sync detection** — an event wait whose ordering is already
//!    implied by the rest of the happens-before graph (a transitively
//!    reducible edge) is reported as `lint-redundant-sync`, and
//!    [`elide_redundant_syncs`] rewrites the schedule without it. The
//!    rewrite is reachability-preserving (so it stays verify-clean) and
//!    keeps at least one wait per non-empty wait list (so the engine's
//!    per-command sync penalty — charged once for any non-empty list — is
//!    unchanged and the simulated cost stays bit-identical).
//! 3. **Critical-path lower bounds** — [`critical_path_floor`] propagates
//!    sound per-command duration floors (solo kernel cost plus launch
//!    overhead, link latency and bandwidth floors for transfers, ring
//!    all-reduce floors) along the happens-before critical path, and takes
//!    the max with the serial dispatch floor. The result never exceeds the
//!    simulated time, so the driver can skip any candidate whose floor
//!    already beats the measured best without risking the final plan.
//!    [`region_floors`] is the per-probe-region variant the fusion and
//!    kernel-selection phases use.
//!
//! The floors accept an `observed` hook for profile-backed per-kernel
//! minima; the static [`KernelDesc::cost`] model (calibrated against the
//! paper's Table 1) is the baseline floor and the hook can only tighten it.
//!
//! [`DeviceSpec::mem_bytes`]: astra_gpu::DeviceSpec::mem_bytes
//! [`KernelDesc::cost`]: astra_gpu::KernelDesc::cost
//!
//! # Examples
//!
//! ```
//! use astra_gpu::{DeviceSpec, KernelDesc, Schedule, StreamId, Topology};
//! use astra_lint::{lint, LintOptions};
//!
//! let mut s = Schedule::new(2);
//! s.launch(StreamId(0), KernelDesc::MemCopy { bytes: 1024.0 });
//! let e = s.record(StreamId(0));
//! s.launch_after(StreamId(1), KernelDesc::MemCopy { bytes: 1.0 }, vec![e]);
//! let topo = Topology::single(DeviceSpec::p100());
//! let report = lint(&s, &topo, None, None, &LintOptions::default());
//! assert!(report.is_clean());
//! assert!(report.critical_path_floor_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod floor;
mod mem;
mod sync;

pub use floor::{critical_path_floor, region_floors, span_floors};
pub use sync::elide_redundant_syncs;

use astra_gpu::{BufId, Cmd, Schedule, Topology};
use astra_verify::{AccessTable, Diagnostic, RuleId, VerifyReport};

/// Live-memory fraction above which `lint-mem-occupancy` fires.
pub const OCCUPANCY_WARN_FRACTION: f64 = 0.9;

/// Knobs for one lint pass.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Threads for the redundant-sync scan (the only super-linear pass).
    /// The report is identical at any worker count; 0 and 1 both mean
    /// single-threaded.
    pub workers: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions { workers: 1 }
    }
}

/// Everything one lint pass found.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Findings (all in the `lint-*` rule namespace), rendered through the
    /// verifier's diagnostics machinery in canonical order.
    pub report: VerifyReport,
    /// Peak live placed bytes per device (index = device ordinal in the
    /// topology; zero without footprints or byte sizes).
    pub peak_bytes: Vec<u64>,
    /// Capacity of each device ([`astra_gpu::DeviceSpec::mem_bytes`]), for
    /// rendering occupancy.
    pub mem_bytes: Vec<u64>,
    /// Redundant event waits as `(command index, wait-list position)`
    /// pairs, in dispatch order — exactly the waits
    /// [`elide_redundant_syncs`] removes.
    pub redundant_waits: Vec<(usize, usize)>,
    /// Sound lower bound on the schedule's simulated wall-clock (ns).
    pub critical_path_floor_ns: f64,
}

impl LintReport {
    /// Whether the schedule passed: no error-severity findings.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.report.errors()
    }

    /// Stable line-oriented text: a summary line, one line per finding,
    /// then per-device peak-memory occupancy and the critical-path floor.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "linted {} commands: {} error(s), {} other finding(s)",
            self.report.cmds_checked,
            self.errors(),
            self.report.diagnostics.len() - self.errors(),
        );
        for d in &self.report.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        for (d, (&peak, &cap)) in self.peak_bytes.iter().zip(&self.mem_bytes).enumerate() {
            let pct = if cap == 0 { 0.0 } else { peak as f64 / cap as f64 * 100.0 };
            let _ = writeln!(out, "peak memory d{d}: {peak} / {cap} bytes ({pct:.1}%)");
        }
        let _ = writeln!(out, "critical-path floor: {:.1} ns", self.critical_path_floor_ns);
        out
    }

    /// Machine-readable JSON (hand-rolled; the workspace has no external
    /// dependencies). The verifier-shaped diagnostics nest under `report`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"clean\":{},\"peak_bytes\":[", self.is_clean());
        for (i, p) in self.peak_bytes.iter().enumerate() {
            let _ = write!(out, "{}{p}", if i > 0 { "," } else { "" });
        }
        out.push_str("],\"mem_bytes\":[");
        for (i, c) in self.mem_bytes.iter().enumerate() {
            let _ = write!(out, "{}{c}", if i > 0 { "," } else { "" });
        }
        let _ = write!(
            out,
            "],\"redundant_syncs\":{},\"critical_path_floor_ns\":{:.1},\"report\":{}}}",
            self.redundant_waits.len(),
            self.critical_path_floor_ns,
            self.report.to_json(),
        );
        out
    }
}

/// Runs every applicable lint over one schedule.
///
/// `access` supplies per-command buffer footprints and `buf_bytes` resolves
/// a buffer to its placed size; the peak-memory analysis needs both and is
/// skipped (peaks report zero) without either. The redundant-sync scan and
/// the critical-path floor always run.
///
/// # Panics
///
/// Panics if `access` is present but sized for a different schedule —
/// that is a caller bug, not a schedule defect.
pub fn lint(
    sched: &Schedule,
    topo: &Topology,
    access: Option<&AccessTable>,
    buf_bytes: Option<&dyn Fn(BufId) -> u64>,
    opts: &LintOptions,
) -> LintReport {
    if let Some(a) = access {
        assert_eq!(
            a.len(),
            sched.cmds().len(),
            "access table must cover exactly the schedule's commands"
        );
    }

    let mem_bytes: Vec<u64> = topo.devices().iter().map(|d| d.mem_bytes).collect();
    let mut diagnostics = Vec::new();

    let scan = match (access, buf_bytes) {
        (Some(a), Some(b)) => mem::scan(sched, a, b, topo.num_devices()),
        _ => mem::MemScan::empty(topo.num_devices()),
    };
    for (d, (&peak, &cap)) in scan.peaks.iter().zip(&mem_bytes).enumerate() {
        let rule = if peak > cap {
            RuleId::LintMemCapacity
        } else if peak as f64 > cap as f64 * OCCUPANCY_WARN_FRACTION {
            RuleId::LintMemOccupancy
        } else {
            continue;
        };
        let cmds: Vec<usize> = scan.peak_cmd[d].into_iter().collect();
        let labels: Vec<String> = cmds
            .iter()
            .filter_map(|&c| sched.span_labels()[c].as_deref().map(str::to_owned))
            .collect();
        let pct = if cap == 0 { f64::INFINITY } else { peak as f64 / cap as f64 * 100.0 };
        diagnostics.push(Diagnostic::new(
            rule,
            cmds,
            labels,
            format!(
                "device {d} ({}): peak live {peak} bytes of {cap} capacity ({pct:.1}%)",
                topo.device(d).name
            ),
        ));
    }

    let redundant_waits = sync::find_redundant(sched, opts.workers.max(1));
    for &(cmd, pos) in &redundant_waits {
        let (event, record) = sync::wait_source(sched, cmd, pos);
        let mut cmds = vec![record, cmd];
        cmds.sort_unstable();
        let labels: Vec<String> = cmds
            .iter()
            .filter_map(|&c| sched.span_labels()[c].as_deref().map(str::to_owned))
            .collect();
        diagnostics.push(Diagnostic::new(
            RuleId::LintRedundantSync,
            cmds,
            labels,
            format!("wait on e{} is already implied by other happens-before edges", event.0),
        ));
    }

    let critical_path_floor_ns = floor::critical_path_floor(sched, topo, &|_, _| None);

    diagnostics.sort_by_key(|d| d.sort_key());
    LintReport {
        report: VerifyReport {
            diagnostics,
            cmds_checked: sched.cmds().len(),
            hazard_pairs_checked: 0,
        },
        peak_bytes: scan.peaks,
        mem_bytes,
        redundant_waits,
        critical_path_floor_ns,
    }
}

/// Per-command device index: the stream's device for stream-bound
/// commands, `None` for barriers and host syncs.
pub(crate) fn device_of(sched: &Schedule, idx: usize) -> Option<usize> {
    match &sched.cmds()[idx] {
        Cmd::Launch { stream, .. }
        | Cmd::Record { stream, .. }
        | Cmd::Transfer { stream, .. }
        | Cmd::AllReduce { stream, .. } => Some(sched.stream_devices()[stream.0]),
        Cmd::Barrier | Cmd::HostSync => None,
    }
}
