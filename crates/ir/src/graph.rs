//! The data-flow graph (DFG) and its builder.
//!
//! Nodes are operators, edges are tensors (paper §2.2). The builder keeps
//! nodes in SSA/topological order and tracks *provenance* — which layer,
//! timestep, and pass each node came from — which the Astra enumerator uses
//! both to restrict fusion candidates ("same provenance", §4.4.1) and to form
//! equivalence classes for stream exploration (§4.5.5).

use std::collections::HashMap;


use crate::op::OpKind;
use crate::tensor::{Shape, TensorId, TensorInfo, TensorKind};

/// Identifier of a node within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Which pass of training a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Feed-forward computation.
    Forward,
    /// Back-propagation (roughly two-thirds of the compute, §5.1).
    Backward,
}

/// Where a node came from in the model source.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Provenance {
    /// Layer name (e.g. `"lstm2"`, `"attention"`).
    pub layer: String,
    /// Recurrent timestep, if inside an unrolled recurrence.
    pub timestep: Option<u32>,
    /// Role within the layer (e.g. `"gate_x"`, `"cand_h"`).
    pub role: String,
    /// Forward or backward pass.
    pub pass: Pass,
}

impl Default for Provenance {
    fn default() -> Self {
        Provenance { layer: String::new(), timestep: None, role: String::new(), pass: Pass::Forward }
    }
}

impl Provenance {
    /// Provenance for `layer` with no timestep/role.
    pub fn layer(layer: impl Into<String>) -> Self {
        Provenance { layer: layer.into(), ..Provenance::default() }
    }

    /// Returns this provenance at a given timestep.
    pub fn at_step(mut self, t: u32) -> Self {
        self.timestep = Some(t);
        self
    }

    /// Returns this provenance with a role label.
    pub fn with_role(mut self, role: impl Into<String>) -> Self {
        self.role = role.into();
        self
    }

    /// The structural identity ignoring timestep: nodes that differ only in
    /// timestep are "the same operation" for fusion/equivalence purposes.
    pub fn structural_key(&self) -> (String, String, Pass) {
        (self.layer.clone(), self.role.clone(), self.pass)
    }
}

/// One operator application.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operator.
    pub op: OpKind,
    /// Input tensors, in operator order.
    pub inputs: Vec<TensorId>,
    /// The produced tensor.
    pub output: TensorId,
    /// Source provenance.
    pub prov: Provenance,
}

/// A data-flow graph in SSA form; node order is a valid topological order.
///
/// # Examples
///
/// ```
/// use astra_ir::{Graph, Shape};
///
/// let mut g = Graph::new();
/// let x = g.input(Shape::matrix(8, 16), "x");
/// let w = g.param(Shape::matrix(16, 4), "w");
/// let y = g.mm(x, w);
/// assert_eq!(g.shape(y), &Shape::matrix(8, 4));
/// assert_eq!(g.nodes().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    tensors: Vec<TensorInfo>,
    nodes: Vec<Node>,
    /// Producer node of each tensor (None for inputs/params).
    producer: Vec<Option<NodeId>>,
    /// Ambient provenance applied to newly added nodes.
    ctx: Provenance,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Sets the ambient provenance for subsequently added nodes.
    pub fn set_context(&mut self, prov: Provenance) {
        self.ctx = prov;
    }

    /// Current ambient provenance.
    pub fn context(&self) -> &Provenance {
        &self.ctx
    }

    fn add_tensor(&mut self, shape: Shape, kind: TensorKind, name: Option<String>) -> TensorId {
        let id = TensorId(self.tensors.len() as u32);
        self.tensors.push(TensorInfo { shape, kind, name });
        self.producer.push(None);
        id
    }

    /// Declares a mini-batch input tensor.
    pub fn input(&mut self, shape: Shape, name: impl Into<String>) -> TensorId {
        self.add_tensor(shape, TensorKind::Input, Some(name.into()))
    }

    /// Declares a learned parameter tensor.
    pub fn param(&mut self, shape: Shape, name: impl Into<String>) -> TensorId {
        self.add_tensor(shape, TensorKind::Param, Some(name.into()))
    }

    /// Applies `op` to `inputs`, inferring the output shape. The new node
    /// takes the ambient provenance with `role` appended.
    ///
    /// # Panics
    ///
    /// Panics if shapes or arity are invalid for `op`, or an input id is out
    /// of range.
    pub fn apply_role(&mut self, op: OpKind, inputs: &[TensorId], role: &str) -> TensorId {
        for t in inputs {
            assert!((t.0 as usize) < self.tensors.len(), "unknown tensor {t}");
        }
        let shapes: Vec<&Shape> = inputs.iter().map(|t| &self.tensors[t.0 as usize].shape).collect();
        let out_shape = op.infer_shape(&shapes);
        let kind = if self.ctx.pass == Pass::Backward {
            TensorKind::Gradient
        } else {
            TensorKind::Intermediate
        };
        let output = self.add_tensor(out_shape, kind, None);
        let mut prov = self.ctx.clone();
        if !role.is_empty() {
            prov.role = if prov.role.is_empty() { role.to_owned() } else { format!("{}.{role}", prov.role) };
        }
        let node_id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { op, inputs: inputs.to_vec(), output, prov });
        self.producer[output.0 as usize] = Some(node_id);
        output
    }

    /// Applies `op` with the ambient provenance unchanged.
    pub fn apply(&mut self, op: OpKind, inputs: &[TensorId]) -> TensorId {
        self.apply_role(op, inputs, "")
    }

    /// Matrix multiplication.
    pub fn mm(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.apply(OpKind::MatMul, &[a, b])
    }

    /// Element-wise (or bias-broadcast) addition.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.apply(OpKind::Add, &[a, b])
    }

    /// Element-wise subtraction.
    pub fn sub(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.apply(OpKind::Sub, &[a, b])
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.apply(OpKind::Mul, &[a, b])
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: TensorId) -> TensorId {
        self.apply(OpKind::Sigmoid, &[x])
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: TensorId) -> TensorId {
        self.apply(OpKind::Tanh, &[x])
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: TensorId) -> TensorId {
        self.apply(OpKind::Relu, &[x])
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, x: TensorId) -> TensorId {
        self.apply(OpKind::Softmax, &[x])
    }

    /// Embedding lookup of `indices` into `table`.
    pub fn embedding(&mut self, indices: TensorId, table: TensorId) -> TensorId {
        self.apply(OpKind::Embedding, &[indices, table])
    }

    /// 2-D transpose.
    pub fn transpose(&mut self, x: TensorId) -> TensorId {
        self.apply(OpKind::Transpose, &[x])
    }

    /// 2-D convolution of `x` (encoded `[batch, c_in*h*w]`) with `weights`
    /// (`[c_out, c_in*kh*kw]`), valid padding, stride 1.
    pub fn conv2d(&mut self, x: TensorId, weights: TensorId, dims: crate::op::ConvDims) -> TensorId {
        self.apply(OpKind::Conv2d(dims), &[x, weights])
    }

    /// Scalar loss: sum of all elements.
    pub fn reduce_sum(&mut self, x: TensorId) -> TensorId {
        self.apply(OpKind::ReduceSum, &[x])
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of tensors.
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// Tensor metadata.
    pub fn tensor(&self, id: TensorId) -> &TensorInfo {
        &self.tensors[id.0 as usize]
    }

    /// A tensor's shape.
    pub fn shape(&self, id: TensorId) -> &Shape {
        &self.tensors[id.0 as usize].shape
    }

    /// The node producing `t`, if any (inputs/params have no producer).
    pub fn producer(&self, t: TensorId) -> Option<NodeId> {
        self.producer[t.0 as usize]
    }

    /// Ids of all nodes that consume `t`.
    pub fn consumers(&self, t: TensorId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&t))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Whether node `b` (transitively) depends on node `a`'s output.
    pub fn depends_on(&self, b: NodeId, a: NodeId) -> bool {
        if a == b {
            return false;
        }
        // Nodes are topologically ordered; walk reachability with a bitset.
        let mut reach = vec![false; self.nodes.len()];
        reach[a.0 as usize] = true;
        for i in (a.0 as usize + 1)..=(b.0 as usize) {
            let depends = self.nodes[i].inputs.iter().any(|t| {
                self.producer[t.0 as usize].is_some_and(|p| reach[p.0 as usize])
            });
            reach[i] = depends;
        }
        reach[b.0 as usize]
    }

    /// Whether tensor `b` (transitively) depends on tensor `a`.
    pub fn tensor_depends_on(&self, b: TensorId, a: TensorId) -> bool {
        let Some(pb) = self.producer[b.0 as usize] else { return false };
        if a == b {
            return false;
        }
        let mut reach_t = vec![false; self.tensors.len()];
        reach_t[a.0 as usize] = true;
        for node in &self.nodes[..=(pb.0 as usize)] {
            if node.inputs.iter().any(|t| reach_t[t.0 as usize]) {
                reach_t[node.output.0 as usize] = true;
            }
        }
        reach_t[b.0 as usize]
    }

    /// Dependency level of each node: inputs/params are level 0 sources; a
    /// node's level is `1 + max(level of producing nodes of its inputs)`.
    /// Nodes on the same level are mutually independent *within* a level
    /// given prior levels complete — the epoch structure of §4.5.4.
    pub fn levels(&self) -> Vec<u32> {
        let mut tensor_level: HashMap<TensorId, u32> = HashMap::new();
        let mut node_level = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let lvl = node
                .inputs
                .iter()
                .map(|t| tensor_level.get(t).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            node_level.push(lvl);
            tensor_level.insert(node.output, lvl + 1);
        }
        node_level
    }

    /// Validates the SSA/topological invariants; used by property tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let mut defined = vec![false; self.tensors.len()];
        for (i, info) in self.tensors.iter().enumerate() {
            if matches!(info.kind, TensorKind::Input | TensorKind::Param) {
                defined[i] = true;
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for t in &node.inputs {
                if !defined[t.0 as usize] {
                    return Err(format!("node n{i} uses undefined tensor {t}"));
                }
            }
            if defined[node.output.0 as usize] {
                return Err(format!("node n{i} redefines tensor {}", node.output));
            }
            defined[node.output.0 as usize] = true;
            if self.producer[node.output.0 as usize] != Some(NodeId(i as u32)) {
                return Err(format!("producer table wrong for {}", node.output));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, TensorId, TensorId, TensorId, TensorId) {
        // x -> a = sigmoid(x); b = tanh(x); c = a * b
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(4, 4), "x");
        let a = g.sigmoid(x);
        let b = g.tanh(x);
        let c = g.mul(a, b);
        (g, x, a, b, c)
    }

    #[test]
    fn builder_maintains_topo_order_and_validates() {
        let (g, ..) = diamond();
        assert!(g.validate().is_ok());
        let levels = g.levels();
        assert_eq!(levels, vec![0, 0, 1]);
    }

    #[test]
    fn dependency_queries() {
        let (g, x, a, b, c) = diamond();
        let pa = g.producer(a).unwrap();
        let pb = g.producer(b).unwrap();
        let pc = g.producer(c).unwrap();
        assert!(g.depends_on(pc, pa));
        assert!(g.depends_on(pc, pb));
        assert!(!g.depends_on(pb, pa));
        assert!(!g.depends_on(pa, pa));
        assert!(g.tensor_depends_on(c, x));
        assert!(!g.tensor_depends_on(a, b));
    }

    #[test]
    fn consumers_found() {
        let (g, x, a, b, _c) = diamond();
        assert_eq!(g.consumers(x).len(), 2);
        assert_eq!(g.consumers(a).len(), 1);
        assert_eq!(g.consumers(b).len(), 1);
    }

    #[test]
    fn provenance_context_applied() {
        let mut g = Graph::new();
        g.set_context(Provenance::layer("lstm1").at_step(3));
        let x = g.input(Shape::matrix(2, 2), "x");
        let y = g.sigmoid(x);
        let node = g.node(g.producer(y).unwrap());
        assert_eq!(node.prov.layer, "lstm1");
        assert_eq!(node.prov.timestep, Some(3));
    }

    #[test]
    fn gradient_kind_in_backward_context() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(2, 2), "x");
        let mut ctx = Provenance::layer("l");
        ctx.pass = Pass::Backward;
        g.set_context(ctx);
        let y = g.sigmoid(x);
        assert_eq!(g.tensor(y).kind, TensorKind::Gradient);
    }

    #[test]
    fn structural_key_ignores_timestep() {
        let a = Provenance::layer("l").with_role("gate").at_step(1);
        let b = Provenance::layer("l").with_role("gate").at_step(7);
        assert_eq!(a.structural_key(), b.structural_key());
    }
}
