//! # astra-ir — tensor IR, data-flow graphs, and autodiff
//!
//! The representation layer of the Astra reproduction (paper §2.2): models
//! are *data-flow graphs* whose nodes are operators and whose edges are
//! tensors. The toolkit builds the forward graph from model code
//! ([`Graph`]'s builder methods), generates the backward pass automatically
//! ([`append_backward`]), and can print the paper's `%10 = mm(%1, %5)` trace
//! notation ([`print_trace`]).
//!
//! A reference interpreter ([`evaluate`]) provides the ground truth that all
//! of Astra's optimizations are value-preserving, and backs the
//! finite-difference validation of the autodiff rules.
//!
//! ## Example
//!
//! ```
//! use astra_ir::{append_backward, Graph, Shape};
//!
//! let mut g = Graph::new();
//! let x = g.input(Shape::matrix(8, 32), "x");
//! let w = g.param(Shape::matrix(32, 16), "w");
//! let h = g.mm(x, w);
//! let a = g.tanh(h);
//! let loss = g.reduce_sum(a);
//! let back = append_backward(&mut g, loss);
//! assert!(back.grad(w).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autodiff;
mod graph;
mod interp;
mod op;
mod tensor;
mod trace;

pub use autodiff::{append_backward, param_grads, BackwardResult};
pub use graph::{Graph, Node, NodeId, Pass, Provenance};
pub use interp::{evaluate, Env};
pub use op::{ConvDims, OpKind};
pub use tensor::{Shape, TensorId, TensorInfo, TensorKind};
pub use trace::{parse_trace_line, print_trace, TraceLine};
