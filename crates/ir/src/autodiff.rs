//! Automatic differentiation: appends the backward pass to a forward graph.
//!
//! The user model specifies only the forward computation; the toolkit
//! generates the backward pass (paper §5.1), which accounts for roughly
//! two-thirds of the training compute. The generated nodes carry the same
//! provenance as their forward counterparts with [`Pass::Backward`], so the
//! Astra enumerator can group and fuse backward GEMMs exactly as it does
//! forward ones — including the mm/mm/add *fusion ladders* that gradient
//! accumulation naturally produces (§4.4.1).

use std::collections::HashMap;

use crate::graph::{Graph, Pass, Provenance};
use crate::op::OpKind;
use crate::tensor::{Shape, TensorId, TensorKind};

/// Output of [`append_backward`].
#[derive(Debug, Clone)]
pub struct BackwardResult {
    /// The gradient seed input (`d loss / d loss`, value 1).
    pub seed: TensorId,
    /// Gradient tensor for each forward tensor that received one.
    pub grads: HashMap<TensorId, TensorId>,
}

impl BackwardResult {
    /// The gradient of `t`, if it participates in the loss.
    pub fn grad(&self, t: TensorId) -> Option<TensorId> {
        self.grads.get(&t).copied()
    }
}

/// Appends backward-pass nodes computing `d loss / d t` for every tensor the
/// loss depends on.
///
/// `loss` must be a scalar (shape `[1]`). Returns the gradient map; parameter
/// gradients are the entries whose keys are `Param` tensors.
///
/// # Panics
///
/// Panics if `loss` is not scalar, or if the graph contains an op with no
/// differentiation rule (`Slice` in the forward pass is unsupported).
///
/// # Examples
///
/// ```
/// use astra_ir::{append_backward, Graph, Shape};
///
/// let mut g = Graph::new();
/// let x = g.input(Shape::matrix(4, 8), "x");
/// let w = g.param(Shape::matrix(8, 2), "w");
/// let y = g.mm(x, w);
/// let loss = g.reduce_sum(y);
/// let back = append_backward(&mut g, loss);
/// assert!(back.grad(w).is_some());
/// ```
pub fn append_backward(g: &mut Graph, loss: TensorId) -> BackwardResult {
    assert_eq!(g.shape(loss).elements(), 1, "loss must be scalar, got {}", g.shape(loss));
    let saved_ctx = g.context().clone();

    let mut bw_ctx = Provenance::layer("backward");
    bw_ctx.pass = Pass::Backward;
    g.set_context(bw_ctx);
    let seed = g.input(Shape::scalar(), "grad_seed");

    let mut grads: HashMap<TensorId, TensorId> = HashMap::new();
    grads.insert(loss, seed);
    // Per embedding table: (indices, upstream gradient) of every lookup.
    let mut embed_contribs: HashMap<TensorId, Vec<(TensorId, TensorId)>> = HashMap::new();

    let n_forward = g.nodes().len();
    for idx in (0..n_forward).rev() {
        let node = g.nodes()[idx].clone();
        let Some(&dy) = grads.get(&node.output) else { continue };

        // Backward nodes inherit the forward node's provenance, in the
        // backward pass.
        let mut prov = node.prov.clone();
        prov.pass = Pass::Backward;
        g.set_context(prov);

        match node.op {
            OpKind::MatMul => {
                let (a, b) = (node.inputs[0], node.inputs[1]);
                let bt = g.apply_role(OpKind::Transpose, &[b], "t");
                let da = g.apply_role(OpKind::MatMul, &[dy, bt], "dA");
                accumulate(g, &mut grads, a, da);
                let at = g.apply_role(OpKind::Transpose, &[a], "t");
                let db = g.apply_role(OpKind::MatMul, &[at, dy], "dB");
                accumulate(g, &mut grads, b, db);
            }
            OpKind::Add => {
                let (a, b) = (node.inputs[0], node.inputs[1]);
                accumulate(g, &mut grads, a, dy);
                let db = reduce_if_broadcast(g, dy, b);
                accumulate(g, &mut grads, b, db);
            }
            OpKind::Sub => {
                let (a, b) = (node.inputs[0], node.inputs[1]);
                accumulate(g, &mut grads, a, dy);
                let neg = g.apply_role(OpKind::Neg, &[dy], "neg");
                let db = reduce_if_broadcast(g, neg, b);
                accumulate(g, &mut grads, b, db);
            }
            OpKind::Mul => {
                let (a, b) = (node.inputs[0], node.inputs[1]);
                let da = g.apply_role(OpKind::Mul, &[dy, b], "dA");
                accumulate(g, &mut grads, a, da);
                let db_full = g.apply_role(OpKind::Mul, &[dy, a], "dB");
                let db = reduce_if_broadcast(g, db_full, b);
                accumulate(g, &mut grads, b, db);
            }
            OpKind::Neg => {
                let dx = g.apply_role(OpKind::Neg, &[dy], "dX");
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::Scale(c) => {
                let dx = g.apply_role(OpKind::Scale(c), &[dy], "dX");
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::Sigmoid => {
                let dx = g.apply_role(OpKind::SigmoidGrad, &[dy, node.output], "dX");
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::Tanh => {
                let dx = g.apply_role(OpKind::TanhGrad, &[dy, node.output], "dX");
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::Relu => {
                let dx = g.apply_role(OpKind::ReluGrad, &[dy, node.output], "dX");
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::Softmax => {
                let dx = g.apply_role(OpKind::SoftmaxGrad, &[dy, node.output], "dX");
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::Concat { axis } => {
                let mut start = 0_u64;
                for &inp in &node.inputs {
                    let len = g.shape(inp).dims()[axis];
                    let slice =
                        g.apply_role(OpKind::Slice { axis, start, len }, &[dy], "dSlice");
                    accumulate(g, &mut grads, inp, slice);
                    start += len;
                }
            }
            OpKind::Transpose => {
                let dx = g.apply_role(OpKind::Transpose, &[dy], "dX");
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::Embedding => {
                // Dense per-step `[vocab, width]` contributions would be a
                // memory explosion no real framework pays (scatter-add is
                // applied once). Contributions are stashed and a single
                // whole-sequence EmbeddingGrad is emitted after the loop.
                let (idx, table) = (node.inputs[0], node.inputs[1]);
                embed_contribs.entry(table).or_default().push((idx, dy));
                // No gradient flows to integer indices.
            }
            OpKind::ReduceSum => {
                let s = g.shape(node.inputs[0]).clone();
                assert_eq!(s.rank(), 2, "reduce_sum backward supports 2-D inputs");
                let dx = g.apply_role(
                    OpKind::BroadcastScalar { rows: s.dims()[0], cols: s.dims()[1] },
                    &[dy],
                    "dX",
                );
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::ReduceCols => {
                let cols = g.shape(node.inputs[0]).dims()[1];
                let dx = g.apply_role(OpKind::BroadcastCol { cols }, &[dy], "dX");
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::BroadcastCol { .. } => {
                let dx = g.apply_role(OpKind::ReduceCols, &[dy], "dX");
                accumulate(g, &mut grads, node.inputs[0], dx);
            }
            OpKind::ReduceRows => {
                panic!("no differentiation rule for forward ReduceRows");
            }
            OpKind::Slice { .. } => {
                panic!("no differentiation rule for forward Slice");
            }
            OpKind::Conv2d(d) => {
                let (x, w) = (node.inputs[0], node.inputs[1]);
                let dx = g.apply_role(OpKind::Conv2dGradInput(d), &[dy, w], "dX");
                accumulate(g, &mut grads, x, dx);
                let dw = g.apply_role(OpKind::Conv2dGradWeight(d), &[x, dy], "dW");
                accumulate(g, &mut grads, w, dw);
            }
            OpKind::Conv2dGradInput(_) | OpKind::Conv2dGradWeight(_) => {
                panic!("gradient ops must not appear in the forward pass");
            }
            OpKind::BroadcastScalar { .. }
            | OpKind::SigmoidGrad
            | OpKind::TanhGrad
            | OpKind::ReluGrad
            | OpKind::SoftmaxGrad
            | OpKind::EmbeddingGrad { .. } => {
                panic!("gradient ops must not appear in the forward pass");
            }
        }
    }

    // One scatter-add per embedding table for the whole sequence: indices
    // and upstream gradients of all lookups concatenate along the batch
    // axis, then a single EmbeddingGrad materializes the table gradient.
    for (table, contribs) in embed_contribs {
        let mut bw_ctx = Provenance::layer("backward");
        bw_ctx.pass = Pass::Backward;
        g.set_context(bw_ctx);
        let vocab = g.shape(table).dims()[0];
        let (all_idx, all_dy) = if contribs.len() == 1 {
            contribs[0]
        } else {
            let idxs: Vec<TensorId> = contribs.iter().map(|&(i, _)| i).collect();
            let dys: Vec<TensorId> = contribs.iter().map(|&(_, d)| d).collect();
            let ci = g.apply_role(OpKind::Concat { axis: 0 }, &idxs, "embed.idx");
            let cd = g.apply_role(OpKind::Concat { axis: 0 }, &dys, "embed.dy");
            (ci, cd)
        };
        let dt = g.apply_role(OpKind::EmbeddingGrad { vocab }, &[all_dy, all_idx], "dTable");
        accumulate(g, &mut grads, table, dt);
    }

    g.set_context(saved_ctx);
    BackwardResult { seed, grads }
}

/// If `target` was broadcast against a `[m,n]` gradient, sum the gradient
/// back down to the target's shape; otherwise pass it through.
fn reduce_if_broadcast(g: &mut Graph, dy: TensorId, target: TensorId) -> TensorId {
    let need = g.shape(target).clone();
    if g.shape(dy) == &need {
        dy
    } else if need.dims()[0] == 1 {
        g.apply_role(OpKind::ReduceRows, &[dy], "dBias")
    } else {
        g.apply_role(OpKind::ReduceCols, &[dy], "dCol")
    }
}

/// Adds `new` into the accumulated gradient for `t` (creating the
/// mm/mm/add ladder pattern when several consumers contribute).
fn accumulate(g: &mut Graph, grads: &mut HashMap<TensorId, TensorId>, t: TensorId, new: TensorId) {
    match grads.get(&t) {
        None => {
            grads.insert(t, new);
        }
        Some(&old) => {
            let sum = g.apply_role(OpKind::Add, &[old, new], "grad_acc");
            grads.insert(t, sum);
        }
    }
}

/// Convenience: all parameter gradients, as `(param, grad)` pairs in
/// parameter declaration order.
pub fn param_grads(g: &Graph, back: &BackwardResult) -> Vec<(TensorId, TensorId)> {
    (0..g.num_tensors() as u32)
        .map(TensorId)
        .filter(|t| g.tensor(*t).kind == TensorKind::Param)
        .filter_map(|t| back.grad(t).map(|d| (t, d)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_grads_have_right_shapes() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(4, 8), "x");
        let w = g.param(Shape::matrix(8, 2), "w");
        let y = g.mm(x, w);
        let loss = g.reduce_sum(y);
        let back = append_backward(&mut g, loss);
        assert_eq!(g.shape(back.grad(x).unwrap()), &Shape::matrix(4, 8));
        assert_eq!(g.shape(back.grad(w).unwrap()), &Shape::matrix(8, 2));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn shared_tensor_gradient_accumulates() {
        // y = sigmoid(x) * tanh(x): x has two consumers -> grad_acc add.
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(4, 4), "x");
        let a = g.sigmoid(x);
        let b = g.tanh(x);
        let y = g.mul(a, b);
        let loss = g.reduce_sum(y);
        let back = append_backward(&mut g, loss);
        assert!(back.grad(x).is_some());
        let acc_nodes = g
            .nodes()
            .iter()
            .filter(|n| n.prov.pass == Pass::Backward && n.prov.role.ends_with("grad_acc"))
            .count();
        assert!(acc_nodes >= 1, "expected a gradient accumulation add");
    }

    #[test]
    fn bias_broadcast_grad_reduces_rows() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(32, 100), "x");
        let b = g.param(Shape::matrix(1, 100), "b");
        let y = g.add(x, b);
        let loss = g.reduce_sum(y);
        let back = append_backward(&mut g, loss);
        assert_eq!(g.shape(back.grad(b).unwrap()), &Shape::matrix(1, 100));
    }

    #[test]
    fn embedding_grad_is_table_shaped() {
        let mut g = Graph::new();
        let idx = g.input(Shape::vector(16), "idx");
        let table = g.param(Shape::matrix(1000, 64), "emb");
        let e = g.embedding(idx, table);
        let loss = g.reduce_sum(e);
        let back = append_backward(&mut g, loss);
        assert_eq!(g.shape(back.grad(table).unwrap()), &Shape::matrix(1000, 64));
        assert!(back.grad(idx).is_none());
    }

    #[test]
    fn backward_nodes_inherit_provenance() {
        let mut g = Graph::new();
        g.set_context(Provenance::layer("cell").at_step(2).with_role("gate"));
        let x = g.input(Shape::matrix(4, 8), "x");
        let w = g.param(Shape::matrix(8, 8), "w");
        let y = g.mm(x, w);
        g.set_context(Provenance::default());
        let loss = g.reduce_sum(y);
        let back = append_backward(&mut g, loss);
        let dw = back.grad(w).unwrap();
        let n = g.node(g.producer(dw).unwrap());
        assert_eq!(n.prov.pass, Pass::Backward);
        assert_eq!(n.prov.layer, "cell");
        assert_eq!(n.prov.timestep, Some(2));
    }

    #[test]
    fn backward_is_majority_of_nodes_for_deep_graphs() {
        // Paper §5.1: ~2/3 of compute is the backward pass.
        let mut g = Graph::new();
        let mut h = g.input(Shape::matrix(16, 64), "x");
        for i in 0..6 {
            let w = g.param(Shape::matrix(64, 64), format!("w{i}"));
            let z = g.mm(h, w);
            h = g.tanh(z);
        }
        let loss = g.reduce_sum(h);
        let fw_nodes = g.nodes().len();
        append_backward(&mut g, loss);
        let bw_nodes = g.nodes().len() - fw_nodes;
        assert!(bw_nodes > fw_nodes, "backward {bw_nodes} !> forward {fw_nodes}");
    }

    #[test]
    fn concat_grads_are_slices() {
        let mut g = Graph::new();
        let a = g.input(Shape::matrix(4, 3), "a");
        let b = g.input(Shape::matrix(4, 5), "b");
        let c = g.apply(OpKind::Concat { axis: 1 }, &[a, b]);
        let loss = g.reduce_sum(c);
        let back = append_backward(&mut g, loss);
        assert_eq!(g.shape(back.grad(a).unwrap()), &Shape::matrix(4, 3));
        assert_eq!(g.shape(back.grad(b).unwrap()), &Shape::matrix(4, 5));
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn non_scalar_loss_panics() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(2, 2), "x");
        let y = g.sigmoid(x);
        append_backward(&mut g, y);
    }
}
