//! Reference interpreter.
//!
//! Astra's optimizations are *value-preserving* (paper §6.7): fusing GEMMs,
//! changing kernel libraries, or re-scheduling streams never changes what a
//! mini-batch computes. This interpreter gives the repository a ground truth
//! to state that property against: graphs (including generated backward
//! passes) can be evaluated on real numbers, and the autodiff output is
//! verified against finite differences in the test suite.
//!
//! It is intentionally simple (dense `Vec<f64>` row-major tensors, no
//! performance goals) — correctness oracle, not execution engine.

use std::collections::HashMap;

use crate::graph::Graph;
use crate::op::OpKind;
use crate::tensor::{Shape, TensorId};

/// Tensor bindings for an evaluation.
#[derive(Debug, Clone, Default)]
pub struct Env {
    values: HashMap<TensorId, Vec<f64>>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds `t` to `value` (row-major).
    ///
    /// # Panics
    ///
    /// Panics in debug builds only at evaluation time if the length does not
    /// match the tensor's shape.
    pub fn bind(&mut self, t: TensorId, value: Vec<f64>) {
        self.values.insert(t, value);
    }

    /// Binds `t` to a constant-filled tensor of the right size for `g`.
    pub fn bind_fill(&mut self, g: &Graph, t: TensorId, fill: f64) {
        self.bind(t, vec![fill; g.shape(t).elements() as usize]);
    }

    /// The value of `t`, if computed or bound.
    pub fn value(&self, t: TensorId) -> Option<&[f64]> {
        self.values.get(&t).map(|v| v.as_slice())
    }
}

/// Evaluates every node of `g` in order, filling `env` with outputs.
///
/// # Errors
///
/// Returns a message if a required input/param binding is missing or has the
/// wrong length.
///
/// # Examples
///
/// ```
/// use astra_ir::{evaluate, Env, Graph, Shape};
///
/// let mut g = Graph::new();
/// let x = g.input(Shape::matrix(1, 2), "x");
/// let y = g.sigmoid(x);
/// let mut env = Env::new();
/// env.bind(x, vec![0.0, 100.0]);
/// evaluate(&g, &mut env).unwrap();
/// let v = env.value(y).unwrap();
/// assert!((v[0] - 0.5).abs() < 1e-12 && v[1] > 0.999);
/// ```
pub fn evaluate(g: &Graph, env: &mut Env) -> Result<(), String> {
    for (i, node) in g.nodes().iter().enumerate() {
        let mut ins: Vec<&[f64]> = Vec::with_capacity(node.inputs.len());
        for t in &node.inputs {
            let v = env
                .values
                .get(t)
                .ok_or_else(|| format!("node n{i}: missing value for {t}"))?;
            if v.len() as u64 != g.shape(*t).elements() {
                return Err(format!(
                    "node n{i}: {t} bound with {} elements, shape {} needs {}",
                    v.len(),
                    g.shape(*t),
                    g.shape(*t).elements()
                ));
            }
            ins.push(v);
        }
        // Clone input slices out so we can mutate env.
        let ins: Vec<Vec<f64>> = ins.into_iter().map(|s| s.to_vec()).collect();
        let shapes: Vec<&Shape> = node.inputs.iter().map(|t| g.shape(*t)).collect();
        let out = eval_op(&node.op, &ins, &shapes, g.shape(node.output));
        env.values.insert(node.output, out);
    }
    Ok(())
}

fn eval_op(op: &OpKind, ins: &[Vec<f64>], shapes: &[&Shape], out_shape: &Shape) -> Vec<f64> {
    match op {
        OpKind::MatMul => {
            let (m, k) = (shapes[0].dims()[0] as usize, shapes[0].dims()[1] as usize);
            let n = shapes[1].dims()[1] as usize;
            let (a, b) = (&ins[0], &ins[1]);
            let mut out = vec![0.0; m * n];
            for i in 0..m {
                for p in 0..k {
                    let av = a[i * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        out[i * n + j] += av * b[p * n + j];
                    }
                }
            }
            out
        }
        OpKind::Add => broadcast_binop(&ins[0], &ins[1], shapes, |a, b| a + b),
        OpKind::Sub => broadcast_binop(&ins[0], &ins[1], shapes, |a, b| a - b),
        OpKind::Mul => broadcast_binop(&ins[0], &ins[1], shapes, |a, b| a * b),
        OpKind::ReduceCols => {
            let cols = shapes[0].dims()[1] as usize;
            ins[0].chunks(cols).map(|row| row.iter().sum()).collect()
        }
        OpKind::BroadcastCol { cols } => {
            let mut out = Vec::with_capacity(ins[0].len() * *cols as usize);
            for &v in &ins[0] {
                out.extend(std::iter::repeat_n(v, *cols as usize));
            }
            out
        }
        OpKind::Neg => ins[0].iter().map(|v| -v).collect(),
        OpKind::Scale(c) => ins[0].iter().map(|v| v * c).collect(),
        OpKind::Sigmoid => ins[0].iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect(),
        OpKind::Tanh => ins[0].iter().map(|v| v.tanh()).collect(),
        OpKind::Relu => ins[0].iter().map(|v| v.max(0.0)).collect(),
        OpKind::Softmax => {
            let cols = shapes[0].last() as usize;
            let mut out = ins[0].clone();
            for row in out.chunks_mut(cols) {
                let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - mx).exp();
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
            out
        }
        OpKind::Concat { axis } => {
            let rank = shapes[0].rank();
            assert!(rank <= 2, "interpreter supports concat of rank <= 2");
            if rank == 1 || *axis == 0 {
                let mut out = Vec::new();
                for v in ins {
                    out.extend_from_slice(v);
                }
                out
            } else {
                // axis == 1 on matrices: interleave rows.
                let rows = shapes[0].dims()[0] as usize;
                let mut out = Vec::with_capacity(out_shape.elements() as usize);
                for r in 0..rows {
                    for (v, s) in ins.iter().zip(shapes) {
                        let c = s.dims()[1] as usize;
                        out.extend_from_slice(&v[r * c..(r + 1) * c]);
                    }
                }
                out
            }
        }
        OpKind::Slice { axis, start, len } => {
            let rank = shapes[0].rank();
            assert!(rank <= 2, "interpreter supports slice of rank <= 2");
            let (start, len) = (*start as usize, *len as usize);
            if rank == 1 || *axis == 0 {
                let cols = if rank == 1 { 1 } else { shapes[0].dims()[1] as usize };
                ins[0][start * cols..(start + len) * cols].to_vec()
            } else {
                let cols = shapes[0].dims()[1] as usize;
                let rows = shapes[0].dims()[0] as usize;
                let mut out = Vec::with_capacity(rows * len);
                for r in 0..rows {
                    out.extend_from_slice(&ins[0][r * cols + start..r * cols + start + len]);
                }
                out
            }
        }
        OpKind::Transpose => {
            let (m, n) = (shapes[0].dims()[0] as usize, shapes[0].dims()[1] as usize);
            let mut out = vec![0.0; m * n];
            for i in 0..m {
                for j in 0..n {
                    out[j * m + i] = ins[0][i * n + j];
                }
            }
            out
        }
        OpKind::Embedding => {
            let width = shapes[1].dims()[1] as usize;
            let mut out = Vec::with_capacity(ins[0].len() * width);
            for &ix in &ins[0] {
                let row = ix.round() as usize;
                out.extend_from_slice(&ins[1][row * width..(row + 1) * width]);
            }
            out
        }
        OpKind::ReduceSum => vec![ins[0].iter().sum()],
        OpKind::ReduceRows => {
            let cols = shapes[0].dims()[1] as usize;
            let mut out = vec![0.0; cols];
            for row in ins[0].chunks(cols) {
                for (o, v) in out.iter_mut().zip(row) {
                    *o += v;
                }
            }
            out
        }
        OpKind::BroadcastScalar { rows, cols } => {
            vec![ins[0][0]; (*rows * *cols) as usize]
        }
        OpKind::SigmoidGrad => {
            ins[0].iter().zip(&ins[1]).map(|(dy, y)| dy * y * (1.0 - y)).collect()
        }
        OpKind::TanhGrad => {
            ins[0].iter().zip(&ins[1]).map(|(dy, y)| dy * (1.0 - y * y)).collect()
        }
        OpKind::ReluGrad => {
            ins[0].iter().zip(&ins[1]).map(|(dy, y)| if *y > 0.0 { *dy } else { 0.0 }).collect()
        }
        OpKind::SoftmaxGrad => {
            let cols = shapes[0].last() as usize;
            let (dy, y) = (&ins[0], &ins[1]);
            let mut out = vec![0.0; dy.len()];
            for r in 0..dy.len() / cols {
                let row = r * cols;
                let dot: f64 = (0..cols).map(|j| dy[row + j] * y[row + j]).sum();
                for j in 0..cols {
                    out[row + j] = y[row + j] * (dy[row + j] - dot);
                }
            }
            out
        }
        OpKind::Conv2d(d) => {
            let batch = shapes[0].dims()[0] as usize;
            let (ci, h, w) = (d.c_in as usize, d.h as usize, d.w as usize);
            let (co, kh, kw) = (d.c_out as usize, d.kh as usize, d.kw as usize);
            let (ho, wo) = (d.h_out() as usize, d.w_out() as usize);
            let (x, wt) = (&ins[0], &ins[1]);
            let mut out = vec![0.0; batch * co * ho * wo];
            for b in 0..batch {
                for o in 0..co {
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let mut acc = 0.0;
                            for c in 0..ci {
                                for dy_ in 0..kh {
                                    for dx_ in 0..kw {
                                        let xi = x[b * ci * h * w + c * h * w + (oy + dy_) * w + (ox + dx_)];
                                        let wi = wt[o * ci * kh * kw + c * kh * kw + dy_ * kw + dx_];
                                        acc += xi * wi;
                                    }
                                }
                            }
                            out[b * co * ho * wo + o * ho * wo + oy * wo + ox] = acc;
                        }
                    }
                }
            }
            out
        }
        OpKind::Conv2dGradInput(d) => {
            let batch = shapes[0].dims()[0] as usize;
            let (ci, h, w) = (d.c_in as usize, d.h as usize, d.w as usize);
            let (co, kh, kw) = (d.c_out as usize, d.kh as usize, d.kw as usize);
            let (ho, wo) = (d.h_out() as usize, d.w_out() as usize);
            let (dy, wt) = (&ins[0], &ins[1]);
            let mut out = vec![0.0; batch * ci * h * w];
            for b in 0..batch {
                for o in 0..co {
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let g = dy[b * co * ho * wo + o * ho * wo + oy * wo + ox];
                            if g == 0.0 {
                                continue;
                            }
                            for c in 0..ci {
                                for dy_ in 0..kh {
                                    for dx_ in 0..kw {
                                        let wi = wt[o * ci * kh * kw + c * kh * kw + dy_ * kw + dx_];
                                        out[b * ci * h * w + c * h * w + (oy + dy_) * w + (ox + dx_)] += g * wi;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            out
        }
        OpKind::Conv2dGradWeight(d) => {
            let batch = shapes[0].dims()[0] as usize;
            let (ci, h, w) = (d.c_in as usize, d.h as usize, d.w as usize);
            let (co, kh, kw) = (d.c_out as usize, d.kh as usize, d.kw as usize);
            let (ho, wo) = (d.h_out() as usize, d.w_out() as usize);
            let (x, dy) = (&ins[0], &ins[1]);
            let mut out = vec![0.0; co * ci * kh * kw];
            for b in 0..batch {
                for o in 0..co {
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let g = dy[b * co * ho * wo + o * ho * wo + oy * wo + ox];
                            if g == 0.0 {
                                continue;
                            }
                            for c in 0..ci {
                                for dy_ in 0..kh {
                                    for dx_ in 0..kw {
                                        let xi = x[b * ci * h * w + c * h * w + (oy + dy_) * w + (ox + dx_)];
                                        out[o * ci * kh * kw + c * kh * kw + dy_ * kw + dx_] += g * xi;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            out
        }
        OpKind::EmbeddingGrad { vocab } => {
            let width = shapes[0].dims()[1] as usize;
            let mut out = vec![0.0; (*vocab as usize) * width];
            for (r, &ix) in ins[1].iter().enumerate() {
                let row = ix.round() as usize;
                for j in 0..width {
                    out[row * width + j] += ins[0][r * width + j];
                }
            }
            out
        }
    }
}

fn broadcast_binop(
    a: &[f64],
    b: &[f64],
    shapes: &[&Shape],
    f: impl Fn(f64, f64) -> f64,
) -> Vec<f64> {
    if shapes[0] == shapes[1] {
        a.iter().zip(b).map(|(x, y)| f(*x, *y)).collect()
    } else if shapes[1].dims()[0] == 1 {
        // Row-broadcast: b is [1, n].
        let n = shapes[1].elements() as usize;
        a.iter().enumerate().map(|(i, x)| f(*x, b[i % n])).collect()
    } else {
        // Column-broadcast: b is [m, 1].
        let n = shapes[0].dims()[1] as usize;
        a.iter().enumerate().map(|(i, x)| f(*x, b[i / n])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autodiff::{append_backward, param_grads};
    use astra_util::Rng64;

    fn rand_vec(rng: &mut Rng64, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range_f64(-1.0, 1.0)).collect()
    }

    #[test]
    fn matmul_small_case() {
        let mut g = Graph::new();
        let a = g.input(Shape::matrix(2, 2), "a");
        let b = g.input(Shape::matrix(2, 2), "b");
        let c = g.mm(a, b);
        let mut env = Env::new();
        env.bind(a, vec![1.0, 2.0, 3.0, 4.0]);
        env.bind(b, vec![5.0, 6.0, 7.0, 8.0]);
        evaluate(&g, &mut env).unwrap();
        assert_eq!(env.value(c).unwrap(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(3, 5), "x");
        let y = g.softmax(x);
        let mut env = Env::new();
        let mut rng = Rng64::new(1);
        env.bind(x, rand_vec(&mut rng, 15));
        evaluate(&g, &mut env).unwrap();
        for row in env.value(y).unwrap().chunks(5) {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn concat_then_slice_roundtrips() {
        let mut g = Graph::new();
        let a = g.input(Shape::matrix(2, 2), "a");
        let b = g.input(Shape::matrix(2, 3), "b");
        let c = g.apply(OpKind::Concat { axis: 1 }, &[a, b]);
        let s = g.apply(OpKind::Slice { axis: 1, start: 2, len: 3 }, &[c]);
        let mut env = Env::new();
        env.bind(a, vec![1.0, 2.0, 3.0, 4.0]);
        env.bind(b, vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        evaluate(&g, &mut env).unwrap();
        assert_eq!(env.value(s).unwrap(), env.value(b).unwrap());
    }

    #[test]
    fn missing_binding_is_reported() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(1, 1), "x");
        let _ = g.sigmoid(x);
        let mut env = Env::new();
        let err = evaluate(&g, &mut env).unwrap_err();
        assert!(err.contains("missing value"));
    }

    /// Finite-difference check of the complete autodiff pipeline on a small
    /// two-layer network with shared tensors, biases, and activations.
    #[test]
    fn autodiff_matches_finite_differences() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(3, 4), "x");
        let w1 = g.param(Shape::matrix(4, 5), "w1");
        let b1 = g.param(Shape::matrix(1, 5), "b1");
        let w2 = g.param(Shape::matrix(5, 2), "w2");
        let z1 = g.mm(x, w1);
        let z1b = g.add(z1, b1);
        let h = g.tanh(z1b);
        let z2 = g.mm(h, w2);
        let y = g.sigmoid(z2);
        let loss = g.reduce_sum(y);
        let back = append_backward(&mut g, loss);

        let mut rng = Rng64::new(7);
        let base: Vec<(TensorId, Vec<f64>)> = [x, w1, b1, w2]
            .iter()
            .map(|&t| (t, rand_vec(&mut rng, g.shape(t).elements() as usize)))
            .collect();

        let loss_at = |bindings: &[(TensorId, Vec<f64>)]| -> f64 {
            let mut env = Env::new();
            for (t, v) in bindings {
                env.bind(*t, v.clone());
            }
            env.bind(back.seed, vec![1.0]);
            evaluate(&g, &mut env).unwrap();
            env.value(loss).unwrap()[0]
        };

        // Analytic gradients.
        let mut env = Env::new();
        for (t, v) in &base {
            env.bind(*t, v.clone());
        }
        env.bind(back.seed, vec![1.0]);
        evaluate(&g, &mut env).unwrap();

        let eps = 1e-5;
        for (pi, (param, _)) in base.iter().enumerate().skip(1) {
            let analytic = env.value(back.grad(*param).unwrap()).unwrap().to_vec();
            for elem in [0_usize, analytic.len() / 2, analytic.len() - 1] {
                let mut plus = base.clone();
                plus[pi].1[elem] += eps;
                let mut minus = base.clone();
                minus[pi].1[elem] -= eps;
                let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps);
                assert!(
                    (analytic[elem] - numeric).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "param {param} elem {elem}: analytic {} vs numeric {numeric}",
                    analytic[elem]
                );
            }
        }
        let _ = param_grads(&g, &back);
    }

    #[test]
    fn conv2d_known_values() {
        use crate::op::ConvDims;
        // 1x1 batch, 1 channel, 3x3 image, 2x2 kernel of ones: each output
        // is the sum of its 2x2 window.
        let d = ConvDims { c_in: 1, h: 3, w: 3, c_out: 1, kh: 2, kw: 2 };
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(1, 9), "x");
        let w = g.param(Shape::matrix(1, 4), "w");
        let y = g.conv2d(x, w, d);
        let mut env = Env::new();
        env.bind(x, (1..=9).map(f64::from).collect());
        env.bind(w, vec![1.0; 4]);
        evaluate(&g, &mut env).unwrap();
        assert_eq!(env.value(y).unwrap(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_gradients_match_finite_differences() {
        use crate::op::ConvDims;
        let d = ConvDims { c_in: 2, h: 5, w: 4, c_out: 3, kh: 3, kw: 2 };
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(2, d.c_in * d.h * d.w), "x");
        let w = g.param(Shape::matrix(d.c_out, d.c_in * d.kh * d.kw), "w");
        let y = g.conv2d(x, w, d);
        let act = g.tanh(y);
        let loss = g.reduce_sum(act);
        let back = append_backward(&mut g, loss);

        let mut rng = Rng64::new(3);
        let base: Vec<(TensorId, Vec<f64>)> = [x, w]
            .iter()
            .map(|&t| (t, rand_vec(&mut rng, g.shape(t).elements() as usize)))
            .collect();
        let loss_at = |vals: &[(TensorId, Vec<f64>)]| -> f64 {
            let mut env = Env::new();
            for (t, v) in vals {
                env.bind(*t, v.clone());
            }
            env.bind(back.seed, vec![1.0]);
            evaluate(&g, &mut env).unwrap();
            env.value(loss).unwrap()[0]
        };
        let mut env = Env::new();
        for (t, v) in &base {
            env.bind(*t, v.clone());
        }
        env.bind(back.seed, vec![1.0]);
        evaluate(&g, &mut env).unwrap();

        let eps = 1e-5;
        for (pi, (param, _)) in base.iter().enumerate() {
            let analytic = env.value(back.grad(*param).unwrap()).unwrap().to_vec();
            for elem in [0_usize, analytic.len() / 3, analytic.len() - 1] {
                let mut plus = base.clone();
                plus[pi].1[elem] += eps;
                let mut minus = base.clone();
                minus[pi].1[elem] -= eps;
                let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps);
                assert!(
                    (analytic[elem] - numeric).abs() < 1e-6 * (1.0 + numeric.abs()),
                    "conv param {param} elem {elem}: {} vs {numeric}",
                    analytic[elem]
                );
            }
        }
    }

    #[test]
    fn embedding_grad_scatter_adds() {
        let mut g = Graph::new();
        let idx = g.input(Shape::vector(3), "idx");
        let table = g.param(Shape::matrix(4, 2), "emb");
        let e = g.embedding(idx, table);
        let loss = g.reduce_sum(e);
        let back = append_backward(&mut g, loss);
        let mut env = Env::new();
        env.bind(idx, vec![1.0, 1.0, 3.0]); // row 1 twice
        env.bind(table, vec![0.0; 8]);
        env.bind(back.seed, vec![1.0]);
        evaluate(&g, &mut env).unwrap();
        let dt = env.value(back.grad(table).unwrap()).unwrap();
        assert_eq!(dt, &[0.0, 0.0, 2.0, 2.0, 0.0, 0.0, 1.0, 1.0]);
    }
}
