//! Tensors: identifiers, shapes, and roles.


/// Identifier of a tensor within one [`Graph`](crate::graph::Graph).
///
/// Displays in the paper's trace notation (`%7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub u32);

impl std::fmt::Display for TensorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Dense row-major tensor shape.
///
/// # Examples
///
/// ```
/// use astra_ir::Shape;
///
/// let s = Shape::matrix(64, 1024);
/// assert_eq!(s.elements(), 64 * 1024);
/// assert_eq!(s.bytes(), 64 * 1024 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<u64>);

impl Shape {
    /// Creates a shape from dimensions; every dimension must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero.
    pub fn new(dims: Vec<u64>) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "shape dimensions must be non-zero");
        Shape(dims)
    }

    /// A 1-D shape.
    pub fn vector(n: u64) -> Self {
        Shape::new(vec![n])
    }

    /// A 2-D shape.
    pub fn matrix(rows: u64, cols: u64) -> Self {
        Shape::new(vec![rows, cols])
    }

    /// A single-element shape (scalars, losses).
    pub fn scalar() -> Self {
        Shape::new(vec![1])
    }

    /// The dimensions.
    pub fn dims(&self) -> &[u64] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count.
    pub fn elements(&self) -> u64 {
        self.0.iter().product()
    }

    /// Size in bytes at 4 bytes/element (fp32).
    pub fn bytes(&self) -> u64 {
        self.elements() * 4
    }

    /// Rows of a matrix-like tensor: product of all leading dimensions.
    pub fn leading(&self) -> u64 {
        self.0[..self.0.len() - 1].iter().product::<u64>().max(1)
    }

    /// The last (innermost) dimension.
    pub fn last(&self) -> u64 {
        *self.0.last().expect("shapes are non-empty")
    }

    /// The transposed 2-D shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not 2-D.
    pub fn transposed(&self) -> Shape {
        assert_eq!(self.rank(), 2, "transpose requires a 2-D shape");
        Shape::matrix(self.0[1], self.0[0])
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dims: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", dims.join("x"))
    }
}

/// What role a tensor plays in the training computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Mini-batch input (activations fed from the data pipeline).
    Input,
    /// Learned parameter (weight, bias, embedding table).
    Param,
    /// Intermediate activation produced by a node.
    Intermediate,
    /// Gradient tensor produced by the backward pass.
    Gradient,
}

/// Metadata of one tensor in a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorInfo {
    /// The tensor's shape.
    pub shape: Shape,
    /// The tensor's role.
    pub kind: TensorKind,
    /// Optional debug name.
    pub name: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TensorId(10).to_string(), "%10");
        assert_eq!(Shape::matrix(64, 128).to_string(), "[64x128]");
    }

    #[test]
    fn leading_and_last() {
        let s = Shape::new(vec![2, 3, 5]);
        assert_eq!(s.leading(), 6);
        assert_eq!(s.last(), 5);
        assert_eq!(Shape::vector(7).leading(), 1);
    }

    #[test]
    fn transposed_matrix() {
        assert_eq!(Shape::matrix(2, 9).transposed(), Shape::matrix(9, 2));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_rejected() {
        let _ = Shape::new(vec![4, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_shape_rejected() {
        let _ = Shape::new(vec![]);
    }
}
