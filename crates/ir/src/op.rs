//! Operator kinds and their shape/arity rules.


use crate::tensor::Shape;

/// The operator executed by a graph node.
///
/// The set covers what the paper's five evaluation models need: GEMMs,
/// element-wise arithmetic and activations (plus their backward-pass
/// gradient forms), softmax, concat/slice, embedding lookups, transposes and
/// reductions.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Matrix multiplication `[m,k] x [k,n] -> [m,n]` (the paper's `mm`).
    MatMul,
    /// Element-wise addition; the second operand may be a `[1,n]` bias
    /// broadcast across rows.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise (Hadamard) product.
    Mul,
    /// Element-wise negation.
    Neg,
    /// Scale by a constant.
    Scale(f64),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Row-wise softmax over the innermost dimension.
    Softmax,
    /// Concatenation along `axis`.
    Concat {
        /// Axis along which inputs are concatenated.
        axis: usize,
    },
    /// Slice `[start, start+len)` along `axis`.
    Slice {
        /// Sliced axis.
        axis: usize,
        /// First index kept.
        start: u64,
        /// Number of indices kept.
        len: u64,
    },
    /// 2-D transpose.
    Transpose,
    /// Embedding lookup: indices `[m]` into table `[vocab, width]`.
    Embedding,
    /// Sum of all elements to a scalar (loss reduction).
    ReduceSum,
    /// Broadcast a scalar `[1]` to a `[rows, cols]` matrix (backward of
    /// [`OpKind::ReduceSum`]).
    BroadcastScalar {
        /// Output rows.
        rows: u64,
        /// Output cols.
        cols: u64,
    },
    /// Sum over the leading dimension: `[m,n] -> [1,n]` (bias gradients).
    ReduceRows,
    /// Sum over the trailing dimension: `[m,n] -> [m,1]` (row dot products,
    /// used by attention scores).
    ReduceCols,
    /// Broadcast a column `[m,1]` to `[m, cols]` (backward of
    /// [`OpKind::ReduceCols`]).
    BroadcastCol {
        /// Number of output columns.
        cols: u64,
    },
    /// Backward of [`OpKind::Sigmoid`]: `dy * y * (1 - y)`, inputs `(dy, y)`.
    SigmoidGrad,
    /// Backward of [`OpKind::Tanh`]: `dy * (1 - y^2)`, inputs `(dy, y)`.
    TanhGrad,
    /// Backward of [`OpKind::Relu`]: `dy * (y > 0)`, inputs `(dy, y)`.
    ReluGrad,
    /// Backward of [`OpKind::Softmax`], inputs `(dy, y)`.
    SoftmaxGrad,
    /// Backward of [`OpKind::Embedding`]: scatter-add of `dy` rows into the
    /// table gradient, inputs `(dy, indices)`.
    EmbeddingGrad {
        /// Vocabulary size of the embedding table.
        vocab: u64,
    },
    /// 2-D convolution (valid padding, stride 1) over an image encoded as
    /// `[batch, c_in*h*w]`, with weights `[c_out, c_in*kh*kw]`, producing
    /// `[batch, c_out*h'*w']` where `h' = h-kh+1`, `w' = w-kw+1`.
    Conv2d(ConvDims),
    /// Backward of [`OpKind::Conv2d`] w.r.t. the input, inputs
    /// `(dy, weights)`.
    Conv2dGradInput(ConvDims),
    /// Backward of [`OpKind::Conv2d`] w.r.t. the weights, inputs
    /// `(input, dy)`.
    Conv2dGradWeight(ConvDims),
}

/// Spatial/channel dimensions of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvDims {
    /// Input channels.
    pub c_in: u64,
    /// Input height.
    pub h: u64,
    /// Input width.
    pub w: u64,
    /// Output channels.
    pub c_out: u64,
    /// Kernel height.
    pub kh: u64,
    /// Kernel width.
    pub kw: u64,
}

impl ConvDims {
    /// Output height (`h - kh + 1`, valid padding, stride 1).
    pub fn h_out(&self) -> u64 {
        self.h - self.kh + 1
    }

    /// Output width.
    pub fn w_out(&self) -> u64 {
        self.w - self.kw + 1
    }

    /// Multiply-add FLOPs per batch element.
    pub fn flops_per_sample(&self) -> f64 {
        2.0 * (self.c_out * self.h_out() * self.w_out() * self.c_in * self.kh * self.kw) as f64
    }
}

impl OpKind {
    /// Whether the op is element-wise (fusible into element-wise chains).
    pub fn is_elementwise(&self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::Neg
                | OpKind::Scale(_)
                | OpKind::Sigmoid
                | OpKind::Tanh
                | OpKind::Relu
                | OpKind::SigmoidGrad
                | OpKind::TanhGrad
                | OpKind::ReluGrad
        )
    }

    /// Approximate arithmetic per output element (for lowering costs).
    pub fn flops_per_element(&self) -> f64 {
        match self {
            OpKind::Add | OpKind::Sub | OpKind::Neg | OpKind::Scale(_) => 1.0,
            OpKind::Mul => 1.0,
            OpKind::Sigmoid | OpKind::Tanh => 10.0,
            OpKind::Relu => 1.0,
            OpKind::SigmoidGrad | OpKind::TanhGrad => 3.0,
            OpKind::ReluGrad => 1.0,
            _ => 2.0,
        }
    }

    /// Number of inputs the op takes, if fixed (Concat is variadic).
    pub fn arity(&self) -> Option<usize> {
        match self {
            OpKind::MatMul
            | OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::SigmoidGrad
            | OpKind::TanhGrad
            | OpKind::ReluGrad
            | OpKind::SoftmaxGrad
            | OpKind::Embedding
            | OpKind::EmbeddingGrad { .. }
            | OpKind::Conv2d(_)
            | OpKind::Conv2dGradInput(_)
            | OpKind::Conv2dGradWeight(_) => Some(2),
            OpKind::Neg
            | OpKind::Scale(_)
            | OpKind::Sigmoid
            | OpKind::Tanh
            | OpKind::Relu
            | OpKind::Softmax
            | OpKind::Slice { .. }
            | OpKind::Transpose
            | OpKind::ReduceSum
            | OpKind::BroadcastScalar { .. }
            | OpKind::ReduceRows
            | OpKind::ReduceCols
            | OpKind::BroadcastCol { .. } => Some(1),
            OpKind::Concat { .. } => None,
        }
    }

    /// Infers the output shape from input shapes.
    ///
    /// # Panics
    ///
    /// Panics if arity or shapes are incompatible with the op — graph
    /// construction bugs are programming errors, reported eagerly.
    pub fn infer_shape(&self, inputs: &[&Shape]) -> Shape {
        if let Some(arity) = self.arity() {
            assert_eq!(inputs.len(), arity, "{self:?} expects {arity} inputs, got {}", inputs.len());
        }
        match self {
            OpKind::MatMul => {
                let (a, b) = (inputs[0], inputs[1]);
                assert_eq!(a.rank(), 2, "mm lhs must be 2-D, got {a}");
                assert_eq!(b.rank(), 2, "mm rhs must be 2-D, got {b}");
                assert_eq!(a.dims()[1], b.dims()[0], "mm inner dims differ: {a} x {b}");
                Shape::matrix(a.dims()[0], b.dims()[1])
            }
            OpKind::Add | OpKind::Sub | OpKind::Mul => {
                let (a, b) = (inputs[0], inputs[1]);
                if a == b {
                    a.clone()
                } else {
                    // Row-broadcast [m,n] (+) [1,n], or column-broadcast
                    // [m,n] (+) [m,1].
                    let row_bcast = a.rank() == 2
                        && b.rank() == 2
                        && b.dims()[0] == 1
                        && a.dims()[1] == b.dims()[1];
                    let col_bcast = a.rank() == 2
                        && b.rank() == 2
                        && b.dims()[1] == 1
                        && a.dims()[0] == b.dims()[0];
                    assert!(row_bcast || col_bcast, "{self:?} shapes incompatible: {a} vs {b}");
                    a.clone()
                }
            }
            OpKind::Neg | OpKind::Scale(_) | OpKind::Sigmoid | OpKind::Tanh | OpKind::Relu
            | OpKind::Softmax => inputs[0].clone(),
            OpKind::SigmoidGrad | OpKind::TanhGrad | OpKind::ReluGrad | OpKind::SoftmaxGrad => {
                assert_eq!(inputs[0], inputs[1], "{self:?} operand shapes differ");
                inputs[0].clone()
            }
            OpKind::Concat { axis } => {
                assert!(!inputs.is_empty(), "concat needs at least one input");
                let first = inputs[0];
                assert!(*axis < first.rank(), "concat axis out of range");
                let mut dims = first.dims().to_vec();
                for s in &inputs[1..] {
                    assert_eq!(s.rank(), first.rank(), "concat rank mismatch");
                    for (i, (&d, &v)) in s.dims().iter().zip(first.dims()).enumerate() {
                        if i != *axis {
                            assert_eq!(d, v, "concat non-axis dims differ");
                        }
                    }
                    dims[*axis] += s.dims()[*axis];
                }
                Shape::new(dims)
            }
            OpKind::Slice { axis, start, len } => {
                let s = inputs[0];
                assert!(*axis < s.rank(), "slice axis out of range");
                assert!(start + len <= s.dims()[*axis], "slice out of bounds on {s}");
                let mut dims = s.dims().to_vec();
                dims[*axis] = *len;
                Shape::new(dims)
            }
            OpKind::Transpose => inputs[0].transposed(),
            OpKind::Embedding => {
                let (idx, table) = (inputs[0], inputs[1]);
                assert_eq!(idx.rank(), 1, "embedding indices must be 1-D");
                assert_eq!(table.rank(), 2, "embedding table must be 2-D");
                Shape::matrix(idx.dims()[0], table.dims()[1])
            }
            OpKind::ReduceSum => Shape::scalar(),
            OpKind::BroadcastScalar { rows, cols } => {
                assert_eq!(inputs[0].elements(), 1, "broadcast source must be scalar");
                Shape::matrix(*rows, *cols)
            }
            OpKind::ReduceRows => {
                let s = inputs[0];
                assert_eq!(s.rank(), 2, "reduce_rows input must be 2-D");
                Shape::matrix(1, s.dims()[1])
            }
            OpKind::ReduceCols => {
                let s = inputs[0];
                assert_eq!(s.rank(), 2, "reduce_cols input must be 2-D");
                Shape::matrix(s.dims()[0], 1)
            }
            OpKind::BroadcastCol { cols } => {
                let s = inputs[0];
                assert!(s.rank() == 2 && s.dims()[1] == 1, "broadcast_col needs [m,1], got {s}");
                Shape::matrix(s.dims()[0], *cols)
            }
            OpKind::EmbeddingGrad { vocab } => {
                let dy = inputs[0];
                assert_eq!(dy.rank(), 2, "embedding grad dy must be 2-D");
                Shape::matrix(*vocab, dy.dims()[1])
            }
            OpKind::Conv2d(d) => {
                let (x, w) = (inputs[0], inputs[1]);
                assert!(d.kh <= d.h && d.kw <= d.w, "kernel larger than image");
                assert_eq!(x.dims()[1], d.c_in * d.h * d.w, "conv input width mismatch: {x}");
                assert_eq!(
                    w.dims(),
                    &[d.c_out, d.c_in * d.kh * d.kw],
                    "conv weight shape mismatch: {w}"
                );
                Shape::matrix(x.dims()[0], d.c_out * d.h_out() * d.w_out())
            }
            OpKind::Conv2dGradInput(d) => {
                let (dy, w) = (inputs[0], inputs[1]);
                assert_eq!(dy.dims()[1], d.c_out * d.h_out() * d.w_out(), "conv dy mismatch");
                assert_eq!(w.dims(), &[d.c_out, d.c_in * d.kh * d.kw], "conv weight mismatch");
                Shape::matrix(dy.dims()[0], d.c_in * d.h * d.w)
            }
            OpKind::Conv2dGradWeight(d) => {
                let (x, dy) = (inputs[0], inputs[1]);
                assert_eq!(x.dims()[1], d.c_in * d.h * d.w, "conv input mismatch");
                assert_eq!(dy.dims()[1], d.c_out * d.h_out() * d.w_out(), "conv dy mismatch");
                Shape::matrix(d.c_out, d.c_in * d.kh * d.kw)
            }
        }
    }

    /// The trace mnemonic (paper §4.4.1 uses `mm`, `add`, ...).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::MatMul => "mm",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Neg => "neg",
            OpKind::Scale(_) => "scale",
            OpKind::Sigmoid => "sigmoid",
            OpKind::Tanh => "tanh",
            OpKind::Relu => "relu",
            OpKind::Softmax => "softmax",
            OpKind::Concat { .. } => "concat",
            OpKind::Slice { .. } => "slice",
            OpKind::Transpose => "t",
            OpKind::Embedding => "embed",
            OpKind::ReduceSum => "sum",
            OpKind::BroadcastScalar { .. } => "bcast",
            OpKind::ReduceRows => "sum_rows",
            OpKind::ReduceCols => "sum_cols",
            OpKind::BroadcastCol { .. } => "bcast_col",
            OpKind::SigmoidGrad => "sigmoid_grad",
            OpKind::TanhGrad => "tanh_grad",
            OpKind::ReluGrad => "relu_grad",
            OpKind::SoftmaxGrad => "softmax_grad",
            OpKind::EmbeddingGrad { .. } => "embed_grad",
            OpKind::Conv2d(_) => "conv2d",
            OpKind::Conv2dGradInput(_) => "conv2d_dx",
            OpKind::Conv2dGradWeight(_) => "conv2d_dw",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_shape() {
        let a = Shape::matrix(4, 8);
        let b = Shape::matrix(8, 3);
        assert_eq!(OpKind::MatMul.infer_shape(&[&a, &b]), Shape::matrix(4, 3));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_mismatch_panics() {
        let a = Shape::matrix(4, 8);
        let b = Shape::matrix(9, 3);
        let _ = OpKind::MatMul.infer_shape(&[&a, &b]);
    }

    #[test]
    fn bias_broadcast_add() {
        let x = Shape::matrix(32, 100);
        let b = Shape::matrix(1, 100);
        assert_eq!(OpKind::Add.infer_shape(&[&x, &b]), x);
    }

    #[test]
    fn concat_sums_axis() {
        let a = Shape::matrix(4, 8);
        let b = Shape::matrix(4, 2);
        assert_eq!(
            OpKind::Concat { axis: 1 }.infer_shape(&[&a, &b]),
            Shape::matrix(4, 10)
        );
    }

    #[test]
    fn slice_inverse_of_concat() {
        let c = Shape::matrix(4, 10);
        assert_eq!(
            OpKind::Slice { axis: 1, start: 8, len: 2 }.infer_shape(&[&c]),
            Shape::matrix(4, 2)
        );
    }

    #[test]
    fn embedding_shapes() {
        let idx = Shape::vector(32);
        let table = Shape::matrix(10_000, 256);
        assert_eq!(
            OpKind::Embedding.infer_shape(&[&idx, &table]),
            Shape::matrix(32, 256)
        );
        let dy = Shape::matrix(32, 256);
        assert_eq!(
            OpKind::EmbeddingGrad { vocab: 10_000 }.infer_shape(&[&dy, &idx]),
            Shape::matrix(10_000, 256)
        );
    }

    #[test]
    fn elementwise_classification() {
        assert!(OpKind::Sigmoid.is_elementwise());
        assert!(OpKind::Mul.is_elementwise());
        assert!(!OpKind::MatMul.is_elementwise());
        assert!(!OpKind::Softmax.is_elementwise());
        assert!(!OpKind::Embedding.is_elementwise());
    }

    #[test]
    fn reductions() {
        let s = Shape::matrix(6, 9);
        assert_eq!(OpKind::ReduceSum.infer_shape(&[&s]), Shape::scalar());
        assert_eq!(OpKind::ReduceRows.infer_shape(&[&s]), Shape::matrix(1, 9));
    }
}
