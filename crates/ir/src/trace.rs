//! The paper's textual graph-trace format.
//!
//! §4.4.1 shows fusion candidates in a PyTorch trace notation:
//!
//! ```text
//! %10 = mm(%1, %5)
//! %11 = mm(%1, %6)
//! %12 = add(%10, %11)
//! ```
//!
//! [`print_trace`] renders a [`Graph`] in this form (useful for Figure-1/2
//! style diagnostics), and [`parse_trace_line`] parses single lines back into
//! mnemonic + operands (used in tests and the `figure1` bench binary to state
//! fusion patterns the way the paper does).

use crate::graph::Graph;

/// Renders the whole graph in the paper's `%out = op(%in, ...)` notation.
///
/// # Examples
///
/// ```
/// use astra_ir::{print_trace, Graph, Shape};
///
/// let mut g = Graph::new();
/// let x = g.input(Shape::matrix(2, 3), "x");
/// let w = g.param(Shape::matrix(3, 4), "w");
/// let _ = g.mm(x, w);
/// assert_eq!(print_trace(&g).trim(), "%2 = mm(%0, %1)");
/// ```
pub fn print_trace(g: &Graph) -> String {
    let mut out = String::new();
    for node in g.nodes() {
        let args: Vec<String> = node.inputs.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!("{} = {}({})\n", node.output, node.op.mnemonic(), args.join(", ")));
    }
    out
}

/// A parsed trace line: output id, op mnemonic, operand ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceLine {
    /// Output tensor number (the `10` in `%10 = ...`).
    pub output: u32,
    /// Op mnemonic (`mm`, `add`, ...).
    pub op: String,
    /// Operand tensor numbers.
    pub args: Vec<u32>,
}

/// Parses one `%out = op(%a, %b)` line.
///
/// Returns `None` for lines that don't match the format (blank lines,
/// comments).
pub fn parse_trace_line(line: &str) -> Option<TraceLine> {
    let line = line.trim();
    let (lhs, rhs) = line.split_once('=')?;
    let output: u32 = lhs.trim().strip_prefix('%')?.parse().ok()?;
    let rhs = rhs.trim();
    let open = rhs.find('(')?;
    let close = rhs.rfind(')')?;
    let op = rhs[..open].trim().to_owned();
    if op.is_empty() {
        return None;
    }
    let mut args = Vec::new();
    let arg_str = &rhs[open + 1..close];
    for part in arg_str.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        args.push(part.strip_prefix('%')?.parse().ok()?);
    }
    Some(TraceLine { output, op, args })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Shape;

    #[test]
    fn print_and_parse_roundtrip() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(2, 3), "x");
        let w1 = g.param(Shape::matrix(3, 4), "w1");
        let w2 = g.param(Shape::matrix(3, 4), "w2");
        let a = g.mm(x, w1);
        let b = g.mm(x, w2);
        let _ = g.add(a, b);
        let trace = print_trace(&g);
        let lines: Vec<TraceLine> = trace.lines().filter_map(parse_trace_line).collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].op, "mm");
        assert_eq!(lines[2].op, "add");
        assert_eq!(lines[2].args, vec![a.0, b.0]);
    }

    #[test]
    fn parses_paper_example() {
        let l = parse_trace_line("%10 = mm (%1, %5)").unwrap();
        assert_eq!(l, TraceLine { output: 10, op: "mm".into(), args: vec![1, 5] });
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_trace_line("").is_none());
        assert!(parse_trace_line("# comment").is_none());
        assert!(parse_trace_line("%x = mm(%1)").is_none());
        assert!(parse_trace_line("10 = mm(%1)").is_none());
    }
}
