//! Adaptive data-parallel scaling (paper §3.4).
//!
//! Given a global mini-batch and a machine (device + interconnect), the
//! adaptation explores the degree of data parallelism `P`: each candidate
//! splits the global batch into `P` per-replica mini-batches, optimizes the
//! per-replica training graph with Astra (measurement, not a cost model —
//! exactly the Astra recipe applied to a new dimension), and measures the
//! resulting step time: per-replica compute plus a gradient ring all-reduce,
//! partially overlapped with the backward pass.
//!
//! The crossover structure is the interesting part: small models or slow
//! links favour low `P` (communication-bound); large batches favour high
//! `P` (compute-bound). This is not statically obvious — which is why it
//! belongs in Astra's measured state space.

use astra_core::{Astra, AstraOptions};
use astra_gpu::DeviceSpec;
use astra_ir::{Graph, TensorKind};

use crate::interconnect::{ring_allreduce_ns, LinkSpec};

/// Fraction of the backward pass that gradient communication can hide
/// under (per-bucket all-reduce overlapping, as in modern DDP stacks).
const OVERLAP_FRACTION: f64 = 0.6;

/// One candidate's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Degree of data parallelism.
    pub replicas: u32,
    /// Per-replica mini-batch size.
    pub per_replica_batch: u64,
    /// Astra-optimized per-replica compute time (ns).
    pub compute_ns: f64,
    /// Raw all-reduce time for the gradients (ns).
    pub allreduce_ns: f64,
    /// Step time after overlap (ns).
    pub step_ns: f64,
    /// Training throughput in samples per second.
    pub samples_per_sec: f64,
}

/// Result of the scaling exploration.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// All measured candidates, in increasing `replicas`.
    pub points: Vec<ScalePoint>,
    /// The winning degree of parallelism.
    pub best: u32,
}

impl ScaleReport {
    /// The winning candidate's measurement.
    pub fn best_point(&self) -> &ScalePoint {
        self.points
            .iter()
            .find(|p| p.replicas == self.best)
            .expect("best is one of the measured points")
    }
}

/// Total gradient bytes of a training graph (= parameter bytes; every
/// parameter gets a same-shaped gradient all-reduced each step).
pub fn gradient_bytes(graph: &Graph) -> f64 {
    (0..graph.num_tensors() as u32)
        .map(astra_ir::TensorId)
        .filter(|&t| graph.tensor(t).kind == TensorKind::Param)
        .map(|t| graph.shape(t).bytes() as f64)
        .sum()
}

/// Explores data-parallel degrees for a model whose training graph at a
/// given per-replica batch size is produced by `build`.
///
/// `candidates` are the replica counts to try (1 is always worth including);
/// candidates that do not divide `global_batch` are skipped.
///
/// # Panics
///
/// Panics if no candidate divides `global_batch`.
pub fn explore_scaling(
    build: impl Fn(u64) -> Graph,
    global_batch: u64,
    candidates: &[u32],
    dev: &DeviceSpec,
    link: &LinkSpec,
    opts: &AstraOptions,
) -> ScaleReport {
    let mut points = Vec::new();
    for &p in candidates {
        let pp = u64::from(p);
        if p == 0 || !global_batch.is_multiple_of(pp) {
            continue;
        }
        let per_replica = global_batch / pp;
        let graph = build(per_replica);
        let grad_bytes = gradient_bytes(&graph);
        let mut astra = Astra::new(&graph, dev, opts.clone());
        let report = astra.optimize().expect("per-replica optimization succeeds");
        let compute_ns = report.steady_ns;
        let allreduce_ns = ring_allreduce_ns(grad_bytes, p, link);
        // Overlap: communication hides under a fraction of the backward
        // pass (~2/3 of compute, §5.1); the un-hidden remainder serializes.
        let hideable = compute_ns * (2.0 / 3.0) * OVERLAP_FRACTION;
        let exposed = (allreduce_ns - hideable).max(0.0);
        let step_ns = compute_ns + exposed;
        points.push(ScalePoint {
            replicas: p,
            per_replica_batch: per_replica,
            compute_ns,
            allreduce_ns,
            step_ns,
            samples_per_sec: global_batch as f64 / (step_ns / 1e9),
        });
    }
    assert!(!points.is_empty(), "no candidate divides the global batch");
    let best = points
        .iter()
        .max_by(|a, b| a.samples_per_sec.total_cmp(&b.samples_per_sec))
        .expect("non-empty")
        .replicas;
    ScaleReport { points, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_core::Dims;
    use astra_models::Model;

    fn build_graph(model: Model, batch: u64) -> Graph {
        let mut c = model.default_config(batch);
        c.hidden = 128;
        c.input = 128;
        c.vocab = 256;
        c.seq_len = 4;
        model.build(&c).graph
    }

    fn opts() -> AstraOptions {
        AstraOptions { dims: Dims::f(), ..Default::default() }
    }

    #[test]
    fn gradient_bytes_counts_params_only() {
        let g = build_graph(Model::SubLstm, 8);
        let bytes = gradient_bytes(&g);
        // 4 gates x (input + recurrent + bias) + embedding + projection.
        assert!(bytes > 0.0);
        // Batch size must not change parameter bytes.
        let g2 = build_graph(Model::SubLstm, 32);
        assert_eq!(bytes, gradient_bytes(&g2));
    }

    #[test]
    fn scaling_explores_and_picks_a_winner() {
        let dev = DeviceSpec::p100();
        let r = explore_scaling(
            |b| build_graph(Model::SubLstm, b),
            64,
            &[1, 2, 4],
            &dev,
            &LinkSpec::nvlink(),
            &opts(),
        );
        assert_eq!(r.points.len(), 3);
        assert!(r.points.iter().any(|p| p.replicas == r.best));
        // Throughput of the winner is maximal.
        let best = r.best_point().samples_per_sec;
        assert!(r.points.iter().all(|p| p.samples_per_sec <= best + 1e-9));
    }

    #[test]
    fn slow_links_favor_fewer_replicas() {
        let dev = DeviceSpec::p100();
        let run = |link: &LinkSpec| {
            explore_scaling(
                |b| build_graph(Model::SubLstm, b),
                64,
                &[1, 2, 4, 8],
                &dev,
                link,
                &opts(),
            )
        };
        let eth = run(&LinkSpec::ethernet());
        let nv = run(&LinkSpec::nvlink());
        assert!(
            eth.best <= nv.best,
            "ethernet best {} should not exceed nvlink best {}",
            eth.best,
            nv.best
        );
    }

    #[test]
    fn non_dividing_candidates_are_skipped() {
        let dev = DeviceSpec::p100();
        let r = explore_scaling(
            |b| build_graph(Model::Scrnn, b),
            48,
            &[1, 5, 3],
            &dev,
            &LinkSpec::nvlink(),
            &opts(),
        );
        let measured: Vec<u32> = r.points.iter().map(|p| p.replicas).collect();
        assert_eq!(measured, vec![1, 3]);
    }
}
