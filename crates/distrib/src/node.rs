//! Building simulated multi-device nodes from CLI-style descriptions.
//!
//! The bridge between this crate's coarse [`LinkSpec`] cost model (used by
//! [`explore_scaling`](crate::explore_scaling) for analytic replica-count
//! sweeps) and the engine-side [`Topology`]/[`LinkDesc`] the discrete-event
//! simulator runs placements on: same physical numbers, plus the contention
//! class the simulator needs.

use astra_gpu::{DeviceSpec, LinkDesc, Topology};

use crate::interconnect::LinkSpec;

/// Engine-side link description for a [`LinkSpec`]: identical bandwidth and
/// latency, with the contention class inferred from the link family —
/// PCIe-style buses and cluster ethernet share one bandwidth pool across
/// every concurrent transfer, NVLink-style fabrics give each ordered device
/// pair a private lane.
pub fn link_desc(spec: &LinkSpec) -> LinkDesc {
    LinkDesc {
        name: spec.name.clone(),
        gbps: spec.gbps,
        latency_ns: spec.latency_ns,
        shared: !spec.name.starts_with("nvlink"),
    }
}

/// Parses an interconnect name (`nvlink`, `pcie3`, `ethernet`) into the
/// engine link description.
///
/// # Errors
///
/// Returns a message naming the accepted links on anything else.
pub fn parse_link(name: &str) -> Result<LinkDesc, String> {
    match name {
        "nvlink" => Ok(link_desc(&LinkSpec::nvlink())),
        "pcie3" => Ok(link_desc(&LinkSpec::pcie3())),
        "ethernet" => Ok(link_desc(&LinkSpec::ethernet())),
        other => Err(format!("unknown topology '{other}' (expected nvlink, pcie3, or ethernet)")),
    }
}

/// Parses a device-list description: a bare count (`"4"`) means that many
/// copies of `default`, a comma-separated model list (`"p100,v100"`) names
/// each device explicitly.
///
/// # Errors
///
/// Returns a message on a zero count or an unknown model name.
pub fn parse_devices(spec: &str, default: &DeviceSpec) -> Result<Vec<DeviceSpec>, String> {
    if let Ok(n) = spec.parse::<usize>() {
        if n == 0 {
            return Err("device count must be at least 1".to_owned());
        }
        return Ok(vec![default.clone(); n]);
    }
    spec.split(',')
        .map(|name| match name.trim() {
            "p100" => Ok(DeviceSpec::p100()),
            "v100" => Ok(DeviceSpec::v100()),
            other => Err(format!("unknown device '{other}' (expected p100 or v100)")),
        })
        .collect()
}

/// Builds the simulated node a `--devices`/`--topology` pair describes:
/// `devices` as in [`parse_devices`], `link` as in [`parse_link`].
///
/// # Errors
///
/// Propagates the parse errors of either half.
pub fn node_topology(
    devices: &str,
    link: &str,
    default: &DeviceSpec,
) -> Result<Topology, String> {
    Ok(Topology::new(parse_devices(devices, default)?, parse_link(link)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_expand_to_default_copies() {
        let devs = parse_devices("3", &DeviceSpec::p100()).unwrap();
        assert_eq!(devs.len(), 3);
        assert!(devs.iter().all(|d| *d == DeviceSpec::p100()));
        assert!(parse_devices("0", &DeviceSpec::p100()).is_err());
    }

    #[test]
    fn model_lists_build_heterogeneous_mixes() {
        let t = node_topology("p100,v100", "nvlink", &DeviceSpec::p100()).unwrap();
        assert_eq!(t.num_devices(), 2);
        assert!(!t.is_homogeneous());
        assert!(parse_devices("p100,tpu", &DeviceSpec::p100()).is_err());
    }

    #[test]
    fn link_classes_keep_their_contention_model() {
        assert!(!parse_link("nvlink").unwrap().shared);
        assert!(parse_link("pcie3").unwrap().shared);
        assert!(parse_link("ethernet").unwrap().shared);
        assert!(parse_link("infiniband").is_err());
    }

    #[test]
    fn link_desc_preserves_the_cost_model_numbers() {
        for spec in [LinkSpec::nvlink(), LinkSpec::pcie3(), LinkSpec::ethernet()] {
            let d = link_desc(&spec);
            assert_eq!(d.gbps, spec.gbps);
            assert_eq!(d.latency_ns, spec.latency_ns);
            // Both halves must price a ring all-reduce identically.
            let a = d.ring_allreduce_ns(1e8, 4);
            let b = crate::ring_allreduce_ns(1e8, 4, &spec);
            assert!((a - b).abs() < 1e-6, "{}: {a} vs {b}", spec.name);
        }
    }
}
