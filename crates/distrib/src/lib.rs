//! # astra-distrib — adaptive data-parallel scaling
//!
//! The paper's §3.4 names distributed training as a further dimension of
//! the Astra state space: "the choice of ideal degree of parallelism from a
//! cost-benefit perspective could be taken in an automated manner with
//! runtime measurement and adaptation." This crate implements that
//! extension: candidate replica counts are *measured* — each candidate's
//! per-replica graph is Astra-optimized and its gradient all-reduce costed
//! on a concrete interconnect — and the winner is picked by throughput,
//! exactly the measured-playoff recipe the core applies everywhere else.
//!
//! ## Example
//!
//! ```
//! use astra_core::{AstraOptions, Dims};
//! use astra_distrib::{explore_scaling, LinkSpec};
//! use astra_gpu::DeviceSpec;
//! use astra_models::{Model, ModelConfig};
//!
//! let dev = DeviceSpec::p100();
//! let build = |batch: u64| {
//!     let cfg = ModelConfig { batch, seq_len: 2, hidden: 32, input: 32,
//!                             vocab: 64, ..ModelConfig::ptb(batch) };
//!     Model::SubLstm.build(&cfg).graph
//! };
//! let opts = AstraOptions { dims: Dims::f(), ..Default::default() };
//! let report = explore_scaling(build, 32, &[1, 2], &dev, &LinkSpec::nvlink(), &opts);
//! assert!(report.best >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interconnect;
mod node;
mod scale;

pub use interconnect::{ring_allreduce_ns, LinkSpec};
pub use node::{link_desc, node_topology, parse_devices, parse_link};
pub use scale::{explore_scaling, gradient_bytes, ScalePoint, ScaleReport};
