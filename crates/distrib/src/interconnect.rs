//! Interconnect models for multi-GPU training.
//!
//! The paper's §3.4 lists distributed training as a natural further
//! dimension of the Astra state space: "depending on the communication cost
//! of the model and the physical characteristics of the network, the choice
//! of ideal degree of parallelism ... could be taken in an automated manner
//! with runtime measurement and adaptation." This module supplies those
//! physical characteristics.


/// A point-to-point link between accelerators.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Human-readable name.
    pub name: String,
    /// Unidirectional bandwidth in GB/s (= bytes/ns).
    pub gbps: f64,
    /// Per-message latency in nanoseconds.
    pub latency_ns: f64,
}

impl LinkSpec {
    /// PCIe 3.0 x16: ~12 GB/s effective, high latency.
    pub fn pcie3() -> Self {
        LinkSpec { name: "pcie3-x16".to_owned(), gbps: 12.0, latency_ns: 12_000.0 }
    }

    /// NVLink (P100 generation): ~18 GB/s per direction per link pair.
    pub fn nvlink() -> Self {
        LinkSpec { name: "nvlink1".to_owned(), gbps: 18.0, latency_ns: 4_000.0 }
    }

    /// A 25 GbE-ish cluster network: ~3 GB/s, very high latency.
    pub fn ethernet() -> Self {
        LinkSpec { name: "eth-25g".to_owned(), gbps: 3.0, latency_ns: 50_000.0 }
    }

    /// Bandwidth in bytes per nanosecond.
    pub fn bytes_per_ns(&self) -> f64 {
        self.gbps
    }
}

/// Time for a ring all-reduce of `bytes` across `replicas` peers.
///
/// The standard cost model: `2 (P-1)/P * B` bytes cross each link, in
/// `2 (P-1)` latency-bound steps.
pub fn ring_allreduce_ns(bytes: f64, replicas: u32, link: &LinkSpec) -> f64 {
    if replicas <= 1 {
        return 0.0;
    }
    let p = f64::from(replicas);
    let transfer = 2.0 * (p - 1.0) / p * bytes / link.bytes_per_ns();
    let latency = 2.0 * (p - 1.0) * link.latency_ns;
    transfer + latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_replica_is_free() {
        assert_eq!(ring_allreduce_ns(1e9, 1, &LinkSpec::nvlink()), 0.0);
    }

    #[test]
    fn transfer_term_saturates_with_replicas() {
        // 2(P-1)/P approaches 2: doubling P beyond a few barely moves the
        // bandwidth term, while latency keeps growing.
        let link = LinkSpec::nvlink();
        let t2 = ring_allreduce_ns(1e9, 2, &link);
        let t8 = ring_allreduce_ns(1e9, 8, &link);
        let t16 = ring_allreduce_ns(1e9, 16, &link);
        assert!(t8 > t2);
        assert!((t16 - t8) < (t8 - t2) * 2.0, "growth must flatten");
    }

    #[test]
    fn allreduce_scales_linearly_in_bytes() {
        let link = LinkSpec::nvlink();
        let t1 = ring_allreduce_ns(1e8, 4, &link);
        let t2 = ring_allreduce_ns(2e8, 4, &link);
        // Latency term is constant; the bandwidth term doubles.
        let latency = 2.0 * 3.0 * link.latency_ns;
        assert!(((t2 - latency) / (t1 - latency) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_link_is_faster() {
        let b = 512.0 * 1024.0 * 1024.0;
        assert!(
            ring_allreduce_ns(b, 4, &LinkSpec::nvlink())
                < ring_allreduce_ns(b, 4, &LinkSpec::pcie3())
        );
        assert!(
            ring_allreduce_ns(b, 4, &LinkSpec::pcie3())
                < ring_allreduce_ns(b, 4, &LinkSpec::ethernet())
        );
    }
}
