//! Microbenchmarks of the enumerator: the offline compilation phase
//! (fusion detection, allocation analysis, unit building).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use astra_core::{build_units, ExecConfig, PlanContext};
use astra_models::{Model, ModelConfig};

fn bench_enumeration(c: &mut Criterion) {
    let cfg = ModelConfig { seq_len: 8, hidden: 256, input: 256, vocab: 1000, ..ModelConfig::ptb(16) };
    let built = Model::SubLstm.build(&cfg);
    c.bench_function("enumerate_sublstm", |b| {
        b.iter(|| black_box(PlanContext::new(black_box(&built.graph))))
    });

    let ctx = PlanContext::new(&built.graph);
    c.bench_function("build_units_baseline", |b| {
        b.iter(|| black_box(build_units(&ctx, &ExecConfig::baseline()).unwrap()))
    });
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
