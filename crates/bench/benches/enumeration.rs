//! Microbenchmarks of the enumerator: the offline compilation phase
//! (fusion detection, allocation analysis, unit building).

use std::hint::black_box;

use astra_core::{build_units, ExecConfig, PlanContext};
use astra_models::{Model, ModelConfig};
use astra_util::report;

fn main() {
    let cfg = ModelConfig { seq_len: 8, hidden: 256, input: 256, vocab: 1000, ..ModelConfig::ptb(16) };
    let built = Model::SubLstm.build(&cfg);
    report("enumerate_sublstm", 5, 50, || {
        black_box(PlanContext::new(black_box(&built.graph)));
    });

    let ctx = PlanContext::new(&built.graph);
    report("build_units_baseline", 5, 100, || {
        black_box(build_units(&ctx, &ExecConfig::baseline()).unwrap());
    });
}
