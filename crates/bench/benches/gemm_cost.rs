//! Microbenchmarks of the analytic GEMM cost model: it is evaluated once
//! per kernel launch in every simulated mini-batch, so it must be cheap.

use std::hint::black_box;

use astra_gpu::{time_gemm, DeviceSpec, GemmLibrary, GemmShape};
use astra_util::report;

fn main() {
    let dev = DeviceSpec::p100();
    let shapes = [
        GemmShape::new(8, 1024, 1024),
        GemmShape::new(64, 1024, 4096),
        GemmShape::new(512, 1500, 6000),
    ];
    for lib in GemmLibrary::all() {
        report(&format!("gemm_cost/{lib}"), 1_000, 100_000, || {
            for &s in &shapes {
                black_box(time_gemm(black_box(s), lib, &dev));
            }
        });
    }
}
