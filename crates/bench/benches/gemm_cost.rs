//! Microbenchmarks of the analytic GEMM cost model: it is evaluated once
//! per kernel launch in every simulated mini-batch, so it must be cheap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use astra_gpu::{time_gemm, DeviceSpec, GemmLibrary, GemmShape};

fn bench_gemm_cost(c: &mut Criterion) {
    let dev = DeviceSpec::p100();
    let shapes = [
        GemmShape::new(8, 1024, 1024),
        GemmShape::new(64, 1024, 4096),
        GemmShape::new(512, 1500, 6000),
    ];
    let mut group = c.benchmark_group("gemm_cost");
    for lib in GemmLibrary::all() {
        group.bench_function(format!("{lib}"), |b| {
            b.iter(|| {
                for &s in &shapes {
                    black_box(time_gemm(black_box(s), lib, &dev));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_cost);
criterion_main!(benches);
