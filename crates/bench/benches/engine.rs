//! Microbenchmarks of the discrete-event engine: one simulated mini-batch
//! of the SC-RNN model, single-stream and with the multi-stream emitter.

use std::hint::black_box;

use astra_core::{build_units, emit_schedule, ExecConfig, PlanContext, ProbeSpec};
use astra_exec::{lower, native_schedule};
use astra_gpu::{DeviceSpec, Engine};
use astra_models::{Model, ModelConfig};
use astra_util::report;

fn small_model() -> astra_models::BuiltModel {
    let cfg = ModelConfig { seq_len: 8, hidden: 256, input: 256, vocab: 1000, ..ModelConfig::ptb(16) };
    Model::Scrnn.build(&cfg)
}

fn main() {
    let dev = DeviceSpec::p100();
    let built = small_model();
    let lowering = lower(&built.graph);
    let native = native_schedule(&lowering);
    report("engine_native_minibatch", 10, 200, || {
        black_box(Engine::new(&dev).run(black_box(&native)).unwrap());
    });

    let ctx = PlanContext::new(&built.graph);
    let mut cfg = ExecConfig::baseline();
    for set in &ctx.sets {
        cfg.chunks.insert(
            set.id.clone(),
            (*set.row_chunks().last().unwrap(), *set.col_chunks().last().unwrap()),
        );
    }
    if let Ok(units) = build_units(&ctx, &cfg) {
        let (sched, _) = emit_schedule(&ctx, &cfg, &units, None, &ProbeSpec::none());
        report("engine_fused_minibatch", 10, 200, || {
            black_box(Engine::new(&dev).run(black_box(&sched)).unwrap());
        });
    }
}
