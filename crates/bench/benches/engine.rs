//! Microbenchmarks of the discrete-event engine: one simulated mini-batch
//! of the SC-RNN model, single-stream and with the multi-stream emitter.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use astra_core::{build_units, emit_schedule, ExecConfig, PlanContext, ProbeSpec};
use astra_exec::{lower, native_schedule};
use astra_gpu::{DeviceSpec, Engine};
use astra_models::{Model, ModelConfig};

fn small_model() -> astra_models::BuiltModel {
    let cfg = ModelConfig { seq_len: 8, hidden: 256, input: 256, vocab: 1000, ..ModelConfig::ptb(16) };
    Model::Scrnn.build(&cfg)
}

fn bench_engine(c: &mut Criterion) {
    let dev = DeviceSpec::p100();
    let built = small_model();
    let lowering = lower(&built.graph);
    let native = native_schedule(&lowering);
    c.bench_function("engine_native_minibatch", |b| {
        b.iter(|| black_box(Engine::new(&dev).run(black_box(&native)).unwrap()))
    });

    let ctx = PlanContext::new(&built.graph);
    let mut cfg = ExecConfig::baseline();
    for set in &ctx.sets {
        cfg.chunks.insert(
            set.id.clone(),
            (*set.row_chunks().last().unwrap(), *set.col_chunks().last().unwrap()),
        );
    }
    if let Ok(units) = build_units(&ctx, &cfg) {
        let (sched, _) = emit_schedule(&ctx, &cfg, &units, None, &ProbeSpec::none());
        c.bench_function("engine_fused_minibatch", |b| {
            b.iter(|| black_box(Engine::new(&dev).run(black_box(&sched)).unwrap()))
        });
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
