//! Microbenchmarks of the adaptation machinery: profile-index updates and
//! update-tree trial generation (both on the per-mini-batch critical path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use astra_core::{ExploreMode, ProfileIndex, ProfileKey, UpdateNode, UpdateTree};

fn bench_profile_index(c: &mut Criterion) {
    c.bench_function("profile_index_record_get", |b| {
        b.iter(|| {
            let mut idx = ProfileIndex::new();
            for i in 0..100 {
                let key = ProfileKey::entity(format!("gemm:{i}"), i % 3).in_context("alloc:1");
                idx.record(&key, i as f64);
            }
            for i in 0..100 {
                let key = ProfileKey::entity(format!("gemm:{i}"), i % 3).in_context("alloc:1");
                black_box(idx.get(&key));
            }
        })
    });
}

fn bench_update_tree(c: &mut Criterion) {
    c.bench_function("update_tree_parallel_100x6", |b| {
        b.iter(|| {
            let children: Vec<UpdateNode> =
                (0..100).map(|i| UpdateNode::var(format!("v{i}"), 6)).collect();
            let mut tree = UpdateTree::new(UpdateNode::group(ExploreMode::Parallel, children));
            let mut trials = 0;
            while let Some(asg) = tree.next_trial() {
                trials += 1;
                for id in asg.keys() {
                    tree.record(id, asg[id] as f64);
                }
            }
            black_box(trials)
        })
    });
}

criterion_group!(benches, bench_profile_index, bench_update_tree);
criterion_main!(benches);
