//! Microbenchmarks of the adaptation machinery: profile-index updates and
//! update-tree trial generation (both on the per-mini-batch critical path).

use std::hint::black_box;

use astra_core::{ExploreMode, ProfileIndex, ProfileKey, UpdateNode, UpdateTree};
use astra_util::report;

fn main() {
    report("profile_index_record_get", 10, 500, || {
        let mut idx = ProfileIndex::new();
        for i in 0..100 {
            let key = ProfileKey::entity(format!("gemm:{i}"), i % 3).in_context("alloc:1");
            idx.record(&key, i as f64);
        }
        for i in 0..100 {
            let key = ProfileKey::entity(format!("gemm:{i}"), i % 3).in_context("alloc:1");
            black_box(idx.get(&key));
        }
    });

    report("update_tree_parallel_100x6", 2, 50, || {
        let children: Vec<UpdateNode> =
            (0..100).map(|i| UpdateNode::var(format!("v{i}"), 6)).collect();
        let mut tree = UpdateTree::new(UpdateNode::group(ExploreMode::Parallel, children));
        let mut trials = 0;
        while let Some(asg) = tree.next_trial() {
            trials += 1;
            for id in asg.keys() {
                tree.record(id, asg[id] as f64);
            }
        }
        black_box(trials);
    });
}
