//! # astra-bench — the paper's evaluation harness
//!
//! One binary per table/figure of the Astra paper's §6 evaluation, plus the
//! §6.4/§7 claims. Each binary regenerates the corresponding table's rows
//! with this repository's simulator substrate. Absolute times differ from
//! the authors' P100 testbed; the *shape* — who wins, by roughly what
//! factor, where the crossovers fall — is the reproduction target (see
//! EXPERIMENTS.md for paper-vs-measured).
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | GEMM library times (§3.1 Table 1) |
//! | `figure1` | SC-RNN backward fusion/allocation conflict (Figure 1) |
//! | `table2`..`table4` | SC-RNN / MI-LSTM / subLSTM speedups |
//! | `table5`, `table6` | StackedLSTM / GNMT vs the cuDNN-like accelerator |
//! | `table7` | exploration state-space size |
//! | `table8` | dynamic graphs with bucketed adaptation |
//! | `table9` | Tensorflow prototype vs XLA |
//! | `figure2` | the exploration structure (super-epochs/epochs/classes) |
//! | `overhead` | profiling overhead < 0.5% (§6.4) |
//! | `predictability` | fixed-clock repeatability vs autoboost (§7) |

#![forbid(unsafe_code)]

use astra_core::{Astra, AstraOptions, Dims, Report};
use astra_exec::{cudnn_schedule, detect_covered_layers, lower, native_schedule, xla_schedule};
use astra_gpu::{DeviceSpec, Engine};
use astra_ir::Graph;
use astra_models::Model;

/// The paper's mini-batch sweep.
pub const BATCHES: [u64; 6] = [8, 16, 32, 64, 128, 256];

/// Mini-batch time of the native single-stream baseline (PyTorch/TF).
pub fn native_ns(graph: &Graph, dev: &DeviceSpec) -> f64 {
    let sched = native_schedule(&lower(graph));
    Engine::new(dev).run(&sched).expect("native schedule runs").total_ns
}

/// Mini-batch time under the cuDNN-like accelerator (covered layers as
/// compound kernels, the rest native).
pub fn cudnn_ns(graph: &Graph, dev: &DeviceSpec) -> f64 {
    let lowering = lower(graph);
    let covered = detect_covered_layers(graph);
    let sched = cudnn_schedule(graph, &lowering, &covered);
    Engine::new(dev).run(&sched).expect("cudnn schedule runs").total_ns
}

/// Mini-batch time under the XLA-like static compiler.
pub fn xla_ns(graph: &Graph, dev: &DeviceSpec) -> f64 {
    let lowering = lower(graph);
    let sched = xla_schedule(graph, &lowering);
    Engine::new(dev).run(&sched).expect("xla schedule runs").total_ns
}

/// Runs a full Astra optimization with the given dimensions.
pub fn optimize(graph: &Graph, dev: &DeviceSpec, dims: Dims) -> Report {
    let mut astra = Astra::new(graph, dev, AstraOptions { dims, ..Default::default() });
    astra.optimize().expect("optimization succeeds")
}

/// Builds a model at a batch size with the paper's defaults.
pub fn build(model: Model, batch: u64) -> astra_models::BuiltModel {
    model.build(&model.default_config(batch))
}

/// Builds the Table 9 variant (embedding removed).
pub fn build_no_embedding(model: Model, batch: u64) -> astra_models::BuiltModel {
    model.build(&model.default_config(batch).without_embedding())
}

/// Prints an aligned row: first cell width 12, rest width 10.
pub fn print_row(cells: &[String]) {
    let mut line = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("{c:<14}"));
        } else {
            line.push_str(&format!("{c:>10}"));
        }
    }
    println!("{line}");
}

/// Formats a speedup factor like the paper's tables.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// The ablation speedup columns of Tables 2-4 for one model/batch:
/// `[Astra_F, Astra_FK, Astra_FKS, Astra_all]` relative to native.
pub fn ablation_speedups(model: Model, batch: u64, dev: &DeviceSpec) -> [f64; 4] {
    let built = build(model, batch);
    let variants = [Dims::f(), Dims::fk(), Dims::fks(), Dims::all()];
    let mut out = [0.0; 4];
    for (i, dims) in variants.into_iter().enumerate() {
        out[i] = optimize(&built.graph, dev, dims).speedup();
    }
    out
}

/// Emits a standard Tables 2-4 style speedup table.
pub fn print_ablation_table(model: Model, dev: &DeviceSpec) {
    println!("{} — factor speedup relative to native (PyT = 1)", model.name());
    print_row(
        &["Mini-batch", "PyT", "Astra_F", "Astra_FK", "Astra_FKS", "Astra_all"]
            .map(String::from),
    );
    for batch in BATCHES {
        let s = ablation_speedups(model, batch, dev);
        print_row(&[
            batch.to_string(),
            "1".to_owned(),
            f2(s[0]),
            f2(s[1]),
            f2(s[2]),
            f2(s[3]),
        ]);
    }
}

/// Emits a Tables 5-6 style comparison relative to the cuDNN baseline.
pub fn print_cudnn_table(model: Model, dev: &DeviceSpec) {
    println!("{} — performance relative to cuDNN (cuDNN = 1; higher is faster)", model.name());
    print_row(
        &["Mini-batch", "PyT", "cuDNN", "Astra_F", "Astra_FK", "Astra_all"].map(String::from),
    );
    for batch in BATCHES {
        let built = build(model, batch);
        let nat = native_ns(&built.graph, dev);
        let cud = cudnn_ns(&built.graph, dev);
        let f = optimize(&built.graph, dev, Dims::f()).steady_ns;
        let fk = optimize(&built.graph, dev, Dims::fk()).steady_ns;
        let all = optimize(&built.graph, dev, Dims::all()).steady_ns;
        print_row(&[
            batch.to_string(),
            f2(cud / nat),
            "1".to_owned(),
            f2(cud / f),
            f2(cud / fk),
            f2(cud / all),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_models::ModelConfig;

    #[test]
    fn helpers_run_end_to_end() {
        let dev = DeviceSpec::p100();
        let mut cfg = ModelConfig::ptb(8);
        cfg.hidden = 64;
        cfg.input = 64;
        cfg.vocab = 128;
        cfg.seq_len = 2;
        let built = Model::SubLstm.build(&cfg);
        assert!(native_ns(&built.graph, &dev) > 0.0);
        assert!(xla_ns(&built.graph, &dev) > 0.0);
        let r = optimize(&built.graph, &dev, Dims::f());
        assert!(r.speedup() > 0.5);
    }
}
