//! §6.4: profiling overhead is below 0.5% for every model, so fine-grained
//! profiling can stay always-on.

use astra_bench::{build, optimize, print_row};
use astra_core::Dims;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    let dev = DeviceSpec::p100();
    println!("Profiling overhead (fraction of exploration mini-batch time)");
    print_row(&["Model", "overhead%"].map(String::from));
    for model in Model::all() {
        let built = build(model, 32);
        let r = optimize(&built.graph, &dev, Dims::all());
        print_row(&[model.name().to_owned(), format!("{:.4}", r.profiling_overhead_frac * 100.0)]);
    }
    println!();
    println!("paper: <0.5% for all models evaluated");
}
