//! Table 9: the Tensorflow prototype — Astra_FK vs XLA vs native TF, on
//! model variants with the embedding removed (§6.6). Also demonstrates the
//! embedding pathology that makes XLA *slower than native* on the original
//! models.

use astra_bench::{build, build_no_embedding, f2, native_ns, cudnn_ns, optimize, print_row, xla_ns};
use astra_core::Dims;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    let dev = DeviceSpec::p100();
    println!("Table 9 — factor speedups relative to native TF (embeddings removed).");
    println!("Astra_FK column shows speedup over TF, with speedup over XLA in parens.");
    print_row(&["Model", "TF", "TF+XLA", "Astra_FK", "(vs XLA)", "cuDNN"].map(String::from));
    let models = [Model::Scrnn, Model::MiLstm, Model::SubLstm, Model::StackedLstm, Model::Gnmt];
    for model in models {
        for batch in [16u64, 32] {
            let built = build_no_embedding(model, batch);
            let tf = native_ns(&built.graph, &dev);
            let xla = xla_ns(&built.graph, &dev);
            let astra = optimize(&built.graph, &dev, Dims::fk()).steady_ns;
            let cud = if model.cudnn_covered() {
                f2(tf / cudnn_ns(&built.graph, &dev))
            } else {
                "-".to_owned()
            };
            print_row(&[
                format!("{} ({batch})", model.name()),
                "1".to_owned(),
                f2(tf / xla),
                f2(tf / astra),
                format!("({})", f2(xla / astra)),
                cud,
            ]);
        }
    }

    println!();
    println!("Embedding pathology (§6.6): XLA on the *original* (embedding) models:");
    print_row(&["Model", "TF", "TF+XLA"].map(String::from));
    for model in [Model::Scrnn, Model::SubLstm] {
        let built = build(model, 16);
        let tf = native_ns(&built.graph, &dev);
        let xla = xla_ns(&built.graph, &dev);
        print_row(&[format!("{} (16)", model.name()), "1".to_owned(), f2(tf / xla)]);
    }
    println!("paper: XLA was up to 3x WORSE than native TF on embedding models");
}
