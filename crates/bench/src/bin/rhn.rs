//! Extension: the Recurrent Highway Network — named in the paper's
//! introduction (alongside MI-LSTM and SC-RNN) as exactly the kind of novel
//! structure researchers invent that no hand-coded accelerator covers.
//! Astra speeds it up with the same adaptation library, untouched.

use astra_bench::print_ablation_table;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    print_ablation_table(Model::Rhn, &DeviceSpec::p100());
}
