//! §3.4 extension: adaptive data-parallel scaling. For each interconnect,
//! measure candidate replica counts (per-replica graph Astra-optimized +
//! ring all-reduce of the gradients) and report the measured winner — the
//! "ideal degree of parallelism taken in an automated manner" the paper
//! sketches as future work.

use astra_bench::print_row;
use astra_core::{AstraOptions, Dims};
use astra_distrib::{explore_scaling, LinkSpec};
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    let dev = DeviceSpec::p100();
    let model = Model::SubLstm;
    let global_batch = 256;
    let base = model.default_config(global_batch);
    let build = |b: u64| {
        let mut c = base.clone();
        c.batch = b;
        model.build(&c).graph
    };
    let opts = AstraOptions { dims: Dims::fk(), ..Default::default() };

    println!(
        "Data-parallel scaling of {} at global batch {global_batch} (samples/s, higher is better)",
        model.name()
    );
    print_row(&["Link", "P=1", "P=2", "P=4", "P=8", "best"].map(String::from));
    for link in [LinkSpec::nvlink(), LinkSpec::pcie3(), LinkSpec::ethernet()] {
        let report =
            explore_scaling(&build, global_batch, &[1, 2, 4, 8], &dev, &link, &opts);
        let mut cells = vec![link.name.clone()];
        for p in [1u32, 2, 4, 8] {
            let v = report
                .points
                .iter()
                .find(|pt| pt.replicas == p)
                .map_or("-".to_owned(), |pt| format!("{:.0}", pt.samples_per_sec));
            cells.push(v);
        }
        cells.push(format!("P={}", report.best));
        print_row(&cells);
    }
    println!();
    println!("Faster links shift the measured optimum toward more replicas —");
    println!("a crossover no static cost model is asked to predict here.");
}
