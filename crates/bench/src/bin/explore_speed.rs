//! Wall-clock timing of the parallel exploration driver.
//!
//! Runs the full `Astra_all` optimization for SC-RNN and subLSTM at worker
//! counts 1, 4, and 8 and prints one JSON object per run. Results must be
//! bit-identical across worker counts — only the wall-clock changes — so
//! the harness asserts identity and reports the speedup over the
//! single-worker baseline.
//!
//! Interpret `speedup_vs_workers1` against `host_cpus`: candidate
//! evaluation is pure CPU-bound simulation, so the attainable speedup is
//! capped by the cores actually available (on a 1-CPU host the extra
//! workers can only time-slice and the ratio hovers at or slightly below
//! 1.0).

use std::time::Instant;

use astra_core::{Astra, AstraOptions, Dims, Report};
use astra_gpu::{DeviceSpec, FaultPlan};
use astra_models::Model;

fn run(graph: &astra_ir::Graph, dev: &DeviceSpec, workers: usize) -> (Report, f64) {
    // Explicitly fault-free: this benchmark doubles as the zero-cost check —
    // a disabled FaultPlan must leave the counters at exactly zero.
    let opts =
        AstraOptions { dims: Dims::all(), workers, faults: FaultPlan::none(), ..Default::default() };
    let mut astra = Astra::new(graph, dev, opts);
    let t0 = Instant::now();
    let r = astra.optimize().expect("optimization succeeds");
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let dev = DeviceSpec::p100();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    for (name, model) in [("sc-rnn", Model::Scrnn), ("sublstm", Model::SubLstm)] {
        let mut cfg = model.default_config(16);
        cfg.seq_len = 12;
        let built = model.build(&cfg);

        let mut base: Option<(Report, f64)> = None;
        for workers in [1usize, 4, 8] {
            let (r, wall_ms) = run(&built.graph, &dev, workers);
            if let Some((b, _)) = &base {
                assert_eq!(b.steady_ns.to_bits(), r.steady_ns.to_bits(), "results drifted");
                assert_eq!(b.configs_explored, r.configs_explored, "trial count drifted");
                assert_eq!(b.best, r.best, "winning config drifted");
            }
            assert_eq!(
                (r.fault_events, r.retries, r.quarantined),
                (0, 0, 0),
                "disabled fault plan must report zero fault counters"
            );
            let speedup = base.as_ref().map_or(1.0, |(_, w1)| w1 / wall_ms);
            println!(
                "{{\"model\":\"{name}\",\"workers\":{workers},\"host_cpus\":{host_cpus},\
                 \"wall_ms\":{wall_ms:.1},\
                 \"speedup_vs_workers1\":{speedup:.2},\"configs_explored\":{},\
                 \"plan_cache_hits\":{},\"plan_cache_misses\":{},\
                 \"fault_events\":{},\"retries\":{},\"quarantined\":{},\"sim_speedup\":{:.2}}}",
                r.configs_explored,
                r.plan_cache_hits,
                r.plan_cache_misses,
                r.fault_events,
                r.retries,
                r.quarantined,
                r.speedup(),
            );
            if base.is_none() {
                base = Some((r, wall_ms));
            }
        }
    }
}
