//! Wall-clock benchmarks for the exploration engine, in two parts.
//!
//! **Exhaustive sweep (the sim-cache headline).** For SC-RNN and subLSTM,
//! exhaustively enumerates per-unit stream assignments over the last `k`
//! units in segment order (lexicographic, last unit varying fastest), so
//! consecutive candidates share long schedule prefixes — the structure the
//! update tree's prefix exploration produces. Every candidate schedule is
//! emitted once up front; the timed region is pure trial simulation, once
//! with the [`SimCache`] resuming engine checkpoints and once cold from
//! `t = 0`. Interleaved min-of-7 sweeps each. Both modes are asserted bit-identical
//! per trial, and the cached mode must deliver at least a 2x
//! simulated-trial throughput at workers=1.
//!
//! **Driver scaling.** Runs the full `Astra_all` optimization at worker
//! counts 1, 4, and 8 (plus workers=1 with the sim cache disabled), each
//! setting twice on one `Astra` instance: a **cold** pass (first-ever
//! exploration, prefix groups and branch-point captures doing the heavy
//! lifting) and a **warm** pass (steady-state re-exploration — the
//! paper's repeated-mini-batch regime, where every trial replays its
//! full-run memo). Results must be bit-identical across all settings and
//! across the two passes; the warm pass must resume >= 70% of simulated
//! commands and beat the cache-off wall-clock outright. Interpret
//! `speedup_vs_workers1` against `host_cpus`: candidate evaluation is
//! pure CPU-bound simulation, so on a 1-CPU host extra workers can only
//! time-slice.
//!
//! **Predictor pruning.** The full exploration with the learned cost
//! model on versus off, interleaved min-of-N, each mode timed over a cold
//! and a steady-state pass. Rows report the trials-saved fraction and the
//! prediction MAE; the MiLSTM gate row must save >= 30% of simulated
//! trials while selecting the unpruned baseline's plan bit-for-bit.
//!
//! **Lint-derived driver features.** Sound bound pruning and
//! redundant-sync elision on the MiLSTM gate, each against a same-dims
//! baseline. The bound-prune row must skip >= 10% of trials with a
//! bit-identical plan; the elision row must remove waits while keeping
//! the simulated cost bit-identical.
//!
//! Prints one JSON document (`ci.sh bench` redirects it to
//! `BENCH_explore_speed.json`).

use std::time::Instant;

use astra_core::{
    build_units, emit_schedule, Astra, AstraOptions, Dims, ExecConfig, PlanContext, ProbeSpec,
    Report, SimCache,
};
use astra_distrib::node_topology;
use astra_gpu::{ClockMode, DeviceSpec, Engine, FaultPlan, Schedule};
use astra_models::Model;

fn min_ms(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Emits the candidate schedules of an exhaustive stream-assignment sweep:
/// the last `k` units each pick a stream in {0, 1}, enumerated with the
/// last unit varying fastest. Fixed head + lexicographic order means deep
/// prefix sharing between consecutive candidates.
fn sweep_schedules(model: Model, k: usize) -> Vec<Schedule> {
    let mut cfg = model.default_config(16);
    cfg.seq_len = 16;
    let built = model.build(&cfg);
    let ctx = PlanContext::new(&built.graph);
    let mut exec = ExecConfig::baseline();
    exec.num_streams = 2;
    let units = build_units(&ctx, &exec).expect("baseline config is valid");
    let k = k.min(units.len());
    let first_varying = units.len() - k;
    let mut scheds = Vec::with_capacity(1 << k);
    for pattern in 0u32..(1 << k) {
        let mut c = exec.clone();
        for (i, u) in units.iter().enumerate() {
            let s = if i < first_varying {
                i % 2
            } else {
                ((pattern >> (units.len() - 1 - i)) & 1) as usize
            };
            c.streams.insert(u.id, s);
        }
        let (sched, _) = emit_schedule(&ctx, &c, &units, None, &ProbeSpec::none());
        scheds.push(sched);
    }
    scheds
}

struct SweepResult {
    on_ms: f64,
    off_ms: f64,
    hits: u64,
    misses: u64,
    resumed_fraction: f64,
}

fn run_sweep(dev: &DeviceSpec, scheds: &[Schedule], reps: usize) -> SweepResult {
    let plan = FaultPlan::none();
    let clock = ClockMode::Fixed;

    // Cold reference results, also the bit-identity oracle.
    let reference: Vec<u64> = scheds
        .iter()
        .map(|s| Engine::new(dev).run(s).expect("cold trial").total_ns.to_bits())
        .collect();

    // Cache-off and cache-on sweeps interleave, and each mode keeps its
    // *minimum* wall-clock: host noise only ever adds time, so the min is
    // the robust estimate on a shared box.
    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    let mut counters = (0, 0, 0.0);
    for _ in 0..reps {
        let t0 = Instant::now();
        for s in scheds {
            let r = Engine::new(dev).run(s).expect("cold trial");
            std::hint::black_box(r.total_ns);
        }
        off.push(t0.elapsed().as_secs_f64() * 1e3);

        // Fresh cache per repetition: each sample is one exploration pass.
        let mut cache = SimCache::with_capacity(8 * scheds.len());
        let t0 = Instant::now();
        for (i, s) in scheds.iter().enumerate() {
            let (resume, caps) = cache.probe_and_plan(s, dev, clock, &plan, i as u64);
            let (r, captured) = Engine::with_faults(dev, clock, plan, i as u64)
                .run_incremental(s, resume.as_deref(), &caps)
                .expect("resumed trial");
            cache.absorb(dev, clock, &plan, i as u64, captured);
            assert_eq!(
                r.total_ns.to_bits(),
                reference[i],
                "trial {i}: resumed run drifted from cold run"
            );
        }
        on.push(t0.elapsed().as_secs_f64() * 1e3);
        counters = (cache.hits(), cache.misses(), cache.resumed_fraction());
    }

    SweepResult {
        on_ms: min_ms(&on),
        off_ms: min_ms(&off),
        hits: counters.0,
        misses: counters.1,
        resumed_fraction: counters.2,
    }
}

fn run_driver(
    graph: &astra_ir::Graph,
    dev: &DeviceSpec,
    workers: usize,
    sim_cache: bool,
    verify: bool,
) -> (Report, f64) {
    // Explicitly fault-free: this benchmark doubles as the zero-cost check —
    // a disabled FaultPlan must leave the counters at exactly zero.
    let opts = AstraOptions {
        dims: Dims::all(),
        workers,
        faults: FaultPlan::none(),
        sim_cache,
        verify,
        ..Default::default()
    };
    let mut astra = Astra::new(graph, dev, opts);
    let t0 = Instant::now();
    let r = astra.optimize().expect("optimization succeeds");
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// One cold + one warm optimization pass on a single `Astra` instance,
/// individually timed. The warm pass re-explores with the sim cache still
/// holding the cold pass's captures — the steady-state regime.
fn run_driver_cold_warm(
    graph: &astra_ir::Graph,
    dev: &DeviceSpec,
    workers: usize,
    sim_cache: bool,
) -> (Report, f64, Report, f64) {
    let opts = AstraOptions {
        dims: Dims::all(),
        workers,
        faults: FaultPlan::none(),
        sim_cache,
        verify: true,
        // Off on purpose: this section benchmarks the sim cache's
        // steady-state regime, whose cold/warm bit-identity contract the
        // predictor's bounded-regret pruning intentionally relaxes (the
        // warm pass starts with a fully trained model and prunes from the
        // first batch). The predictor has its own section below.
        predictor: false,
        ..Default::default()
    };
    let mut astra = Astra::new(graph, dev, opts);
    let t0 = Instant::now();
    let cold = astra.optimize().expect("cold pass succeeds");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let warm = astra.optimize().expect("warm pass succeeds");
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    (cold, cold_ms, warm, warm_ms)
}

fn main() {
    let dev = DeviceSpec::p100();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let models = [("sc-rnn", Model::Scrnn), ("sublstm", Model::SubLstm)];

    let mut sweep_rows = Vec::new();
    for (name, model) in models {
        let scheds = sweep_schedules(model, 8);
        let reps = 7;
        let r = run_sweep(&dev, &scheds, reps);
        let trials = scheds.len();
        let thr_on = trials as f64 / (r.on_ms / 1e3);
        let thr_off = trials as f64 / (r.off_ms / 1e3);
        let speedup = thr_on / thr_off;
        assert!(
            speedup >= 2.0,
            "{name}: sim cache must give >= 2x trial throughput, got {speedup:.2}x"
        );
        sweep_rows.push(format!(
            "{{\"model\":\"{name}\",\"trials\":{trials},\"reps\":{reps},\
             \"cache_on_ms\":{:.1},\"cache_off_ms\":{:.1},\
             \"trials_per_sec_on\":{thr_on:.0},\"trials_per_sec_off\":{thr_off:.0},\
             \"throughput_speedup\":{speedup:.2},\
             \"sim_cache_hits\":{},\"sim_cache_misses\":{},\"resumed_fraction\":{:.3}}}",
            r.on_ms, r.off_ms, r.hits, r.misses, r.resumed_fraction,
        ));
    }

    let mut driver_rows = Vec::new();
    for (name, model) in models {
        let mut cfg = model.default_config(16);
        cfg.seq_len = 12;
        let built = model.build(&cfg);

        let reps = 3;
        let settings = [(1usize, true), (4, true), (8, true), (1, false)];
        // Rounds interleave the settings (like the sweep interleaves its
        // modes) so slow host phases hit every setting equally; each
        // setting keeps its per-pass minimum.
        let mut cold_samples = vec![Vec::with_capacity(reps); settings.len()];
        let mut warm_samples = vec![Vec::with_capacity(reps); settings.len()];
        let mut reports: Vec<Option<(Report, Report)>> = vec![None; settings.len()];
        for _ in 0..reps {
            for (si, &(workers, sim_cache)) in settings.iter().enumerate() {
                let (c, c_ms, w, w_ms) =
                    run_driver_cold_warm(&built.graph, &dev, workers, sim_cache);
                cold_samples[si].push(c_ms);
                warm_samples[si].push(w_ms);
                reports[si] = Some((c, w));
            }
        }

        let mut base: Option<(Report, Report, f64, f64)> = None;
        let mut off_warm_ms = f64::INFINITY;
        for (si, &(workers, sim_cache)) in settings.iter().enumerate() {
            let (cold, warm) = reports[si].take().expect("every setting ran");
            let (cold_ms, warm_ms) = (min_ms(&cold_samples[si]), min_ms(&warm_samples[si]));

            // Steady-state re-exploration must change nothing but time.
            assert_eq!(
                cold.steady_ns.to_bits(),
                warm.steady_ns.to_bits(),
                "{name}: warm pass drifted from cold pass"
            );
            assert_eq!(cold.best, warm.best, "{name}: warm winning config drifted");
            // The warm pass explores *fewer* mini-batches (the profile
            // index already answers some phases — adaptation reuse), but
            // never more.
            assert!(
                warm.configs_explored <= cold.configs_explored,
                "{name}: warm pass must not explore more than the cold pass"
            );
            if let Some((bc, bw, _, _)) = &base {
                assert_eq!(bc.steady_ns.to_bits(), cold.steady_ns.to_bits(), "results drifted");
                assert_eq!(bc.configs_explored, cold.configs_explored, "trial count drifted");
                assert_eq!(bc.best, cold.best, "winning config drifted");
                if sim_cache {
                    // Counters are a pure function of batch content: any
                    // worker count, same numbers.
                    for (b, r) in [(bc, &cold), (bw, &warm)] {
                        assert_eq!(b.sim_cache_hits, r.sim_cache_hits, "hits drifted");
                        assert_eq!(b.sim_cache_misses, r.sim_cache_misses, "misses drifted");
                        assert_eq!(
                            b.sim_cache_hit_depth, r.sim_cache_hit_depth,
                            "hit-depth histogram drifted"
                        );
                        assert_eq!(
                            b.prefix_group_count, r.prefix_group_count,
                            "prefix group count drifted"
                        );
                        assert_eq!(
                            b.resumed_fraction.to_bits(),
                            r.resumed_fraction.to_bits(),
                            "resumed fraction drifted"
                        );
                    }
                }
            }
            for r in [&cold, &warm] {
                assert_eq!(
                    (r.fault_events, r.retries, r.quarantined),
                    (0, 0, 0),
                    "disabled fault plan must report zero fault counters"
                );
            }
            if sim_cache {
                assert!(
                    warm.resumed_fraction >= 0.7,
                    "{name} workers={workers}: steady-state re-exploration must resume \
                     >= 70% of simulated commands, got {:.3}",
                    warm.resumed_fraction
                );
            } else {
                for r in [&cold, &warm] {
                    assert_eq!(
                        (r.sim_cache_hits, r.sim_cache_misses),
                        (0, 0),
                        "disabled sim cache must report zero counters"
                    );
                    assert_eq!(r.prefix_group_count, 0, "no grouping with the cache off");
                    assert_eq!(
                        r.sim_cache_hit_depth.iter().sum::<u64>(),
                        0,
                        "no hit depths with the cache off"
                    );
                }
                off_warm_ms = warm_ms;
            }

            let speedup = base.as_ref().map_or(1.0, |(_, _, w1, _)| w1 / cold_ms);
            let depth: Vec<String> =
                warm.sim_cache_hit_depth.iter().map(|c| c.to_string()).collect();
            driver_rows.push(format!(
                "{{\"model\":\"{name}\",\"workers\":{workers},\"sim_cache\":{sim_cache},\
                 \"cold_wall_ms\":{cold_ms:.1},\"warm_wall_ms\":{warm_ms:.1},\"reps\":{reps},\
                 \"speedup_vs_workers1\":{speedup:.2},\"configs_explored\":{},\
                 \"plan_cache_hits\":{},\"plan_cache_misses\":{},\
                 \"sim_cache_hits\":{},\"sim_cache_misses\":{},\
                 \"cold_resumed_fraction\":{:.3},\"warm_resumed_fraction\":{:.3},\
                 \"prefix_groups\":{},\"warm_hit_depth\":[{}],\
                 \"fault_events\":{},\"retries\":{},\"quarantined\":{},\"sim_speedup\":{:.2}}}",
                cold.configs_explored,
                cold.plan_cache_hits,
                cold.plan_cache_misses,
                cold.sim_cache_hits + warm.sim_cache_hits,
                cold.sim_cache_misses + warm.sim_cache_misses,
                cold.resumed_fraction,
                warm.resumed_fraction,
                cold.prefix_group_count,
                depth.join(","),
                cold.fault_events,
                cold.retries,
                cold.quarantined,
                cold.speedup(),
            ));
            if base.is_none() {
                base = Some((cold, warm, cold_ms, warm_ms));
            }
        }

        // The steady-state gate: with captures resident, re-exploration
        // must beat the cache-off driver outright at workers=1.
        let (_, _, _, on_warm_ms) = base.as_ref().expect("workers=1 row ran");
        assert!(
            on_warm_ms < &off_warm_ms,
            "{name}: steady-state cache-on must beat cache-off wall-clock \
             ({on_warm_ms:.1}ms on vs {off_warm_ms:.1}ms off)"
        );
    }

    // Verification overhead: the static verifier runs once per distinct
    // plan key, so a full exploration with it on must stay within 5% of
    // off — and be bit-identical, since rejects never fire on clean plans.
    let mut verify_rows = Vec::new();
    for (name, model) in models {
        let mut cfg = model.default_config(16);
        cfg.seq_len = 12;
        let built = model.build(&cfg);
        let reps = 7;
        let mut on = Vec::with_capacity(reps);
        let mut off = Vec::with_capacity(reps);
        let mut plans_verified = 0;
        for _ in 0..reps {
            let (r_on, w_on) = run_driver(&built.graph, &dev, 1, true, true);
            let (r_off, w_off) = run_driver(&built.graph, &dev, 1, true, false);
            assert_eq!(
                r_on.steady_ns.to_bits(),
                r_off.steady_ns.to_bits(),
                "{name}: verification must not change the outcome"
            );
            assert_eq!(r_on.configs_explored, r_off.configs_explored, "trial count drifted");
            assert_eq!(r_on.best, r_off.best, "winning config drifted");
            assert!(r_on.plans_verified > 0, "{name}: verification must actually run");
            assert_eq!(r_on.verify_rejects, 0, "{name}: clean plans must not be rejected");
            assert_eq!(
                (r_off.plans_verified, r_off.verify_rejects),
                (0, 0),
                "{name}: disabled verification must report zero counters"
            );
            on.push(w_on);
            off.push(w_off);
            plans_verified = r_on.plans_verified;
        }
        let on_ms = min_ms(&on);
        let off_ms = min_ms(&off);
        // Each rep times on and off back-to-back, so the per-rep ratio
        // cancels host-load drift that independent minima don't; the best
        // paired ratio is the honest overhead floor on a noisy host.
        let overhead = on
            .iter()
            .zip(&off)
            .map(|(a, b)| a / b - 1.0)
            .fold(f64::INFINITY, f64::min);
        assert!(
            overhead <= 0.05,
            "{name}: cached verification must cost < 5% \
             (best paired overhead {:.1}%, mins {on_ms:.1}ms on vs {off_ms:.1}ms off)",
            overhead * 100.0
        );
        verify_rows.push(format!(
            "{{\"model\":\"{name}\",\"reps\":{reps},\
             \"verify_on_ms\":{on_ms:.1},\"verify_off_ms\":{off_ms:.1},\
             \"overhead_frac\":{overhead:.4},\"plans_verified\":{plans_verified}}}"
        ));
    }

    // Predictor pruning: the full exploration with the learned cost model
    // scoring lookahead batches (top-1 per variable + epsilon tail
    // simulated, the rest inheriting predicted costs) versus the unpruned
    // driver. Each rep interleaves on and off, and each mode runs a cold
    // pass plus a steady-state (warm) pass on one `Astra` instance; every
    // mode keeps its per-pass minimum. The MiLSTM row is the gate: it must
    // save >= 30% of simulated trials while selecting a plan whose steady
    // state is bit-identical to the unpruned baseline's.
    let mut predictor_rows = Vec::new();
    for (name, model, seq, gate) in [
        ("sc-rnn", Model::Scrnn, Some(12), false),
        ("sublstm", Model::SubLstm, Some(12), false),
        ("milstm", Model::MiLstm, None, true),
    ] {
        let mut cfg = model.default_config(16);
        if let Some(s) = seq {
            cfg.seq_len = s;
        }
        let built = model.build(&cfg);
        let run_pred = |predictor: bool| {
            let opts = AstraOptions {
                dims: Dims::all(),
                faults: FaultPlan::none(),
                predictor,
                predictor_top_k: 1,
                ..Default::default()
            };
            let mut astra = Astra::new(&built.graph, &dev, opts);
            let t0 = Instant::now();
            let cold = astra.optimize().expect("predictor cold pass succeeds");
            let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            let warm = astra.optimize().expect("predictor warm pass succeeds");
            (cold, cold_ms, warm, t0.elapsed().as_secs_f64() * 1e3)
        };

        let reps = if gate { 2 } else { 3 };
        let mut on_cold_ms = Vec::with_capacity(reps);
        let mut on_warm_ms = Vec::with_capacity(reps);
        let mut off_cold_ms = Vec::with_capacity(reps);
        let mut off_warm_ms = Vec::with_capacity(reps);
        let mut on_rep: Option<(Report, Report)> = None;
        let mut off_rep: Option<(Report, Report)> = None;
        for _ in 0..reps {
            let (c, c_ms, w, w_ms) = run_pred(true);
            on_cold_ms.push(c_ms);
            on_warm_ms.push(w_ms);
            if let Some((pc, pw)) = &on_rep {
                assert_eq!(pc.steady_ns.to_bits(), c.steady_ns.to_bits(), "{name}: on drifted");
                assert_eq!(pc.trials_pruned, c.trials_pruned, "{name}: pruning drifted");
                assert_eq!(pw.trials_pruned, w.trials_pruned, "{name}: warm pruning drifted");
            }
            on_rep = Some((c, w));
            let (c, c_ms, w, w_ms) = run_pred(false);
            off_cold_ms.push(c_ms);
            off_warm_ms.push(w_ms);
            if let Some((pc, _)) = &off_rep {
                assert_eq!(pc.steady_ns.to_bits(), c.steady_ns.to_bits(), "{name}: off drifted");
            }
            off_rep = Some((c, w));
        }
        let (on_cold, on_warm) = on_rep.expect("predictor-on reps ran");
        let (off_cold, off_warm) = off_rep.expect("predictor-off reps ran");

        // The off path is exactly the pre-predictor driver.
        for r in [&off_cold, &off_warm] {
            assert_eq!(
                (r.trials_pruned, r.predictor_updates),
                (0, 0),
                "{name}: predictor off must report zero counters"
            );
            assert_eq!(r.predicted_vs_measured_mae, 0.0, "{name}: off must report zero MAE");
        }
        assert!(on_cold.predictor_updates > 0, "{name}: committed trials must train the model");

        let total = off_cold.configs_explored as f64;
        let saved = on_cold.trials_pruned as f64 / total;
        let drift =
            (on_cold.steady_ns - off_cold.steady_ns).abs() / off_cold.steady_ns;
        assert!(
            drift <= 0.05,
            "{name}: pruned search must converge within 5% (drifted {:.2}%)",
            drift * 100.0
        );
        if gate {
            assert!(
                saved >= 0.30,
                "{name}: the gate workload must save >= 30% of simulated trials, \
                 got {:.1}% ({} pruned of {})",
                saved * 100.0,
                on_cold.trials_pruned,
                off_cold.configs_explored
            );
            assert_eq!(
                on_cold.steady_ns.to_bits(),
                off_cold.steady_ns.to_bits(),
                "{name}: the gate workload must select the unpruned baseline's plan"
            );
            assert_eq!(on_cold.best, off_cold.best, "{name}: gate winner drifted");
            assert_eq!(
                on_cold.configs_explored + on_cold.trials_pruned,
                off_cold.configs_explored,
                "{name}: simulated + pruned must cover the unpruned space"
            );
        }
        // Steady state: the warm model prunes at least as hard as the cold
        // pass's (it starts fully trained).
        let warm_saved =
            on_warm.trials_pruned as f64 / off_warm.configs_explored.max(1) as f64;
        predictor_rows.push(format!(
            "{{\"model\":\"{name}\",\"reps\":{reps},\"gate\":{gate},\
             \"on_cold_ms\":{:.1},\"on_warm_ms\":{:.1},\
             \"off_cold_ms\":{:.1},\"off_warm_ms\":{:.1},\
             \"trials_pruned\":{},\"trials_simulated\":{},\"unpruned_trials\":{},\
             \"trials_saved_frac\":{saved:.3},\"warm_trials_saved_frac\":{warm_saved:.3},\
             \"steady_drift_frac\":{drift:.5},\"predictor_updates\":{},\
             \"predicted_vs_measured_mae_us\":{:.2}}}",
            min_ms(&on_cold_ms),
            min_ms(&on_warm_ms),
            min_ms(&off_cold_ms),
            min_ms(&off_warm_ms),
            on_cold.trials_pruned,
            on_cold.configs_explored,
            off_cold.configs_explored,
            on_cold.predictor_updates,
            on_cold.predicted_vs_measured_mae / 1e3,
        ));
    }

    // Lint-derived driver features on the MiLSTM gate, each mode against
    // a same-dims baseline with the feature off, interleaved min-of-N.
    // Bound pruning runs the fusion+kernel dims (where span floors bite on
    // the single-stream probe regions) and must skip >= 10% of trials with
    // a bit-identical plan; redundant-sync elision runs with the streams
    // dimension open (single-stream plans carry no elidable waits) and
    // must keep the simulated cost bit-identical while removing waits.
    let mut lint_rows = Vec::new();
    {
        let cfg = Model::MiLstm.default_config(16);
        let built = Model::MiLstm.build(&cfg);
        let run_mode = |dims: Dims, bound_prune: bool, elide_syncs: bool| {
            let opts = AstraOptions {
                dims,
                faults: FaultPlan::none(),
                bound_prune,
                elide_syncs,
                ..Default::default()
            };
            let mut astra = Astra::new(&built.graph, &dev, opts);
            let t0 = Instant::now();
            let r = astra.optimize().expect("lint bench pass succeeds");
            (r, t0.elapsed().as_secs_f64() * 1e3)
        };
        let reps = 3;
        // (mode label, dims label, dims, bound_prune, elide_syncs)
        let modes = [
            ("bound_prune", "fk", Dims::fk(), true, false),
            ("elide_syncs", "fks", Dims::fks(), false, true),
        ];
        for (mode, dims_label, dims, bound_prune, elide_syncs) in modes {
            let mut base_ms = Vec::with_capacity(reps);
            let mut on_ms = Vec::with_capacity(reps);
            let mut base: Option<Report> = None;
            let mut on: Option<Report> = None;
            for _ in 0..reps {
                let (r, ms) = run_mode(dims, false, false);
                base_ms.push(ms);
                if let Some(p) = &base {
                    assert_eq!(
                        p.steady_ns.to_bits(),
                        r.steady_ns.to_bits(),
                        "{mode}: baseline drifted across reps"
                    );
                }
                base = Some(r);
                let (r, ms) = run_mode(dims, bound_prune, elide_syncs);
                on_ms.push(ms);
                on = Some(r);
            }
            let (base, on) = (base.unwrap(), on.unwrap());
            assert_eq!(
                (base.bound_pruned, base.syncs_elided, base.lint_rejects),
                (0, 0, 0),
                "{mode}: counters must be zero with the features off"
            );
            assert_eq!(
                on.steady_ns.to_bits(),
                base.steady_ns.to_bits(),
                "{mode}: must keep the simulated cost bit-identical"
            );
            assert_eq!(on.best, base.best, "{mode}: winner drifted from baseline");
            let considered = on.configs_explored + on.bound_pruned;
            if bound_prune {
                assert!(
                    on.bound_pruned * 10 >= considered,
                    "{mode}: skipped only {} of {considered} trials (< 10%)",
                    on.bound_pruned
                );
            }
            if elide_syncs {
                assert!(on.syncs_elided > 0, "{mode}: gate workload must carry redundant waits");
            }
            lint_rows.push(format!(
                "{{\"mode\":\"{mode}\",\"model\":\"milstm\",\"dims\":\"{dims_label}\",\
                 \"reps\":{reps},\"base_ms\":{:.1},\"on_ms\":{:.1},\
                 \"bound_pruned\":{},\"trials_simulated\":{},\
                 \"bound_skipped_frac\":{:.3},\"syncs_elided\":{}}}",
                min_ms(&base_ms),
                min_ms(&on_ms),
                on.bound_pruned,
                on.configs_explored,
                on.bound_pruned as f64 / considered as f64,
                on.syncs_elided,
            ));
        }
    }

    // Multi-device placement search: the same exploration on 1/2/4-device
    // nvlink nodes. Single-device placement is always a candidate, so the
    // multi-device winner can never be slower than the devices=1 steady
    // state; the wall-clock row shows what the extra placement dimension
    // costs the driver.
    let mut device_rows = Vec::new();
    {
        // Compute-bound regime (large batch, moderate hidden): per-device
        // GEMM time scales with the batch share, so placement genuinely
        // moves the steady state.
        let mut cfg = Model::SubLstm.default_config(256);
        cfg.seq_len = 8;
        cfg.hidden = 256;
        cfg.input = 256;
        cfg.vocab = 1000;
        let built = Model::SubLstm.build(&cfg);
        let mut single_steady: Option<f64> = None;
        for devices in [1usize, 2, 4] {
            let topo = node_topology(&devices.to_string(), "nvlink", &dev)
                .expect("benchmark node parses");
            let opts = AstraOptions {
                dims: Dims { fusion: false, kernel: false, streams: false, alloc: false },
                faults: FaultPlan::none(),
                ..Default::default()
            };
            let reps = 3;
            let mut wall = Vec::with_capacity(reps);
            let mut report: Option<Report> = None;
            for _ in 0..reps {
                let mut astra = Astra::with_topology(&built.graph, &topo, opts.clone());
                let t0 = Instant::now();
                let r = astra.optimize().expect("placement exploration succeeds");
                wall.push(t0.elapsed().as_secs_f64() * 1e3);
                if let Some(prev) = &report {
                    assert_eq!(
                        prev.steady_ns.to_bits(),
                        r.steady_ns.to_bits(),
                        "devices={devices}: repeated exploration drifted"
                    );
                    assert_eq!(prev.best, r.best, "devices={devices}: winner drifted");
                }
                report = Some(r);
            }
            let r = report.expect("at least one rep ran");
            match single_steady {
                None => {
                    assert_eq!(r.placements_explored, 0, "one device has no placement space");
                    single_steady = Some(r.steady_ns);
                }
                Some(s1) => {
                    assert!(r.placements_explored > 1, "multi-device must explore placements");
                    assert!(
                        r.steady_ns <= s1,
                        "devices={devices}: single placement is a candidate, so the winner \
                         can never be slower than devices=1 ({:.0} vs {s1:.0})",
                        r.steady_ns
                    );
                }
            }
            let util: Vec<String> =
                r.device_utilization.iter().map(|u| format!("{u:.3}")).collect();
            device_rows.push(format!(
                "{{\"devices\":{devices},\"wall_ms\":{:.1},\"reps\":{reps},\
                 \"steady_ns\":{:.0},\"placement\":\"{}\",\"placements_explored\":{},\
                 \"configs_explored\":{},\"cost_per_throughput\":{:.0},\
                 \"device_utilization\":[{}]}}",
                min_ms(&wall),
                r.steady_ns,
                r.best.placement.label(),
                r.placements_explored,
                r.configs_explored,
                r.cost_per_throughput,
                util.join(","),
            ));
        }
    }

    println!(
        "{{\n\"host_cpus\":{host_cpus},\n\"exhaustive_sweep\":[\n{}\n],\n\"driver\":[\n{}\n],\n\"verify_overhead\":[\n{}\n],\n\"predictor\":[\n{}\n],\n\"lint\":[\n{}\n],\n\"devices_sweep\":[\n{}\n]\n}}",
        sweep_rows.join(",\n"),
        driver_rows.join(",\n"),
        verify_rows.join(",\n"),
        predictor_rows.join(",\n"),
        lint_rows.join(",\n"),
        device_rows.join(",\n"),
    );
}
