//! Wall-clock benchmarks for the exploration engine, in two parts.
//!
//! **Exhaustive sweep (the sim-cache headline).** For SC-RNN and subLSTM,
//! exhaustively enumerates per-unit stream assignments over the last `k`
//! units in segment order (lexicographic, last unit varying fastest), so
//! consecutive candidates share long schedule prefixes — the structure the
//! update tree's prefix exploration produces. Every candidate schedule is
//! emitted once up front; the timed region is pure trial simulation, once
//! with the [`SimCache`] resuming engine checkpoints and once cold from
//! `t = 0`. Interleaved min-of-7 sweeps each. Both modes are asserted bit-identical
//! per trial, and the cached mode must deliver at least a 2x
//! simulated-trial throughput at workers=1.
//!
//! **Driver scaling.** Runs the full `Astra_all` optimization at worker
//! counts 1, 4, and 8 (plus workers=1 with the sim cache disabled) and
//! reports wall-clock plus cache counters. Results must be bit-identical
//! across all settings. Interpret `speedup_vs_workers1` against
//! `host_cpus`: candidate evaluation is pure CPU-bound simulation, so on a
//! 1-CPU host extra workers can only time-slice.
//!
//! Prints one JSON document (`ci.sh bench` redirects it to
//! `BENCH_explore_speed.json`).

use std::time::Instant;

use astra_core::{
    build_units, emit_schedule, Astra, AstraOptions, Dims, ExecConfig, PlanContext, ProbeSpec,
    Report, SimCache,
};
use astra_gpu::{ClockMode, DeviceSpec, Engine, FaultPlan, Schedule};
use astra_models::Model;

fn min_ms(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Emits the candidate schedules of an exhaustive stream-assignment sweep:
/// the last `k` units each pick a stream in {0, 1}, enumerated with the
/// last unit varying fastest. Fixed head + lexicographic order means deep
/// prefix sharing between consecutive candidates.
fn sweep_schedules(model: Model, k: usize) -> Vec<Schedule> {
    let mut cfg = model.default_config(16);
    cfg.seq_len = 16;
    let built = model.build(&cfg);
    let ctx = PlanContext::new(&built.graph);
    let mut exec = ExecConfig::baseline();
    exec.num_streams = 2;
    let units = build_units(&ctx, &exec).expect("baseline config is valid");
    let k = k.min(units.len());
    let first_varying = units.len() - k;
    let mut scheds = Vec::with_capacity(1 << k);
    for pattern in 0u32..(1 << k) {
        let mut c = exec.clone();
        for (i, u) in units.iter().enumerate() {
            let s = if i < first_varying {
                i % 2
            } else {
                ((pattern >> (units.len() - 1 - i)) & 1) as usize
            };
            c.streams.insert(u.id, s);
        }
        let (sched, _) = emit_schedule(&ctx, &c, &units, None, &ProbeSpec::none());
        scheds.push(sched);
    }
    scheds
}

struct SweepResult {
    on_ms: f64,
    off_ms: f64,
    hits: u64,
    misses: u64,
    resumed_fraction: f64,
}

fn run_sweep(dev: &DeviceSpec, scheds: &[Schedule], reps: usize) -> SweepResult {
    let plan = FaultPlan::none();
    let clock = ClockMode::Fixed;

    // Cold reference results, also the bit-identity oracle.
    let reference: Vec<u64> = scheds
        .iter()
        .map(|s| Engine::new(dev).run(s).expect("cold trial").total_ns.to_bits())
        .collect();

    // Cache-off and cache-on sweeps interleave, and each mode keeps its
    // *minimum* wall-clock: host noise only ever adds time, so the min is
    // the robust estimate on a shared box.
    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    let mut counters = (0, 0, 0.0);
    for _ in 0..reps {
        let t0 = Instant::now();
        for s in scheds {
            let r = Engine::new(dev).run(s).expect("cold trial");
            std::hint::black_box(r.total_ns);
        }
        off.push(t0.elapsed().as_secs_f64() * 1e3);

        // Fresh cache per repetition: each sample is one exploration pass.
        let mut cache = SimCache::with_capacity(8 * scheds.len());
        let t0 = Instant::now();
        for (i, s) in scheds.iter().enumerate() {
            let (resume, caps) = cache.probe_and_plan(s, dev, clock, &plan, i as u64);
            let (r, captured) = Engine::with_faults(dev, clock, plan, i as u64)
                .run_incremental(s, resume.as_deref(), &caps)
                .expect("resumed trial");
            cache.absorb(dev, clock, &plan, i as u64, captured);
            assert_eq!(
                r.total_ns.to_bits(),
                reference[i],
                "trial {i}: resumed run drifted from cold run"
            );
        }
        on.push(t0.elapsed().as_secs_f64() * 1e3);
        counters = (cache.hits(), cache.misses(), cache.resumed_fraction());
    }

    SweepResult {
        on_ms: min_ms(&on),
        off_ms: min_ms(&off),
        hits: counters.0,
        misses: counters.1,
        resumed_fraction: counters.2,
    }
}

fn run_driver(
    graph: &astra_ir::Graph,
    dev: &DeviceSpec,
    workers: usize,
    sim_cache: bool,
    verify: bool,
) -> (Report, f64) {
    // Explicitly fault-free: this benchmark doubles as the zero-cost check —
    // a disabled FaultPlan must leave the counters at exactly zero.
    let opts = AstraOptions {
        dims: Dims::all(),
        workers,
        faults: FaultPlan::none(),
        sim_cache,
        verify,
        ..Default::default()
    };
    let mut astra = Astra::new(graph, dev, opts);
    let t0 = Instant::now();
    let r = astra.optimize().expect("optimization succeeds");
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let dev = DeviceSpec::p100();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let models = [("sc-rnn", Model::Scrnn), ("sublstm", Model::SubLstm)];

    let mut sweep_rows = Vec::new();
    for (name, model) in models {
        let scheds = sweep_schedules(model, 8);
        let reps = 7;
        let r = run_sweep(&dev, &scheds, reps);
        let trials = scheds.len();
        let thr_on = trials as f64 / (r.on_ms / 1e3);
        let thr_off = trials as f64 / (r.off_ms / 1e3);
        let speedup = thr_on / thr_off;
        assert!(
            speedup >= 2.0,
            "{name}: sim cache must give >= 2x trial throughput, got {speedup:.2}x"
        );
        sweep_rows.push(format!(
            "{{\"model\":\"{name}\",\"trials\":{trials},\"reps\":{reps},\
             \"cache_on_ms\":{:.1},\"cache_off_ms\":{:.1},\
             \"trials_per_sec_on\":{thr_on:.0},\"trials_per_sec_off\":{thr_off:.0},\
             \"throughput_speedup\":{speedup:.2},\
             \"sim_cache_hits\":{},\"sim_cache_misses\":{},\"resumed_fraction\":{:.3}}}",
            r.on_ms, r.off_ms, r.hits, r.misses, r.resumed_fraction,
        ));
    }

    let mut driver_rows = Vec::new();
    for (name, model) in models {
        let mut cfg = model.default_config(16);
        cfg.seq_len = 12;
        let built = model.build(&cfg);

        let mut base: Option<(Report, f64)> = None;
        for (workers, sim_cache) in [(1usize, true), (4, true), (8, true), (1, false)] {
            let (r, wall_ms) = run_driver(&built.graph, &dev, workers, sim_cache, true);
            if let Some((b, _)) = &base {
                assert_eq!(b.steady_ns.to_bits(), r.steady_ns.to_bits(), "results drifted");
                assert_eq!(b.configs_explored, r.configs_explored, "trial count drifted");
                assert_eq!(b.best, r.best, "winning config drifted");
            }
            assert_eq!(
                (r.fault_events, r.retries, r.quarantined),
                (0, 0, 0),
                "disabled fault plan must report zero fault counters"
            );
            if !sim_cache {
                assert_eq!(
                    (r.sim_cache_hits, r.sim_cache_misses),
                    (0, 0),
                    "disabled sim cache must report zero counters"
                );
            }
            let speedup = base.as_ref().map_or(1.0, |(_, w1)| w1 / wall_ms);
            driver_rows.push(format!(
                "{{\"model\":\"{name}\",\"workers\":{workers},\"sim_cache\":{sim_cache},\
                 \"wall_ms\":{wall_ms:.1},\
                 \"speedup_vs_workers1\":{speedup:.2},\"configs_explored\":{},\
                 \"plan_cache_hits\":{},\"plan_cache_misses\":{},\
                 \"sim_cache_hits\":{},\"sim_cache_misses\":{},\"resumed_fraction\":{:.3},\
                 \"fault_events\":{},\"retries\":{},\"quarantined\":{},\"sim_speedup\":{:.2}}}",
                r.configs_explored,
                r.plan_cache_hits,
                r.plan_cache_misses,
                r.sim_cache_hits,
                r.sim_cache_misses,
                r.resumed_fraction,
                r.fault_events,
                r.retries,
                r.quarantined,
                r.speedup(),
            ));
            if base.is_none() {
                base = Some((r, wall_ms));
            }
        }
    }

    // Verification overhead: the static verifier runs once per distinct
    // plan key, so a full exploration with it on must stay within 5% of
    // off — and be bit-identical, since rejects never fire on clean plans.
    let mut verify_rows = Vec::new();
    for (name, model) in models {
        let mut cfg = model.default_config(16);
        cfg.seq_len = 12;
        let built = model.build(&cfg);
        let reps = 5;
        let mut on = Vec::with_capacity(reps);
        let mut off = Vec::with_capacity(reps);
        let mut plans_verified = 0;
        for _ in 0..reps {
            let (r_on, w_on) = run_driver(&built.graph, &dev, 1, true, true);
            let (r_off, w_off) = run_driver(&built.graph, &dev, 1, true, false);
            assert_eq!(
                r_on.steady_ns.to_bits(),
                r_off.steady_ns.to_bits(),
                "{name}: verification must not change the outcome"
            );
            assert_eq!(r_on.configs_explored, r_off.configs_explored, "trial count drifted");
            assert_eq!(r_on.best, r_off.best, "winning config drifted");
            assert!(r_on.plans_verified > 0, "{name}: verification must actually run");
            assert_eq!(r_on.verify_rejects, 0, "{name}: clean plans must not be rejected");
            assert_eq!(
                (r_off.plans_verified, r_off.verify_rejects),
                (0, 0),
                "{name}: disabled verification must report zero counters"
            );
            on.push(w_on);
            off.push(w_off);
            plans_verified = r_on.plans_verified;
        }
        let on_ms = min_ms(&on);
        let off_ms = min_ms(&off);
        let overhead = on_ms / off_ms - 1.0;
        assert!(
            on_ms <= off_ms * 1.05,
            "{name}: cached verification must cost < 5% ({on_ms:.1}ms on vs {off_ms:.1}ms off)"
        );
        verify_rows.push(format!(
            "{{\"model\":\"{name}\",\"reps\":{reps},\
             \"verify_on_ms\":{on_ms:.1},\"verify_off_ms\":{off_ms:.1},\
             \"overhead_frac\":{overhead:.4},\"plans_verified\":{plans_verified}}}"
        ));
    }

    println!(
        "{{\n\"host_cpus\":{host_cpus},\n\"exhaustive_sweep\":[\n{}\n],\n\"driver\":[\n{}\n],\n\"verify_overhead\":[\n{}\n]\n}}",
        sweep_rows.join(",\n"),
        driver_rows.join(",\n"),
        verify_rows.join(",\n"),
    );
}
