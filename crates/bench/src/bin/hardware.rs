//! §6.7 / §7: hardware implications. On a faster device (V100-class) with
//! the same fixed launch overheads, even larger operations become
//! overhead-bound — so Astra's relative benefit *grows* with hardware
//! speed, and the same adaptation library transfers with zero cost-model
//! work (that is the point of measurement-driven optimization).

use astra_bench::{build, f2, optimize, print_row};
use astra_core::Dims;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    println!("Astra_FKS speedup over native, P100-class vs V100-class simulator");
    print_row(&["Model(batch)", "P100", "V100"].map(String::from));
    for (model, batch) in [(Model::SubLstm, 32u64), (Model::SubLstm, 128), (Model::Scrnn, 128)] {
        let built = build(model, batch);
        let p100 = optimize(&built.graph, &DeviceSpec::p100(), Dims::fks()).speedup();
        let v100 = optimize(&built.graph, &DeviceSpec::v100(), Dims::fks()).speedup();
        print_row(&[format!("{} ({batch})", model.name()), f2(p100), f2(v100)]);
    }
    println!();
    println!("paper (§6.7): with faster hardware even convolutions become 'cheap',");
    println!("widening the regime where cross-layer fusion and streams pay off.");
}
