//! Figure 1: the conflicting fusion/allocation choice in a recurrent
//! backward pass. Prints the enumerated fusion sets of the SC-RNN training
//! graph in the paper's trace style, the adjacency requirements, and the
//! allocation-strategy fork the conflict produces.

use astra_core::PlanContext;
use astra_gpu::DeviceSpec;
use astra_ir::Pass;
use astra_models::Model;

fn main() {
    let _dev = DeviceSpec::p100();
    let built = Model::Scrnn.build(&Model::Scrnn.default_config(16));
    let ctx = PlanContext::new(&built.graph);

    println!("Figure 1 — fusion sets in the SC-RNN training graph");
    println!();
    for set in &ctx.sets {
        let pass = built.graph.node(set.nodes[0][0]).prov.pass;
        let tag = if pass == Pass::Backward { "backward" } else { "forward" };
        println!(
            "  {:<55} {:>2} rows x {:>2} cols  {:?}  ({}{})",
            set.id,
            set.rows(),
            set.cols(),
            set.col_kind,
            tag,
            if set.row_fusable { ", row-fusable" } else { "" }
        );
    }
    println!();
    println!(
        "Adjacency conflicts: {} component(s), {} resolved statically",
        ctx.alloc.conflict_components, ctx.alloc.static_resolutions
    );
    println!("Conflicted sets: {:?}", {
        let mut v: Vec<_> = ctx.alloc.conflicted_sets.iter().collect();
        v.sort();
        v
    });
    println!();
    println!("Allocation strategies (the fork the custom wirer measures):");
    for (i, s) in ctx.alloc.strategies.iter().enumerate() {
        println!("  strategy {i}: {} ({} adjacency groups granted)", s.label, s.granted.len());
    }
    println!();
    println!("First backward-ladder instance, in the paper's trace notation:");
    if let Some(set) = ctx
        .sets
        .iter()
        .find(|s| s.col_kind == astra_core::enumerate::ColKind::Ladder)
    {
        for &n in &set.nodes[0] {
            let node = built.graph.node(n);
            let args: Vec<String> = node.inputs.iter().map(|t| t.to_string()).collect();
            println!("  {} = {}({})", node.output, node.op.mnemonic(), args.join(", "));
        }
    }
}
