//! §6.7: convolutional workloads. The paper's discussion argues that as
//! hardware gets faster, even convolutions become launch-overhead-bound and
//! benefit from the same adaptation library with zero new cost-model work.
//! This harness runs a small CNN classifier through every backend on the
//! P100- and V100-class simulators.

use astra_bench::{f2, native_ns, optimize, print_row, xla_ns};
use astra_core::Dims;
use astra_gpu::DeviceSpec;
use astra_models::{build_small_cnn, ModelConfig};

fn main() {
    println!("Small CNN classifier (3 conv layers, 24x24 images, batch sweep)");
    print_row(&["device/batch", "native(ms)", "XLA", "Astra_FKS"].map(String::from));
    for dev in [DeviceSpec::p100(), DeviceSpec::v100()] {
        for batch in [8u64, 64] {
            let mut cfg = ModelConfig::ptb(batch);
            cfg.input = 24;
            cfg.vocab = 10;
            let built = build_small_cnn(&cfg);
            let nat = native_ns(&built.graph, &dev);
            let xla = xla_ns(&built.graph, &dev);
            let astra = optimize(&built.graph, &dev, Dims::fks());
            print_row(&[
                format!("{} b={batch}", dev.name),
                format!("{:.2}", nat / 1e6),
                f2(nat / xla),
                f2(astra.speedup()),
            ]);
        }
    }
    println!();
    println!("Convolutions fuse no GEMMs (different op class), yet element-wise");
    println!("fusion and stream overlap still transfer — with zero cost-model work.");
}
