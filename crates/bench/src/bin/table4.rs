//! Table 4: subLSTM (PTB) speedups relative to native PyTorch (the paper's
//! headline up-to-3x model).

use astra_bench::print_ablation_table;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    print_ablation_table(Model::SubLstm, &DeviceSpec::p100());
}
