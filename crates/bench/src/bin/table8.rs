//! Table 8: dynamic graphs — Astra with bucketed adaptation vs the native
//! dynamic-graph baseline (§6.5). Sequence lengths follow a PTB-like
//! distribution; buckets are the paper's 13/18/24/30/83 (scaled to the
//! simulated sequence range).

use astra_bench::print_row;
use astra_core::{optimize_bucketed, AstraOptions, Dims};
use astra_gpu::DeviceSpec;
use astra_models::{LengthSampler, Model};

fn main() {
    let dev = DeviceSpec::p100();
    // Scale the paper's buckets into this build's unrolled range (the
    // simulator unrolls up to ~30 steps).
    let buckets: [u32; 5] = [13, 18, 24, 30, 36];
    let mut sampler = LengthSampler::new(17);
    let lengths: Vec<u32> =
        sampler.sample_n(10).into_iter().map(|l| l.clamp(4, 36)).collect();

    println!("Table 8 — speedup of Astra+bucketing over native dynamic graphs");
    print_row(&["Model", "Dynamic", "Astra+buckets"].map(String::from));
    for model in [Model::Scrnn, Model::SubLstm, Model::StackedLstm] {
        for batch in [16u64, 32] {
            let base_cfg = model.default_config(batch);
            let build_fn = |seq: u32| {
                let cfg = base_cfg.clone().with_seq_len(seq);
                model.build(&cfg).graph
            };
            let opts = AstraOptions { dims: Dims::fks(), ..Default::default() };
            let r = optimize_bucketed(build_fn, &lengths, &buckets, &dev, &opts)
                .expect("bucketed optimization runs");
            print_row(&[
                format!("{}-{batch}", model.name()),
                "1".to_owned(),
                format!("{:.2}", r.speedup()),
            ]);
        }
    }
    println!();
    println!("paper: SCRNN 1.61/1.43, subLSTM 2.47/2.13, StackedLSTM 2.44/2.22 (batch 16/32)");
}
