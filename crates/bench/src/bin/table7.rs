//! Table 7: size of the exploration state space post-pruning — number of
//! configurations explored (each one runs as a real training mini-batch),
//! for Astra_FKS and Astra_all, plus the always-on profiling overhead.

use astra_bench::{build, optimize, print_row};
use astra_core::Dims;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    let dev = DeviceSpec::p100();
    println!("Table 7 — configurations explored post-pruning (batch 32)");
    print_row(&["Model", "FKS", "All", "overhead%"].map(String::from));
    for model in [Model::Scrnn, Model::StackedLstm, Model::MiLstm, Model::SubLstm, Model::Gnmt] {
        let built = build(model, 32);
        let fks = optimize(&built.graph, &dev, Dims::fks());
        let all = optimize(&built.graph, &dev, Dims::all());
        print_row(&[
            model.name().to_owned(),
            fks.configs_explored.to_string(),
            all.configs_explored.to_string(),
            format!("{:.3}", all.profiling_overhead_frac * 100.0),
        ]);
    }
    println!();
    println!("paper:  SCRNN 303/1672, StackedLSTM 1219/1219, MI-LSTM 1191/1191,");
    println!("        SubLSTM 3207/5439, GNMT 2280/9303; overhead <0.5% for all");
}
