//! Figure 2: the exploration structure — super-epochs explored in parallel,
//! epochs prefix-wise within a super-epoch, equivalence classes within an
//! epoch. Prints the structure Astra builds for the SC-RNN model.

use astra_core::{build_units, enumerate::partition_units, ExecConfig, PlanContext};
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    let _dev = DeviceSpec::p100();
    let built = Model::Scrnn.build(&Model::Scrnn.default_config(16));
    let ctx = PlanContext::new(&built.graph);
    // Full-fusion configuration, as the stream phase would see it.
    let mut cfg = ExecConfig::baseline();
    for set in &ctx.sets {
        cfg.chunks.insert(
            set.id.clone(),
            (*set.row_chunks().last().unwrap(), *set.col_chunks().last().unwrap()),
        );
    }
    let units = match build_units(&ctx, &cfg) {
        Ok(u) => u,
        Err(_) => build_units(&ctx, &ExecConfig::baseline()).expect("baseline builds"),
    };
    let total_flops: f64 = units.iter().map(|u| u.flops).sum();
    let partition = partition_units(&units, total_flops / 8.0);

    println!("Figure 2 — exploration structure for SC-RNN ({} units)", units.len());
    println!();
    for (sei, se) in partition.super_epochs.iter().enumerate() {
        println!("Super-epoch {sei}  [explored in PARALLEL with other super-epochs; barrier at end]");
        for (ei, epoch) in se.epochs.iter().enumerate() {
            let classes: Vec<String> = epoch
                .classes
                .iter()
                .map(|c| format!("{}x {}", c.units.len(), c.key))
                .collect();
            println!(
                "  epoch {ei:<3} [PREFIX] {:>3} units: {}",
                epoch.units.len(),
                classes.join(", ")
            );
        }
        if sei >= 2 {
            println!("  ... ({} more super-epochs)", partition.super_epochs.len() - 3);
            break;
        }
    }
}
