//! §7: predictable execution. Under a pinned base clock, per-kernel timings
//! are exactly repeatable (one profiled mini-batch speaks for millions);
//! autoboost injects variance that breaks single-sample profiling.

use astra_gpu::{ClockMode, DeviceSpec, Engine, GemmLibrary, GemmShape, KernelDesc, Schedule, StreamId};

fn sample(dev: &DeviceSpec, mode: ClockMode, reps: usize) -> Vec<f64> {
    let mut sched = Schedule::new(1);
    sched.launch(
        StreamId(0),
        KernelDesc::Gemm { shape: GemmShape::new(64, 1024, 1024), lib: GemmLibrary::CublasLike },
    );
    let mut engine = Engine::with_clock(dev, mode);
    (0..reps).map(|_| engine.run(&sched).unwrap().total_ns).collect()
}

fn stats(xs: &[f64]) -> (f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt() / mean * 100.0)
}

fn main() {
    let dev = DeviceSpec::p100();
    let fixed = sample(&dev, ClockMode::Fixed, 20);
    let boost = sample(&dev, ClockMode::Autoboost { seed: 11 }, 20);
    let (fm, fcv) = stats(&fixed);
    let (bm, bcv) = stats(&boost);
    println!("Per-kernel repeatability over 20 runs of the same GEMM:");
    println!("  fixed base clock: mean {:.1} us, coeff. of variation {:.3}%", fm / 1e3, fcv);
    println!("  autoboost:        mean {:.1} us, coeff. of variation {:.3}%", bm / 1e3, bcv);
    println!();
    println!("paper (§7): the static base clock was key to enabling Astra's wins;");
    println!("autoboost caused variance and no measurable benefit.");
    assert!(fcv < 1e-9, "fixed clock must be exactly repeatable");
    assert!(bcv > 0.5, "autoboost must show variance");
}
