//! Export Chrome-tracing JSON of one mini-batch: native single-stream vs
//! the Astra-optimized multi-stream schedule. Open the files in
//! `chrome://tracing` or <https://ui.perfetto.dev> to *see* the fusion and the
//! stream overlap.

use astra_core::{Astra, AstraOptions, Dims};
use astra_exec::{lower, native_schedule};
use astra_gpu::{trace_json, DeviceSpec, Engine};
use astra_models::Model;

fn main() {
    let dev = DeviceSpec::p100();
    let model = Model::SubLstm;
    let built = model.build(&model.default_config(16));

    let native = Engine::new(&dev)
        .run(&native_schedule(&lower(&built.graph)))
        .expect("native runs");
    std::fs::write("trace_native.json", trace_json(&native, "native")).expect("write trace");

    let mut astra =
        Astra::new(&built.graph, &dev, AstraOptions { dims: Dims::all(), ..Default::default() });
    let report = astra.optimize().expect("optimize runs");
    // Re-run the best configuration once more to capture its spans.
    let units = astra_core::build_units(astra.context(), &report.best).expect("best builds");
    let (sched, _) = astra_core::emit_schedule(
        astra.context(),
        &report.best,
        &units,
        None,
        &astra_core::ProbeSpec::none(),
    );
    let optimized = Engine::new(&dev).run(&sched).expect("optimized runs");
    std::fs::write("trace_astra.json", trace_json(&optimized, "astra")).expect("write trace");

    println!("wrote trace_native.json ({} spans)", native.spans.len());
    println!("wrote trace_astra.json  ({} spans, {:.2}x faster)", optimized.spans.len(), report.speedup());
}
