//! Table 1: GEMM times (ms) for the two shapes of the paper, per library.
//!
//! Paper values (P100): 64x1024x4096 — cuBlas 0.156, OAI_1 0.125,
//! OAI_2 0.938; 64x4096x1024 — cuBlas 0.138, OAI_1 0.172, OAI_2 0.141.
//! The reproduction target is the per-shape *ordering* (the best library
//! depends on the shape, §3.1).

use astra_bench::{f2, print_row};
use astra_gpu::{DeviceSpec, GemmLibrary, GemmShape, time_gemm};

fn main() {
    let dev = DeviceSpec::p100();
    println!("Table 1 — GEMM time (ms) per library on {}", dev.name);
    print_row(&["Size", "cuBlas", "OAI_1", "OAI_2"].map(String::from));
    for shape in [GemmShape::new(64, 1024, 4096), GemmShape::new(64, 4096, 1024)] {
        let mut cells = vec![shape.to_string()];
        for lib in GemmLibrary::all() {
            cells.push(f2((time_gemm(shape, lib, &dev).time_ns + dev.launch_overhead_ns) / 1e6).to_string());
        }
        print_row(&cells);
    }
    println!();
    println!("paper:   64x1024x4096   0.156  0.125  0.938");
    println!("paper:   64x4096x1024   0.138  0.172  0.141");
}
