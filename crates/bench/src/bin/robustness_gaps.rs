//! Convergence quality under fault injection (the robustness harness as a
//! table). For each model, exhaustive noise-free exploration pins the
//! ground-truth best configuration; exploration is then re-run under each
//! fault profile (plus autoboost clock jitter) and the chosen config is
//! re-measured *clean* — the gap to ground truth is the number that
//! matters, not the noisy measurement that selected it. Mirrors
//! `tests/robustness.rs`, which enforces gap ≤ 5%.

use astra_bench::print_row;
use astra_core::{
    build_units, emit_schedule, Astra, AstraOptions, Dims, ExecConfig, PlanContext, ProbeSpec,
    Report,
};
use astra_gpu::{ClockMode, DeviceSpec, Engine, FaultPlan};
use astra_models::{BuiltModel, Model};

fn tiny(model: Model) -> BuiltModel {
    let mut c = model.default_config(8);
    c.hidden = 64;
    c.input = 64;
    c.vocab = 128;
    c.seq_len = 3;
    c.layers = c.layers.min(2);
    model.build(&c)
}

fn explore(built: &BuiltModel, clock: ClockMode, faults: FaultPlan) -> Report {
    let dev = DeviceSpec::p100();
    let opts = AstraOptions { dims: Dims::fk(), clock, faults, ..Default::default() };
    Astra::new(&built.graph, &dev, opts).optimize().expect("exploration completes")
}

fn clean_ns(built: &BuiltModel, cfg: &ExecConfig) -> f64 {
    let dev = DeviceSpec::p100();
    let ctx = PlanContext::new(&built.graph);
    let units = build_units(&ctx, cfg).expect("chosen config builds");
    let (sched, _) = emit_schedule(&ctx, cfg, &units, None, &ProbeSpec::none());
    Engine::new(&dev).run(&sched).expect("clean run").total_ns
}

fn main() {
    let profiles = [
        ("spikes", FaultPlan::timing_spikes(0xA57A_0001)),
        ("launch", FaultPlan::launch_failures(0xA57A_0002)),
        ("alloc", FaultPlan::alloc_failures(8)),
        ("straggler", FaultPlan::stragglers(43)),
        ("chaos", FaultPlan::chaos(0xA57A_0005)),
    ];
    println!("Convergence gap vs noise-free ground truth, per fault profile");
    println!("(gap = clean time of chosen config / clean time of true best - 1)");
    print_row(&["Model", "Profile", "gap%", "events", "retries", "quarant."].map(String::from));
    for model in [Model::Scrnn, Model::SubLstm, Model::MiLstm] {
        let built = tiny(model);
        let gt = explore(&built, ClockMode::Fixed, FaultPlan::none());
        let gt_ns = clean_ns(&built, &gt.best);
        for (name, plan) in &profiles {
            let r = explore(&built, ClockMode::Autoboost { seed: 17 }, *plan);
            let gap = (clean_ns(&built, &r.best) / gt_ns - 1.0) * 100.0;
            print_row(&[
                model.name().to_owned(),
                (*name).to_owned(),
                format!("{gap:.2}"),
                format!("{}", r.fault_events),
                format!("{}", r.retries),
                format!("{}", r.quarantined),
            ]);
        }
    }
    println!();
    println!("gate: tests/robustness.rs fails any profile whose gap exceeds 5%");
}
