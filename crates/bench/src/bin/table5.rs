//! Table 5: PTB Stacked LSTM ("large", hidden 1500) relative to the
//! cuDNN-like hand-optimized accelerator — the "how close to
//! hand-optimization" experiment (§6.3).

use astra_bench::print_cudnn_table;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    print_cudnn_table(Model::StackedLstm, &DeviceSpec::p100());
}
