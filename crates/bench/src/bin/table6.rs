//! Table 6: GNMT relative to the cuDNN-like accelerator. GNMT's LSTM stacks
//! are covered; the attention module is not (§6.3).

use astra_bench::print_cudnn_table;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    print_cudnn_table(Model::Gnmt, &DeviceSpec::p100());
}
