//! Table 2: SC-RNN (PTB) speedups relative to native PyTorch, with the
//! ablation columns Astra_F / Astra_FK / Astra_FKS / Astra_all.

use astra_bench::print_ablation_table;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    print_ablation_table(Model::Scrnn, &DeviceSpec::p100());
}
