//! Table 3: MI-LSTM (Hutter challenge) speedups relative to native PyTorch.

use astra_bench::print_ablation_table;
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn main() {
    print_ablation_table(Model::MiLstm, &DeviceSpec::p100());
}
