//! §3.4 extension: trading computation for memory. For each checkpoint
//! segment length, the schedule with real recompute kernels is *measured*
//! (time) and its activation liveness analysed (peak bytes) — then a memory
//! cap picks the fastest feasible configuration, including the paper's
//! "2x mini-batch via recompute" scenario.

use astra_bench::print_row;
use astra_core::{explore_recompute, ExecConfig, PlanContext};
use astra_gpu::DeviceSpec;
use astra_models::{Model, ModelConfig};

fn main() {
    let dev = DeviceSpec::p100();
    let model = Model::SubLstm;
    // Activation-dominated regime: a long unroll with a small output head
    // (encoder-style). With a 10k-vocab LM head, weight-gradient buffers
    // floor the peak and checkpointing has nothing to free.
    let mk = |batch: u64| ModelConfig {
        seq_len: 48,
        vocab: 512,
        ..model.default_config(batch)
    };

    // Recompute is explored on the *unfused* dispatch: cross-timestep
    // fusion turns most activations into segment-crossing checkpoints,
    // leaving checkpointing nothing to free — a genuine tension between the
    // fusion and memory dimensions that the measured exploration exposes.
    println!("Recompute/memory tradeoff — {} (batch 16, 48 steps, small head)", model.name());
    print_row(&["segment", "time(ms)", "peak(MB)", "re-launches"].map(String::from));
    let built = model.build(&mk(16));
    let ctx = PlanContext::new(&built.graph);
    let r = explore_recompute(&ctx, &ExecConfig::baseline(), &dev, &[u32::MAX, 16, 8, 4, 2])
        .expect("exploration runs");
    for p in &r.points {
        let seg = if p.segment_steps == u32::MAX { "off".to_owned() } else { p.segment_steps.to_string() };
        print_row(&[
            seg,
            format!("{:.2}", p.time_ns / 1e6),
            format!("{:.1}", p.peak_bytes / 1e6),
            p.recompute_launches.to_string(),
        ]);
    }

    // The 2x-batch scenario: a cap that fits batch 16 plain forces batch 32
    // into checkpointing; per-sample time decides the winner.
    let cap = r.points[0].peak_bytes * 1.25;
    println!();
    println!("Memory cap: {:.1} MB (fits batch 16 without recompute)", cap / 1e6);
    let big = model.build(&mk(32));
    let ctx_big = PlanContext::new(&big.graph);
    let rb = explore_recompute(&ctx_big, &ExecConfig::baseline(), &dev, &[u32::MAX, 8, 4, 2])
        .expect("exploration runs");
    print_row(&["batch", "config", "time(ms)", "us/sample"].map(String::from));
    let b16 = r.fastest_within(cap).expect("batch 16 fits");
    print_row(&[
        "16".into(),
        if b16.segment_steps == u32::MAX { "plain".into() } else { format!("seg={}", b16.segment_steps) },
        format!("{:.2}", b16.time_ns / 1e6),
        format!("{:.1}", b16.time_ns / 16.0 / 1e3),
    ]);
    match rb.fastest_within(cap) {
        Some(b32) => print_row(&[
            "32".into(),
            if b32.segment_steps == u32::MAX { "plain".into() } else { format!("seg={}", b32.segment_steps) },
            format!("{:.2}", b32.time_ns / 1e6),
            format!("{:.1}", b32.time_ns / 32.0 / 1e3),
        ]),
        None => print_row(&["32".into(), "does not fit".into(), "-".into(), "-".into()]),
    }
}
