//! Lowering: data-flow graph nodes → launchable GPU kernels.
//!
//! One node maps to one default kernel (the way native PyTorch dispatches,
//! §2.2): GEMMs go to the cuBLAS-like library, element-wise ops become
//! individual element-wise kernels. Two exceptions mirror real frameworks:
//!
//! * `Transpose` nodes are *elided* — frameworks implement `t()` as a view
//!   and GEMM libraries take strided operands, so a transpose costs nothing
//!   and its consumers read the base tensor's buffer;
//! * tensors are mapped to logical buffers ([`BufId`]), with transpose
//!   aliases resolved, so memory-allocation strategies can reason about
//!   which physical buffers must be contiguous for fusion.

use std::collections::HashMap;
use std::sync::Arc;

use astra_gpu::{BufId, GemmLibrary, GemmShape, KernelDesc};
use astra_ir::{Graph, NodeId, OpKind, TensorId};

/// One lowered graph node.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredOp {
    /// The originating node.
    pub node: NodeId,
    /// The default kernel (None for elided ops like `Transpose`).
    pub kernel: Option<KernelDesc>,
    /// GEMM shape when the node is a matmul (drives fusion/kernel choice).
    pub gemm: Option<GemmShape>,
}

/// A lowered graph: per-node kernels plus buffer aliasing.
#[derive(Debug, Clone)]
pub struct Lowering {
    ops: Vec<LoweredOp>,
    /// Physical buffer of each tensor (transpose aliases resolved).
    buffer: Vec<BufId>,
}

impl Lowering {
    /// Lowered ops, in graph (topological) order.
    pub fn ops(&self) -> &[LoweredOp] {
        &self.ops
    }

    /// The physical buffer a tensor lives in.
    pub fn buffer(&self, t: TensorId) -> BufId {
        self.buffer[t.0 as usize]
    }

    /// Number of real (non-elided) kernels.
    pub fn num_kernels(&self) -> usize {
        self.ops.iter().filter(|o| o.kernel.is_some()).count()
    }

    /// Total nominal FLOPs of the lowered graph.
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().filter_map(|o| o.kernel.as_ref()).map(|k| k.flops()).sum()
    }
}

/// The default GEMM library of unoptimized frameworks (cuBLAS).
pub const DEFAULT_GEMM_LIB: GemmLibrary = GemmLibrary::CublasLike;

/// Lowers every node of `graph` to its default kernel.
///
/// # Examples
///
/// ```
/// use astra_exec::lower;
/// use astra_ir::{Graph, Shape};
///
/// let mut g = Graph::new();
/// let x = g.input(Shape::matrix(8, 16), "x");
/// let w = g.param(Shape::matrix(16, 4), "w");
/// let _ = g.mm(x, w);
/// let lowered = lower(&g);
/// assert_eq!(lowered.num_kernels(), 1);
/// ```
pub fn lower(graph: &Graph) -> Lowering {
    let mut buffer: Vec<BufId> = (0..graph.num_tensors() as u64).map(BufId).collect();
    let mut ops = Vec::with_capacity(graph.nodes().len());

    for (i, node) in graph.nodes().iter().enumerate() {
        let out_shape = graph.shape(node.output);
        let elements = out_shape.elements();
        let kernel = match &node.op {
            OpKind::MatMul => {
                let a = graph.shape(node.inputs[0]);
                let b = graph.shape(node.inputs[1]);
                let shape = GemmShape::new(a.dims()[0], a.dims()[1], b.dims()[1]);
                ops.push(LoweredOp {
                    node: NodeId(i as u32),
                    kernel: Some(KernelDesc::Gemm { shape, lib: DEFAULT_GEMM_LIB }),
                    gemm: Some(shape),
                });
                continue;
            }
            OpKind::Transpose => {
                // View, not a kernel: alias the output buffer to the input's.
                buffer[node.output.0 as usize] = buffer[node.inputs[0].0 as usize];
                None
            }
            op if op.is_elementwise() => Some(KernelDesc::Elementwise {
                elements,
                flops_per_element: op.flops_per_element(),
                inputs: node.inputs.len() as u32,
                outputs: 1,
            }),
            OpKind::Softmax | OpKind::SoftmaxGrad => Some(KernelDesc::Softmax {
                rows: out_shape.leading(),
                cols: out_shape.last(),
            }),
            OpKind::Embedding => Some(KernelDesc::EmbeddingLookup {
                rows: out_shape.leading(),
                width: out_shape.last(),
            }),
            OpKind::EmbeddingGrad { .. } => {
                // Scatter-add costs like a gather of the incoming rows.
                let dy = graph.shape(node.inputs[0]);
                Some(KernelDesc::EmbeddingLookup { rows: dy.leading(), width: dy.last() })
            }
            OpKind::Concat { .. } | OpKind::Slice { .. } => {
                Some(KernelDesc::MemCopy { bytes: out_shape.bytes() as f64 })
            }
            OpKind::ReduceSum | OpKind::ReduceRows | OpKind::ReduceCols => {
                let in_elems = graph.shape(node.inputs[0]).elements();
                Some(KernelDesc::Elementwise {
                    elements: in_elems,
                    flops_per_element: 1.0,
                    inputs: 1,
                    outputs: 1,
                })
            }
            OpKind::BroadcastScalar { .. } | OpKind::BroadcastCol { .. } => {
                Some(KernelDesc::Elementwise {
                    elements,
                    flops_per_element: 0.0,
                    inputs: 1,
                    outputs: 1,
                })
            }
            OpKind::Conv2d(d) => Some(KernelDesc::Conv {
                batch: graph.shape(node.inputs[0]).dims()[0],
                gemm_m: graph.shape(node.inputs[0]).dims()[0] * d.h_out() * d.w_out(),
                gemm_k: d.c_in * d.kh * d.kw,
                gemm_n: d.c_out,
            }),
            OpKind::Conv2dGradInput(d) => Some(KernelDesc::Conv {
                batch: out_shape.dims()[0],
                gemm_m: out_shape.dims()[0] * d.h_out() * d.w_out(),
                gemm_k: d.c_out,
                gemm_n: d.c_in * d.kh * d.kw,
            }),
            OpKind::Conv2dGradWeight(d) => Some(KernelDesc::Conv {
                batch: graph.shape(node.inputs[0]).dims()[0],
                gemm_m: d.c_out,
                gemm_k: graph.shape(node.inputs[0]).dims()[0] * d.h_out() * d.w_out(),
                gemm_n: d.c_in * d.kh * d.kw,
            }),
            other => unreachable!("op {other:?} not classified by is_elementwise"),
        };
        ops.push(LoweredOp { node: NodeId(i as u32), kernel, gemm: None });
    }

    Lowering { ops, buffer }
}

/// Memoizes [`lower`] results across structurally identical graphs.
///
/// The cache is keyed by a caller-chosen `u64` that must uniquely identify
/// the graph's *structure* (bucketed dynamic-graph optimization uses the
/// unrolled length): a key hit returns the stored lowering without looking
/// at the graph again, so two graphs filed under one key must be built
/// identically.
#[derive(Debug, Default)]
pub struct LoweringCache {
    map: HashMap<u64, Arc<Lowering>>,
    hits: u64,
    misses: u64,
}

impl LoweringCache {
    /// An empty cache.
    pub fn new() -> Self {
        LoweringCache::default()
    }

    /// The lowering for `graph` under `key`, lowering on first request.
    pub fn lower(&mut self, key: u64, graph: &Graph) -> Arc<Lowering> {
        if let Some(l) = self.map.get(&key) {
            self.hits += 1;
            return Arc::clone(l);
        }
        self.misses += 1;
        let l = Arc::new(lower(graph));
        self.map.insert(key, Arc::clone(&l));
        l
    }

    /// Requests answered without re-lowering.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that lowered a graph.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_ir::Shape;

    #[test]
    fn lowering_cache_shares_by_key() {
        let build = || {
            let mut g = Graph::new();
            let x = g.input(Shape::matrix(8, 16), "x");
            let w = g.param(Shape::matrix(16, 4), "w");
            let _ = g.mm(x, w);
            g
        };
        let mut cache = LoweringCache::new();
        let g1 = build();
        let first = cache.lower(8, &g1);
        let g2 = build();
        let second = cache.lower(8, &g2);
        assert!(Arc::ptr_eq(&first, &second), "same key shares the lowering");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let _ = cache.lower(16, &g2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn transpose_is_elided_and_aliased() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(4, 8), "x");
        let xt = g.transpose(x);
        let w = g.param(Shape::matrix(4, 2), "w");
        let _ = g.mm(xt, w);
        let l = lower(&g);
        assert_eq!(l.num_kernels(), 1, "only the GEMM is a kernel");
        assert_eq!(l.buffer(xt), l.buffer(x), "transpose aliases its input buffer");
    }

    #[test]
    fn gemm_shape_captured() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(8, 16), "x");
        let w = g.param(Shape::matrix(16, 4), "w");
        let _ = g.mm(x, w);
        let l = lower(&g);
        let op = l.ops().iter().find(|o| o.gemm.is_some()).unwrap();
        assert_eq!(op.gemm.unwrap(), GemmShape::new(8, 16, 4));
    }

    #[test]
    fn every_non_transpose_node_gets_a_kernel() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(8, 8), "x");
        let a = g.sigmoid(x);
        let b = g.tanh(x);
        let c = g.mul(a, b);
        let d = g.softmax(c);
        let _ = g.reduce_sum(d);
        let l = lower(&g);
        assert_eq!(l.num_kernels(), 5);
        assert!(l.total_flops() > 0.0);
    }
}
