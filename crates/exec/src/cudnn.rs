//! The cuDNN-like hand-optimized accelerator baseline (§2.4, §6.3).
//!
//! cuDNN ships compound kernels for *standard* layer structures only —
//! classic LSTM layers qualify; MI-LSTM, subLSTM, SC-RNN and attention do
//! not. This module (a) detects which layers of a graph match the standard
//! LSTM pattern, and (b) builds a schedule where each covered (layer, pass)
//! executes as a single high-efficiency [`KernelDesc::Compound`] launch,
//! while uncovered nodes dispatch natively around it.
//!
//! The coverage limitation is the paper's central motivation: the detection
//! here is structural (op histogram per timestep), exactly the kind of
//! rigid pattern-matching that makes hand-optimized accelerators useless for
//! long-tail research models.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use astra_gpu::{KernelDesc, Schedule, StreamId};
use astra_ir::{Graph, NodeId, Pass};

use crate::lowering::Lowering;

/// Fraction of member output bytes a compound kernel actually moves through
/// HBM (persistent kernels keep recurrent state on-chip).
const COMPOUND_TRAFFIC_FACTOR: f64 = 0.3;

/// Detects layers whose per-timestep op histogram matches a standard LSTM
/// cell (8 GEMMs, 3 sigmoids, 2 tanhs, 3 muls, no subtractions).
///
/// # Examples
///
/// ```
/// use astra_exec::detect_covered_layers;
/// use astra_models::{Model, ModelConfig};
///
/// let cfg = ModelConfig { seq_len: 2, hidden: 32, input: 32, vocab: 64,
///                         ..ModelConfig::ptb_large(4) };
/// let built = Model::StackedLstm.build(&cfg);
/// let covered = detect_covered_layers(&built.graph);
/// assert!(covered.contains("lstm0"));
///
/// let sub = Model::SubLstm.build(&ModelConfig { seq_len: 2, hidden: 32,
///     input: 32, vocab: 64, ..ModelConfig::ptb(4) });
/// assert!(detect_covered_layers(&sub.graph).is_empty());
/// ```
pub fn detect_covered_layers(graph: &Graph) -> BTreeSet<String> {
    // (layer, timestep) -> op histogram, forward pass only.
    let mut hist: BTreeMap<(String, u32), HashMap<&'static str, usize>> = BTreeMap::new();
    for node in graph.nodes() {
        if node.prov.pass != Pass::Forward {
            continue;
        }
        let Some(t) = node.prov.timestep else { continue };
        if node.prov.layer.is_empty() {
            continue;
        }
        *hist
            .entry((node.prov.layer.clone(), t))
            .or_default()
            .entry(node.op.mnemonic())
            .or_insert(0) += 1;
    }

    let mut per_layer: BTreeMap<String, Vec<HashMap<&'static str, usize>>> = BTreeMap::new();
    for ((layer, _), h) in hist {
        per_layer.entry(layer).or_default().push(h);
    }

    per_layer
        .into_iter()
        .filter(|(_, steps)| {
            steps.iter().all(|h| {
                h.get("mm").copied().unwrap_or(0) == 8
                    && h.get("sigmoid").copied().unwrap_or(0) == 3
                    && h.get("tanh").copied().unwrap_or(0) == 2
                    && h.get("mul").copied().unwrap_or(0) == 3
                    && h.get("sub").copied().unwrap_or(0) == 0
                    && h.get("embed").copied().unwrap_or(0) == 0
            })
        })
        .map(|(layer, _)| layer)
        .collect()
}

/// Group key during compound scheduling. Compound regions are per
/// (layer, pass, timestep) — one accelerator call per layer-step, which is
/// also what keeps the group graph acyclic when gradient-accumulation adds
/// mix contributions from different layers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum GroupKey {
    Compound(String, bool /* backward */, u32 /* timestep */),
    Single(u32),
}

/// Builds the cuDNN-accelerated schedule: covered (layer, pass) regions run
/// as single compound kernels; everything else dispatches natively. The
/// schedule respects all cross-group data dependencies.
pub fn cudnn_schedule(
    graph: &Graph,
    lowering: &Lowering,
    covered: &BTreeSet<String>,
) -> Schedule {
    let nodes = graph.nodes();
    // Assign each node to a group.
    let group_of: Vec<GroupKey> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| match n.prov.timestep {
            Some(t) if covered.contains(&n.prov.layer) => {
                GroupKey::Compound(n.prov.layer.clone(), n.prov.pass == Pass::Backward, t)
            }
            _ => GroupKey::Single(i as u32),
        })
        .collect();

    // Group membership and first-node order.
    let mut members: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
    let mut order: Vec<GroupKey> = Vec::new();
    for (i, key) in group_of.iter().enumerate() {
        let entry = members.entry(key.clone()).or_default();
        if entry.is_empty() {
            order.push(key.clone());
        }
        entry.push(i);
    }

    // Group-level dependency edges.
    let mut preds: HashMap<GroupKey, BTreeSet<GroupKey>> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        for &inp in &node.inputs {
            if let Some(p) = graph.producer(inp) {
                let pg = &group_of[p.0 as usize];
                let ng = &group_of[i];
                if pg != ng {
                    preds.entry(ng.clone()).or_default().insert(pg.clone());
                }
            }
        }
    }

    // Kahn topological sort, stable by first appearance.
    let mut emitted: BTreeSet<GroupKey> = BTreeSet::new();
    let mut sched = Schedule::new(1);
    let mut remaining: Vec<GroupKey> = order;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut next_round = Vec::new();
        for key in remaining {
            let ready = preds
                .get(&key)
                .is_none_or(|ps| ps.iter().all(|p| emitted.contains(p)));
            if !ready {
                next_round.push(key);
                continue;
            }
            emit_group(graph, lowering, &key, &members[&key], &mut sched);
            emitted.insert(key);
        }
        assert!(
            next_round.len() < before,
            "cyclic group dependency in cudnn scheduling"
        );
        remaining = next_round;
    }
    sched
}

fn emit_group(
    graph: &Graph,
    lowering: &Lowering,
    key: &GroupKey,
    members: &[usize],
    sched: &mut Schedule,
) {
    match key {
        GroupKey::Single(i) => {
            if let Some(k) = &lowering.ops()[*i as usize].kernel {
                sched.launch(StreamId(0), *k);
            }
        }
        GroupKey::Compound(layer, backward, t) => {
            let mut flops = 0.0;
            let mut bytes = 0.0;
            for &m in members {
                if let Some(k) = &lowering.ops()[m].kernel {
                    flops += k.flops();
                }
                bytes += graph.shape(graph.node(NodeId(m as u32)).output).bytes() as f64;
            }
            let label = format!("cudnn[{layer}.{t}{}]", if *backward { ".bw" } else { "" });
            sched.launch_labeled(
                StreamId(0),
                KernelDesc::Compound { flops, bytes: bytes * COMPOUND_TRAFFIC_FACTOR },
                Vec::new(),
                label,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::lower;
    use crate::native::native_schedule;
    use astra_gpu::{DeviceSpec, Engine};
    use astra_models::{Model, ModelConfig};

    fn cfg(batch: u64) -> ModelConfig {
        ModelConfig { seq_len: 4, hidden: 256, input: 256, vocab: 1000, ..ModelConfig::ptb_large(batch) }
    }

    #[test]
    fn stacked_lstm_is_fully_covered() {
        let built = Model::StackedLstm.build(&cfg(8));
        let covered = detect_covered_layers(&built.graph);
        assert_eq!(covered.len(), 2);
        assert!(covered.contains("lstm0") && covered.contains("lstm1"));
    }

    #[test]
    fn gnmt_covered_except_attention() {
        let mut c = Model::Gnmt.default_config(4);
        c.hidden = 64;
        c.input = 64;
        c.vocab = 128;
        c.seq_len = 2;
        c.layers = 2;
        let built = Model::Gnmt.build(&c);
        let covered = detect_covered_layers(&built.graph);
        assert_eq!(covered.len(), 4, "enc0,enc1,dec0,dec1: {covered:?}");
        assert!(!covered.contains("attention"));
    }

    #[test]
    fn long_tail_models_are_uncovered() {
        for m in [Model::Scrnn, Model::MiLstm, Model::SubLstm] {
            let mut c = m.default_config(4);
            c.hidden = 64;
            c.input = 64;
            c.vocab = 128;
            c.seq_len = 2;
            let built = m.build(&c);
            assert!(
                detect_covered_layers(&built.graph).is_empty(),
                "{m} should not be cuDNN-covered"
            );
        }
    }

    #[test]
    fn cudnn_beats_native_on_covered_model() {
        let dev = DeviceSpec::p100();
        let built = Model::StackedLstm.build(&cfg(8));
        let lowering = lower(&built.graph);
        let covered = detect_covered_layers(&built.graph);
        let native = Engine::new(&dev).run(&native_schedule(&lowering)).unwrap().total_ns;
        let sched = cudnn_schedule(&built.graph, &lowering, &covered);
        let accel = Engine::new(&dev).run(&sched).unwrap().total_ns;
        assert!(accel < native, "cudnn {accel} should beat native {native}");
        // Far fewer launches.
        assert!(sched.num_launches() < lowering.num_kernels() / 4);
    }

    #[test]
    fn schedule_respects_dependencies() {
        // The compound for lstm1 must come after lstm0's compound; the
        // projection kernels after both.
        let built = Model::StackedLstm.build(&cfg(8));
        let lowering = lower(&built.graph);
        let covered = detect_covered_layers(&built.graph);
        let sched = cudnn_schedule(&built.graph, &lowering, &covered);
        let labels: Vec<String> = sched
            .cmds()
            .iter()
            .filter_map(|c| match c {
                astra_gpu::Cmd::Launch { label: Some(l), .. } => Some(l.clone()),
                _ => None,
            })
            .collect();
        // Per step t, layer 0 must precede layer 1 in the forward pass.
        let p0 = labels.iter().position(|l| l == "cudnn[lstm0.0]").unwrap();
        let p1 = labels.iter().position(|l| l == "cudnn[lstm1.0]").unwrap();
        assert!(p0 < p1);
        // Backward: layer 1 before layer 0 at the same step.
        let b1 = labels.iter().position(|l| l == "cudnn[lstm1.0.bw]").unwrap();
        let b0 = labels.iter().position(|l| l == "cudnn[lstm0.0.bw]").unwrap();
        assert!(b1 < b0, "backward runs layers in reverse");
        // Backward follows the whole forward pass.
        let last_fw = labels.iter().rposition(|l| l.starts_with("cudnn[") && !l.ends_with(".bw]")).unwrap();
        let first_bw = labels.iter().position(|l| l.ends_with(".bw]")).unwrap();
        assert!(first_bw > p1 && last_fw < labels.len());
    }
}
