//! The XLA-like static optimizer baseline (§3.5, §6.6).
//!
//! XLA compiles the graph once with fixed heuristics: element-wise clusters
//! are fused into single kernels, but there is no measurement and no
//! adaptation. Two properties from the paper are modelled:
//!
//! * **The win**: fused element-wise clusters remove launch overhead and HBM
//!   round trips, giving the 1.1-1.45x speedups of Table 9.
//! * **The pathology**: XLA "handles embeddings poorly, resulting in
//!   multiple transitions between CPU and GPU for lookups" — every embedding
//!   lookup costs a blocking host synchronization plus a PCIe round trip,
//!   which makes XLA *slower than native* on embedding-heavy models (3x
//!   worse for SCRNN in the paper). A static compiler cannot turn the
//!   mis-optimization off; Astra's measurement-driven approach would.

use astra_gpu::{KernelDesc, Schedule, StreamId};
use astra_ir::{Graph, OpKind};

use crate::fusion::fuse_elementwise_chains;
use crate::lowering::Lowering;

/// Builds the XLA-compiled schedule.
///
/// # Examples
///
/// ```
/// use astra_exec::{lower, xla_schedule};
/// use astra_ir::{Graph, Shape};
///
/// let mut g = Graph::new();
/// let x = g.input(Shape::matrix(8, 8), "x");
/// let a = g.sigmoid(x);
/// let _ = g.tanh(a);
/// let sched = xla_schedule(&g, &lower(&g));
/// assert_eq!(sched.num_launches(), 1); // one fused elementwise kernel
/// ```
pub fn xla_schedule(graph: &Graph, lowering: &Lowering) -> Schedule {
    let chains = fuse_elementwise_chains(graph, lowering);
    // node index -> (chain id, is_last_member)
    let mut chain_last = vec![false; graph.nodes().len()];
    let mut in_chain = vec![false; graph.nodes().len()];
    let mut chain_kernel_at: Vec<Option<KernelDesc>> = vec![None; graph.nodes().len()];
    for chain in &chains {
        for &m in &chain.nodes {
            in_chain[m.0 as usize] = true;
        }
        let last = chain.nodes.last().expect("chains are non-empty");
        chain_last[last.0 as usize] = true;
        chain_kernel_at[last.0 as usize] = Some(chain.kernel);
    }

    let mut sched = Schedule::new(1);
    for (i, op) in lowering.ops().iter().enumerate() {
        let node = graph.node(op.node);
        if matches!(node.op, OpKind::Embedding | OpKind::EmbeddingGrad { .. }) {
            // The pathology: lookup bounces through the host.
            sched.host_sync();
            let bytes = graph.shape(node.output).bytes() as f64;
            sched.launch_labeled(
                StreamId(0),
                KernelDesc::HostRoundtrip { bytes },
                Vec::new(),
                "xla-embedding-roundtrip",
            );
        }
        if in_chain[i] {
            if chain_last[i] {
                let kernel = chain_kernel_at[i].take().expect("last member has kernel");
                sched.launch_labeled(StreamId(0), kernel, Vec::new(), "xla-fused-ew");
            }
            continue;
        }
        if let Some(kernel) = &op.kernel {
            sched.launch(StreamId(0), *kernel);
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::lower;
    use crate::native::native_schedule;
    use astra_gpu::{DeviceSpec, Engine};
    use astra_models::Model;

    fn small(m: Model, use_embedding: bool) -> (Graph, Lowering) {
        let mut c = m.default_config(16);
        c.hidden = 256;
        c.input = 256;
        c.vocab = 1000;
        c.seq_len = 4;
        c.use_embedding = use_embedding;
        let built = m.build(&c);
        let lowering = lower(&built.graph);
        (built.graph, lowering)
    }

    #[test]
    fn xla_beats_native_without_embeddings() {
        let dev = DeviceSpec::p100();
        for m in [Model::Scrnn, Model::SubLstm] {
            let (g, l) = small(m, false);
            let native = Engine::new(&dev).run(&native_schedule(&l)).unwrap().total_ns;
            let xla = Engine::new(&dev).run(&xla_schedule(&g, &l)).unwrap().total_ns;
            assert!(xla < native, "{m}: xla {xla} should beat native {native}");
        }
    }

    #[test]
    fn xla_loses_to_native_with_embeddings() {
        // The paper's robustness result: embeddings make XLA *worse* than
        // the unoptimized baseline.
        let dev = DeviceSpec::p100();
        let (g, l) = small(Model::Scrnn, true);
        let native = Engine::new(&dev).run(&native_schedule(&l)).unwrap().total_ns;
        let xla = Engine::new(&dev).run(&xla_schedule(&g, &l)).unwrap().total_ns;
        assert!(
            xla > native,
            "embedding pathology: xla {xla} should lose to native {native}"
        );
    }

    #[test]
    fn xla_launches_fewer_kernels() {
        let (g, l) = small(Model::MiLstm, false);
        let xla = xla_schedule(&g, &l);
        assert!(xla.num_launches() < l.num_kernels());
    }
}
