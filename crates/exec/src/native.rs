//! The native (PyTorch-like) dispatcher baseline.
//!
//! Frameworks dispatch one kernel per graph node, in data-flow order, on a
//! single stream (§2.2, §3.3: "Tensorflow and PyTorch do not take advantage
//! of streams"). This is the `PyT` / `TF` column of every table.

use astra_gpu::{Schedule, StreamId};

use crate::lowering::Lowering;

/// Builds the single-stream, one-kernel-per-op baseline schedule.
///
/// # Examples
///
/// ```
/// use astra_exec::{lower, native_schedule};
/// use astra_ir::{Graph, Shape};
///
/// let mut g = Graph::new();
/// let x = g.input(Shape::matrix(8, 16), "x");
/// let w = g.param(Shape::matrix(16, 4), "w");
/// let _ = g.mm(x, w);
/// let sched = native_schedule(&lower(&g));
/// assert_eq!(sched.num_launches(), 1);
/// ```
pub fn native_schedule(lowering: &Lowering) -> Schedule {
    let mut sched = Schedule::new(1);
    for op in lowering.ops() {
        if let Some(kernel) = &op.kernel {
            sched.launch(StreamId(0), *kernel);
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::lower;
    use astra_gpu::{DeviceSpec, Engine};
    use astra_models::{Model, ModelConfig};

    #[test]
    fn native_runs_every_kernel_sequentially() {
        let cfg = ModelConfig {
            seq_len: 2,
            hidden: 64,
            input: 64,
            vocab: 100,
            ..ModelConfig::ptb(8)
        };
        let built = Model::SubLstm.build(&cfg);
        let lowering = lower(&built.graph);
        let sched = native_schedule(&lowering);
        assert_eq!(sched.num_launches(), lowering.num_kernels());
        let dev = DeviceSpec::p100();
        let r = Engine::new(&dev).run(&sched).unwrap();
        assert_eq!(r.spans.len(), lowering.num_kernels());
        // Single stream: spans must not overlap.
        let mut spans = r.spans.clone();
        spans.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
        for w in spans.windows(2) {
            assert!(w[1].start_ns >= w[0].end_ns - 1e-6);
        }
    }

    #[test]
    fn small_batch_is_overhead_bound() {
        // At batch 8, the *typical* RNN kernel is smaller than its launch
        // overhead: this is the regime where Astra's fusion wins (§2.3).
        // (The vocab projection GEMMs are large, but they are few.)
        let dev = DeviceSpec::p100();
        let cfg = ModelConfig { seq_len: 2, ..ModelConfig::ptb(8) };
        let built = Model::Scrnn.build(&cfg);
        let lowering = lower(&built.graph);
        let mut execs: Vec<f64> = lowering
            .ops()
            .iter()
            .filter_map(|o| o.kernel.as_ref())
            .map(|k| k.cost(&dev).exec_ns)
            .collect();
        execs.sort_by(f64::total_cmp);
        let median = execs[execs.len() / 2];
        assert!(
            median < dev.launch_overhead_ns,
            "median kernel {median}ns should be below launch overhead"
        );
    }
}
