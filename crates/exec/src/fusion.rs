//! Element-wise chain fusion (paper §5.3).
//!
//! Both Astra (via the frameworks' JIT support) and XLA fuse chains of
//! element-wise operations so that intermediates stay in registers instead of
//! round-tripping through HBM, and the chain launches as one kernel. This
//! module implements the safe producer→consumer form: a node joins its
//! producer's chain when the producer is element-wise, has no other
//! consumer, and operates on the same element count. Single-consumer
//! chaining is cycle-free by construction.

use astra_gpu::KernelDesc;
use astra_ir::{Graph, NodeId};

use crate::lowering::Lowering;

/// Maximum distinct external input tensors a fused chain may read. A fused
/// kernel needs all of its external inputs resident at once; unbounded
/// chains (e.g. a whole gradient-accumulation chain) would hold every
/// contribution alive simultaneously — a silent peak-memory explosion.
const MAX_CHAIN_EXTERNAL_INPUTS: usize = 4;

/// A fused chain of element-wise nodes (possibly a singleton).
#[derive(Debug, Clone, PartialEq)]
pub struct EwChain {
    /// Member nodes in topological order.
    pub nodes: Vec<NodeId>,
    /// The fused kernel replacing the members' individual kernels.
    pub kernel: KernelDesc,
}

/// Groups the element-wise nodes of `graph` into fusable chains.
///
/// Returns chains covering *every* element-wise node exactly once;
/// non-element-wise nodes are not included.
pub fn fuse_elementwise_chains(graph: &Graph, lowering: &Lowering) -> Vec<EwChain> {
    let nodes = graph.nodes();
    // chain id per node (for elementwise nodes).
    let mut chain_of: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut chains: Vec<Vec<NodeId>> = Vec::new();

    for (i, node) in nodes.iter().enumerate() {
        if !node.op.is_elementwise() {
            continue;
        }
        let elements = graph.shape(node.output).elements();
        // Find an elementwise producer with a single consumer and equal
        // size, whose chain would stay within the external-input bound.
        let mut joined = None;
        for &inp in &node.inputs {
            let Some(p) = graph.producer(inp) else { continue };
            if !nodes[p.0 as usize].op.is_elementwise() {
                continue;
            }
            if graph.shape(inp).elements() != elements {
                continue;
            }
            if graph.consumers(inp).len() != 1 {
                continue;
            }
            if let Some(cid) = chain_of[p.0 as usize] {
                if chain_external_inputs(graph, &chains[cid], NodeId(i as u32))
                    <= MAX_CHAIN_EXTERNAL_INPUTS
                {
                    joined = Some(cid);
                }
                break;
            }
        }
        match joined {
            Some(cid) => {
                chains[cid].push(NodeId(i as u32));
                chain_of[i] = Some(cid);
            }
            None => {
                chain_of[i] = Some(chains.len());
                chains.push(vec![NodeId(i as u32)]);
            }
        }
    }

    chains
        .into_iter()
        .map(|members| {
            let kernel = fused_kernel(graph, lowering, &members);
            EwChain { nodes: members, kernel }
        })
        .collect()
}

/// Distinct external inputs of `members + candidate`.
fn chain_external_inputs(graph: &Graph, members: &[NodeId], candidate: NodeId) -> usize {
    let member_set: std::collections::HashSet<NodeId> =
        members.iter().copied().chain(std::iter::once(candidate)).collect();
    let mut ext = std::collections::HashSet::new();
    for &m in member_set.iter() {
        for &inp in &graph.node(m).inputs {
            let internal = graph.producer(inp).is_some_and(|p| member_set.contains(&p));
            if !internal {
                ext.insert(inp);
            }
        }
    }
    ext.len()
}

/// Builds the fused kernel for a chain: external reads + external writes
/// count toward HBM traffic, internal edges are free.
fn fused_kernel(graph: &Graph, _lowering: &Lowering, members: &[NodeId]) -> KernelDesc {
    let member_set: std::collections::HashSet<NodeId> = members.iter().copied().collect();
    let mut flops = 0.0;
    let mut elements = 0u64;
    let mut ext_inputs = 0u32;
    let mut ext_outputs = 0u32;
    for &m in members {
        let node = graph.node(m);
        let out_elems = graph.shape(node.output).elements();
        elements = elements.max(out_elems);
        flops += node.op.flops_per_element();
        for &inp in &node.inputs {
            let internal = graph.producer(inp).is_some_and(|p| member_set.contains(&p));
            if !internal {
                ext_inputs += 1;
            }
        }
        let escapes = graph
            .consumers(node.output)
            .iter()
            .any(|c| !member_set.contains(c));
        if escapes || graph.consumers(node.output).is_empty() {
            ext_outputs += 1;
        }
    }
    KernelDesc::Elementwise {
        elements,
        flops_per_element: flops,
        inputs: ext_inputs,
        outputs: ext_outputs.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lowering::lower;
    use astra_gpu::DeviceSpec;
    use astra_ir::Shape;

    #[test]
    fn linear_chain_fuses_to_one_kernel() {
        // add -> sigmoid -> mul-by-self? build: a=x+y; b=sigmoid(a); c=tanh(b)
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(16, 16), "x");
        let y = g.input(Shape::matrix(16, 16), "y");
        let a = g.add(x, y);
        let b = g.sigmoid(a);
        let _c = g.tanh(b);
        let l = lower(&g);
        let chains = fuse_elementwise_chains(&g, &l);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].nodes.len(), 3);
    }

    #[test]
    fn multi_consumer_breaks_chain() {
        // a = sigmoid(x); used by two consumers -> a cannot fuse into either.
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(8, 8), "x");
        let a = g.sigmoid(x);
        let b = g.tanh(a);
        let c = g.relu(a);
        let _ = g.mul(b, c);
        let l = lower(&g);
        let chains = fuse_elementwise_chains(&g, &l);
        // a alone; b alone (producer a multi-consumer); c alone; mul joins b or c.
        let sizes: Vec<usize> = chains.iter().map(|c| c.nodes.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert!(chains.len() >= 3);
    }

    #[test]
    fn fused_chain_is_cheaper_than_parts() {
        let dev = DeviceSpec::p100();
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(256, 1024), "x");
        let a = g.sigmoid(x);
        let b = g.tanh(a);
        let _c = g.relu(b);
        let l = lower(&g);
        let chains = fuse_elementwise_chains(&g, &l);
        assert_eq!(chains.len(), 1);
        let fused_cost = chains[0].kernel.cost(&dev).exec_ns + dev.launch_overhead_ns;
        let solo_cost: f64 = l
            .ops()
            .iter()
            .filter_map(|o| o.kernel.as_ref())
            .map(|k| k.cost(&dev).exec_ns + dev.launch_overhead_ns)
            .sum();
        assert!(fused_cost < solo_cost);
    }

    #[test]
    fn gemms_never_in_chains() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(8, 8), "x");
        let w = g.param(Shape::matrix(8, 8), "w");
        let m = g.mm(x, w);
        let _ = g.sigmoid(m);
        let l = lower(&g);
        let chains = fuse_elementwise_chains(&g, &l);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].nodes.len(), 1, "sigmoid alone; mm not fusible");
    }
}
