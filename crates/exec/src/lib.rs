//! # astra-exec — lowering, schedules, and baseline dispatchers
//!
//! The execution layer under the Astra optimizer (paper §5.1, Figure 3):
//!
//! * [`lower`] turns an [`astra_ir::Graph`] into per-node GPU kernels with
//!   buffer aliasing (the default dispatch of PyTorch/Tensorflow);
//! * [`native_schedule`] is the single-stream framework baseline;
//! * [`detect_covered_layers`] + [`cudnn_schedule`] model the hand-optimized
//!   cuDNN accelerator, with its rigid structural coverage;
//! * [`xla_schedule`] models the static XLA compiler, including its
//!   embedding pathology;
//! * [`fuse_elementwise_chains`] is the JIT element-wise fusion both XLA and
//!   Astra use (§5.3).
//!
//! Astra's own adaptive dispatcher lives in `astra-core`; it reuses the
//! lowering and fusion primitives from this crate.
//!
//! ## Example
//!
//! ```
//! use astra_exec::{lower, native_schedule};
//! use astra_gpu::{DeviceSpec, Engine};
//! use astra_models::{Model, ModelConfig};
//!
//! let cfg = ModelConfig { seq_len: 2, hidden: 64, input: 64, vocab: 100,
//!                         ..ModelConfig::ptb(8) };
//! let built = Model::Scrnn.build(&cfg);
//! let sched = native_schedule(&lower(&built.graph));
//! let dev = DeviceSpec::p100();
//! let t = Engine::new(&dev).run(&sched).unwrap().total_ns;
//! assert!(t > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cudnn;
mod fusion;
mod lowering;
mod native;
mod xla;

pub use cudnn::{cudnn_schedule, detect_covered_layers};
pub use fusion::{fuse_elementwise_chains, EwChain};
pub use lowering::{lower, LoweredOp, Lowering, LoweringCache, DEFAULT_GEMM_LIB};
pub use native::native_schedule;
pub use xla::xla_schedule;
