//! Per-command buffer footprints and their resolution to memory regions.
//!
//! The verifier does not know how to derive read/write sets from a
//! [`KernelDesc`](astra_gpu::KernelDesc) alone (the kernel descriptor is a
//! cost model, not an argument list) — the *emitter* knows, so it supplies
//! an [`AccessTable`] alongside the schedule. `astra-core`'s wirer builds
//! one from the unit footprints it tags onto each command.

use astra_gpu::{AllocationPlan, BufId};

/// The buffers one command reads and writes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Access {
    /// Buffers the command reads (deduplicated, sorted by the builder).
    pub reads: Vec<BufId>,
    /// Buffers the command writes.
    pub writes: Vec<BufId>,
}

/// Handle to a footprint interned in one [`AccessTable`], so many commands
/// can share a single footprint without cloning it per command (the wirer
/// tags every launch of a unit with the same unit footprint). Only
/// meaningful on the table that returned it from [`AccessTable::intern`]
/// or [`AccessTable::intern_slices`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRef(u32);

/// A borrowed footprint: what [`AccessTable::get`] hands out. The table
/// keeps every buffer id in one flat pool, so a view is two subslices —
/// no per-command allocation anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessView<'a> {
    /// Buffers the command reads.
    pub reads: &'a [BufId],
    /// Buffers the command writes.
    pub writes: &'a [BufId],
}

/// `[reads_start, writes_start, end)` offsets of one entry in the pool.
#[derive(Debug, Clone, Copy)]
struct Entry {
    reads: u32,
    writes: u32,
    end: u32,
}

/// Footprints for every command of one schedule, indexed by command index.
/// Commands without a footprint (records, barriers, host syncs) stay `None`.
#[derive(Debug, Clone, Default)]
pub struct AccessTable {
    per_cmd: Vec<Option<AccessRef>>,
    entries: Vec<Entry>,
    pool: Vec<BufId>,
}

impl AccessTable {
    /// Creates a table for a schedule of `len` commands, all unset.
    pub fn new(len: usize) -> Self {
        AccessTable { per_cmd: vec![None; len], entries: Vec::new(), pool: Vec::new() }
    }

    /// Number of command slots (must equal the schedule's command count).
    pub fn len(&self) -> usize {
        self.per_cmd.len()
    }

    /// Whether the table has zero slots.
    pub fn is_empty(&self) -> bool {
        self.per_cmd.is_empty()
    }

    /// Copies a footprint into the pool; assign the returned handle to any
    /// number of commands with [`AccessTable::assign`].
    pub fn intern_slices(&mut self, reads: &[BufId], writes: &[BufId]) -> AccessRef {
        let r = self.pool.len() as u32;
        self.pool.extend_from_slice(reads);
        let w = self.pool.len() as u32;
        self.pool.extend_from_slice(writes);
        self.entries.push(Entry { reads: r, writes: w, end: self.pool.len() as u32 });
        AccessRef(self.entries.len() as u32 - 1)
    }

    /// Like [`AccessTable::intern_slices`], from an owned [`Access`].
    pub fn intern(&mut self, access: Access) -> AccessRef {
        self.intern_slices(&access.reads, &access.writes)
    }

    /// Points command `cmd` at an interned footprint.
    ///
    /// # Panics
    ///
    /// Panics if `cmd` is out of range, or if `access` did not come from
    /// this table.
    pub fn assign(&mut self, cmd: usize, access: AccessRef) {
        assert!((access.0 as usize) < self.entries.len(), "AccessRef from a different table");
        self.per_cmd[cmd] = Some(access);
    }

    /// Sets the footprint of command `cmd` (interned unshared).
    ///
    /// # Panics
    ///
    /// Panics if `cmd` is out of range.
    pub fn set(&mut self, cmd: usize, access: Access) {
        let r = self.intern(access);
        self.assign(cmd, r);
    }

    /// The footprint of command `cmd`, if one was set.
    pub fn get(&self, cmd: usize) -> Option<AccessView<'_>> {
        let r = (*self.per_cmd.get(cmd)?)?;
        let e = self.entries[r.0 as usize];
        Some(AccessView {
            reads: &self.pool[e.reads as usize..e.writes as usize],
            writes: &self.pool[e.writes as usize..e.end as usize],
        })
    }
}

/// A buffer's location for aliasing purposes. Placed buffers resolve to
/// their physical byte range; unplaced buffers stay *virtual* and only
/// alias themselves (distinct virtual buffers are assumed disjoint, which
/// is what the lowering guarantees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Region {
    /// Physical arena bytes `[lo, hi)`.
    Phys {
        /// First byte.
        lo: u64,
        /// One past the last byte.
        hi: u64,
    },
    /// An unplaced buffer, identified only by its id.
    Virt(BufId),
}

/// Resolves a buffer to a region under an optional allocation plan.
pub(crate) fn resolve(buf: BufId, plan: Option<&AllocationPlan>) -> Region {
    match plan.and_then(|p| p.placement(buf)) {
        Some(p) => Region::Phys { lo: p.offset, hi: p.offset + p.bytes },
        None => Region::Virt(buf),
    }
}

/// Whether two regions can touch the same bytes. A physical and a virtual
/// region never overlap (the virtual buffer lives outside the planned
/// arena); empty physical ranges overlap nothing.
pub(crate) fn overlaps(a: Region, b: Region) -> bool {
    match (a, b) {
        (Region::Phys { lo: al, hi: ah }, Region::Phys { lo: bl, hi: bh }) => {
            al < ah && bl < bh && al < bh && bl < ah
        }
        (Region::Virt(x), Region::Virt(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::Placement;

    #[test]
    fn table_set_get() {
        let mut t = AccessTable::new(3);
        assert_eq!(t.len(), 3);
        assert!(t.get(0).is_none());
        t.set(1, Access { reads: vec![BufId(1)], writes: vec![BufId(2)] });
        assert_eq!(t.get(1).unwrap().writes, vec![BufId(2)]);
        assert!(t.get(2).is_none());
        assert!(t.get(99).is_none(), "out-of-range get is None, not a panic");
        assert!(!t.is_empty());
    }

    #[test]
    fn interned_footprints_are_shared() {
        let mut t = AccessTable::new(3);
        let r = t.intern(Access { reads: vec![BufId(7)], writes: vec![] });
        t.assign(0, r);
        t.assign(2, r);
        assert_eq!(t.get(0), t.get(2));
        assert_eq!(t.get(0).unwrap().reads, vec![BufId(7)]);
        assert!(t.get(1).is_none());
    }

    #[test]
    #[should_panic(expected = "different table")]
    fn foreign_ref_is_rejected() {
        let mut a = AccessTable::new(1);
        let r = a.intern(Access::default());
        let mut b = AccessTable::new(1);
        b.assign(0, r);
    }

    #[test]
    fn resolution_and_overlap() {
        let mut plan = AllocationPlan::new();
        plan.place_at(BufId(1), Placement { offset: 0, bytes: 100 });
        plan.place_at(BufId(2), Placement { offset: 50, bytes: 100 });
        plan.place_at(BufId(3), Placement { offset: 200, bytes: 100 });
        let r1 = resolve(BufId(1), Some(&plan));
        let r2 = resolve(BufId(2), Some(&plan));
        let r3 = resolve(BufId(3), Some(&plan));
        let v4 = resolve(BufId(4), Some(&plan));
        let v5 = resolve(BufId(5), Some(&plan));
        assert!(overlaps(r1, r2), "byte ranges intersect");
        assert!(!overlaps(r1, r3), "disjoint ranges");
        assert!(!overlaps(r2, r3), "touching at 150..200? no: 50..150 vs 200..300");
        assert!(overlaps(v4, v4), "a virtual buffer aliases itself");
        assert!(!overlaps(v4, v5), "distinct virtual buffers are disjoint");
        assert!(!overlaps(r1, v4), "physical never aliases virtual");
        // Without a plan everything is virtual.
        assert_eq!(resolve(BufId(1), None), Region::Virt(BufId(1)));
    }

    #[test]
    fn empty_ranges_never_overlap() {
        let z = Region::Phys { lo: 10, hi: 10 };
        let r = Region::Phys { lo: 0, hi: 100 };
        assert!(!overlaps(z, r));
        assert!(!overlaps(z, z));
    }
}
