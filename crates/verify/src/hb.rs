//! Happens-before graph over a schedule's command list.
//!
//! Nodes are command indices. Edges come from three sources:
//!
//! * **stream program order** — each stream's commands form a chain (the
//!   engine's per-stream FIFOs execute in order);
//! * **global sync points** — a [`Cmd::Barrier`] or [`Cmd::HostSync`] joins
//!   every stream's chain and restarts all of them;
//! * **event wiring** — every [`Cmd::Record`] of an event has an edge to
//!   every launch that waits on that event, *regardless of dispatch-order
//!   index* (the simulator's waits block until the event fires, which is
//!   what lets a circular cross-stream wait show up as a graph cycle).
//!
//! After a Kahn topological sort, reachability is closed transitively with
//! one bitset row per node (reverse topological order), so `ordered(i, j)`
//! is two bit probes.

use std::collections::HashMap;

use astra_gpu::{Cmd, EventId, Schedule};

/// The happens-before relation of one schedule, with transitive
/// reachability precomputed (unless the graph is cyclic).
///
/// Public so downstream analyses (astra-lint) can reuse the exact relation
/// the verifier checks against instead of re-deriving it.
pub struct HbGraph {
    n: usize,
    words: usize,
    /// `reach[i*words..]` is the bitset of nodes reachable from `i`
    /// (excluding `i` itself). Empty when the graph is cyclic.
    reach: Vec<u64>,
    /// Nodes left with unsatisfied in-degree after the Kahn sort — the
    /// commands participating in (or downstream of) a cycle. Empty iff the
    /// graph is acyclic.
    cycle_residue: Vec<usize>,
}

/// Why one happens-before edge exists. Consumers that must treat event
/// waits specially (redundant-sync detection elides exactly the
/// [`HbEdge::Wait`] edges that other edges already imply) get the kind
/// alongside each edge from [`happens_before_edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbEdge {
    /// FIFO program order between two commands on the same stream.
    StreamOrder,
    /// A barrier or host sync joining every stream's chain.
    SyncJoin,
    /// Record→wait wiring: the record of this event precedes the waiter.
    Wait(EventId),
    /// All-reduce rendezvous: a member's stream predecessor precedes every
    /// other member's completion.
    Rendezvous,
}

/// Calls `f(u, v, kind)` for every happens-before edge `u -> v` of the
/// schedule, in a deterministic order: stream program order, barrier/
/// host-sync joins, record→wait wiring (the record of an event precedes
/// every launch or transfer waiting on it, regardless of dispatch-order
/// index), and all-reduce rendezvous joins (every member's stream
/// predecessor precedes every member's completion — the release fires at
/// the last arrival, so crossed group orders become graph cycles).
///
/// This is the exact edge set [`HbGraph`] is built from; astra-lint's
/// critical-path and redundant-sync analyses consume it so the two crates
/// can never disagree about the relation.
pub fn happens_before_edges(sched: &Schedule, f: impl FnMut(usize, usize, HbEdge)) {
    for_each_edge(sched, &crate::checks::records_by_event(sched), f);
}

/// [`happens_before_edges`] against a precomputed record-index map
/// ([`crate::checks::records_by_event`]). Iterated twice by the graph
/// builder — once to size the CSR arrays, once to fill them — so it must
/// be deterministic, which it is.
fn for_each_edge(
    sched: &Schedule,
    records: &HashMap<u32, Vec<usize>>,
    mut f: impl FnMut(usize, usize, HbEdge),
) {
    let cmds = sched.cmds();

    // Rendezvous edges point from the stream predecessors of *later* members
    // back to earlier members, so both are precomputed in one forward sweep.
    let mut pred: Vec<Option<usize>> = vec![None; cmds.len()];
    let mut members: HashMap<u32, Vec<usize>> = HashMap::new();
    {
        let mut last: Vec<Option<usize>> = vec![None; sched.num_streams()];
        for (i, cmd) in cmds.iter().enumerate() {
            match cmd {
                Cmd::Launch { stream, .. }
                | Cmd::Record { stream, .. }
                | Cmd::Transfer { stream, .. }
                | Cmd::AllReduce { stream, .. } => {
                    pred[i] = last[stream.0];
                    last[stream.0] = Some(i);
                }
                Cmd::Barrier | Cmd::HostSync => last.fill(Some(i)),
            }
            if let Cmd::AllReduce { group, .. } = cmd {
                members.entry(*group).or_default().push(i);
            }
        }
    }

    let mut last_in_stream: Vec<Option<usize>> = vec![None; sched.num_streams()];
    for (i, cmd) in cmds.iter().enumerate() {
        match cmd {
            Cmd::Launch { stream, waits, .. } | Cmd::Transfer { stream, waits, .. } => {
                if let Some(p) = last_in_stream[stream.0] {
                    f(p, i, HbEdge::StreamOrder);
                }
                last_in_stream[stream.0] = Some(i);
                for w in waits {
                    if let Some(recs) = records.get(&w.0) {
                        for &r in recs {
                            f(r, i, HbEdge::Wait(*w));
                        }
                    }
                }
            }
            Cmd::Record { stream, .. } => {
                if let Some(p) = last_in_stream[stream.0] {
                    f(p, i, HbEdge::StreamOrder);
                }
                last_in_stream[stream.0] = Some(i);
            }
            Cmd::AllReduce { stream, group, .. } => {
                if let Some(p) = last_in_stream[stream.0] {
                    f(p, i, HbEdge::StreamOrder);
                }
                last_in_stream[stream.0] = Some(i);
                // A member completes only when every member has arrived;
                // members themselves stay mutually unordered (their
                // completions coincide at the release).
                for &m in &members[group] {
                    if m != i {
                        if let Some(p) = pred[m] {
                            f(p, i, HbEdge::Rendezvous);
                        }
                    }
                }
            }
            Cmd::Barrier | Cmd::HostSync => {
                for slot in &mut last_in_stream {
                    if let Some(p) = *slot {
                        f(p, i, HbEdge::SyncJoin);
                    }
                    *slot = Some(i);
                }
            }
        }
    }
}

impl HbGraph {
    /// Builds the graph and (if acyclic) its transitive closure. This is
    /// the entry point for external consumers (astra-lint); the verifier
    /// itself uses `HbGraph::build_with` to share the record map and
    /// skip the closure when nothing needs it.
    pub fn build(sched: &Schedule) -> HbGraph {
        HbGraph::build_with(sched, true, &crate::checks::records_by_event(sched))
    }

    /// Like [`HbGraph::build`], but the transitive closure — consumed only
    /// by [`HbGraph::ordered`] in the cross-stream hazard scan — is built
    /// only when `closure` is set. Cycle detection always runs; callers
    /// that skip the hazard scan (single-stream schedules, no access
    /// table) skip the quadratic closure too. `records` is the shared
    /// record-index map ([`crate::checks::records_by_event`]).
    pub(crate) fn build_with(
        sched: &Schedule,
        closure: bool,
        records: &HashMap<u32, Vec<usize>>,
    ) -> HbGraph {
        let n = sched.cmds().len();

        // Successors in CSR form: count degrees, prefix-sum, fill. One flat
        // allocation instead of one Vec per node. Edge multiplicity in the
        // in-degree counts matches the duplicates in the adjacency, so
        // duplicate edges are harmless.
        let mut deg = vec![0u32; n];
        let mut indeg = vec![0u32; n];
        for_each_edge(sched, records, |u, v, _| {
            deg[u] += 1;
            indeg[v] += 1;
        });
        let mut off = vec![0u32; n + 1];
        for i in 0..n {
            off[i + 1] = off[i] + deg[i];
        }
        let mut adj = vec![0u32; off[n] as usize];
        let mut cursor: Vec<u32> = off[..n].to_vec();
        for_each_edge(sched, records, |u, v, _| {
            adj[cursor[u] as usize] = v as u32;
            cursor[u] += 1;
        });
        let succs = |u: usize| &adj[off[u] as usize..off[u + 1] as usize];

        // Kahn topological sort.
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(u);
            for &v in succs(u) {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v as usize);
                }
            }
        }
        let cycle_residue: Vec<usize> = if topo.len() == n {
            Vec::new()
        } else {
            (0..n).filter(|&i| indeg[i] > 0).collect()
        };

        // Transitive closure in reverse topological order: a node reaches
        // its successors plus everything they reach.
        let words = n.div_ceil(64);
        let mut reach = Vec::new();
        if closure && cycle_residue.is_empty() && n > 0 {
            reach = vec![0u64; n * words];
            for &u in topo.iter().rev() {
                for &v in succs(u) {
                    let v = v as usize;
                    reach[u * words + v / 64] |= 1u64 << (v % 64);
                    for w in 0..words {
                        let bits = reach[v * words + w];
                        reach[u * words + w] |= bits;
                    }
                }
            }
        }

        HbGraph { n, words, reach, cycle_residue }
    }

    /// Whether the graph has a cycle (mutually waiting streams).
    pub fn is_cyclic(&self) -> bool {
        !self.cycle_residue.is_empty()
    }

    /// Command indices stuck in (or behind) a cycle; empty when acyclic.
    pub(crate) fn cycle_residue(&self) -> &[usize] {
        &self.cycle_residue
    }

    /// Whether a happens-before path orders `i` and `j` (either direction).
    /// Only meaningful on acyclic graphs.
    pub fn ordered(&self, i: usize, j: usize) -> bool {
        debug_assert!(!self.is_cyclic());
        debug_assert!(i < self.n && j < self.n);
        self.reaches(i, j) || self.reaches(j, i)
    }

    /// Whether a happens-before path runs `from` → `to` (direction matters;
    /// the device-aliasing check needs writer-before-reader specifically).
    /// Only meaningful on acyclic graphs with the closure built. `reaches`
    /// excludes the node itself: `reaches(i, i)` is `false`.
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        self.reach[from * self.words + to / 64] & (1u64 << (to % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{KernelDesc, StreamId};

    fn copy() -> KernelDesc {
        KernelDesc::MemCopy { bytes: 1.0 }
    }

    #[test]
    fn program_order_and_events_order_commands() {
        let mut s = Schedule::new(2);
        let a = s.launch(StreamId(0), copy()); // 0
        let ev = s.record(StreamId(0)); // 1
        let b = s.launch_after(StreamId(1), copy(), vec![ev]); // 2
        let c = s.launch(StreamId(1), copy()); // 3
        let d = s.launch(StreamId(0), copy()); // 4
        let hb = HbGraph::build(&s);
        assert!(!hb.is_cyclic());
        assert!(hb.ordered(a, b), "record/wait orders across streams");
        assert!(hb.ordered(a, c), "transitively through stream 1 order");
        assert!(hb.ordered(a, d), "stream 0 program order");
        assert!(!hb.ordered(d, b), "parallel tails stay unordered");
        assert!(!hb.ordered(d, c));
    }

    #[test]
    fn barrier_joins_all_streams() {
        let mut s = Schedule::new(2);
        let a = s.launch(StreamId(0), copy()); // 0
        let b = s.launch(StreamId(1), copy()); // 1
        s.barrier(); // 2
        let c = s.launch(StreamId(1), copy()); // 3
        let hb = HbGraph::build(&s);
        assert!(hb.ordered(a, c), "barrier orders across streams");
        assert!(hb.ordered(b, c));
        assert!(!hb.ordered(a, b), "pre-barrier work on different streams is parallel");
    }

    #[test]
    fn circular_waits_are_a_cycle() {
        // 0: launch s0 waits[e1]   (e1 recorded at 3, behind the stuck wait
        //    on s1 — each stream waits for an event the other can only
        //    record after its own stuck launch: classic deadlock)
        // 1: record s0 -> e0
        // 2: launch s1 waits[e0]
        // 3: record s1 -> e1
        use astra_gpu::EventId;
        let mut s = Schedule::new(2);
        s.launch_after(StreamId(0), copy(), vec![EventId(1)]);
        let e0 = s.record(StreamId(0));
        assert_eq!(e0, EventId(0));
        s.launch_after(StreamId(1), copy(), vec![e0]);
        let e1 = s.record(StreamId(1));
        assert_eq!(e1, EventId(1));
        let hb = HbGraph::build(&s);
        assert!(hb.is_cyclic());
        assert!(!hb.cycle_residue().is_empty());
    }

    #[test]
    fn empty_schedule_is_acyclic() {
        let s = Schedule::new(1);
        let hb = HbGraph::build(&s);
        assert!(!hb.is_cyclic());
        assert!(hb.cycle_residue().is_empty());
    }

    #[test]
    fn transfers_chain_and_obey_waits() {
        let mut s = Schedule::with_devices(2, vec![0, 1]);
        let p = s.launch(StreamId(0), copy()); // 0 producer on d0
        let e = s.record(StreamId(0)); // 1
        let t = s.transfer(StreamId(1), 4096, 0, 1, vec![e]); // 2
        let c = s.launch(StreamId(1), copy()); // 3 consumer on d1
        let hb = HbGraph::build(&s);
        assert!(!hb.is_cyclic());
        assert!(hb.reaches(p, t), "record/wait orders producer before transfer");
        assert!(hb.reaches(t, c), "stream order chains transfer before consumer");
        assert!(hb.reaches(p, c));
    }

    #[test]
    fn allreduce_rendezvous_orders_arrivals_before_every_member() {
        let mut s = Schedule::with_devices(2, vec![0, 1]);
        let a = s.launch(StreamId(0), copy()); // 0
        let b = s.launch(StreamId(1), copy()); // 1
        let r0 = s.all_reduce(StreamId(0), 1024, 0); // 2
        let r1 = s.all_reduce(StreamId(1), 1024, 0); // 3
        let c = s.launch(StreamId(0), copy()); // 4
        let hb = HbGraph::build(&s);
        assert!(!hb.is_cyclic());
        assert!(hb.reaches(a, r1), "s0's arrival gates s1's release");
        assert!(hb.reaches(b, r0), "s1's arrival gates s0's release");
        assert!(!hb.ordered(r0, r1), "member completions coincide");
        assert!(hb.reaches(b, c), "post-rendezvous work follows all arrivals");
    }

    #[test]
    fn crossed_allreduce_groups_are_a_cycle() {
        let mut s = Schedule::with_devices(2, vec![0, 1]);
        s.all_reduce(StreamId(0), 64, 0); // 0: s0 meets g0 first
        s.all_reduce(StreamId(0), 64, 1); // 1
        s.all_reduce(StreamId(1), 64, 1); // 2: s1 meets g1 first
        s.all_reduce(StreamId(1), 64, 0); // 3
        let hb = HbGraph::build(&s);
        assert!(hb.is_cyclic(), "opposite rendezvous orders deadlock");
    }
}
