//! Parser for the stable text format [`Schedule::render`] produces, so the
//! verifier can run over golden-trace fixtures without rebuilding the model
//! that emitted them.
//!
//! Kernel descriptors are not round-tripped — the rendered label is kept as
//! the launch label and every kernel becomes a placeholder copy. That is
//! enough for every structural rule (events, cycles, barriers, dead code);
//! footprint-based rules need the emitter's access table and do not apply
//! to parsed fixtures.

use astra_gpu::{EventId, KernelDesc, Schedule, StreamId};

/// Parses one rendered schedule.
///
/// # Errors
///
/// Returns a message naming the offending line when the text does not
/// follow the rendered grammar (`streams N`, optional `devices 0,1,..`,
/// `launch sK [waits[..]] label`, `record sK -> eN`, `barrier`, `hostsync`,
/// `transfer sK [waits[..]] NB dS->dD`, `allreduce sK NB gN`), when a
/// `record` line's event id does not match the id the schedule builder
/// assigns (ids are consecutive from e0 in record order), or when a
/// transfer does not cross devices / does not land on its stream's device.
pub fn parse_rendered(text: &str) -> Result<Schedule, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).peekable();

    let (_, first) = lines.next().ok_or_else(|| "empty schedule text".to_string())?;
    let streams: usize = first
        .trim()
        .strip_prefix("streams ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("line 1: expected `streams N`, got `{first}`"))?;
    if streams == 0 {
        return Err("line 1: schedule needs at least one stream".to_string());
    }
    let mut device_of = vec![0usize; streams];
    if let Some(&(idx, l)) = lines.peek() {
        if let Some(list) = l.trim().strip_prefix("devices ") {
            let lineno = idx + 1;
            device_of = list
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .map_err(|_| format!("line {lineno}: bad device index `{t}`"))
                })
                .collect::<Result<Vec<usize>, String>>()?;
            if device_of.len() != streams {
                return Err(format!(
                    "line {lineno}: devices line maps {} stream(s) but the schedule has \
                     {streams}",
                    device_of.len()
                ));
            }
            lines.next();
        }
    }
    let mut sched = Schedule::with_devices(streams, device_of);

    for (idx, raw) in lines {
        let line = raw.trim();
        let lineno = idx + 1;
        if line == "barrier" {
            sched.barrier();
        } else if line == "hostsync" {
            sched.host_sync();
        } else if let Some(rest) = line.strip_prefix("record ") {
            let (s, e) = rest
                .split_once(" -> ")
                .ok_or_else(|| format!("line {lineno}: expected `record sK -> eN`"))?;
            let stream = parse_stream(s, lineno)?;
            let want = parse_event(e, lineno)?;
            let got = sched.record(StreamId(stream));
            if got != want {
                return Err(format!(
                    "line {lineno}: record declares e{} but the builder assigns e{} \
                     (ids must be consecutive in record order)",
                    want.0, got.0
                ));
            }
        } else if let Some(rest) = line.strip_prefix("launch ") {
            let mut parts = rest.splitn(2, ' ');
            let stream = parse_stream(parts.next().unwrap_or(""), lineno)?;
            let mut tail = parts.next().unwrap_or("").trim_start();
            let mut waits = Vec::new();
            if let Some(after) = tail.strip_prefix("waits[") {
                let (list, rest2) = after
                    .split_once(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated waits[..]"))?;
                for ev in list.split(',').filter(|t| !t.is_empty()) {
                    waits.push(parse_event(ev, lineno)?);
                }
                tail = rest2.trim_start();
            }
            if tail.is_empty() {
                return Err(format!("line {lineno}: launch is missing its label"));
            }
            sched.launch_labeled(
                StreamId(stream),
                KernelDesc::MemCopy { bytes: 1.0 },
                waits,
                tail,
            );
        } else if let Some(rest) = line.strip_prefix("transfer ") {
            let mut parts = rest.splitn(2, ' ');
            let stream = parse_stream(parts.next().unwrap_or(""), lineno)?;
            let mut tail = parts.next().unwrap_or("").trim_start();
            let mut waits = Vec::new();
            if let Some(after) = tail.strip_prefix("waits[") {
                let (list, rest2) = after
                    .split_once(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated waits[..]"))?;
                for ev in list.split(',').filter(|t| !t.is_empty()) {
                    waits.push(parse_event(ev, lineno)?);
                }
                tail = rest2.trim_start();
            }
            let (bytes_tok, dev_tok) = tail
                .split_once(' ')
                .ok_or_else(|| format!("line {lineno}: expected `NB dS->dD` after transfer"))?;
            let bytes = parse_bytes(bytes_tok, lineno)?;
            let (s, d) = dev_tok
                .split_once("->")
                .ok_or_else(|| format!("line {lineno}: expected `dS->dD`, got `{dev_tok}`"))?;
            let src = parse_device(s, lineno)?;
            let dst = parse_device(d, lineno)?;
            if stream >= streams {
                return Err(format!("line {lineno}: stream s{stream} out of range"));
            }
            if src == dst {
                return Err(format!("line {lineno}: transfer d{src}->d{dst} does not cross devices"));
            }
            let home = sched.stream_device(StreamId(stream));
            if home != dst {
                return Err(format!(
                    "line {lineno}: transfer stream s{stream} lives on d{home}, not its \
                     destination d{dst}"
                ));
            }
            sched.transfer(StreamId(stream), bytes, src, dst, waits);
        } else if let Some(rest) = line.strip_prefix("allreduce ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            let [s, b, g] = toks[..] else {
                return Err(format!("line {lineno}: expected `allreduce sK NB gN`"));
            };
            let stream = parse_stream(s, lineno)?;
            let bytes = parse_bytes(b, lineno)?;
            let group: u32 = g
                .strip_prefix('g')
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("line {lineno}: expected a group `gN`, got `{g}`"))?;
            if stream >= streams {
                return Err(format!("line {lineno}: stream s{stream} out of range"));
            }
            sched.all_reduce(StreamId(stream), bytes, group);
        } else {
            return Err(format!("line {lineno}: unrecognized command `{line}`"));
        }
    }
    Ok(sched)
}

fn parse_stream(tok: &str, lineno: usize) -> Result<usize, String> {
    tok.trim()
        .strip_prefix('s')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("line {lineno}: expected a stream `sK`, got `{tok}`"))
}

fn parse_event(tok: &str, lineno: usize) -> Result<EventId, String> {
    tok.trim()
        .strip_prefix('e')
        .and_then(|n| n.parse().ok())
        .map(EventId)
        .ok_or_else(|| format!("line {lineno}: expected an event `eN`, got `{tok}`"))
}

fn parse_bytes(tok: &str, lineno: usize) -> Result<u64, String> {
    tok.trim()
        .strip_suffix('B')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("line {lineno}: expected a byte count `NB`, got `{tok}`"))
}

fn parse_device(tok: &str, lineno: usize) -> Result<usize, String> {
    tok.trim()
        .strip_prefix('d')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("line {lineno}: expected a device `dN`, got `{tok}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_rendered_schedule() {
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), KernelDesc::MemCopy { bytes: 1024.0 });
        let ev = s.record(StreamId(0));
        s.launch_labeled(StreamId(1), KernelDesc::MemCopy { bytes: 1.0 }, vec![ev], "mine x");
        s.barrier();
        s.host_sync();
        let text = s.render();
        let parsed = parse_rendered(&text).expect("parses its own rendering");
        assert_eq!(parsed.render(), text, "render -> parse -> render is a fixpoint");
        assert_eq!(parsed.num_streams(), 2);
        assert_eq!(parsed.cmds().len(), 5);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_rendered("").is_err());
        assert!(parse_rendered("streams 0").is_err());
        assert!(parse_rendered("streams 1\nlaunch s0").is_err(), "missing label");
        assert!(parse_rendered("streams 1\nlaunch s0 waits[e0 k").is_err(), "unterminated");
        assert!(parse_rendered("streams 1\nfrobnicate").is_err());
        assert!(
            parse_rendered("streams 1\nrecord s0 -> e5").is_err(),
            "ids must be consecutive from e0"
        );
    }

    #[test]
    fn parses_multi_wait_launches() {
        let text = "streams 2\nrecord s0 -> e0\nrecord s1 -> e1\nlaunch s0 waits[e0,e1] k\n";
        let s = parse_rendered(text).expect("parses");
        assert_eq!(s.cmds().len(), 3);
        assert_eq!(s.render(), text);
    }

    #[test]
    fn round_trips_a_multi_device_schedule() {
        let mut s = Schedule::with_devices(2, vec![0, 1]);
        s.launch(StreamId(0), KernelDesc::MemCopy { bytes: 64.0 });
        let e = s.record(StreamId(0));
        s.transfer(StreamId(1), 4096, 0, 1, vec![e]);
        s.launch(StreamId(1), KernelDesc::MemCopy { bytes: 1.0 });
        s.all_reduce(StreamId(0), 1024, 0);
        s.all_reduce(StreamId(1), 1024, 0);
        let text = s.render();
        let parsed = parse_rendered(&text).expect("parses its own rendering");
        assert_eq!(parsed.render(), text, "render -> parse -> render is a fixpoint");
        assert_eq!(parsed.stream_devices(), &[0, 1]);
        assert_eq!(parsed.allreduce_expect(0), 2);
    }

    #[test]
    fn rejects_malformed_multi_device_lines() {
        assert!(parse_rendered("streams 2\ndevices 0\n").is_err(), "map length mismatch");
        assert!(parse_rendered("streams 2\ndevices 0,x\n").is_err(), "bad device index");
        assert!(
            parse_rendered("streams 2\ndevices 0,1\ntransfer s1 64B d1->d1\n").is_err(),
            "transfer must cross devices"
        );
        assert!(
            parse_rendered("streams 2\ndevices 0,1\ntransfer s0 64B d0->d1\n").is_err(),
            "wrong home device"
        );
        assert!(
            parse_rendered("streams 2\ndevices 0,1\ntransfer s1 64 d0->d1\n").is_err(),
            "bytes need the B suffix"
        );
        assert!(parse_rendered("streams 1\nallreduce s0 64B\n").is_err(), "missing group");
        assert!(parse_rendered("streams 1\nallreduce s0 64B q7\n").is_err(), "bad group token");
    }
}
