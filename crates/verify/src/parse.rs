//! Parser for the stable text format [`Schedule::render`] produces, so the
//! verifier can run over golden-trace fixtures without rebuilding the model
//! that emitted them.
//!
//! Kernel descriptors are not round-tripped — the rendered label is kept as
//! the launch label and every kernel becomes a placeholder copy. That is
//! enough for every structural rule (events, cycles, barriers, dead code);
//! footprint-based rules need the emitter's access table and do not apply
//! to parsed fixtures.

use astra_gpu::{EventId, KernelDesc, Schedule, StreamId};

/// Parses one rendered schedule.
///
/// # Errors
///
/// Returns a message naming the offending line when the text does not
/// follow the rendered grammar (`streams N`, `launch sK [waits[..]] label`,
/// `record sK -> eN`, `barrier`, `hostsync`), or when a `record` line's
/// event id does not match the id the schedule builder assigns (ids are
/// consecutive from e0 in record order).
pub fn parse_rendered(text: &str) -> Result<Schedule, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());

    let (_, first) = lines.next().ok_or_else(|| "empty schedule text".to_string())?;
    let streams: usize = first
        .trim()
        .strip_prefix("streams ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("line 1: expected `streams N`, got `{first}`"))?;
    if streams == 0 {
        return Err("line 1: schedule needs at least one stream".to_string());
    }
    let mut sched = Schedule::new(streams);

    for (idx, raw) in lines {
        let line = raw.trim();
        let lineno = idx + 1;
        if line == "barrier" {
            sched.barrier();
        } else if line == "hostsync" {
            sched.host_sync();
        } else if let Some(rest) = line.strip_prefix("record ") {
            let (s, e) = rest
                .split_once(" -> ")
                .ok_or_else(|| format!("line {lineno}: expected `record sK -> eN`"))?;
            let stream = parse_stream(s, lineno)?;
            let want = parse_event(e, lineno)?;
            let got = sched.record(StreamId(stream));
            if got != want {
                return Err(format!(
                    "line {lineno}: record declares e{} but the builder assigns e{} \
                     (ids must be consecutive in record order)",
                    want.0, got.0
                ));
            }
        } else if let Some(rest) = line.strip_prefix("launch ") {
            let mut parts = rest.splitn(2, ' ');
            let stream = parse_stream(parts.next().unwrap_or(""), lineno)?;
            let mut tail = parts.next().unwrap_or("").trim_start();
            let mut waits = Vec::new();
            if let Some(after) = tail.strip_prefix("waits[") {
                let (list, rest2) = after
                    .split_once(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated waits[..]"))?;
                for ev in list.split(',').filter(|t| !t.is_empty()) {
                    waits.push(parse_event(ev, lineno)?);
                }
                tail = rest2.trim_start();
            }
            if tail.is_empty() {
                return Err(format!("line {lineno}: launch is missing its label"));
            }
            sched.launch_labeled(
                StreamId(stream),
                KernelDesc::MemCopy { bytes: 1.0 },
                waits,
                tail,
            );
        } else {
            return Err(format!("line {lineno}: unrecognized command `{line}`"));
        }
    }
    Ok(sched)
}

fn parse_stream(tok: &str, lineno: usize) -> Result<usize, String> {
    tok.trim()
        .strip_prefix('s')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("line {lineno}: expected a stream `sK`, got `{tok}`"))
}

fn parse_event(tok: &str, lineno: usize) -> Result<EventId, String> {
    tok.trim()
        .strip_prefix('e')
        .and_then(|n| n.parse().ok())
        .map(EventId)
        .ok_or_else(|| format!("line {lineno}: expected an event `eN`, got `{tok}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_rendered_schedule() {
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), KernelDesc::MemCopy { bytes: 1024.0 });
        let ev = s.record(StreamId(0));
        s.launch_labeled(StreamId(1), KernelDesc::MemCopy { bytes: 1.0 }, vec![ev], "mine x");
        s.barrier();
        s.host_sync();
        let text = s.render();
        let parsed = parse_rendered(&text).expect("parses its own rendering");
        assert_eq!(parsed.render(), text, "render -> parse -> render is a fixpoint");
        assert_eq!(parsed.num_streams(), 2);
        assert_eq!(parsed.cmds().len(), 5);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_rendered("").is_err());
        assert!(parse_rendered("streams 0").is_err());
        assert!(parse_rendered("streams 1\nlaunch s0").is_err(), "missing label");
        assert!(parse_rendered("streams 1\nlaunch s0 waits[e0 k").is_err(), "unterminated");
        assert!(parse_rendered("streams 1\nfrobnicate").is_err());
        assert!(
            parse_rendered("streams 1\nrecord s0 -> e5").is_err(),
            "ids must be consecutive from e0"
        );
    }

    #[test]
    fn parses_multi_wait_launches() {
        let text = "streams 2\nrecord s0 -> e0\nrecord s1 -> e1\nlaunch s0 waits[e0,e1] k\n";
        let s = parse_rendered(text).expect("parses");
        assert_eq!(s.cmds().len(), 3);
        assert_eq!(s.render(), text);
    }
}
