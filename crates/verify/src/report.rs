//! Structured diagnostics: rule ids, severities, and the report the
//! verifier returns, with stable text and JSON renderings.
//!
//! # Rule-id namespaces
//!
//! Historic verifier rules carry bare kebab-case ids (`cross-stream-raw`,
//! `event-cycle`, ...); those ids are stable and must never change. Rules
//! contributed by the static linter (`astra-lint`) live in the `lint-*`
//! namespace (`lint-mem-capacity`, `lint-mem-occupancy`,
//! `lint-redundant-sync`) so reports from the two passes can be told apart
//! even when mixed in one stream of diagnostics.

use std::fmt;

/// Identity of one verification rule. Every diagnostic carries exactly one,
/// so callers (and the negative-test harness) can assert on the *class* of
/// problem rather than on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Two unordered cross-stream commands where the earlier writes a
    /// region the later reads.
    CrossStreamRaw,
    /// Two unordered cross-stream commands where the earlier reads a region
    /// the later writes.
    CrossStreamWar,
    /// Two unordered cross-stream commands both writing an overlapping
    /// region.
    CrossStreamWaw,
    /// A launch waits on an event whose only record appears later in
    /// dispatch order — a no-op on real CUDA (`cudaStreamWaitEvent` on an
    /// unrecorded event does not wait), so the intended ordering is gone.
    WaitBeforeRecord,
    /// A launch waits on an event no command ever records: the stream blocks
    /// forever and the device deadlocks at drain.
    WaitNeverRecorded,
    /// The same event is recorded more than once; waiters observe whichever
    /// record fires first and the schedule's meaning is ambiguous.
    DoubleRecord,
    /// The happens-before graph has a cycle (mutually waiting streams):
    /// guaranteed deadlock.
    EventCycle,
    /// A device-wide barrier in a schedule where fewer than two streams
    /// carry work — it synchronizes nothing.
    OrphanBarrier,
    /// Commands that can never execute because they sit behind an
    /// unsatisfiable wait (directly or through stream FIFO order and
    /// barriers).
    DeadCode,
    /// An event is recorded but never waited on. Legitimate for profiling
    /// probes, hence informational.
    UnwaitedEvent,
    /// Two distinct buffers with overlapping live ranges are placed on
    /// overlapping arena byte ranges.
    PlacementOverlap,
    /// A cross-device transfer waits on no event recorded on its source
    /// device: the copy may ship bytes its producer has not written yet.
    TransferBeforeProduce,
    /// All-reduce rendezvous that can never complete: two groups meet in
    /// opposite orders on different streams, or one group arrives twice on
    /// the same stream (the first rendezvous waits on an arrival queued
    /// behind it).
    LinkDeadlock,
    /// A command on one device consumes data last written on another device
    /// with no interposed transfer between them — device memories are not
    /// coherent, so the consumer reads a stale replica.
    DeviceAliasing,
    /// Lint: a device's live placed buffers exceed its memory capacity at
    /// some point of the schedule — the plan would OOM and must not be
    /// simulated or executed.
    LintMemCapacity,
    /// Lint: peak live memory on a device exceeds 90% of its capacity.
    /// Executable, but one allocator hiccup away from an OOM.
    LintMemOccupancy,
    /// Lint: an event wait whose ordering is already implied by other
    /// happens-before edges (transitive reduction removes it). Harmless but
    /// costs a cross-stream sync penalty at issue time.
    LintRedundantSync,
}

impl RuleId {
    /// Stable kebab-case identifier (used in JSON and rendered output).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::CrossStreamRaw => "cross-stream-raw",
            RuleId::CrossStreamWar => "cross-stream-war",
            RuleId::CrossStreamWaw => "cross-stream-waw",
            RuleId::WaitBeforeRecord => "wait-before-record",
            RuleId::WaitNeverRecorded => "wait-never-recorded",
            RuleId::DoubleRecord => "double-record",
            RuleId::EventCycle => "event-cycle",
            RuleId::OrphanBarrier => "orphan-barrier",
            RuleId::DeadCode => "dead-code",
            RuleId::UnwaitedEvent => "unwaited-event",
            RuleId::PlacementOverlap => "placement-overlap",
            RuleId::TransferBeforeProduce => "transfer-before-produce",
            RuleId::LinkDeadlock => "link-deadlock",
            RuleId::DeviceAliasing => "device-aliasing",
            RuleId::LintMemCapacity => "lint-mem-capacity",
            RuleId::LintMemOccupancy => "lint-mem-occupancy",
            RuleId::LintRedundantSync => "lint-redundant-sync",
        }
    }

    /// The severity every diagnostic of this rule carries.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::CrossStreamRaw
            | RuleId::CrossStreamWar
            | RuleId::CrossStreamWaw
            | RuleId::WaitBeforeRecord
            | RuleId::WaitNeverRecorded
            | RuleId::DoubleRecord
            | RuleId::EventCycle
            | RuleId::PlacementOverlap
            | RuleId::TransferBeforeProduce
            | RuleId::LinkDeadlock
            | RuleId::DeviceAliasing
            | RuleId::LintMemCapacity => Severity::Error,
            RuleId::OrphanBarrier
            | RuleId::DeadCode
            | RuleId::LintMemOccupancy
            | RuleId::LintRedundantSync => Severity::Warning,
            RuleId::UnwaitedEvent => Severity::Info,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How bad a diagnostic is. Only [`Severity::Error`] makes a schedule
/// unclean (and gets a candidate plan quarantined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The schedule is wrong: racy, deadlocked, or aliased.
    Error,
    /// Suspicious but executable (dead commands, pointless barriers).
    Warning,
    /// Observation only (e.g. probe events that are never waited).
    Info,
}

impl Severity {
    /// Stable lowercase name (used in JSON and rendered output).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Severity ([`RuleId::severity`] of `rule`).
    pub severity: Severity,
    /// Offending command indices into [`Schedule::cmds`], ascending.
    ///
    /// [`Schedule::cmds`]: astra_gpu::Schedule::cmds
    pub cmds: Vec<usize>,
    /// Span labels of the offending commands (where they have one), in the
    /// same order as `cmds`.
    pub labels: Vec<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic for `rule`; the severity is derived from the
    /// rule. Public so downstream passes (astra-lint) can emit findings
    /// through the same rendering machinery.
    pub fn new(rule: RuleId, cmds: Vec<usize>, labels: Vec<String>, message: String) -> Self {
        Diagnostic { rule, severity: rule.severity(), cmds, labels, message }
    }

    /// Canonical sort key: first offending command, then rule, then the
    /// full command list — the report order is independent of how many
    /// worker threads scanned for hazards.
    pub fn sort_key(&self) -> (usize, RuleId, Vec<usize>) {
        (self.cmds.first().copied().unwrap_or(usize::MAX), self.rule, self.cmds.clone())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if !self.cmds.is_empty() {
            write!(f, " cmds[")?;
            for (i, c) in self.cmds.iter().enumerate() {
                write!(f, "{}{c}", if i > 0 { "," } else { "" })?;
            }
            write!(f, "]")?;
        }
        if !self.labels.is_empty() {
            write!(f, " ({})", self.labels.join(", "))?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Everything one verification pass found.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All findings, in canonical order (first offending command, then rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Commands examined.
    pub cmds_checked: usize,
    /// Cross-stream command pairs tested for hazards (0 without footprints
    /// or on single-stream schedules).
    pub hazard_pairs_checked: u64,
}

impl VerifyReport {
    /// Whether the schedule passed: no [`Severity::Error`] diagnostics.
    /// Warnings and infos do not make a schedule unclean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.iter().all(|d| d.severity != Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Diagnostics of one rule (the negative-test harness asserts on this).
    pub fn of_rule(&self, rule: RuleId) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }

    /// Stable line-oriented text: a summary line, then one line per
    /// diagnostic in canonical order.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "verified {} commands, {} hazard pairs: {} error(s), {} other finding(s)",
            self.cmds_checked,
            self.hazard_pairs_checked,
            self.errors(),
            self.diagnostics.len() - self.errors(),
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        out
    }

    /// Machine-readable JSON (hand-rolled; the workspace has no external
    /// dependencies).
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"clean\":{},\"cmds_checked\":{},\"hazard_pairs_checked\":{},\"diagnostics\":[",
            self.is_clean(),
            self.cmds_checked,
            self.hazard_pairs_checked,
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"cmds\":[",
                d.rule, d.severity
            );
            for (j, c) in d.cmds.iter().enumerate() {
                let _ = write!(out, "{}{c}", if j > 0 { "," } else { "" });
            }
            out.push_str("],\"labels\":[");
            for (j, l) in d.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape_json(l));
            }
            let _ = write!(out, "],\"message\":\"{}\"}}", escape_json(&d.message));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_derived_from_rule() {
        let d = Diagnostic::new(RuleId::CrossStreamRaw, vec![3, 7], vec![], "x".into());
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(
            Diagnostic::new(RuleId::UnwaitedEvent, vec![], vec![], "x".into()).severity,
            Severity::Info
        );
    }

    #[test]
    fn clean_means_no_errors() {
        let mut r = VerifyReport::default();
        assert!(r.is_clean());
        r.diagnostics.push(Diagnostic::new(RuleId::OrphanBarrier, vec![1], vec![], "b".into()));
        assert!(r.is_clean(), "warnings keep a schedule clean");
        r.diagnostics.push(Diagnostic::new(RuleId::EventCycle, vec![0], vec![], "c".into()));
        assert!(!r.is_clean());
        assert_eq!(r.errors(), 1);
    }

    #[test]
    fn json_escapes_and_renders() {
        let mut r = VerifyReport { cmds_checked: 2, ..Default::default() };
        r.diagnostics.push(Diagnostic::new(
            RuleId::DoubleRecord,
            vec![0, 1],
            vec!["a\"b".into()],
            "line\nbreak".into(),
        ));
        let j = r.to_json();
        assert!(j.contains("\"rule\":\"double-record\""));
        assert!(j.contains("a\\\"b"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"clean\":false"));
        let text = r.render();
        assert!(text.starts_with("verified 2 commands"));
        assert!(text.contains("error[double-record] cmds[0,1]"));
    }

    #[test]
    fn rule_ids_are_distinct() {
        let all = [
            RuleId::CrossStreamRaw,
            RuleId::CrossStreamWar,
            RuleId::CrossStreamWaw,
            RuleId::WaitBeforeRecord,
            RuleId::WaitNeverRecorded,
            RuleId::DoubleRecord,
            RuleId::EventCycle,
            RuleId::OrphanBarrier,
            RuleId::DeadCode,
            RuleId::UnwaitedEvent,
            RuleId::PlacementOverlap,
            RuleId::TransferBeforeProduce,
            RuleId::LinkDeadlock,
            RuleId::DeviceAliasing,
            RuleId::LintMemCapacity,
            RuleId::LintMemOccupancy,
            RuleId::LintRedundantSync,
        ];
        let ids: std::collections::HashSet<_> = all.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), all.len());
    }
}
