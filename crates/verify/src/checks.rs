//! The rule implementations: event liveness, cycle reporting, dead-code
//! analysis, the (optionally parallel) cross-stream hazard scan, and the
//! allocation aliasing audit.

use std::collections::HashMap;

use astra_gpu::{AllocationPlan, BufId, Cmd, Schedule};

use crate::access::{overlaps, resolve, AccessTable, Region};
use crate::hb::HbGraph;
use crate::report::{Diagnostic, RuleId};

/// Span labels for the given command indices (only commands that have one).
fn labels_for(sched: &Schedule, cmds: &[usize]) -> Vec<String> {
    let labels = sched.span_labels();
    cmds.iter()
        .filter_map(|&i| labels.get(i).and_then(|l| l.as_deref()).map(str::to_string))
        .collect()
}

fn diag(sched: &Schedule, rule: RuleId, cmds: Vec<usize>, message: String) -> Diagnostic {
    let labels = labels_for(sched, &cmds);
    Diagnostic::new(rule, cmds, labels, message)
}

/// Records per event id, in command order. Built once per verification and
/// shared by every pass that follows event wiring.
pub(crate) fn records_by_event(sched: &Schedule) -> HashMap<u32, Vec<usize>> {
    let mut records: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, cmd) in sched.cmds().iter().enumerate() {
        if let Cmd::Record { event, .. } = cmd {
            records.entry(event.0).or_default().push(i);
        }
    }
    records
}

/// What the event-liveness pass learned, beyond its diagnostics: the two
/// cheap preconditions that let later passes skip their expensive work.
pub(crate) struct EventScan {
    /// The wait-never-recorded / wait-before-record / double-record /
    /// unwaited-event findings.
    pub(crate) diagnostics: Vec<Diagnostic>,
    /// Some wait is dispatched before a record of its event — the only way
    /// the happens-before graph can contain a backward edge (and thus the
    /// only way it can be cyclic).
    pub(crate) record_after_wait: bool,
    /// Some wait references an event no command records — the only root the
    /// dead-code analysis propagates from.
    pub(crate) missing_record: bool,
}

/// Event liveness rules: wait-never-recorded, wait-before-record,
/// double-record, unwaited-event.
pub(crate) fn check_events(sched: &Schedule, records: &HashMap<u32, Vec<usize>>) -> EventScan {
    let mut out = Vec::new();
    let mut waited: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut record_after_wait = false;
    let mut missing_record = false;

    for (i, cmd) in sched.cmds().iter().enumerate() {
        let (what, waits) = match cmd {
            Cmd::Launch { waits, .. } => ("launch", waits),
            Cmd::Transfer { waits, .. } => ("transfer", waits),
            _ => continue,
        };
        for w in waits {
            waited.insert(w.0);
            match records.get(&w.0) {
                None => {
                    missing_record = true;
                    out.push(diag(
                        sched,
                        RuleId::WaitNeverRecorded,
                        vec![i],
                        format!("{what} {i} waits on e{} which is never recorded", w.0),
                    ));
                }
                Some(recs) => {
                    record_after_wait |= recs.iter().any(|&r| r > i);
                    // Satisfiable only if some record is dispatched
                    // before the wait (cudaStreamWaitEvent on a
                    // not-yet-recorded event is a no-op on real
                    // hardware).
                    let first = *recs.first().expect("non-empty by construction");
                    if recs.iter().all(|&r| r > i) {
                        out.push(diag(
                            sched,
                            RuleId::WaitBeforeRecord,
                            vec![i, first],
                            format!(
                                "{what} {i} waits on e{} whose first record is at {first}, \
                                 after the wait",
                                w.0
                            ),
                        ));
                    }
                }
            }
        }
    }

    let mut events: Vec<(&u32, &Vec<usize>)> = records.iter().collect();
    events.sort();
    for (ev, recs) in events {
        if recs.len() > 1 {
            out.push(diag(
                sched,
                RuleId::DoubleRecord,
                recs.clone(),
                format!("e{ev} is recorded {} times", recs.len()),
            ));
        }
        if !waited.contains(ev) {
            out.push(diag(
                sched,
                RuleId::UnwaitedEvent,
                recs.clone(),
                format!("e{ev} is recorded but never waited on"),
            ));
        }
    }
    EventScan { diagnostics: out, record_after_wait, missing_record }
}

/// Cycle rule: one diagnostic naming every command stuck in (or behind) the
/// cycle.
pub(crate) fn check_cycle(sched: &Schedule, hb: &HbGraph) -> Option<Diagnostic> {
    if !hb.is_cyclic() {
        return None;
    }
    let cmds = hb.cycle_residue().to_vec();
    let msg = format!(
        "happens-before cycle: {} command(s) mutually wait on each other (deadlock)",
        cmds.len()
    );
    Some(diag(sched, RuleId::EventCycle, cmds, msg))
}

/// Orphan-barrier rule: barriers in a schedule where fewer than two streams
/// carry any work synchronize nothing.
pub(crate) fn check_orphan_barriers(sched: &Schedule) -> Option<Diagnostic> {
    let mut barrier_cmds = Vec::new();
    let mut active = vec![false; sched.num_streams()];
    for (i, cmd) in sched.cmds().iter().enumerate() {
        match cmd {
            Cmd::Barrier => barrier_cmds.push(i),
            Cmd::Launch { stream, .. }
            | Cmd::Record { stream, .. }
            | Cmd::Transfer { stream, .. }
            | Cmd::AllReduce { stream, .. } => active[stream.0] = true,
            Cmd::HostSync => {}
        }
    }
    let active_streams = active.iter().filter(|&&a| a).count();
    if barrier_cmds.is_empty() || active_streams >= 2 {
        return None;
    }
    let msg = format!(
        "{} barrier(s) in a schedule where only {active_streams} stream(s) carry work",
        barrier_cmds.len()
    );
    Some(diag(sched, RuleId::OrphanBarrier, barrier_cmds, msg))
}

/// Dead-code rule: commands that can never execute because they sit behind
/// an unsatisfiable wait, directly or through stream FIFO order, event
/// wiring, and barriers. The root launches (the ones with the bad wait) are
/// already reported as `wait-never-recorded`, so only the collateral is
/// reported here.
pub(crate) fn check_dead_code(
    sched: &Schedule,
    records: &HashMap<u32, Vec<usize>>,
) -> Option<Diagnostic> {
    let cmds = sched.cmds();
    let n = cmds.len();

    // Stuckness only ever starts at a wait on a never-recorded event; with
    // every wait recorded somewhere, nothing can be dead.
    let any_root = cmds.iter().any(|c| {
        matches!(c, Cmd::Launch { waits, .. } | Cmd::Transfer { waits, .. }
            if waits.iter().any(|w| !records.contains_key(&w.0)))
    });
    if !any_root {
        return None;
    }

    // Gating predecessors: same-stream FIFO order, with barriers and host
    // syncs joining every stream (same chains as the HB graph). Launches
    // and records have at most one (their stream predecessor); only the
    // join commands fan in.
    let mut chain_pred: Vec<u32> = vec![u32::MAX; n];
    let mut join_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut ar_members: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut last_in_stream: Vec<Option<usize>> = vec![None; sched.num_streams()];
    for (i, cmd) in cmds.iter().enumerate() {
        match cmd {
            Cmd::Launch { stream, .. }
            | Cmd::Record { stream, .. }
            | Cmd::Transfer { stream, .. }
            | Cmd::AllReduce { stream, .. } => {
                if let Some(p) = last_in_stream[stream.0] {
                    chain_pred[i] = p as u32;
                }
                last_in_stream[stream.0] = Some(i);
            }
            Cmd::Barrier | Cmd::HostSync => {
                for slot in &mut last_in_stream {
                    if let Some(p) = *slot {
                        join_preds[i].push(p);
                    }
                    *slot = Some(i);
                }
            }
        }
        if let Cmd::AllReduce { group, .. } = cmd {
            ar_members.entry(*group).or_default().push(i);
        }
    }

    let mut stuck = vec![false; n];
    let mut root = vec![false; n];
    loop {
        let mut changed = false;
        for i in 0..n {
            if stuck[i] {
                continue;
            }
            let mut is_stuck = (chain_pred[i] != u32::MAX && stuck[chain_pred[i] as usize])
                || join_preds[i].iter().any(|&p| stuck[p]);
            if let Cmd::Launch { waits, .. } | Cmd::Transfer { waits, .. } = &cmds[i] {
                for w in waits {
                    match records.get(&w.0) {
                        // A wait whose event is never recorded blocks its
                        // stream forever — this launch is a root.
                        None => {
                            is_stuck = true;
                            root[i] = true;
                        }
                        // If every record of the event is itself stuck, the
                        // event never fires.
                        Some(recs) => {
                            if recs.iter().all(|&r| stuck[r]) {
                                is_stuck = true;
                            }
                        }
                    }
                }
            }
            // A rendezvous whose other arrivals never happen never releases.
            if let Cmd::AllReduce { group, .. } = &cmds[i] {
                if ar_members[group].iter().any(|&m| m != i && stuck[m]) {
                    is_stuck = true;
                }
            }
            if is_stuck {
                stuck[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let collateral: Vec<usize> = (0..n).filter(|&i| stuck[i] && !root[i]).collect();
    if collateral.is_empty() {
        return None;
    }
    let msg = format!(
        "{} command(s) can never execute (stuck behind an unsatisfiable wait)",
        collateral.len()
    );
    Some(diag(sched, RuleId::DeadCode, collateral, msg))
}

/// One launch's resolved footprint, ready for pairwise hazard tests.
struct Footprint {
    cmd: usize,
    stream: usize,
    reads: Vec<(BufId, Region)>,
    writes: Vec<(BufId, Region)>,
}

fn any_overlap(a: &[(BufId, Region)], b: &[(BufId, Region)]) -> Option<[(BufId, Region); 2]> {
    for &x in a {
        for &y in b {
            if overlaps(x.1, y.1) {
                return Some([x, y]);
            }
        }
    }
    None
}

fn region_str(r: Region) -> String {
    match r {
        Region::Phys { lo, hi } => format!("[{lo}..{hi})"),
        Region::Virt(_) => "(unplaced)".to_string(),
    }
}

/// Classifies one unordered cross-stream pair, earliest command first.
/// Priority: WAW over RAW over WAR, one diagnostic per pair.
fn classify_pair(sched: &Schedule, a: &Footprint, b: &Footprint) -> Option<Diagnostic> {
    let (rule, [x, y]) = if let Some(hit) = any_overlap(&a.writes, &b.writes) {
        (RuleId::CrossStreamWaw, hit)
    } else if let Some(hit) = any_overlap(&a.writes, &b.reads) {
        (RuleId::CrossStreamRaw, hit)
    } else if let Some(hit) = any_overlap(&a.reads, &b.writes) {
        (RuleId::CrossStreamWar, hit)
    } else {
        return None;
    };
    let verb = match rule {
        RuleId::CrossStreamWaw => "both write",
        RuleId::CrossStreamRaw => "write then read",
        _ => "read then write",
    };
    let msg = format!(
        "launches {} (s{}) and {} (s{}) are unordered and {verb} overlapping memory \
         (buf {} {} vs buf {} {})",
        a.cmd,
        a.stream,
        b.cmd,
        b.stream,
        x.0 .0,
        region_str(x.1),
        y.0 .0,
        region_str(y.1),
    );
    Some(diag(sched, rule, vec![a.cmd, b.cmd], msg))
}

/// An ordered cross-device pair still races through memory: device memories
/// are not coherent, so a consumer ordered after a remote producer reads a
/// stale replica unless a matching transfer is interposed between them
/// (producer → transfer → consumer, shipping src-device bytes to the
/// consumer's device).
fn classify_cross_device(
    sched: &Schedule,
    a: &Footprint,
    b: &Footprint,
    devs: &[usize],
    transfers: &[(usize, usize, usize)],
    hb: &HbGraph,
) -> Option<Diagnostic> {
    let check = |w: &Footprint, r: &Footprint| -> Option<Diagnostic> {
        if !hb.reaches(w.cmd, r.cmd) {
            return None;
        }
        let [x, y] = any_overlap(&w.writes, &r.reads)?;
        let (dw, dr) = (devs[w.stream], devs[r.stream]);
        let shipped = transfers.iter().any(|&(t, src, dst)| {
            src == dw && dst == dr && hb.reaches(w.cmd, t) && hb.reaches(t, r.cmd)
        });
        if shipped {
            return None;
        }
        let msg = format!(
            "launch {} (s{} on d{dw}) produces buf {} {} that launch {} (s{} on d{dr}) \
             consumes as buf {} {} with no interposed d{dw}->d{dr} transfer",
            w.cmd,
            w.stream,
            x.0 .0,
            region_str(x.1),
            r.cmd,
            r.stream,
            y.0 .0,
            region_str(y.1),
        );
        let mut cmds = vec![w.cmd.min(r.cmd), w.cmd.max(r.cmd)];
        cmds.dedup();
        Some(diag(sched, RuleId::DeviceAliasing, cmds, msg))
    };
    check(a, b).or_else(|| check(b, a))
}

/// Cross-stream data-hazard scan. Returns the diagnostics plus the number
/// of cross-stream pairs examined. `workers > 1` splits the scan over that
/// many threads; the final report is sorted canonically, so the output is
/// identical at any worker count.
pub(crate) fn check_hazards(
    sched: &Schedule,
    access: &AccessTable,
    plan: Option<&AllocationPlan>,
    hb: &HbGraph,
    workers: usize,
) -> (Vec<Diagnostic>, u64) {
    if sched.num_streams() < 2 {
        return (Vec::new(), 0);
    }
    let mut fps: Vec<Footprint> = Vec::new();
    for (i, cmd) in sched.cmds().iter().enumerate() {
        let Cmd::Launch { stream, .. } = cmd else { continue };
        let Some(acc) = access.get(i) else { continue };
        fps.push(Footprint {
            cmd: i,
            stream: stream.0,
            reads: acc.reads.iter().map(|&b| (b, resolve(b, plan))).collect(),
            writes: acc.writes.iter().map(|&b| (b, resolve(b, plan))).collect(),
        });
    }
    let devs = sched.stream_devices();
    let transfers: Vec<(usize, usize, usize)> = sched
        .cmds()
        .iter()
        .enumerate()
        .filter_map(|(i, c)| match c {
            Cmd::Transfer { src, dst, .. } => Some((i, *src, *dst)),
            _ => None,
        })
        .collect();

    let scan_chunk = |lo: usize, hi: usize| -> (Vec<Diagnostic>, u64) {
        let mut diags = Vec::new();
        let mut pairs = 0u64;
        for ai in lo..hi {
            let a = &fps[ai];
            for b in &fps[ai + 1..] {
                if a.stream == b.stream {
                    continue;
                }
                pairs += 1;
                if hb.ordered(a.cmd, b.cmd) {
                    if devs[a.stream] != devs[b.stream] {
                        if let Some(d) = classify_cross_device(sched, a, b, devs, &transfers, hb)
                        {
                            diags.push(d);
                        }
                    }
                    continue;
                }
                if let Some(d) = classify_pair(sched, a, b) {
                    diags.push(d);
                }
            }
        }
        (diags, pairs)
    };

    let workers = workers.max(1).min(fps.len().max(1));
    if workers == 1 {
        return scan_chunk(0, fps.len());
    }

    // Contiguous chunks of the outer index; each thread's findings are
    // concatenated in chunk order and the caller's canonical sort makes the
    // report independent of the split.
    let chunk = fps.len().div_ceil(workers);
    let results: Vec<(Vec<Diagnostic>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(fps.len());
                let scan = &scan_chunk;
                scope.spawn(move || scan(lo, hi.max(lo)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("hazard scan worker panicked")).collect()
    });
    let mut diags = Vec::new();
    let mut pairs = 0u64;
    for (d, p) in results {
        diags.extend(d);
        pairs += p;
    }
    (diags, pairs)
}

/// Allocation aliasing audit: distinct placed buffers on overlapping arena
/// byte ranges whose live intervals (first to last access) overlap.
pub(crate) fn check_placements(
    sched: &Schedule,
    access: &AccessTable,
    plan: &AllocationPlan,
) -> Vec<Diagnostic> {
    // Sweep placements in offset order; compare each against the
    // still-open ones.
    let mut placed: Vec<(u64, u64, BufId)> = plan
        .placements()
        .map(|(b, p)| (p.offset, p.offset + p.bytes, b))
        .filter(|&(lo, hi, _)| hi > lo)
        .collect();
    placed.sort();

    // Live interval per *placed* buffer, from the access table — unplaced
    // buffers can never alias, so they are not worth tracking.
    let idx_of: HashMap<BufId, usize> =
        placed.iter().enumerate().map(|(k, &(_, _, b))| (b, k)).collect();
    let mut live: Vec<Option<(usize, usize)>> = vec![None; placed.len()];
    for i in 0..access.len() {
        let Some(acc) = access.get(i) else { continue };
        for b in acc.reads.iter().chain(acc.writes.iter()) {
            if let Some(&k) = idx_of.get(b) {
                match &mut live[k] {
                    Some((_, last)) => *last = i,
                    slot => *slot = Some((i, i)),
                }
            }
        }
    }
    let live = |b: BufId| idx_of.get(&b).and_then(|&k| live[k]);

    let mut out = Vec::new();
    for (i, &(alo, ahi, ba)) in placed.iter().enumerate() {
        let Some((afirst, alast)) = live(ba) else { continue };
        for &(blo, bhi, bb) in &placed[i + 1..] {
            if blo >= ahi {
                break; // sorted by offset: nothing further overlaps `a`
            }
            if !(alo < bhi && blo < ahi) {
                continue;
            }
            let Some((bfirst, blast)) = live(bb) else { continue };
            if afirst > blast || bfirst > alast {
                continue; // live ranges disjoint: co-placement is legal reuse
            }
            let mut cmds = vec![afirst.min(bfirst), afirst.max(bfirst)];
            cmds.dedup();
            out.push(diag(
                sched,
                RuleId::PlacementOverlap,
                cmds,
                format!(
                    "buf {} [{alo}..{ahi}) and buf {} [{blo}..{bhi}) overlap while both live \
                     (cmds {afirst}..={alast} vs {bfirst}..={blast})",
                    ba.0, bb.0
                ),
            ));
        }
    }
    out
}

/// Transfer-before-produce rule: a cross-device copy must wait on at least
/// one event recorded on its *source* device before it is dispatched —
/// otherwise the copy can ship bytes its producer has not written yet.
pub(crate) fn check_transfers(
    sched: &Schedule,
    records: &HashMap<u32, Vec<usize>>,
) -> Vec<Diagnostic> {
    let devs = sched.stream_devices();
    let cmds = sched.cmds();
    let mut out = Vec::new();
    for (i, cmd) in cmds.iter().enumerate() {
        let Cmd::Transfer { src, waits, .. } = cmd else { continue };
        let produced = waits.iter().any(|w| {
            records.get(&w.0).is_some_and(|recs| {
                recs.iter().any(|&r| {
                    r < i
                        && matches!(&cmds[r], Cmd::Record { stream, .. }
                            if devs[stream.0] == *src)
                })
            })
        });
        if !produced {
            out.push(diag(
                sched,
                RuleId::TransferBeforeProduce,
                vec![i],
                format!(
                    "transfer {i} copies from d{src} without waiting on any event recorded \
                     on d{src}: the payload may not be produced yet"
                ),
            ));
        }
    }
    out
}

/// Link-deadlock rule: all-reduce rendezvous that can never complete. Two
/// shapes — one group arriving twice on the same stream (the first
/// rendezvous waits on an arrival queued behind itself), and two groups
/// meeting in opposite orders on different streams (each blocks the
/// other's missing arrival).
pub(crate) fn check_collectives(sched: &Schedule) -> Vec<Diagnostic> {
    let mut per_stream: Vec<Vec<(u32, usize)>> = vec![Vec::new(); sched.num_streams()];
    for (i, cmd) in sched.cmds().iter().enumerate() {
        if let Cmd::AllReduce { stream, group, .. } = cmd {
            per_stream[stream.0].push((*group, i));
        }
    }
    let mut out = Vec::new();

    for sv in &per_stream {
        for (k, &(g, i)) in sv.iter().enumerate() {
            if let Some(&(_, j)) = sv[k + 1..].iter().find(|&&(h, _)| h == g) {
                out.push(diag(
                    sched,
                    RuleId::LinkDeadlock,
                    vec![i, j],
                    format!(
                        "all-reduce group g{g} arrives twice on one stream (cmds {i} and {j}): \
                         the first rendezvous waits on an arrival queued behind it"
                    ),
                ));
            }
        }
    }

    // First witness of every observed "g rendezvouses before h" order; a
    // later stream observing the reverse order is a deadlock. One
    // diagnostic per unordered group pair.
    let mut seen: HashMap<(u32, u32), (usize, usize)> = HashMap::new();
    let mut flagged: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for sv in &per_stream {
        for a in 0..sv.len() {
            for b in a + 1..sv.len() {
                let (g, ig) = sv[a];
                let (h, ih) = sv[b];
                if g == h {
                    continue;
                }
                if let Some(&(jh, jg)) = seen.get(&(h, g)) {
                    let key = (g.min(h), g.max(h));
                    if flagged.insert(key) {
                        let mut cmds = vec![jh, jg, ig, ih];
                        cmds.sort_unstable();
                        cmds.dedup();
                        out.push(diag(
                            sched,
                            RuleId::LinkDeadlock,
                            cmds,
                            format!(
                                "all-reduce groups g{} and g{} rendezvous in opposite orders \
                                 on different streams (deadlock)",
                                key.0, key.1
                            ),
                        ));
                    }
                }
                seen.entry((g, h)).or_insert((ig, ih));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use astra_gpu::{EventId, KernelDesc, Placement, StreamId};

    fn copy() -> KernelDesc {
        KernelDesc::MemCopy { bytes: 1.0 }
    }

    fn events(s: &Schedule) -> Vec<Diagnostic> {
        check_events(s, &records_by_event(s)).diagnostics
    }

    fn dead(s: &Schedule) -> Option<Diagnostic> {
        check_dead_code(s, &records_by_event(s))
    }

    #[test]
    fn wait_never_recorded_and_dead_code() {
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), copy()); // 0 fine
        s.launch_after(StreamId(1), copy(), vec![EventId(9)]); // 1 root
        s.launch(StreamId(1), copy()); // 2 collateral (behind the root)
        let scan = check_events(&s, &records_by_event(&s));
        assert_eq!(scan.diagnostics.len(), 1);
        assert_eq!(scan.diagnostics[0].rule, RuleId::WaitNeverRecorded);
        assert_eq!(scan.diagnostics[0].cmds, vec![1]);
        assert!(scan.missing_record, "never-recorded wait must set the dead-code precondition");
        assert!(!scan.record_after_wait);
        let dead = dead(&s).expect("collateral exists");
        assert_eq!(dead.cmds, vec![2], "root excluded, collateral flagged");
    }

    #[test]
    fn dead_code_propagates_through_events_and_barriers() {
        let mut s = Schedule::new(2);
        s.launch_after(StreamId(0), copy(), vec![EventId(9)]); // 0 root
        let e = s.record(StreamId(0)); // 1 stuck record
        s.launch_after(StreamId(1), copy(), vec![e]); // 2 stuck via event
        s.barrier(); // 3 stuck: s0 never drains
        let dead = dead(&s).expect("collateral exists");
        assert_eq!(dead.cmds, vec![1, 2, 3]);
    }

    #[test]
    fn fully_recorded_schedules_have_no_dead_code() {
        let mut s = Schedule::new(2);
        let e = s.record(StreamId(0));
        s.launch_after(StreamId(1), copy(), vec![e]);
        assert!(dead(&s).is_none());
    }

    #[test]
    fn wait_before_record_and_double_record() {
        let mut s = Schedule::new(2);
        s.launch_after(StreamId(1), copy(), vec![EventId(0)]); // 0: wait first
        let e = s.record(StreamId(0)); // 1
        assert_eq!(e, EventId(0));
        let scan = check_events(&s, &records_by_event(&s));
        let wbr: Vec<_> =
            scan.diagnostics.iter().filter(|d| d.rule == RuleId::WaitBeforeRecord).collect();
        assert_eq!(wbr.len(), 1);
        assert_eq!(wbr[0].cmds, vec![0, 1]);
        assert!(scan.record_after_wait, "record after wait must set the cycle precondition");

        let mut d = Schedule::new(2);
        let e0 = d.record(StreamId(0)); // 0
        d.launch_after(StreamId(1), copy(), vec![e0]); // 1
        // Force a second record of e0 by replaying on another schedule is
        // not possible through the API (record() allocates fresh ids), so
        // double-record can only come from hand-built or parsed schedules.
        // Covered in the parse tests; here assert the clean case.
        assert!(events(&d).iter().all(|x| x.rule != RuleId::DoubleRecord));
    }

    #[test]
    fn unwaited_event_is_info_only() {
        let mut s = Schedule::new(1);
        s.launch(StreamId(0), copy());
        s.record(StreamId(0));
        let evs = events(&s);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].rule, RuleId::UnwaitedEvent);
        assert_eq!(evs[0].severity, crate::Severity::Info);
    }

    #[test]
    fn orphan_barrier_flags_single_stream_work() {
        let mut s = Schedule::new(2);
        s.launch(StreamId(0), copy());
        s.barrier();
        s.launch(StreamId(0), copy());
        let d = check_orphan_barriers(&s).expect("one active stream");
        assert_eq!(d.rule, RuleId::OrphanBarrier);
        assert_eq!(d.cmds, vec![1]);

        let mut ok = Schedule::new(2);
        ok.launch(StreamId(0), copy());
        ok.launch(StreamId(1), copy());
        ok.barrier();
        assert!(check_orphan_barriers(&ok).is_none());
    }

    fn hazard_fixture() -> (Schedule, AccessTable) {
        // Producer writes buf 1 on s0; consumer reads buf 1 on s1.
        let mut s = Schedule::new(2);
        let p = s.launch(StreamId(0), copy()); // 0
        let c = s.launch(StreamId(1), copy()); // 1 — no wait: RAW
        let mut t = AccessTable::new(s.cmds().len());
        t.set(p, Access { reads: vec![], writes: vec![BufId(1)] });
        t.set(c, Access { reads: vec![BufId(1)], writes: vec![BufId(2)] });
        (s, t)
    }

    #[test]
    fn missing_wait_is_a_raw_hazard() {
        let (s, t) = hazard_fixture();
        let hb = HbGraph::build(&s);
        let (diags, pairs) = check_hazards(&s, &t, None, &hb, 1);
        assert_eq!(pairs, 1);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::CrossStreamRaw);
        assert_eq!(diags[0].cmds, vec![0, 1]);
    }

    #[test]
    fn wait_orders_the_pair_away() {
        let mut s = Schedule::new(2);
        let p = s.launch(StreamId(0), copy()); // 0
        let e = s.record(StreamId(0)); // 1
        let c = s.launch_after(StreamId(1), copy(), vec![e]); // 2
        let mut t = AccessTable::new(s.cmds().len());
        t.set(p, Access { reads: vec![], writes: vec![BufId(1)] });
        t.set(c, Access { reads: vec![BufId(1)], writes: vec![] });
        let hb = HbGraph::build(&s);
        let (diags, pairs) = check_hazards(&s, &t, None, &hb, 1);
        assert_eq!(pairs, 1);
        assert!(diags.is_empty(), "record/wait orders the pair");
    }

    #[test]
    fn waw_takes_priority_and_workers_agree() {
        let mut s = Schedule::new(2);
        let a = s.launch(StreamId(0), copy());
        let b = s.launch(StreamId(1), copy());
        let mut t = AccessTable::new(s.cmds().len());
        // Both read and write buf 1: WAW outranks RAW and WAR.
        t.set(a, Access { reads: vec![BufId(1)], writes: vec![BufId(1)] });
        t.set(b, Access { reads: vec![BufId(1)], writes: vec![BufId(1)] });
        let hb = HbGraph::build(&s);
        let (d1, p1) = check_hazards(&s, &t, None, &hb, 1);
        let (d4, p4) = check_hazards(&s, &t, None, &hb, 4);
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].rule, RuleId::CrossStreamWaw);
        assert_eq!(p1, p4);
        assert_eq!(d1, d4, "worker count must not change findings");
    }

    #[test]
    fn transfer_without_source_event_is_flagged() {
        let mut s = Schedule::with_devices(2, vec![0, 1]);
        s.launch(StreamId(0), copy()); // 0 producer, but no record
        s.transfer(StreamId(1), 4096, 0, 1, Vec::new()); // 1: nothing guards the copy
        let diags = check_transfers(&s, &records_by_event(&s));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::TransferBeforeProduce);
        assert_eq!(diags[0].cmds, vec![1]);

        // Waiting on an event recorded on the *destination* is not enough.
        let mut w = Schedule::with_devices(2, vec![0, 1]);
        let e = w.record(StreamId(1));
        w.transfer(StreamId(1), 64, 0, 1, vec![e]);
        assert_eq!(check_transfers(&w, &records_by_event(&w)).len(), 1);

        // The producer's done-event on the source device clears it.
        let mut ok = Schedule::with_devices(2, vec![0, 1]);
        ok.launch(StreamId(0), copy());
        let e = ok.record(StreamId(0));
        ok.transfer(StreamId(1), 64, 0, 1, vec![e]);
        assert!(check_transfers(&ok, &records_by_event(&ok)).is_empty());
    }

    #[test]
    fn crossed_and_doubled_allreduce_groups_deadlock() {
        let mut s = Schedule::with_devices(2, vec![0, 1]);
        s.all_reduce(StreamId(0), 64, 0);
        s.all_reduce(StreamId(0), 64, 1);
        s.all_reduce(StreamId(1), 64, 1);
        s.all_reduce(StreamId(1), 64, 0);
        let diags = check_collectives(&s);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::LinkDeadlock);
        assert_eq!(diags[0].cmds, vec![0, 1, 2, 3]);

        let mut d = Schedule::with_devices(2, vec![0, 1]);
        d.all_reduce(StreamId(0), 64, 5);
        d.all_reduce(StreamId(0), 64, 5);
        let diags = check_collectives(&d);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].cmds, vec![0, 1]);

        let mut ok = Schedule::with_devices(2, vec![0, 1]);
        ok.all_reduce(StreamId(0), 64, 0);
        ok.all_reduce(StreamId(1), 64, 0);
        ok.all_reduce(StreamId(0), 64, 1);
        ok.all_reduce(StreamId(1), 64, 1);
        assert!(check_collectives(&ok).is_empty(), "consistent order is fine");
    }

    #[test]
    fn cross_device_raw_needs_an_interposed_transfer() {
        // Producer on d0, consumer on d1 ordered via record/wait but with no
        // transfer: stale-replica read.
        let mut s = Schedule::with_devices(2, vec![0, 1]);
        let p = s.launch(StreamId(0), copy()); // 0
        let e = s.record(StreamId(0)); // 1
        let c = s.launch_after(StreamId(1), copy(), vec![e]); // 2
        let mut t = AccessTable::new(s.cmds().len());
        t.set(p, Access { reads: vec![], writes: vec![BufId(1)] });
        t.set(c, Access { reads: vec![BufId(1)], writes: vec![] });
        let hb = HbGraph::build(&s);
        let (diags, _) = check_hazards(&s, &t, None, &hb, 1);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::DeviceAliasing);
        assert_eq!(diags[0].cmds, vec![0, 2]);

        // Same shape with the transfer interposed: clean.
        let mut s2 = Schedule::with_devices(2, vec![0, 1]);
        let p = s2.launch(StreamId(0), copy()); // 0
        let e = s2.record(StreamId(0)); // 1
        s2.transfer(StreamId(1), 64, 0, 1, vec![e]); // 2
        let c = s2.launch(StreamId(1), copy()); // 3
        let mut t2 = AccessTable::new(s2.cmds().len());
        t2.set(p, Access { reads: vec![], writes: vec![BufId(1)] });
        t2.set(c, Access { reads: vec![BufId(1)], writes: vec![] });
        let hb2 = HbGraph::build(&s2);
        let (diags2, _) = check_hazards(&s2, &t2, None, &hb2, 1);
        assert!(diags2.is_empty(), "shipped replica is coherent: {diags2:?}");

        // Same device, ordered: never flagged.
        let mut s3 = Schedule::new(2);
        let p = s3.launch(StreamId(0), copy());
        let e = s3.record(StreamId(0));
        let c = s3.launch_after(StreamId(1), copy(), vec![e]);
        let mut t3 = AccessTable::new(s3.cmds().len());
        t3.set(p, Access { reads: vec![], writes: vec![BufId(1)] });
        t3.set(c, Access { reads: vec![BufId(1)], writes: vec![] });
        let hb3 = HbGraph::build(&s3);
        let (diags3, _) = check_hazards(&s3, &t3, None, &hb3, 1);
        assert!(diags3.is_empty());
    }

    #[test]
    fn placement_overlap_requires_live_overlap() {
        let mut s = Schedule::new(1);
        let a = s.launch(StreamId(0), copy()); // 0 uses buf 1
        let b = s.launch(StreamId(0), copy()); // 1 uses buf 2
        let mut t = AccessTable::new(s.cmds().len());
        t.set(a, Access { reads: vec![], writes: vec![BufId(1)] });
        t.set(b, Access { reads: vec![BufId(1)], writes: vec![BufId(2)] });
        let mut plan = AllocationPlan::new();
        plan.place_at(BufId(1), Placement { offset: 0, bytes: 128 });
        plan.place_at(BufId(2), Placement { offset: 64, bytes: 128 });
        let diags = check_placements(&s, &t, &plan);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::PlacementOverlap);
        assert_eq!(diags[0].cmds, vec![0, 1]);

        // Same overlap but disjoint live ranges: buf 1 dies at cmd 0,
        // buf 3 is born at cmd 1 — legal arena reuse.
        let mut t2 = AccessTable::new(s.cmds().len());
        t2.set(a, Access { reads: vec![], writes: vec![BufId(1)] });
        t2.set(b, Access { reads: vec![], writes: vec![BufId(3)] });
        let mut plan2 = AllocationPlan::new();
        plan2.place_at(BufId(1), Placement { offset: 0, bytes: 128 });
        plan2.place_at(BufId(3), Placement { offset: 0, bytes: 128 });
        assert!(check_placements(&s, &t2, &plan2).is_empty());
    }
}
