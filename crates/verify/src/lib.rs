//! Static schedule verifier.
//!
//! Astra's premise is that one measured mini-batch stands in for millions,
//! so a silently-wrong candidate schedule — a missing cross-stream wait, an
//! event waited on before it is recorded, two live buffers co-placed on
//! overlapping arena ranges — poisons the profile index and every decision
//! downstream. The discrete-event engine will happily simulate a racy or
//! deadlock-prone schedule and return a plausible-looking time; this crate
//! is the static backstop that runs *before* simulation.
//!
//! [`verify`] analyses a [`Schedule`] (optionally with the emitter's
//! [`AccessTable`] of per-command buffer footprints and the candidate's
//! [`AllocationPlan`]) in four passes:
//!
//! 1. **Event liveness** — waits on never-recorded events, waits dispatched
//!    before their record (a no-op on real hardware), double records, and
//!    recorded-but-unwaited events.
//! 2. **Happens-before graph** — stream program order, barrier/host-sync
//!    joins, record→wait edges, and (on multi-device schedules) transfer
//!    waits plus all-reduce rendezvous joins; a cycle is a guaranteed
//!    deadlock.
//! 3. **Cross-stream hazard scan** — every unordered cross-stream launch
//!    pair whose resolved footprints overlap is a RAW/WAR/WAW race; an
//!    *ordered* cross-device pair sharing a footprint with no interposed
//!    transfer is a stale-replica read (`device-aliasing`).
//! 4. **Allocation aliasing audit** — distinct buffers placed on
//!    overlapping arena ranges while both are live.
//!
//! Multi-device schedules get two more structural rules: every transfer
//! must wait on an event recorded on its source device
//! (`transfer-before-produce`), and all-reduce rendezvous orders must be
//! consistent across streams (`link-deadlock`).
//!
//! Results come back as a [`VerifyReport`] of [`Diagnostic`]s, each tagged
//! with a stable [`RuleId`] and [`Severity`]; [`VerifyReport::is_clean`] is
//! the accept/reject signal the exploration driver uses to quarantine bad
//! candidates, and [`VerifyReport::to_json`] feeds tooling.
//!
//! # Examples
//!
//! ```
//! use astra_gpu::{KernelDesc, Schedule, StreamId};
//! use astra_verify::{verify, RuleId, VerifyOptions};
//!
//! // A consumer on stream 1 that never waits for its producer's event.
//! let mut s = Schedule::new(2);
//! s.launch(StreamId(0), KernelDesc::MemCopy { bytes: 1024.0 });
//! s.launch_after(StreamId(1), KernelDesc::MemCopy { bytes: 1.0 }, vec![astra_gpu::EventId(7)]);
//! let report = verify(&s, None, None, &VerifyOptions::default());
//! assert!(!report.is_clean());
//! assert_eq!(report.diagnostics[0].rule, RuleId::WaitNeverRecorded);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod access;
mod checks;
mod hb;
mod parse;
mod report;

pub use access::{Access, AccessRef, AccessTable, AccessView};
pub use hb::{happens_before_edges, HbEdge, HbGraph};
pub use parse::parse_rendered;
pub use report::{Diagnostic, RuleId, Severity, VerifyReport};

use astra_gpu::{AllocationPlan, Schedule};

/// Knobs for one verification pass.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Threads for the cross-stream hazard scan (the only super-linear
    /// pass). The report is identical at any worker count; 0 and 1 both
    /// mean single-threaded.
    pub workers: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions { workers: 1 }
    }
}

/// Runs every applicable rule over one schedule.
///
/// `access` supplies per-command buffer footprints (from the emitter); the
/// hazard scan and the aliasing audit need it and are skipped without it.
/// `plan` resolves buffers to physical arena ranges; without it buffers
/// only alias themselves, and the placement audit is skipped.
///
/// # Panics
///
/// Panics if `access` is present but sized for a different schedule
/// (`access.len() != sched.cmds().len()`) — that is a caller bug, not a
/// schedule defect.
pub fn verify(
    sched: &Schedule,
    access: Option<&AccessTable>,
    plan: Option<&AllocationPlan>,
    opts: &VerifyOptions,
) -> VerifyReport {
    if let Some(a) = access {
        assert_eq!(
            a.len(),
            sched.cmds().len(),
            "access table must cover exactly the schedule's commands"
        );
    }

    let records = checks::records_by_event(sched);
    let scan = checks::check_events(sched, &records);
    let mut diagnostics = scan.diagnostics;

    // The transitive closure only feeds the cross-stream hazard scan; skip
    // the quadratic work whenever that scan cannot run. The graph itself is
    // only needed for that scan or for cycle detection — and every HB edge
    // except record-after-wait wiring and all-reduce rendezvous joins
    // points forward in dispatch order, so without one of those the graph
    // is acyclic by construction and need not be built at all.
    let want_closure = sched.num_streams() >= 2 && access.is_some();
    let has_collectives = !sched.allreduce_groups().is_empty();
    let hb = if want_closure || scan.record_after_wait || has_collectives {
        Some(hb::HbGraph::build_with(sched, want_closure, &records))
    } else {
        None
    };
    if let Some(d) = hb.as_ref().and_then(|h| checks::check_cycle(sched, h)) {
        diagnostics.push(d);
    }
    if let Some(d) = checks::check_orphan_barriers(sched) {
        diagnostics.push(d);
    }
    diagnostics.extend(checks::check_transfers(sched, &records));
    diagnostics.extend(checks::check_collectives(sched));
    // Dead code only ever roots at a wait on a never-recorded event.
    if scan.missing_record {
        if let Some(d) = checks::check_dead_code(sched, &records) {
            diagnostics.push(d);
        }
    }

    let mut hazard_pairs_checked = 0;
    if let Some(acc) = access {
        if let Some(h) = hb.as_ref().filter(|h| !h.is_cyclic()) {
            let (hazards, pairs) = checks::check_hazards(sched, acc, plan, h, opts.workers.max(1));
            diagnostics.extend(hazards);
            hazard_pairs_checked = pairs;
        }
    }
    if let (Some(acc), Some(pl)) = (access, plan) {
        diagnostics.extend(checks::check_placements(sched, acc, pl));
    }

    diagnostics.sort_by_key(|d| d.sort_key());
    VerifyReport { diagnostics, cmds_checked: sched.cmds().len(), hazard_pairs_checked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{BufId, KernelDesc, Placement, StreamId};

    fn copy() -> KernelDesc {
        KernelDesc::MemCopy { bytes: 1.0 }
    }

    #[test]
    fn well_formed_pipeline_is_clean() {
        let mut s = Schedule::new(2);
        let p = s.launch(StreamId(0), copy());
        let e = s.record(StreamId(0));
        let c = s.launch_after(StreamId(1), copy(), vec![e]);
        s.barrier();
        s.host_sync();
        let mut t = AccessTable::new(s.cmds().len());
        t.set(p, Access { reads: vec![BufId(0)], writes: vec![BufId(1)] });
        t.set(c, Access { reads: vec![BufId(1)], writes: vec![BufId(2)] });
        let mut plan = AllocationPlan::new();
        plan.place_group(&[(BufId(0), 64), (BufId(1), 64), (BufId(2), 64)]);
        let report = verify(&s, Some(&t), Some(&plan), &VerifyOptions::default());
        assert!(report.is_clean(), "unexpected: {}", report.render());
        assert_eq!(report.cmds_checked, 5);
        assert_eq!(report.hazard_pairs_checked, 1);
    }

    #[test]
    fn missing_wait_surfaces_as_raw_hazard() {
        let mut s = Schedule::new(2);
        let p = s.launch(StreamId(0), copy());
        let _e = s.record(StreamId(0));
        let c = s.launch(StreamId(1), copy()); // forgot the wait
        let mut t = AccessTable::new(s.cmds().len());
        t.set(p, Access { reads: vec![], writes: vec![BufId(1)] });
        t.set(c, Access { reads: vec![BufId(1)], writes: vec![] });
        let report = verify(&s, Some(&t), None, &VerifyOptions::default());
        assert!(!report.is_clean());
        assert_eq!(report.of_rule(RuleId::CrossStreamRaw).len(), 1);
    }

    #[test]
    fn overlapping_live_placements_are_rejected() {
        let mut s = Schedule::new(1);
        let a = s.launch(StreamId(0), copy());
        let b = s.launch(StreamId(0), copy());
        let mut t = AccessTable::new(s.cmds().len());
        t.set(a, Access { reads: vec![], writes: vec![BufId(1)] });
        t.set(b, Access { reads: vec![BufId(1)], writes: vec![BufId(2)] });
        let mut plan = AllocationPlan::new();
        plan.place_at(BufId(1), Placement { offset: 0, bytes: 256 });
        plan.place_at(BufId(2), Placement { offset: 128, bytes: 256 });
        let report = verify(&s, Some(&t), Some(&plan), &VerifyOptions::default());
        assert_eq!(report.of_rule(RuleId::PlacementOverlap).len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn cycle_suppresses_hazard_scan() {
        use astra_gpu::EventId;
        let mut s = Schedule::new(2);
        let a = s.launch_after(StreamId(0), copy(), vec![EventId(1)]);
        let e0 = s.record(StreamId(0));
        let b = s.launch_after(StreamId(1), copy(), vec![e0]);
        let _e1 = s.record(StreamId(1));
        let mut t = AccessTable::new(s.cmds().len());
        t.set(a, Access { reads: vec![], writes: vec![BufId(1)] });
        t.set(b, Access { reads: vec![BufId(1)], writes: vec![] });
        let report = verify(&s, Some(&t), None, &VerifyOptions::default());
        assert_eq!(report.of_rule(RuleId::EventCycle).len(), 1);
        assert_eq!(report.hazard_pairs_checked, 0, "cyclic graphs skip the scan");
        assert!(!report.is_clean());
    }

    #[test]
    fn reports_are_worker_invariant() {
        // A wider schedule with several unordered cross-stream pairs.
        let mut s = Schedule::new(4);
        let mut idxs = Vec::new();
        for i in 0..12 {
            idxs.push(s.launch(StreamId(i % 4), copy()));
        }
        let mut t = AccessTable::new(s.cmds().len());
        for (k, &i) in idxs.iter().enumerate() {
            t.set(
                i,
                Access {
                    reads: vec![BufId(k as u64 % 3)],
                    writes: vec![BufId(10 + k as u64 % 2)],
                },
            );
        }
        let r1 = verify(&s, Some(&t), None, &VerifyOptions { workers: 1 });
        let r4 = verify(&s, Some(&t), None, &VerifyOptions { workers: 4 });
        let r9 = verify(&s, Some(&t), None, &VerifyOptions { workers: 9 });
        assert_eq!(r1.render(), r4.render());
        assert_eq!(r1.render(), r9.render());
        assert_eq!(r1.to_json(), r4.to_json());
        assert!(!r1.diagnostics.is_empty(), "fixture should actually find hazards");
    }

    #[test]
    #[should_panic(expected = "access table must cover")]
    fn mismatched_access_table_panics() {
        let mut s = Schedule::new(1);
        s.launch(StreamId(0), copy());
        let t = AccessTable::new(7);
        let _ = verify(&s, Some(&t), None, &VerifyOptions::default());
    }
}
