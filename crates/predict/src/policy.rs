//! The pruning policy: per-variable top-k selection with an epsilon tail.

use astra_util::Rng64;

/// Knobs governing how aggressively a lookahead batch is pruned.
#[derive(Debug, Clone, Copy)]
pub struct PrunePolicy {
    /// Per adaptive variable, the number of predicted-cheapest *choices*
    /// whose trials are always simulated.
    pub top_k: usize,
    /// Probability that an otherwise-pruned trial is simulated anyway
    /// (exploration tail; keeps the model honest off its greedy path).
    pub epsilon: f64,
    /// Regret-guard margin: the driver re-admits a pruned candidate whose
    /// predicted cost is within `best · (1 + margin)` of the measured best
    /// for some variable, so a near-miss prediction is measured rather
    /// than trusted.
    pub margin: f64,
    /// Minimum committed observations of a phase kind before batches of
    /// that kind may be pruned at all (cold models simulate everything).
    pub min_updates: u64,
}

impl Default for PrunePolicy {
    fn default() -> Self {
        PrunePolicy { top_k: 2, epsilon: 0.1, margin: 0.5, min_updates: 8 }
    }
}

/// One prediction inside a trial: the active adaptive variable it covers,
/// the choice the trial assigns to that variable, and the predicted cost.
#[derive(Debug, Clone, Copy)]
pub struct PredEntry {
    /// Index of the variable in the phase's active-variable list.
    pub var: usize,
    /// Choice index the trial assigns to the variable.
    pub choice: usize,
    /// Predicted cost of that (variable, choice) under this trial, in ns.
    pub predicted_ns: f64,
}

/// Selects which trials of a lookahead batch to simulate.
///
/// `preds[t]` holds trial `t`'s predictions for every *active* variable
/// (`None` marks an invalid candidate, which is never selected — the
/// driver poisons it as before). For each variable, the distinct choices
/// appearing in the batch are ranked by predicted cost and the earliest
/// trial carrying each of the `top_k` cheapest choices is selected; ties
/// break on (choice, trial) order so selection is deterministic. Every
/// unselected valid trial then draws once from `rng`, in trial order, and
/// joins the simulated set with probability `epsilon`.
///
/// Guarantee: every active variable gets at least `min(top_k, #choices)`
/// distinct choices measured, so no variable is ever decided on
/// predictions alone.
pub fn select_trials(
    policy: &PrunePolicy,
    preds: &[Option<Vec<PredEntry>>],
    rng: &mut Rng64,
) -> Vec<bool> {
    let mut simulate = vec![false; preds.len()];
    let num_vars = preds
        .iter()
        .flatten()
        .flat_map(|ps| ps.iter().map(|p| p.var + 1))
        .max()
        .unwrap_or(0);
    for v in 0..num_vars {
        // (predicted, choice, first trial carrying the choice).
        let mut ranked: Vec<(f64, usize, usize)> = Vec::new();
        for (t, ps) in preds.iter().enumerate() {
            let Some(ps) = ps else { continue };
            for p in ps.iter().filter(|p| p.var == v) {
                if !ranked.iter().any(|&(_, c, _)| c == p.choice) {
                    ranked.push((p.predicted_ns, p.choice, t));
                }
            }
        }
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for &(_, _, t) in ranked.iter().take(policy.top_k) {
            simulate[t] = true;
        }
    }
    for (t, ps) in preds.iter().enumerate() {
        if ps.is_some() && !simulate[t] && rng.gen_f64() < policy.epsilon {
            simulate[t] = true;
        }
    }
    simulate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(var: usize, choice: usize, ns: f64) -> PredEntry {
        PredEntry { var, choice, predicted_ns: ns }
    }

    #[test]
    fn top_k_covers_distinct_choices_per_variable() {
        // One variable, 4 choices; trials 3..5 repeat the last choice (an
        // exhausted parallel-mode variable) — top-2 must pick the trials of
        // the two cheapest *choices*, not two copies of one.
        let preds: Vec<Option<Vec<PredEntry>>> = vec![
            Some(vec![entry(0, 0, 400.0)]),
            Some(vec![entry(0, 1, 100.0)]),
            Some(vec![entry(0, 2, 300.0)]),
            Some(vec![entry(0, 3, 200.0)]),
            Some(vec![entry(0, 3, 200.0)]),
        ];
        let policy = PrunePolicy { epsilon: 0.0, ..PrunePolicy::default() };
        let mut rng = Rng64::new(1);
        let sel = select_trials(&policy, &preds, &mut rng);
        assert_eq!(sel, vec![false, true, false, true, false]);
    }

    #[test]
    fn every_variable_keeps_its_top_k() {
        // Two variables with opposite rankings: the union must cover both.
        let preds: Vec<Option<Vec<PredEntry>>> = vec![
            Some(vec![entry(0, 0, 1.0), entry(1, 0, 9.0)]),
            Some(vec![entry(0, 1, 2.0), entry(1, 1, 8.0)]),
            Some(vec![entry(0, 2, 3.0), entry(1, 2, 1.0)]),
        ];
        let policy = PrunePolicy { top_k: 1, epsilon: 0.0, ..PrunePolicy::default() };
        let sel = select_trials(&policy, &preds, &mut Rng64::new(1));
        assert_eq!(sel, vec![true, false, true]);
    }

    #[test]
    fn invalid_trials_are_never_selected() {
        let preds: Vec<Option<Vec<PredEntry>>> =
            vec![None, Some(vec![entry(0, 0, 1.0)]), None];
        let policy = PrunePolicy { epsilon: 1.0, ..PrunePolicy::default() };
        let sel = select_trials(&policy, &preds, &mut Rng64::new(7));
        assert_eq!(sel, vec![false, true, false]);
    }

    #[test]
    fn selection_is_deterministic_for_a_fixed_seed() {
        let preds: Vec<Option<Vec<PredEntry>>> = (0..16)
            .map(|t| Some(vec![entry(0, t, 100.0 + t as f64)]))
            .collect();
        let policy = PrunePolicy { top_k: 3, epsilon: 0.25, ..PrunePolicy::default() };
        let a = select_trials(&policy, &preds, &mut Rng64::new(42));
        let b = select_trials(&policy, &preds, &mut Rng64::new(42));
        assert_eq!(a, b);
        assert!(a.iter().filter(|&&s| s).count() >= 3);
    }
}
