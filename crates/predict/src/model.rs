//! The linear cost model: normalized-LMS regression in log-cost space.

use crate::feature::{FeatureVec, FEATURE_DIM};

/// Learning rate for the normalized-LMS update. NLMS divides each step by
/// the feature vector's squared norm, so rates near 1 are stable; 0.5
/// converges within a handful of samples per region without oscillating.
const LEARNING_RATE: f64 = 0.5;

/// Clamp on the raw (log-space) activation before exponentiating, so a
/// half-trained model can never predict `inf` or `0`.
const RAW_CLAMP: f64 = 80.0;

/// Half-width (in nats) of the calibration window around the observed
/// target range: predictions may extrapolate at most `e³ ≈ 20x` beyond
/// the cheapest/costliest measurement the model has seen.
const CALIBRATION_SLACK: f64 = 3.0;

/// An online linear regressor over hashed plan features, predicting the
/// *logarithm* of a candidate's cost in nanoseconds.
///
/// Log space matters twice: region times span orders of magnitude (a
/// fused GEMM block vs. a whole-placement mini-batch), and ranking — the
/// only thing the pruning policy needs — is preserved exactly by the
/// monotone exp. Updates are normalized LMS (`w += lr·err·x / ‖x‖²`),
/// which is scale-free in the features and deterministic: the driver
/// applies updates sequentially in commit (candidate) order, which is
/// pinned by the property suite.
#[derive(Debug, Clone)]
pub struct CostModel {
    weights: [f64; FEATURE_DIM],
    bias: f64,
    updates: u64,
    /// Observed log-target range, for the calibration clamp: a linear
    /// model extrapolates unboundedly on unseen feature combinations, but
    /// a region's cost can't plausibly leave the measured envelope by
    /// orders of magnitude.
    t_min: f64,
    t_max: f64,
}

/// A [`CostModel`]'s learned state as plain owned data, for persistence.
/// Produced by [`CostModel::to_state`], consumed by
/// [`CostModel::from_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModelState {
    /// Feature weights (length [`FEATURE_DIM`]).
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
    /// Online updates applied so far.
    pub updates: u64,
    /// Calibration envelope, low edge (log-ns).
    pub t_min: f64,
    /// Calibration envelope, high edge (log-ns).
    pub t_max: f64,
}

impl CostModel {
    /// A fresh, untrained model (predicts `e⁰ = 1 ns` everywhere).
    pub fn new() -> Self {
        CostModel {
            weights: [0.0; FEATURE_DIM],
            bias: 0.0,
            updates: 0,
            t_min: f64::INFINITY,
            t_max: f64::NEG_INFINITY,
        }
    }

    /// The unclamped linear activation (training target space).
    fn linear(&self, f: &FeatureVec) -> f64 {
        let dot: f64 =
            self.weights.iter().zip(f.values()).map(|(w, x)| w * x).sum();
        (self.bias + dot).clamp(-RAW_CLAMP, RAW_CLAMP)
    }

    fn raw(&self, f: &FeatureVec) -> f64 {
        let r = self.linear(f);
        if self.updates == 0 {
            r
        } else {
            r.clamp(self.t_min - CALIBRATION_SLACK, self.t_max + CALIBRATION_SLACK)
        }
    }

    /// Predicted cost in nanoseconds (always finite and positive).
    pub fn predict_ns(&self, f: &FeatureVec) -> f64 {
        self.raw(f).exp()
    }

    /// Snapshots the model's full learned state for persistence. The
    /// inverse of [`CostModel::from_state`]; the pair is lossless, so a
    /// restored model predicts and trains bit-identically to the original.
    pub fn to_state(&self) -> CostModelState {
        CostModelState {
            weights: self.weights.to_vec(),
            bias: self.bias,
            updates: self.updates,
            t_min: self.t_min,
            t_max: self.t_max,
        }
    }

    /// Rebuilds a model from a persisted snapshot. Returns `None` if the
    /// weight vector's length doesn't match this build's [`FEATURE_DIM`]
    /// (a store written by an incompatible feature hash layout — warm
    /// state that must not be trusted).
    pub fn from_state(state: &CostModelState) -> Option<Self> {
        let weights: [f64; FEATURE_DIM] = state.weights.as_slice().try_into().ok()?;
        Some(CostModel {
            weights,
            bias: state.bias,
            updates: state.updates,
            t_min: state.t_min,
            t_max: state.t_max,
        })
    }

    /// Trains on one committed measurement. Returns the absolute
    /// prediction error in nanoseconds *before* the update.
    pub fn observe(&mut self, f: &FeatureVec, measured_ns: f64) -> f64 {
        let before = self.predict_ns(f);
        let target = measured_ns.max(1.0).ln();
        if self.updates == 0 {
            // Seed the bias at the first sample's magnitude: NLMS steps are
            // damped by the feature norm, so climbing from 0 to a realistic
            // log-cost would otherwise take hundreds of updates.
            self.bias = target;
        }
        self.t_min = self.t_min.min(target);
        self.t_max = self.t_max.max(target);
        // Train against the *unclamped* activation: the calibration clamp
        // is an inference-time guard, and folding it into the gradient
        // would stall weight corrections outside the window.
        let err = target - self.linear(f);
        let norm: f64 = 1.0 + f.values().iter().map(|x| x * x).sum::<f64>();
        let step = LEARNING_RATE * err / norm;
        self.bias += step;
        for (w, x) in self.weights.iter_mut().zip(f.values()) {
            *w += step * x;
        }
        self.updates += 1;
        (before - measured_ns).abs()
    }

    /// Number of observations applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(rc: f64, flops: f64) -> FeatureVec {
        let mut f = FeatureVec::new();
        f.push("row_chunk", rc);
        f.push_log("flops", flops);
        f
    }

    #[test]
    fn learns_a_monotone_cost_surface() {
        // Cost grows with flops and shrinks with chunking; after a few
        // passes the model must rank candidates correctly.
        let mut m = CostModel::new();
        for _ in 0..64 {
            for (rc, flops, ns) in
                [(1.0, 1e6, 4000.0), (2.0, 1e6, 2600.0), (4.0, 1e6, 2000.0), (1.0, 4e6, 16000.0)]
            {
                m.observe(&feat(rc, flops), ns);
            }
        }
        let p1 = m.predict_ns(&feat(1.0, 1e6));
        let p4 = m.predict_ns(&feat(4.0, 1e6));
        assert!(p4 < p1, "chunked {p4} should be predicted cheaper than unfused {p1}");
        assert!(m.predict_ns(&feat(1.0, 4e6)) > p1);
        assert_eq!(m.updates(), 256);
    }

    #[test]
    fn predictions_stay_finite_under_extreme_targets() {
        let mut m = CostModel::new();
        for _ in 0..100 {
            m.observe(&feat(1.0, 1e18), 1e18);
            m.observe(&feat(8.0, 1.0), 0.0);
        }
        let p = m.predict_ns(&feat(4.0, 1e9));
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn state_roundtrip_is_lossless() {
        let mut m = CostModel::new();
        for i in 0..50u32 {
            m.observe(&feat(f64::from(i % 5), 1e6 * f64::from(i + 1)), 1e3 * f64::from(i + 7));
        }
        let state = m.to_state();
        let back = CostModel::from_state(&state).expect("dimensions match");
        let probe = feat(3.0, 5e6);
        assert_eq!(m.predict_ns(&probe).to_bits(), back.predict_ns(&probe).to_bits());
        assert_eq!(back.to_state(), state);
        // A wrong-dimension snapshot is refused, not truncated.
        let mut bad = state;
        bad.weights.pop();
        assert!(CostModel::from_state(&bad).is_none());
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut m = CostModel::new();
            for i in 0..50u32 {
                m.observe(&feat(f64::from(i % 5), 1e6 * f64::from(i + 1)), 1e3 * f64::from(i + 7));
            }
            m.predict_ns(&feat(3.0, 5e6)).to_bits()
        };
        assert_eq!(run(), run());
    }
}
