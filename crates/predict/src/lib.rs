//! # astra-predict — an online-learned cost model for exploration pruning
//!
//! Astra's exploration driver measures every candidate configuration by
//! simulating a full training mini-batch. The profile index those
//! measurements feed is training data nobody learns from — this crate
//! closes the loop (AutoTVM-style: *Learning to Optimize Tensor
//! Programs*): a feature-hashed linear regressor, trained incrementally
//! from committed measurements, ranks the candidates of each lookahead
//! batch so the driver simulates only the predicted top-k plus an
//! exploration-epsilon tail. Everything else inherits its predicted cost,
//! guarded by a bounded-regret re-admission check in the driver.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Training is plain sequential f64 arithmetic in
//!    commit order; the epsilon tail draws from a fixed-seed
//!    [`astra_util::Rng64`] owned by the driver. Same inputs, same
//!    selections — at any worker count.
//! 2. **Zero dependencies.** Feature hashing is FNV-1a, the regressor is a
//!    normalized-LMS linear model over [`FEATURE_DIM`] hashed buckets; no
//!    external crates.
//! 3. **Honest about uncertainty.** The model predicts in log-cost space
//!    (mini-batch regions span orders of magnitude) and the policy never
//!    lets a prediction *win* — the driver's regret guard re-measures any
//!    pruned candidate predicted within a margin of the measured best, so
//!    final assignments are always backed by real measurements.
//!
//! The crate is engine-agnostic: features are plain `(name, value)` pairs
//! pushed by the caller ([`FeatureVec`]), predictions are nanoseconds, and
//! the selection policy ([`select_trials`]) sees candidates only as
//! per-variable `(choice, predicted cost)` entries.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod feature;
mod model;
mod policy;

pub use feature::{FeatureVec, FEATURE_DIM};
pub use model::{CostModel, CostModelState};
pub use policy::{select_trials, PredEntry, PrunePolicy};
