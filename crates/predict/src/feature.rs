//! Fixed-width hashed feature vectors.
//!
//! A [`FeatureVec`] is the bridge between candidate plans (fusion chunk
//! sizes, GEMM shapes, stream fanout, placement shares, topology) and the
//! linear model: callers push named numeric features and categorical tags,
//! and each lands in one of [`FEATURE_DIM`] buckets via FNV-1a feature
//! hashing with a hash-bit sign (the standard collision-bias trick). The
//! vector also maintains a 64-bit *fingerprint* over every raw
//! `(name, value)` pair pushed, in push order — an identity for the full
//! candidate that collisions in the bucketed view cannot erase, used by
//! the property suite to pin extraction determinism and injectivity.

/// Number of hashed value buckets in a [`FeatureVec`].
///
/// Small on purpose: the driver's candidate spaces have a few dozen
/// distinct knobs, and a compact dense vector keeps prediction and
/// update costs trivial next to a simulated mini-batch.
pub const FEATURE_DIM: usize = 256;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A dense, fixed-width hashed feature vector with a raw-pair fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVec {
    vals: [f64; FEATURE_DIM],
    fingerprint: u64,
}

impl FeatureVec {
    /// An empty vector (all buckets zero).
    pub fn new() -> Self {
        FeatureVec { vals: [0.0; FEATURE_DIM], fingerprint: FNV_OFFSET }
    }

    fn fold(&mut self, name: &str, payload: u64) {
        self.fingerprint = fnv(self.fingerprint, name.as_bytes());
        self.fingerprint = fnv(self.fingerprint, &payload.to_le_bytes());
    }

    fn bucket(h: u64) -> (usize, f64) {
        let sign = if h & 1 == 0 { 1.0 } else { -1.0 };
        ((h >> 1) as usize % FEATURE_DIM, sign)
    }

    /// Adds a numeric feature. Repeated pushes of the same name accumulate
    /// in the same bucket; callers should pre-scale unbounded magnitudes
    /// (see [`FeatureVec::push_log`]).
    pub fn push(&mut self, name: &str, value: f64) {
        let (b, sign) = Self::bucket(fnv(FNV_OFFSET, name.as_bytes()));
        self.vals[b] += sign * value;
        self.fold(name, value.to_bits());
    }

    /// Adds a numeric feature on a `log2(1 + v)` scale — the right shape
    /// for bytes, FLOPs, and other multi-order-of-magnitude quantities.
    pub fn push_log(&mut self, name: &str, value: f64) {
        self.push(name, (1.0 + value.max(0.0)).log2());
    }

    /// Adds a categorical feature: the `(name, id)` pair hashes to its own
    /// bucket with unit weight, so distinct ids become distinct indicator
    /// features rather than points on a numeric axis.
    pub fn tag(&mut self, name: &str, id: &str) {
        let h = fnv(fnv(FNV_OFFSET, name.as_bytes()), id.as_bytes());
        let (b, sign) = Self::bucket(h);
        self.vals[b] += sign;
        self.fold(name, fnv(FNV_OFFSET, id.as_bytes()));
    }

    /// Folds a `(name, id)` pair into the fingerprint *only* — no bucket is
    /// touched. Used for identity components (e.g. the full chunk map of a
    /// candidate) that must distinguish candidates without polluting the
    /// model's generalizable features.
    pub fn note(&mut self, name: &str, id: &str) {
        self.fold(name, fnv(FNV_OFFSET, id.as_bytes()));
    }

    /// The bucketed values the model consumes.
    pub fn values(&self) -> &[f64; FEATURE_DIM] {
        &self.vals
    }

    /// The order-sensitive FNV-1a fingerprint over all raw pairs pushed.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl Default for FeatureVec {
    fn default() -> Self {
        FeatureVec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_is_deterministic() {
        let build = || {
            let mut f = FeatureVec::new();
            f.push("row_chunk", 4.0);
            f.push_log("flops", 1.0e9);
            f.tag("set", "fuse:lstm.gates");
            f.note("chunks", "{a:(2,1)}");
            f
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn distinct_inputs_have_distinct_fingerprints() {
        let mut seen = std::collections::HashSet::new();
        for rc in [1usize, 2, 4, 8] {
            for tag in ["a", "b", "c"] {
                for noted in ["x", "y"] {
                    let mut f = FeatureVec::new();
                    f.push("row_chunk", rc as f64);
                    f.tag("set", tag);
                    f.note("chunks", noted);
                    assert!(seen.insert(f.fingerprint()), "collision at {rc}/{tag}/{noted}");
                }
            }
        }
    }

    #[test]
    fn note_only_touches_the_fingerprint() {
        let mut a = FeatureVec::new();
        a.push("x", 1.0);
        let mut b = a.clone();
        b.note("identity", "whole-candidate");
        assert_eq!(a.values(), b.values());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn tags_are_indicators_not_magnitudes() {
        let mut a = FeatureVec::new();
        a.tag("lib", "CublasLike");
        let mut b = FeatureVec::new();
        b.tag("lib", "OaiWide");
        // Distinct ids must not land as different magnitudes of one axis.
        assert_ne!(a.values(), b.values());
    }
}
