//! A minimal wall-clock microbenchmark harness.
//!
//! The workspace cannot depend on criterion (offline builds), and the bench
//! binaries only need "run a closure N times, report ns/iter" — so that is
//! all this provides. Use [`std::hint::black_box`] in the closure to keep
//! the optimizer honest.

use std::time::Instant;

/// Runs `f` for `warmup` untimed iterations, then `iters` timed iterations,
/// and returns the mean wall-clock nanoseconds per timed iteration.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn bench_ns<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> f64 {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs [`bench_ns`] and prints a `name: N ns/iter` line, mirroring the
/// one-line-per-case output of the old criterion benches.
pub fn report<F: FnMut()>(name: &str, warmup: usize, iters: usize, f: F) {
    let ns = bench_ns(warmup, iters, f);
    println!("{name}: {ns:.0} ns/iter");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_all_iterations() {
        let mut n = 0usize;
        let ns = bench_ns(3, 10, || n += 1);
        assert_eq!(n, 13);
        assert!(ns >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_iters_panics() {
        let _ = bench_ns(0, 0, || {});
    }
}
