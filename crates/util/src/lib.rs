//! # astra-util — dependency-free workspace utilities
//!
//! The workspace must build and test with no network access, so everything
//! that used to come from small external crates lives here instead:
//!
//! * [`Rng64`] — a seeded splitmix64/xorshift PRNG. It backs the simulated
//!   clock jitter, the dynamic-graph length sampler, and the randomized
//!   property tests. Sequences are stable across platforms and releases:
//!   changing them invalidates recorded expectations, so treat the stream
//!   as part of the crate's API.
//! * [`bench_ns`] / [`report`] — an `Instant`-based microbenchmark loop for
//!   the bench binaries (the criterion replacement).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rng;
mod timing;

pub use rng::Rng64;
pub use timing::{bench_ns, report};
