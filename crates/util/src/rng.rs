//! A small deterministic PRNG: splitmix64 seeding into xorshift64*.
//!
//! Not cryptographic — it exists so the simulator and the randomized tests
//! are hermetically reproducible without an external `rand` dependency.

/// Seeded 64-bit PRNG (splitmix64-seeded xorshift64*).
///
/// # Examples
///
/// ```
/// use astra_util::Rng64;
///
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let f = a.gen_f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

/// One step of splitmix64 (Steele, Lea, Flood 2014): used both to expand the
/// seed and to decorrelate nearby seeds.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a seed. Nearby seeds produce uncorrelated
    /// streams (the seed passes through splitmix64 first).
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        if state == 0 {
            // xorshift has a zero fixed point; any nonzero constant works.
            state = 0x9E37_79B9_7F4A_7C15;
        }
        Rng64 { state }
    }

    /// The current internal state word. Two generators with equal state
    /// produce identical streams; useful for fingerprinting a generator's
    /// position without consuming from it.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at an exact position previously captured with
    /// [`Rng64::state`]. The restored generator continues the original
    /// stream bit-for-bit — this is how persisted engine checkpoints carry a
    /// mid-stream jitter RNG across process restarts. A zero state (never
    /// produced by a live generator) is mapped to the same nonzero constant
    /// [`Rng64::new`] uses, keeping the xorshift fixed point unreachable.
    pub fn from_state(state: u64) -> Self {
        Rng64 { state: if state == 0 { 0x9E37_79B9_7F4A_7C15 } else { state } }
    }

    /// The next 64 uniformly distributed bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_f64() * (hi - lo)
    }

    /// A uniform `u64` in the inclusive range `[lo, hi]`.
    ///
    /// Uses Lemire-style multiply-shift rejection-free mapping — a tiny,
    /// uniform-enough reduction for simulation and test workloads.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo + 1; // hi == u64::MAX && lo == 0 would overflow; unused here
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// A uniform `u32` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.gen_range_u64(lo as u64, hi as u64) as u32
    }

    /// A uniform `usize` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng64::new(9);
        for _ in 0..10_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f), "{f} out of [0,1)");
        }
    }

    #[test]
    fn f64_covers_the_interval() {
        let mut r = Rng64::new(5);
        let samples: Vec<f64> = (0..1000).map(|_| r.gen_f64()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        assert!(samples.iter().any(|&f| f < 0.1));
        assert!(samples.iter().any(|&f| f > 0.9));
    }

    #[test]
    fn ranges_are_inclusive_and_cover() {
        let mut r = Rng64::new(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = r.gen_range_u32(2, 7);
            assert!((2..=7).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 2..=7 should appear: {seen:?}");
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng64::new(11);
        for _ in 0..1000 {
            let v = r.gen_range_f64(-0.8, 0.8);
            assert!((-0.8..0.8).contains(&v));
        }
    }

    #[test]
    fn zero_seed_works() {
        let mut r = Rng64::new(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        let _ = Rng64::new(1).gen_range_u32(5, 2);
    }

    #[test]
    fn from_state_resumes_the_stream_exactly() {
        let mut a = Rng64::new(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn from_state_zero_avoids_the_fixed_point() {
        let mut r = Rng64::from_state(0);
        assert_ne!(r.next_u64(), 0);
    }
}
