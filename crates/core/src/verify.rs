//! Glue between the wirer and the static schedule verifier: turns the unit
//! tags [`emit_schedule`](crate::emit_schedule) leaves on a schedule into
//! the per-command [`AccessTable`] `astra-verify` needs, and bundles the
//! allocation plan alongside.

use astra_gpu::{BufId, Cmd, Schedule};
use astra_verify::{AccessRef, AccessTable, VerifyOptions, VerifyReport};

use crate::plan::{build_allocation_plan, ExecConfig, PlanContext, Unit};

/// Buffer-id stride separating per-device replica footprints in the access
/// table. Data-parallel emission replicates every unit once per device;
/// replicas of the *same* buffer on *different* devices live in different
/// memories and must not alias, so device `d`'s copy of buffer `b` is
/// presented to the verifier as `b + d * REPLICA_BUF_STRIDE`. The stride
/// sits far above both lowered tensor buffers and the synthetic range at
/// [`SYNTHETIC_BUF_BASE`](crate::plan::SYNTHETIC_BUF_BASE).
pub const REPLICA_BUF_STRIDE: u64 = 1 << 40;

/// Builds the per-command access table for a schedule emitted from `units`.
/// Every tagged command (the wirer tags kernel launches and their gather
/// copies with the unit index) gets that unit's read/write footprint;
/// untagged commands (records, barriers, host syncs, probes, transfers)
/// carry none. Commands of the same unit share one interned footprint.
///
/// When the same unit tag appears on more than one device — data-parallel
/// replication — each device's replica gets its own footprint, with buffer
/// ids offset by device ([`REPLICA_BUF_STRIDE`]): replica state is private
/// per device and must not produce cross-device aliasing diagnostics.
/// Model-parallel schedules place each unit on exactly one device and keep
/// the original buffer ids, so cross-device dataflow *is* checked for
/// interposed transfers.
///
/// # Panics
///
/// Panics if a tag indexes past `units` — that means the schedule was
/// emitted from a different unit vector.
pub fn access_table(units: &[Unit], sched: &Schedule) -> AccessTable {
    let mut table = AccessTable::new(sched.cmds().len());
    let devs = sched.stream_devices();
    let dev_of = |i: usize| -> usize {
        match &sched.cmds()[i] {
            Cmd::Launch { stream, .. } | Cmd::Transfer { stream, .. } => devs[stream.0],
            _ => 0,
        }
    };
    let mut home: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut replicated = false;
    for (i, tag) in sched.tags().iter().enumerate() {
        if let Some(t) = tag {
            let d = dev_of(i);
            if *home.entry(*t).or_insert(d) != d {
                replicated = true;
            }
        }
    }
    if !replicated {
        let mut interned: Vec<Option<AccessRef>> = vec![None; units.len()];
        for (i, tag) in sched.tags().iter().enumerate() {
            let Some(u) = tag else { continue };
            let u = *u as usize;
            let r = *interned[u]
                .get_or_insert_with(|| table.intern_slices(&units[u].reads, &units[u].writes));
            table.assign(i, r);
        }
    } else {
        let mut interned: std::collections::HashMap<(usize, usize), AccessRef> =
            std::collections::HashMap::new();
        for (i, tag) in sched.tags().iter().enumerate() {
            let Some(u) = tag else { continue };
            let u = *u as usize;
            let d = dev_of(i);
            let r = *interned.entry((u, d)).or_insert_with(|| {
                if d == 0 {
                    table.intern_slices(&units[u].reads, &units[u].writes)
                } else {
                    let off = |b: &BufId| BufId(b.0 + REPLICA_BUF_STRIDE * d as u64);
                    let reads: Vec<BufId> = units[u].reads.iter().map(off).collect();
                    let writes: Vec<BufId> = units[u].writes.iter().map(off).collect();
                    table.intern_slices(&reads, &writes)
                }
            });
            table.assign(i, r);
        }
    }
    table
}

/// Statically verifies one candidate plan: the emitted `sched` against the
/// unit footprints and the allocation plan `cfg`'s strategy produces.
/// `workers` threads scan for hazards (the report is identical at any
/// count).
pub fn verify_plan(
    ctx: &PlanContext<'_>,
    cfg: &ExecConfig,
    units: &[Unit],
    sched: &Schedule,
    workers: usize,
) -> VerifyReport {
    let plan = build_allocation_plan(ctx, cfg);
    let access = access_table(units, sched);
    astra_verify::verify(sched, Some(&access), Some(&plan), &VerifyOptions { workers })
}

/// Statically lints one candidate plan (see [`astra_lint::lint`]): peak
/// live memory per device against `topo`'s capacities, redundant event
/// waits, and the critical-path lower bound. Buffer sizes come from the
/// allocation plan `cfg`'s strategy produces; per-device replica ids
/// (offset by [`REPLICA_BUF_STRIDE`]) resolve to their base buffer's
/// placement, so a replicated buffer is charged its placed size on every
/// device holding a copy.
pub fn lint_plan(
    ctx: &PlanContext<'_>,
    cfg: &ExecConfig,
    units: &[Unit],
    sched: &Schedule,
    topo: &astra_gpu::Topology,
    workers: usize,
) -> astra_lint::LintReport {
    let plan = build_allocation_plan(ctx, cfg);
    let access = access_table(units, sched);
    let buf_bytes = |b: BufId| {
        let base = BufId(b.0 % REPLICA_BUF_STRIDE);
        plan.placement(base).map_or(0, |p| p.bytes)
    };
    astra_lint::lint(
        sched,
        topo,
        Some(&access),
        Some(&buf_bytes),
        &astra_lint::LintOptions { workers },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_units, emit_schedule, ProbeSpec};

    fn tiny_model() -> astra_models::BuiltModel {
        use astra_models::{Model, ModelConfig};
        let cfg = ModelConfig {
            seq_len: 4,
            hidden: 64,
            input: 64,
            vocab: 128,
            ..ModelConfig::ptb(8)
        };
        Model::SubLstm.build(&cfg)
    }

    #[test]
    fn baseline_schedule_verifies_clean() {
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        let cfg = ExecConfig::baseline();
        let units = build_units(&ctx, &cfg).unwrap();
        let (sched, _) = emit_schedule(&ctx, &cfg, &units, None, &ProbeSpec::none());
        let report = verify_plan(&ctx, &cfg, &units, &sched, 1);
        assert!(report.is_clean(), "baseline must verify clean:\n{}", report.render());
        assert_eq!(report.cmds_checked, sched.cmds().len());
    }

    #[test]
    fn access_table_covers_every_launch() {
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        let cfg = ExecConfig::baseline();
        let units = build_units(&ctx, &cfg).unwrap();
        let (sched, _) = emit_schedule(&ctx, &cfg, &units, None, &ProbeSpec::none());
        let table = access_table(&units, &sched);
        for (i, cmd) in sched.cmds().iter().enumerate() {
            let is_launch = matches!(cmd, astra_gpu::Cmd::Launch { .. });
            assert_eq!(
                table.get(i).is_some(),
                is_launch,
                "cmd {i}: exactly the launches carry footprints"
            );
        }
    }

    #[test]
    fn dropping_a_cross_stream_wait_is_caught() {
        // Emit a 2-stream schedule, then strip the waits off a launch that
        // has some: the verifier must flag the unordered hazard.
        use astra_gpu::{Cmd, Schedule};
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        let units = build_units(&ctx, &ExecConfig::baseline()).unwrap();
        let mut cfg = ExecConfig::baseline();
        cfg.num_streams = 2;
        for (i, u) in units.iter().enumerate() {
            cfg.streams.insert(u.id, i % 2);
        }
        let units = build_units(&ctx, &cfg).unwrap();
        let (sched, _) = emit_schedule(&ctx, &cfg, &units, None, &ProbeSpec::none());
        let report = verify_plan(&ctx, &cfg, &units, &sched, 1);
        assert!(report.is_clean(), "2-stream emission must be clean:\n{}", report.render());

        // Mutate: rebuild the schedule without the first non-empty wait.
        let mut dropped = Schedule::new(sched.num_streams());
        let mut stripped = false;
        for (i, cmd) in sched.cmds().iter().enumerate() {
            match cmd {
                Cmd::Launch { stream, kernel, waits, .. } => {
                    let waits = if !stripped && !waits.is_empty() {
                        stripped = true;
                        Vec::new()
                    } else {
                        waits.clone()
                    };
                    let c = dropped.launch_after(*stream, *kernel, waits);
                    if let Some(t) = sched.tags()[i] {
                        dropped.set_tag(c, t);
                    }
                }
                Cmd::Record { stream, .. } => {
                    let _ = dropped.record(*stream);
                }
                Cmd::Barrier => dropped.barrier(),
                Cmd::HostSync => dropped.host_sync(),
                Cmd::Transfer { stream, bytes, src, dst, waits } => {
                    let _ = dropped.transfer(*stream, *bytes, *src, *dst, waits.clone());
                }
                Cmd::AllReduce { stream, bytes, group } => {
                    let _ = dropped.all_reduce(*stream, *bytes, *group);
                }
            }
        }
        assert!(stripped, "fixture needs at least one cross-stream wait");
        let mutated = verify_plan(&ctx, &cfg, &units, &dropped, 1);
        assert!(!mutated.is_clean(), "dropping a wait must be caught");
    }
}
