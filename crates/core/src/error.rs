//! Error types for the Astra optimizer.

use std::error::Error;
use std::fmt;

/// Errors from enumeration or exploration.
#[derive(Debug, Clone, PartialEq)]
pub enum AstraError {
    /// The underlying GPU simulation failed.
    Gpu(astra_gpu::GpuError),
    /// The graph violates an assumption of the enumerator.
    Enumeration(String),
    /// Every candidate plan was rejected before simulation (static
    /// verification or lint) — typically a model whose peak live memory
    /// exceeds every device's capacity under every allocation strategy.
    AllPlansRejected(String),
}

impl fmt::Display for AstraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstraError::Gpu(e) => write!(f, "gpu simulation failed: {e}"),
            AstraError::Enumeration(why) => write!(f, "enumeration failed: {why}"),
            AstraError::AllPlansRejected(why) => {
                write!(f, "every candidate plan was rejected: {why}")
            }
        }
    }
}

impl Error for AstraError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AstraError::Gpu(e) => Some(e),
            AstraError::Enumeration(_) | AstraError::AllPlansRejected(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<astra_gpu::GpuError> for AstraError {
    fn from(e: astra_gpu::GpuError) -> Self {
        AstraError::Gpu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains_source() {
        let e = AstraError::from(astra_gpu::GpuError::Deadlock("stuck".into()));
        assert!(e.to_string().contains("stuck"));
        assert!(e.source().is_some());
    }
}
