//! Checkpoint cache for incremental simulation across candidate trials.
//!
//! Exploration batches are full of schedules that share long command
//! prefixes: phase F candidates differ only in one fusion set's chunking,
//! phase K candidates only in late GEMM library bindings, and phase S
//! prefix exploration freezes every earlier epoch while it varies the
//! current one. Simulating each candidate from `t = 0` re-executes that
//! shared prefix once per trial.
//!
//! [`SimCache`] eliminates the repetition. Cold runs capture
//! [`EngineCheckpoint`]s at schedule boundaries (see
//! [`Schedule::mark_boundary`]); later trials probe the cache for the
//! *deepest* checkpoint whose prefix hash matches one of their own
//! boundaries and resume the engine there. Resumed runs are bit-identical
//! to cold runs — the engine guarantees it — so the cache changes
//! wall-clock time only, never results.
//!
//! ## What the key contains (and why)
//!
//! A checkpoint is only valid for a run that would have reached the exact
//! same simulation state, so the key covers every input the engine's state
//! depends on:
//!
//! * **Schedule prefix hash** — the commands simulated so far, rolled up
//!   by [`Schedule::prefix_hash`]. Two schedules sharing a boundary hash
//!   share the entire command prefix.
//! * **Device fingerprint** — every [`DeviceSpec`] parameter shapes the
//!   timeline.
//! * **Clock mode** — autoboost jitter draws are part of the engine state
//!   (the checkpoint carries the jitter RNG mid-stream), and the seed
//!   lives in [`ClockMode::Autoboost`]. This deliberately stays *out* of
//!   the schedule's own hash: the same schedule is probed under different
//!   clocks without rebuilding it.
//! * **Fault fingerprint + run salt** — a faulted run's injector draws
//!   depend on the plan and the per-trial salt, so checkpoints from
//!   different salts are never interchangeable. When the plan is
//!   [`FaultPlan::is_none`], both components normalize to zero: clean
//!   runs share checkpoints across salts (no draw ever happens, so the
//!   salt cannot matter).
//!
//! The cache is bounded ([`SimCache::with_capacity`]) with FIFO eviction:
//! exploration probes are dominated by *recently* captured prefixes (the
//! current phase's shared geometry), so evicting the oldest insertion
//! loses only prefixes whole phases have moved past.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use astra_gpu::{ClockMode, DeviceSpec, EngineCheckpoint, FaultPlan, Schedule};

/// Default bound on cached checkpoints. Checkpoints are a few KB each
/// (per-stream queues + the result so far), so this keeps the cache in the
/// single-digit-MB range while comfortably covering one phase's working
/// set of shared prefixes.
const DEFAULT_CAPACITY: usize = 256;

/// Most checkpoints captured by a single cold run. Each capture costs a
/// state clone plus an open-stream scan, so runs seed the cache at a
/// bounded number of evenly spaced uncached boundaries (always including
/// the final one — a full-run memo that replays without any simulation).
const MAX_CAPTURES_PER_RUN: usize = 8;

/// Identity of a checkpointed simulation state (see the module docs for
/// what each component pins down).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SimKey {
    prefix_hash: u64,
    device: u64,
    clock: ClockMode,
    fault: u64,
    salt: u64,
}

/// Stable fingerprint of a device's timing-relevant parameters.
fn device_fingerprint(dev: &DeviceSpec) -> u64 {
    let mut h = 0xA57A_DE1Cu64;
    let mut fold = |v: u64| {
        h ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    };
    fold(dev.sm_count as u64);
    fold(dev.blocks_per_sm as u64);
    for v in [
        dev.peak_gflops,
        dev.hbm_gbps,
        dev.launch_overhead_ns,
        dev.dispatch_cost_ns,
        dev.event_record_cost_ns,
        dev.stream_sync_cost_ns,
        dev.barrier_sync_cost_ns,
        dev.host_roundtrip_ns,
    ] {
        fold(v.to_bits());
    }
    h
}

/// Bounded map from simulation-state identity to captured engine
/// checkpoints, with hit/miss and resumed-work accounting.
///
/// The exploration driver owns one per [`crate::Astra`]; benchmarks can
/// drive one directly around [`astra_gpu::Engine::run_incremental`].
#[derive(Debug, Default)]
pub struct SimCache {
    map: HashMap<SimKey, Arc<EngineCheckpoint>>,
    order: VecDeque<SimKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
    resumed_cmds: u64,
    total_cmds: u64,
}

impl SimCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        SimCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` checkpoints (FIFO eviction).
    pub fn with_capacity(capacity: usize) -> Self {
        SimCache { capacity: capacity.max(1), ..SimCache::default() }
    }

    fn key(
        &self,
        prefix_hash: u64,
        dev: &DeviceSpec,
        clock: ClockMode,
        faults: &FaultPlan,
        salt: u64,
    ) -> SimKey {
        // Clean runs normalize the fault components: with no draws, runs
        // under every salt evolve identically and may share checkpoints.
        let (fault, salt) =
            if faults.is_none() { (0, 0) } else { (faults.fingerprint(), salt) };
        SimKey { prefix_hash, device: device_fingerprint(dev), clock, fault, salt }
    }

    /// Probes for the deepest checkpoint matching one of `sched`'s
    /// boundaries and plans which still-uncached boundaries this run
    /// should capture. Returns `(resume, capture_at)` ready to hand to
    /// [`astra_gpu::Engine::run_incremental`].
    ///
    /// Counts one hit or miss, and accrues the resumed-command fraction
    /// ([`SimCache::resumed_fraction`]). Schedules without boundaries are
    /// not cacheable and count nothing.
    pub fn probe_and_plan(
        &mut self,
        sched: &Schedule,
        dev: &DeviceSpec,
        clock: ClockMode,
        faults: &FaultPlan,
        salt: u64,
    ) -> (Option<Arc<EngineCheckpoint>>, Vec<usize>) {
        let boundaries = sched.boundaries();
        if boundaries.is_empty() {
            return (None, Vec::new());
        }

        let mut resume = None;
        let mut resumed_at = 0usize;
        for &(pos, hash) in boundaries.iter().rev() {
            if let Some(ck) = self.map.get(&self.key(hash, dev, clock, faults, salt)) {
                resume = Some(Arc::clone(ck));
                resumed_at = pos;
                break;
            }
        }
        if resume.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        self.total_cmds += sched.cmds().len() as u64;
        self.resumed_cmds += resumed_at as u64;

        // Capture plan: evenly sample the uncached boundaries beyond the
        // resume point, and always include the final boundary so a repeat
        // of this exact schedule replays from the memoized result. Captures
        // are cheap (the engine shares completed spans structurally), so a
        // broad plan costs little and keeps boundary coverage dense.
        let todo: Vec<usize> = boundaries
            .iter()
            .filter(|&&(pos, hash)| {
                pos > resumed_at
                    && !self.map.contains_key(&self.key(hash, dev, clock, faults, salt))
            })
            .map(|&(pos, _)| pos)
            .collect();
        let mut capture_at = Vec::new();
        if let Some((&last, rest)) = todo.split_last() {
            if !rest.is_empty() {
                let picks = MAX_CAPTURES_PER_RUN - 1;
                let step = rest.len().div_ceil(picks); // ceil: ≤ picks samples
                capture_at.extend(rest.iter().copied().step_by(step.max(1)));
            }
            capture_at.push(last);
        }
        (resume, capture_at)
    }

    /// Inserts the checkpoints captured by one run, evicting the oldest
    /// entries past capacity. Checkpoints carry their own prefix hash;
    /// the remaining key components must describe the run that captured
    /// them. Already-cached states are left untouched.
    pub fn absorb(
        &mut self,
        dev: &DeviceSpec,
        clock: ClockMode,
        faults: &FaultPlan,
        salt: u64,
        captured: Vec<EngineCheckpoint>,
    ) {
        for ck in captured {
            let key = self.key(ck.prefix_hash(), dev, clock, faults, salt);
            if self.map.contains_key(&key) {
                continue;
            }
            self.map.insert(key.clone(), Arc::new(ck));
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                let oldest = self.order.pop_front().expect("map non-empty implies order");
                self.map.remove(&oldest);
            }
        }
    }

    /// Probes answered with a checkpoint.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that found no matching checkpoint.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Commands covered by resumed checkpoints, over all probes.
    pub fn resumed_cmds(&self) -> u64 {
        self.resumed_cmds
    }

    /// Commands probed runs contained in total.
    pub fn total_cmds(&self) -> u64 {
        self.total_cmds
    }

    /// Fraction of probed commands that resuming skipped (0 when nothing
    /// was probed).
    pub fn resumed_fraction(&self) -> f64 {
        if self.total_cmds == 0 {
            0.0
        } else {
            self.resumed_cmds as f64 / self.total_cmds as f64
        }
    }

    /// Checkpoints currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{Engine, GemmLibrary, GemmShape, KernelDesc, StreamId};

    fn sched_with_boundaries(n: usize) -> Schedule {
        let mut s = Schedule::new(2);
        let g = GemmShape::new(64, 256, 256);
        for i in 0..n {
            s.launch(
                StreamId(i % 2),
                KernelDesc::Gemm { shape: g, lib: GemmLibrary::CublasLike },
            );
            s.mark_boundary();
        }
        s
    }

    #[test]
    fn cold_probe_misses_then_full_memo_hits() {
        let dev = DeviceSpec::p100();
        let sched = sched_with_boundaries(6);
        let mut cache = SimCache::new();
        let plan = FaultPlan::none();

        let (resume, caps) =
            cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 0);
        assert!(resume.is_none());
        assert_eq!(cache.misses(), 1);
        assert_eq!(*caps.last().expect("captures planned"), sched.cmds().len());

        let (r, captured) = Engine::new(&dev)
            .run_incremental(&sched, None, &caps)
            .expect("cold run");
        cache.absorb(&dev, ClockMode::Fixed, &plan, 0, captured);

        let (resume, caps2) =
            cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 7);
        let ck = resume.expect("full-run memo hits (clean runs share salts)");
        assert_eq!(ck.cmd_idx(), sched.cmds().len());
        assert!(caps2.is_empty(), "nothing left to capture");
        assert_eq!(cache.hits(), 1);
        let (r2, _) = Engine::new(&dev)
            .run_incremental(&sched, Some(&ck), &[])
            .expect("memo replay");
        assert_eq!(r.total_ns.to_bits(), r2.total_ns.to_bits());
        assert!(cache.resumed_fraction() > 0.0);
    }

    #[test]
    fn key_separates_clock_device_and_fault_state() {
        let dev = DeviceSpec::p100();
        let sched = sched_with_boundaries(3);
        let mut cache = SimCache::new();
        let clean = FaultPlan::none();
        let chaos = FaultPlan::chaos(5);

        let (_, caps) = cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &clean, 0);
        let (_, captured) =
            Engine::new(&dev).run_incremental(&sched, None, &caps).expect("run");
        cache.absorb(&dev, ClockMode::Fixed, &clean, 0, captured);

        // Same schedule under a different clock, device, or fault plan
        // must miss; the same clean plan under another salt must hit.
        let boost = ClockMode::Autoboost { seed: 1 };
        assert!(cache.probe_and_plan(&sched, &dev, boost, &clean, 0).0.is_none());
        let v100 = DeviceSpec::v100();
        assert!(cache.probe_and_plan(&sched, &v100, ClockMode::Fixed, &clean, 0).0.is_none());
        assert!(cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &chaos, 0).0.is_none());
        assert!(cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &clean, 99).0.is_some());
    }

    #[test]
    fn faulted_checkpoints_are_salt_specific() {
        let dev = DeviceSpec::p100();
        let sched = sched_with_boundaries(3);
        let mut cache = SimCache::new();
        let plan = FaultPlan::chaos(5);

        let (_, caps) = cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 4);
        let (_, captured) = Engine::with_faults(&dev, ClockMode::Fixed, plan, 4)
            .run_incremental(&sched, None, &caps)
            .expect("run");
        cache.absorb(&dev, ClockMode::Fixed, &plan, 4, captured);

        assert!(cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 4).0.is_some());
        assert!(cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 5).0.is_none());
    }

    #[test]
    fn capture_plan_is_bounded_and_ends_at_the_final_boundary() {
        let dev = DeviceSpec::p100();
        let sched = sched_with_boundaries(100);
        let mut cache = SimCache::new();
        let (_, caps) =
            cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &FaultPlan::none(), 0);
        assert!(caps.len() <= MAX_CAPTURES_PER_RUN, "{} captures", caps.len());
        assert_eq!(*caps.last().unwrap(), sched.cmds().len());
        assert!(caps.windows(2).all(|w| w[0] < w[1]), "sorted: {caps:?}");
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let dev = DeviceSpec::p100();
        let mut cache = SimCache::with_capacity(4);
        let plan = FaultPlan::none();
        // Distinct single-boundary schedules (different GEMM shapes) give
        // distinct prefix hashes.
        let mut first_sched = None;
        for i in 0..8usize {
            let mut s = Schedule::new(1);
            let g = GemmShape::new(32 + i as u64, 128, 128);
            s.launch(StreamId(0), KernelDesc::Gemm { shape: g, lib: GemmLibrary::CublasLike });
            s.mark_boundary();
            let (_, caps) = cache.probe_and_plan(&s, &dev, ClockMode::Fixed, &plan, 0);
            let (_, captured) =
                Engine::new(&dev).run_incremental(&s, None, &caps).expect("run");
            cache.absorb(&dev, ClockMode::Fixed, &plan, 0, captured);
            if i == 0 {
                first_sched = Some(s);
            }
        }
        assert_eq!(cache.len(), 4, "bounded at capacity");
        // The first insertion was evicted first.
        let first = first_sched.unwrap();
        assert!(cache
            .probe_and_plan(&first, &dev, ClockMode::Fixed, &plan, 0)
            .0
            .is_none());
    }

    #[test]
    fn boundary_free_schedules_bypass_the_cache() {
        let dev = DeviceSpec::p100();
        let mut s = Schedule::new(1);
        s.launch(
            StreamId(0),
            KernelDesc::Gemm { shape: GemmShape::new(8, 8, 8), lib: GemmLibrary::CublasLike },
        );
        let mut cache = SimCache::new();
        let (resume, caps) =
            cache.probe_and_plan(&s, &dev, ClockMode::Fixed, &FaultPlan::none(), 0);
        assert!(resume.is_none() && caps.is_empty());
        assert_eq!((cache.hits(), cache.misses(), cache.total_cmds()), (0, 0, 0));
    }
}
