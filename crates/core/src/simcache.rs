//! Checkpoint cache for incremental simulation across candidate trials.
//!
//! Exploration batches are full of schedules that share long command
//! prefixes: phase F candidates differ only in one fusion set's chunking,
//! phase K candidates only in late GEMM library bindings, and phase S
//! prefix exploration freezes every earlier epoch while it varies the
//! current one. Simulating each candidate from `t = 0` re-executes that
//! shared prefix once per trial.
//!
//! [`SimCache`] eliminates the repetition. Cold runs capture
//! [`EngineCheckpoint`]s at schedule boundaries (see
//! [`Schedule::mark_boundary`]); later trials probe the cache for the
//! *deepest* checkpoint whose prefix hash matches one of their own
//! boundaries and resume the engine there. Resumed runs are bit-identical
//! to cold runs — the engine guarantees it — so the cache changes
//! wall-clock time only, never results.
//!
//! ## Cache-aware batch scheduling
//!
//! The driver does not probe trials one by one in candidate order: that
//! would simulate every batch member before any of its captures exist.
//! Instead it plans each lookahead batch with [`plan_prefix_batch`]:
//!
//! 1. Each candidate's **boundary-hash chain** (the ordered hashes of its
//!    marked boundaries) keys it into a prefix trie over the batch.
//! 2. Sorting the chains lexicographically is exactly a DFS of that trie,
//!    so consecutive trials share the deepest possible prefixes; maximal
//!    runs that share at least their first boundary become **prefix
//!    groups**.
//! 3. The hashes where adjacent sorted chains diverge are the trie's
//!    **branch points** — the exact boundaries where a capture guarantees
//!    every sibling a deepest-match resume.
//!
//! Each group then executes sequentially against a [`GroupShard`]: a
//! group-local overlay that layers the group's own captures over an
//! immutable pre-batch view ([`SimCache::trial_base`]) of the shared
//! cache. Groups never need a sibling group's checkpoints (they share no
//! prefix beyond what the pre-batch view already holds), so whole groups
//! fan out across workers and the shards merge back in deterministic
//! group order at the batch barrier — hit/miss/depth counters become a
//! pure function of batch content, bit-identical at every worker count.
//!
//! ## What the key contains (and why)
//!
//! A checkpoint is only valid for a run that would have reached the exact
//! same simulation state, so the key covers every input the engine's state
//! depends on:
//!
//! * **Schedule prefix hash** — the commands simulated so far, rolled up
//!   by [`Schedule::prefix_hash`]. Two schedules sharing a boundary hash
//!   share the entire command prefix.
//! * **Device fingerprint** — every [`DeviceSpec`] parameter shapes the
//!   timeline.
//! * **Clock mode** — autoboost jitter draws are part of the engine state
//!   (the checkpoint carries the jitter RNG mid-stream), and the seed
//!   lives in [`ClockMode::Autoboost`]. This deliberately stays *out* of
//!   the schedule's own hash: the same schedule is probed under different
//!   clocks without rebuilding it.
//! * **Fault fingerprint + run salt** — a faulted run's injector draws
//!   depend on the plan and the per-trial salt, so checkpoints from
//!   different salts are never interchangeable. When the plan is
//!   [`FaultPlan::is_none`], both components normalize to zero: clean
//!   runs share checkpoints across salts (no draw ever happens, so the
//!   salt cannot matter).
//!
//! The non-schedule components are hoisted into a [`KeyCtx`] built once
//! per probe (or once per batch), not re-hashed per boundary.
//!
//! The cache is bounded ([`SimCache::with_capacity`]) with FIFO eviction:
//! exploration probes are dominated by *recently* captured prefixes (the
//! current phase's shared geometry), so evicting the oldest insertion
//! loses only prefixes whole phases have moved past.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use astra_gpu::{ClockMode, DeviceSpec, EngineCheckpoint, FaultPlan, Schedule, Topology};

/// Default bound on cached checkpoints. Checkpoints are a few KB each
/// (per-stream queues + the result so far), so this keeps the cache in the
/// tens-of-MB range worst case. The bound must cover a *full* exploration
/// pass, not just one phase: steady-state re-exploration (the paper's
/// repeated-mini-batch regime) replays every trial from its full-run memo,
/// which only works if the first pass's final-boundary captures are still
/// resident when the second pass begins.
const DEFAULT_CAPACITY: usize = 4096;

/// Most checkpoints captured by a single *sequential* run (the native
/// baseline, fault retries, playoffs). Each capture costs a state clone
/// plus an open-stream scan, so one-off runs seed the cache at a bounded
/// number of evenly spaced uncached boundaries (always including the
/// final one — a full-run memo that replays without any simulation).
const MAX_CAPTURES_PER_RUN: usize = 8;

/// Most checkpoints captured by one run inside a prefix group. Branch
/// points of the batch trie are always captured (they are what sibling
/// trials resume from); any remaining budget seeds evenly sampled
/// still-uncached boundaries so *future* batches — which diverge at
/// boundaries this batch cannot know yet — still find deep matches.
const MAX_CAPTURES_PER_GROUP_RUN: usize = 12;

/// Buckets in the sim-cache hit-depth histogram: bucket `b` counts hits
/// that resumed after skipping `[b/8, (b+1)/8)` of the run's commands
/// (full-run memo replays land in the last bucket).
pub const HIT_DEPTH_BUCKETS: usize = 8;

/// Identity of a checkpointed simulation state (see the module docs for
/// what each component pins down). Crate-visible so the persistence glue
/// can journal cache entries under exactly the key the cache uses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SimKey {
    pub(crate) prefix_hash: u64,
    pub(crate) device: u64,
    pub(crate) clock: ClockMode,
    pub(crate) fault: u64,
    pub(crate) salt: u64,
}

/// Stable fingerprint of a device's timing-relevant parameters.
fn device_fingerprint(dev: &DeviceSpec) -> u64 {
    let mut h = 0xA57A_DE1Cu64;
    let mut fold = |v: u64| {
        h ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    };
    fold(dev.sm_count as u64);
    fold(dev.blocks_per_sm as u64);
    for v in [
        dev.peak_gflops,
        dev.hbm_gbps,
        dev.launch_overhead_ns,
        dev.dispatch_cost_ns,
        dev.event_record_cost_ns,
        dev.stream_sync_cost_ns,
        dev.barrier_sync_cost_ns,
        dev.host_roundtrip_ns,
    ] {
        fold(v.to_bits());
    }
    fold(dev.mem_bytes);
    h
}

/// The non-schedule components of a [`SimCache`] key — device and fault
/// fingerprints plus the clock — hashed once and reused for every boundary
/// of every probe in a batch. Clean fault plans normalize here: their
/// fingerprint is zero and every salt maps to zero, so clean runs share
/// checkpoints across salts without per-key branching.
#[derive(Debug, Clone, Copy)]
pub struct KeyCtx {
    device: u64,
    clock: ClockMode,
    fault: u64,
    clean: bool,
}

impl KeyCtx {
    /// Fingerprints `dev` and `faults` once for a run context.
    pub fn new(dev: &DeviceSpec, clock: ClockMode, faults: &FaultPlan) -> Self {
        let clean = faults.is_none();
        KeyCtx {
            device: device_fingerprint(dev),
            clock,
            fault: if clean { 0 } else { faults.fingerprint() },
            clean,
        }
    }

    /// Like [`KeyCtx::new`], but for runs on a multi-device [`Topology`]:
    /// the device component covers *every* device and the interconnect, so
    /// the same schedule simulated on two different device mixes (or links)
    /// can never share a checkpoint — per-device clocks and link contention
    /// make their engine states incompatible. A single-device topology
    /// degenerates to exactly [`KeyCtx::new`] on its device, keeping
    /// checkpoints interchangeable with plain single-device runs.
    pub fn with_topology(topo: &Topology, clock: ClockMode, faults: &FaultPlan) -> Self {
        let mut ctx = KeyCtx::new(topo.device(0), clock, faults);
        if topo.is_multi() {
            let t = topo.fingerprint();
            let mut h = ctx.device ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ctx.device = h ^ (h >> 31);
        }
        ctx
    }

    pub(crate) fn key(&self, prefix_hash: u64, salt: u64) -> SimKey {
        SimKey {
            prefix_hash,
            device: self.device,
            clock: self.clock,
            fault: self.fault,
            salt: if self.clean { 0 } else { salt },
        }
    }
}

/// The histogram bucket a resume at `resumed_at` of `total` commands
/// falls into.
fn depth_bucket(resumed_at: usize, total: usize) -> usize {
    if total == 0 {
        return 0;
    }
    (resumed_at * HIT_DEPTH_BUCKETS / total).min(HIT_DEPTH_BUCKETS - 1)
}

/// Evenly samples up to `budget` items from `items` (all of them when they
/// fit), preserving order.
fn sample_even(items: &[usize], budget: usize) -> Vec<usize> {
    if items.len() <= budget {
        return items.to_vec();
    }
    if budget == 0 {
        return Vec::new();
    }
    let step = items.len().div_ceil(budget);
    items.iter().copied().step_by(step.max(1)).collect()
}

/// A batch's prefix-trie plan: the trial execution order (grouped) and the
/// boundary hashes where the batch's schedules diverge.
#[derive(Debug, Clone)]
pub struct PrefixPlan {
    /// Trial indices in trie-DFS order, split into prefix groups: trials
    /// within a group share at least their first boundary hash with a
    /// neighbor, trials in different groups share no prefix at all.
    /// Concatenated, the groups are a permutation of `0..n` — nothing is
    /// dropped or duplicated by reordering.
    pub groups: Vec<Vec<usize>>,
    /// Boundary hashes at which adjacent chains in DFS order diverge (the
    /// trie's branch points). Capturing exactly these gives every sibling
    /// a deepest-match resume.
    pub branches: HashSet<u64>,
}

impl PrefixPlan {
    /// The identity plan: singleton groups in candidate order, no branch
    /// points. Used when the sim cache is off (ordering would be dead
    /// weight) — execution order then matches the naive driver exactly.
    pub fn naive(n: usize) -> Self {
        PrefixPlan { groups: (0..n).map(|i| vec![i]).collect(), branches: HashSet::new() }
    }
}

/// Builds the prefix trie over one lookahead batch. `chains[i]` is trial
/// `i`'s boundary-hash chain ([`Schedule::boundaries`] hashes in order);
/// an empty chain marks a trial that bypasses the cache (rejected
/// candidate, boundary-free schedule) and always gets a singleton group.
///
/// Sorting chains lexicographically (ties by candidate index, so the
/// order is deterministic) *is* a DFS of the trie: equal prefixes sort
/// adjacent, so consecutive trials share the deepest available prefix.
pub fn plan_prefix_batch(chains: &[Vec<u64>]) -> PrefixPlan {
    let mut order: Vec<usize> = (0..chains.len()).collect();
    order.sort_by(|&a, &b| chains[a].cmp(&chains[b]).then(a.cmp(&b)));

    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut branches = HashSet::new();
    for (k, &i) in order.iter().enumerate() {
        let joined = k > 0 && !chains[i].is_empty() && {
            let prev = order[k - 1];
            chains[prev].first() == chains[i].first()
        };
        if joined {
            let prev = order[k - 1];
            // Longest common prefix with the DFS predecessor: its last
            // shared boundary is where this pair of subtrees branches.
            let lcp = chains[prev]
                .iter()
                .zip(&chains[i])
                .take_while(|(a, b)| a == b)
                .count();
            branches.insert(chains[i][lcp - 1]);
            groups.last_mut().expect("joined implies a predecessor group").push(i);
        } else {
            groups.push(vec![i]);
        }
    }
    PrefixPlan { groups, branches }
}

/// A trial's pre-batch view of the shared cache, computed before the batch
/// fans out: the deepest already-cached checkpoint to resume from and
/// which of the trial's boundaries are already cached (so group runs do
/// not re-capture them). Immutable by construction — it is a snapshot, so
/// sibling groups racing on the shared cache is impossible.
#[derive(Debug, Default)]
pub struct TrialBase {
    /// Deepest pre-batch checkpoint: `(command index, checkpoint)`.
    pub resume: Option<(usize, Arc<EngineCheckpoint>)>,
    /// Per-boundary (aligned with [`Schedule::boundaries`]) flag: already
    /// cached before the batch started.
    pub cached: Vec<bool>,
}

/// Bounded map from simulation-state identity to captured engine
/// checkpoints, with hit/miss, resumed-work, and hit-depth accounting.
///
/// The exploration driver owns one per [`crate::Astra`]; benchmarks can
/// drive one directly around [`astra_gpu::Engine::run_incremental`].
#[derive(Debug, Default)]
pub struct SimCache {
    map: HashMap<SimKey, Arc<EngineCheckpoint>>,
    order: VecDeque<SimKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
    resumed_cmds: u64,
    total_cmds: u64,
    hit_depth: [u64; HIT_DEPTH_BUCKETS],
}

impl SimCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        SimCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` checkpoints (FIFO eviction).
    pub fn with_capacity(capacity: usize) -> Self {
        SimCache { capacity: capacity.max(1), ..SimCache::default() }
    }

    /// Probes for the deepest checkpoint matching one of `sched`'s
    /// boundaries and plans which still-uncached boundaries this run
    /// should capture (evenly sampled, final boundary always included).
    /// Returns `(resume, capture_at)` ready to hand to
    /// [`astra_gpu::Engine::run_incremental`].
    ///
    /// This is the *sequential* front door — native baselines, fault
    /// retries, playoffs. Batched exploration goes through
    /// [`plan_prefix_batch`] + [`GroupShard`] instead, whose capture plan
    /// is derived from the batch's trie rather than sampled.
    ///
    /// Counts one hit or miss, and accrues the resumed-command fraction
    /// ([`SimCache::resumed_fraction`]). Schedules without boundaries are
    /// not cacheable and count nothing.
    pub fn probe_and_plan(
        &mut self,
        sched: &Schedule,
        dev: &DeviceSpec,
        clock: ClockMode,
        faults: &FaultPlan,
        salt: u64,
    ) -> (Option<Arc<EngineCheckpoint>>, Vec<usize>) {
        self.probe_and_plan_ctx(sched, &KeyCtx::new(dev, clock, faults), salt)
    }

    /// [`SimCache::probe_and_plan`] with a prebuilt [`KeyCtx`] — the entry
    /// point for topology-aware drivers, whose key context fingerprints the
    /// whole device mix (see [`KeyCtx::with_topology`]).
    pub fn probe_and_plan_ctx(
        &mut self,
        sched: &Schedule,
        ctx: &KeyCtx,
        salt: u64,
    ) -> (Option<Arc<EngineCheckpoint>>, Vec<usize>) {
        let boundaries = sched.boundaries();
        if boundaries.is_empty() {
            return (None, Vec::new());
        }

        let mut resume = None;
        let mut resumed_at = 0usize;
        for &(pos, hash) in boundaries.iter().rev() {
            if let Some(ck) = self.map.get(&ctx.key(hash, salt)) {
                resume = Some(Arc::clone(ck));
                resumed_at = pos;
                break;
            }
        }
        self.count_probe(resume.is_some(), resumed_at, sched.cmds().len());

        // Capture plan: evenly sample the uncached boundaries beyond the
        // resume point, and always include the final boundary so a repeat
        // of this exact schedule replays from the memoized result.
        let todo: Vec<usize> = boundaries
            .iter()
            .filter(|&&(pos, hash)| {
                pos > resumed_at && !self.map.contains_key(&ctx.key(hash, salt))
            })
            .map(|&(pos, _)| pos)
            .collect();
        let mut capture_at = Vec::new();
        if let Some((&last, rest)) = todo.split_last() {
            capture_at = sample_even(rest, MAX_CAPTURES_PER_RUN - 1);
            capture_at.push(last);
        }
        (resume, capture_at)
    }

    /// One probe's accounting, shared by the sequential path and shard
    /// merges.
    fn count_probe(&mut self, hit: bool, resumed_at: usize, total: usize) {
        if hit {
            self.hits += 1;
            self.hit_depth[depth_bucket(resumed_at, total)] += 1;
        } else {
            self.misses += 1;
        }
        self.total_cmds += total as u64;
        self.resumed_cmds += resumed_at as u64;
    }

    /// Inserts the checkpoints captured by one run, evicting the oldest
    /// entries past capacity. Checkpoints carry their own prefix hash;
    /// the remaining key components must describe the run that captured
    /// them. Already-cached states are left untouched.
    pub fn absorb(
        &mut self,
        dev: &DeviceSpec,
        clock: ClockMode,
        faults: &FaultPlan,
        salt: u64,
        captured: Vec<EngineCheckpoint>,
    ) {
        self.absorb_ctx(&KeyCtx::new(dev, clock, faults), salt, captured);
    }

    /// [`SimCache::absorb`] with a prebuilt [`KeyCtx`].
    pub fn absorb_ctx(&mut self, ctx: &KeyCtx, salt: u64, captured: Vec<EngineCheckpoint>) {
        for ck in captured {
            self.insert(ctx.key(ck.prefix_hash(), salt), Arc::new(ck));
        }
    }

    /// Seeds one persisted checkpoint under its exact stored key, without
    /// touching the hit/miss counters — warm-start loading is not probing.
    /// FIFO age follows seeding order, so a loaded store fills the cache
    /// exactly as the writing run's absorbs did.
    pub(crate) fn seed(&mut self, key: SimKey, ck: Arc<EngineCheckpoint>) {
        self.insert(key, ck);
    }

    fn insert(&mut self, key: SimKey, ck: Arc<EngineCheckpoint>) {
        if self.map.contains_key(&key) {
            return;
        }
        self.map.insert(key.clone(), ck);
        self.order.push_back(key);
        while self.map.len() > self.capacity {
            let oldest = self.order.pop_front().expect("map non-empty implies order");
            self.map.remove(&oldest);
        }
    }

    /// A trial's pre-batch snapshot: the deepest cached checkpoint among
    /// `sched`'s boundaries and the per-boundary cached flags. Read-only
    /// (no counters move) — the counting probe happens in the trial's
    /// [`GroupShard`], where the final resume decision is made.
    pub fn trial_base(&self, sched: &Schedule, ctx: &KeyCtx, salt: u64) -> TrialBase {
        let boundaries = sched.boundaries();
        let mut cached = Vec::with_capacity(boundaries.len());
        let mut resume = None;
        for &(pos, hash) in boundaries {
            match self.map.get(&ctx.key(hash, salt)) {
                Some(ck) => {
                    cached.push(true);
                    // Boundaries ascend, so the last match is the deepest.
                    resume = Some((pos, Arc::clone(ck)));
                }
                None => cached.push(false),
            }
        }
        TrialBase { resume, cached }
    }

    /// Merges one group's shard back at the batch barrier: checkpoints in
    /// the shard's capture order (deterministic FIFO age), counters
    /// summed. Call in group order so eviction order is worker-invariant.
    pub fn merge_shard(&mut self, shard: GroupShard) {
        for (key, ck) in shard.local {
            self.insert(key, ck);
        }
        self.hits += shard.hits;
        self.misses += shard.misses;
        self.resumed_cmds += shard.resumed_cmds;
        self.total_cmds += shard.total_cmds;
        for (d, s) in self.hit_depth.iter_mut().zip(shard.hit_depth) {
            *d += s;
        }
    }

    /// Probes answered with a checkpoint.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that found no matching checkpoint.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Commands covered by resumed checkpoints, over all probes.
    pub fn resumed_cmds(&self) -> u64 {
        self.resumed_cmds
    }

    /// Commands probed runs contained in total.
    pub fn total_cmds(&self) -> u64 {
        self.total_cmds
    }

    /// Fraction of probed commands that resuming skipped (0 when nothing
    /// was probed).
    pub fn resumed_fraction(&self) -> f64 {
        if self.total_cmds == 0 {
            0.0
        } else {
            self.resumed_cmds as f64 / self.total_cmds as f64
        }
    }

    /// Histogram of hit depths (see [`HIT_DEPTH_BUCKETS`]).
    pub fn hit_depth(&self) -> [u64; HIT_DEPTH_BUCKETS] {
        self.hit_depth
    }

    /// Checkpoints currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// One prefix group's working cache while the group executes (possibly on
/// a worker thread): the group's own captures, layered over each trial's
/// immutable [`TrialBase`]. All hit/miss/depth accounting happens here —
/// the final resume decision is the shard's — so the counters depend only
/// on batch content and pre-batch cache state, never on worker scheduling.
#[derive(Debug)]
pub struct GroupShard {
    ctx: KeyCtx,
    /// Group-local captures in insertion order (the order they merge into
    /// the shared cache, so FIFO eviction age stays deterministic).
    local: Vec<(SimKey, Arc<EngineCheckpoint>)>,
    index: HashMap<SimKey, usize>,
    hits: u64,
    misses: u64,
    resumed_cmds: u64,
    total_cmds: u64,
    hit_depth: [u64; HIT_DEPTH_BUCKETS],
}

impl GroupShard {
    /// An empty shard for one group of a batch running under `ctx`.
    pub fn new(ctx: KeyCtx) -> Self {
        GroupShard {
            ctx,
            local: Vec::new(),
            index: HashMap::new(),
            hits: 0,
            misses: 0,
            resumed_cmds: 0,
            total_cmds: 0,
            hit_depth: [0; HIT_DEPTH_BUCKETS],
        }
    }

    fn lookup(&self, hash: u64, salt: u64) -> Option<&Arc<EngineCheckpoint>> {
        self.index.get(&self.ctx.key(hash, salt)).map(|&i| &self.local[i].1)
    }

    /// Probes for the deepest resume (group-local captures beat the
    /// pre-batch `base` when deeper) and plans this run's captures: every
    /// still-uncached branch point of the batch trie beyond the resume,
    /// the final boundary (full-run memo), and evenly sampled filler up
    /// to `MAX_CAPTURES_PER_GROUP_RUN` for future batches to land on.
    ///
    /// Counts one hit or miss. Boundary-free schedules bypass and count
    /// nothing.
    pub fn probe_and_plan(
        &mut self,
        sched: &Schedule,
        salt: u64,
        base: &TrialBase,
        branches: &HashSet<u64>,
    ) -> (Option<Arc<EngineCheckpoint>>, Vec<usize>) {
        let boundaries = sched.boundaries();
        if boundaries.is_empty() {
            return (None, Vec::new());
        }

        let mut resume = base.resume.clone();
        for &(pos, hash) in boundaries.iter().rev() {
            if resume.as_ref().is_some_and(|&(at, _)| at >= pos) {
                break; // the pre-batch base is already at least this deep
            }
            if let Some(ck) = self.lookup(hash, salt) {
                resume = Some((pos, Arc::clone(ck)));
                break;
            }
        }
        let resumed_at = resume.as_ref().map_or(0, |&(at, _)| at);
        let total = sched.cmds().len();
        if resume.is_some() {
            self.hits += 1;
            self.hit_depth[depth_bucket(resumed_at, total)] += 1;
        } else {
            self.misses += 1;
        }
        self.total_cmds += total as u64;
        self.resumed_cmds += resumed_at as u64;

        let final_pos = boundaries.last().map_or(0, |&(pos, _)| pos);
        let mut mandatory = Vec::new();
        let mut filler = Vec::new();
        for (j, &(pos, hash)) in boundaries.iter().enumerate() {
            if pos <= resumed_at
                || base.cached.get(j).copied().unwrap_or(false)
                || self.index.contains_key(&self.ctx.key(hash, salt))
            {
                continue;
            }
            if pos == final_pos || branches.contains(&hash) {
                mandatory.push(pos);
            } else {
                filler.push(pos);
            }
        }
        let budget = MAX_CAPTURES_PER_GROUP_RUN.saturating_sub(mandatory.len());
        let mut capture_at = mandatory;
        capture_at.extend(sample_even(&filler, budget));
        capture_at.sort_unstable();
        (resume.map(|(_, ck)| ck), capture_at)
    }

    /// Records the checkpoints one group run captured, in order.
    pub fn absorb(&mut self, salt: u64, captured: Vec<EngineCheckpoint>) {
        for ck in captured {
            let key = self.ctx.key(ck.prefix_hash(), salt);
            if self.index.contains_key(&key) {
                continue;
            }
            self.index.insert(key.clone(), self.local.len());
            self.local.push((key, Arc::new(ck)));
        }
    }

    /// The shard's captures in insertion order, for the persistence glue
    /// to journal before the shard merges into the shared cache.
    pub(crate) fn entries(&self) -> &[(SimKey, Arc<EngineCheckpoint>)] {
        &self.local
    }

    /// Checkpoints captured by this group so far.
    pub fn len(&self) -> usize {
        self.local.len()
    }

    /// Whether the shard holds no captures yet.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{Engine, GemmLibrary, GemmShape, KernelDesc, StreamId};

    fn sched_with_boundaries(n: usize) -> Schedule {
        let mut s = Schedule::new(2);
        let g = GemmShape::new(64, 256, 256);
        for i in 0..n {
            s.launch(
                StreamId(i % 2),
                KernelDesc::Gemm { shape: g, lib: GemmLibrary::CublasLike },
            );
            s.mark_boundary();
        }
        s
    }

    /// A family of schedules sharing an `head`-launch prefix and then
    /// diverging per variant (distinct GEMM shapes after the split).
    fn sched_family(head: usize, tail: usize, variant: u64) -> Schedule {
        let mut s = Schedule::new(2);
        let shared = GemmShape::new(64, 256, 256);
        for i in 0..head {
            s.launch(
                StreamId(i % 2),
                KernelDesc::Gemm { shape: shared, lib: GemmLibrary::CublasLike },
            );
            s.mark_boundary();
        }
        let own = GemmShape::new(32 + variant, 128, 128);
        for i in 0..tail {
            s.launch(
                StreamId(i % 2),
                KernelDesc::Gemm { shape: own, lib: GemmLibrary::CublasLike },
            );
            s.mark_boundary();
        }
        s
    }

    fn chain(s: &Schedule) -> Vec<u64> {
        s.boundaries().iter().map(|&(_, h)| h).collect()
    }

    #[test]
    fn cold_probe_misses_then_full_memo_hits() {
        let dev = DeviceSpec::p100();
        let sched = sched_with_boundaries(6);
        let mut cache = SimCache::new();
        let plan = FaultPlan::none();

        let (resume, caps) =
            cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 0);
        assert!(resume.is_none());
        assert_eq!(cache.misses(), 1);
        assert_eq!(*caps.last().expect("captures planned"), sched.cmds().len());

        let (r, captured) = Engine::new(&dev)
            .run_incremental(&sched, None, &caps)
            .expect("cold run");
        cache.absorb(&dev, ClockMode::Fixed, &plan, 0, captured);

        let (resume, caps2) =
            cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 7);
        let ck = resume.expect("full-run memo hits (clean runs share salts)");
        assert_eq!(ck.cmd_idx(), sched.cmds().len());
        assert!(caps2.is_empty(), "nothing left to capture");
        assert_eq!(cache.hits(), 1);
        // A full-run memo skips everything: deepest histogram bucket.
        assert_eq!(cache.hit_depth()[HIT_DEPTH_BUCKETS - 1], 1);
        let (r2, _) = Engine::new(&dev)
            .run_incremental(&sched, Some(&ck), &[])
            .expect("memo replay");
        assert_eq!(r.total_ns.to_bits(), r2.total_ns.to_bits());
        assert!(cache.resumed_fraction() > 0.0);
    }

    #[test]
    fn key_separates_clock_device_and_fault_state() {
        let dev = DeviceSpec::p100();
        let sched = sched_with_boundaries(3);
        let mut cache = SimCache::new();
        let clean = FaultPlan::none();
        let chaos = FaultPlan::chaos(5);

        let (_, caps) = cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &clean, 0);
        let (_, captured) =
            Engine::new(&dev).run_incremental(&sched, None, &caps).expect("run");
        cache.absorb(&dev, ClockMode::Fixed, &clean, 0, captured);

        // Same schedule under a different clock, device, or fault plan
        // must miss; the same clean plan under another salt must hit.
        let boost = ClockMode::Autoboost { seed: 1 };
        assert!(cache.probe_and_plan(&sched, &dev, boost, &clean, 0).0.is_none());
        let v100 = DeviceSpec::v100();
        assert!(cache.probe_and_plan(&sched, &v100, ClockMode::Fixed, &clean, 0).0.is_none());
        assert!(cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &chaos, 0).0.is_none());
        assert!(cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &clean, 99).0.is_some());
    }

    #[test]
    fn faulted_checkpoints_are_salt_specific() {
        let dev = DeviceSpec::p100();
        let sched = sched_with_boundaries(3);
        let mut cache = SimCache::new();
        let plan = FaultPlan::chaos(5);

        let (_, caps) = cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 4);
        let (_, captured) = Engine::with_faults(&dev, ClockMode::Fixed, plan, 4)
            .run_incremental(&sched, None, &caps)
            .expect("run");
        cache.absorb(&dev, ClockMode::Fixed, &plan, 4, captured);

        assert!(cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 4).0.is_some());
        assert!(cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &plan, 5).0.is_none());
    }

    #[test]
    fn capture_plan_is_bounded_and_ends_at_the_final_boundary() {
        let dev = DeviceSpec::p100();
        let sched = sched_with_boundaries(100);
        let mut cache = SimCache::new();
        let (_, caps) =
            cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &FaultPlan::none(), 0);
        assert!(caps.len() <= MAX_CAPTURES_PER_RUN, "{} captures", caps.len());
        assert_eq!(*caps.last().unwrap(), sched.cmds().len());
        assert!(caps.windows(2).all(|w| w[0] < w[1]), "sorted: {caps:?}");
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let dev = DeviceSpec::p100();
        let mut cache = SimCache::with_capacity(4);
        let plan = FaultPlan::none();
        // Distinct single-boundary schedules (different GEMM shapes) give
        // distinct prefix hashes.
        let mut first_sched = None;
        for i in 0..8usize {
            let mut s = Schedule::new(1);
            let g = GemmShape::new(32 + i as u64, 128, 128);
            s.launch(StreamId(0), KernelDesc::Gemm { shape: g, lib: GemmLibrary::CublasLike });
            s.mark_boundary();
            let (_, caps) = cache.probe_and_plan(&s, &dev, ClockMode::Fixed, &plan, 0);
            let (_, captured) =
                Engine::new(&dev).run_incremental(&s, None, &caps).expect("run");
            cache.absorb(&dev, ClockMode::Fixed, &plan, 0, captured);
            if i == 0 {
                first_sched = Some(s);
            }
        }
        assert_eq!(cache.len(), 4, "bounded at capacity");
        // The first insertion was evicted first.
        let first = first_sched.unwrap();
        assert!(cache
            .probe_and_plan(&first, &dev, ClockMode::Fixed, &plan, 0)
            .0
            .is_none());
    }

    #[test]
    fn boundary_free_schedules_bypass_the_cache() {
        let dev = DeviceSpec::p100();
        let mut s = Schedule::new(1);
        s.launch(
            StreamId(0),
            KernelDesc::Gemm { shape: GemmShape::new(8, 8, 8), lib: GemmLibrary::CublasLike },
        );
        let mut cache = SimCache::new();
        let (resume, caps) =
            cache.probe_and_plan(&s, &dev, ClockMode::Fixed, &FaultPlan::none(), 0);
        assert!(resume.is_none() && caps.is_empty());
        assert_eq!((cache.hits(), cache.misses(), cache.total_cmds()), (0, 0, 0));
    }

    #[test]
    fn prefix_plan_groups_shared_prefixes_and_finds_branch_points() {
        // Variants 0 and 1 share a 4-boundary head; variant-less schedule
        // `other` shares nothing; an empty chain stays a singleton.
        let a = sched_family(4, 3, 0);
        let b = sched_family(4, 3, 1);
        let other = sched_family(0, 3, 7);
        let chains = vec![chain(&a), chain(&b), chain(&other), Vec::new()];
        let plan = plan_prefix_batch(&chains);

        // Permutation: nothing dropped or duplicated.
        let mut flat: Vec<usize> = plan.groups.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(flat, vec![0, 1, 2, 3]);

        // a and b share their head, so they land in one group; the others
        // are singletons.
        let joint = plan
            .groups
            .iter()
            .find(|g| g.contains(&0))
            .expect("group containing trial 0");
        assert_eq!(joint.len(), 2, "{:?}", plan.groups);
        assert!(joint.contains(&1));
        assert_eq!(plan.groups.len(), 3);

        // The branch point is the last shared boundary (head depth 4).
        assert_eq!(plan.branches.len(), 1);
        assert!(plan.branches.contains(&chains[0][3]));
    }

    #[test]
    fn group_shard_resumes_siblings_at_the_branch_point() {
        let dev = DeviceSpec::p100();
        let a = sched_family(6, 2, 0);
        let b = sched_family(6, 2, 1);
        let chains = vec![chain(&a), chain(&b)];
        let plan = plan_prefix_batch(&chains);
        assert_eq!(plan.groups.len(), 1, "siblings share a prefix group");

        let fault = FaultPlan::none();
        let ctx = KeyCtx::new(&dev, ClockMode::Fixed, &fault);
        let cache = SimCache::new();
        let mut shard = GroupShard::new(ctx);

        // Trial a: cold (base and shard both empty), captures the branch.
        let base_a = cache.trial_base(&a, &ctx, 0);
        let (resume, caps) = shard.probe_and_plan(&a, 0, &base_a, &plan.branches);
        assert!(resume.is_none());
        let branch_pos = a.boundaries()[5].0;
        assert!(caps.contains(&branch_pos), "branch point must be captured");
        let (ra, captured) = Engine::new(&dev)
            .run_incremental(&a, None, &caps)
            .expect("cold run");
        shard.absorb(0, captured);

        // Trial b resumes exactly at the divergence boundary, from the
        // shard — the shared cache never saw these captures.
        let base_b = cache.trial_base(&b, &ctx, 1);
        let (resume, _) = shard.probe_and_plan(&b, 1, &base_b, &plan.branches);
        let ck = resume.expect("sibling resumes from the group's captures");
        assert_eq!(ck.cmd_idx(), branch_pos);
        let (rb, _) = Engine::new(&dev)
            .run_incremental(&b, Some(&ck), &[])
            .expect("resumed run");
        let cold_b = Engine::new(&dev).run(&b).expect("cold reference");
        assert_eq!(rb.total_ns.to_bits(), cold_b.total_ns.to_bits());
        assert!(ra.total_ns > 0.0);

        // Merging moves the captures and counters into the shared cache.
        let mut cache = cache;
        cache.merge_shard(shard);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(cache.len() > 0);
        let rebase = cache.trial_base(&b, &ctx, 2);
        assert!(rebase.resume.is_some(), "merged captures serve later batches");
    }

    #[test]
    fn trial_base_is_read_only_and_tracks_cached_boundaries() {
        let dev = DeviceSpec::p100();
        let sched = sched_with_boundaries(6);
        let mut cache = SimCache::new();
        let fault = FaultPlan::none();
        let ctx = KeyCtx::new(&dev, ClockMode::Fixed, &fault);

        let empty = cache.trial_base(&sched, &ctx, 0);
        assert!(empty.resume.is_none());
        assert!(empty.cached.iter().all(|&c| !c));

        let (_, caps) = cache.probe_and_plan(&sched, &dev, ClockMode::Fixed, &fault, 0);
        let (_, captured) =
            Engine::new(&dev).run_incremental(&sched, None, &caps).expect("run");
        cache.absorb(&dev, ClockMode::Fixed, &fault, 0, captured);
        let (h0, m0) = (cache.hits(), cache.misses());

        let base = cache.trial_base(&sched, &ctx, 5);
        let (pos, _) = base.resume.as_ref().expect("memo cached");
        assert_eq!(*pos, sched.cmds().len());
        assert!(base.cached.iter().any(|&c| c));
        assert_eq!((cache.hits(), cache.misses()), (h0, m0), "trial_base must not count");
    }
}
