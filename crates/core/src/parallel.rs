//! Worker pools for evaluating independent trial candidates.
//!
//! The exploration driver batches upcoming trial configurations (see
//! [`UpdateTree::lookahead`](crate::UpdateTree::lookahead)) and simulates
//! them concurrently. Each unit of work is self-contained — its own
//! [`Engine`](astra_gpu::Engine), its own schedule — so fanning it out
//! changes wall-clock time only, never results: both pools return results
//! in submission order, and the driver commits them to the update tree
//! and profile index in candidate order.
//!
//! Two shapes of pool:
//!
//! * [`parallel_map`] — scoped threads, spawned per call. The closure may
//!   borrow the caller's state, which is what plan building and the
//!   static verifier need; the spawn/join round-trip per call is the
//!   price.
//! * [`WorkerPool`] — persistent threads, created once per driver and fed
//!   owned (`'static`) jobs over a channel. The exploration loop runs
//!   hundreds of small batches; respawning threads for each one is pure
//!   overhead (it is why `workers=4` used to run at a fraction of
//!   `workers=1` wall-clock on a loaded host), so batch evaluation goes
//!   through this pool instead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// Resolves a requested worker count: `0` means one worker per available
/// CPU core (falling back to 1 if the parallelism query fails), any other
/// value is taken as-is.
pub fn effective_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Applies `f` to every item on a pool of `workers` scoped threads and
/// returns the results in item order.
///
/// Work is distributed dynamically (an atomic next-item counter), so
/// uneven per-item cost does not idle workers. With `workers <= 1` or
/// fewer than two items, everything runs on the caller's thread — that
/// path is byte-for-byte the sequential loop.
///
/// # Panics
///
/// Propagates a panic from `f` to the caller.
pub fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let threads = workers.min(items.len());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    mine.push((i, f(i, &items[i])));
                }
                mine
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every item computed")).collect()
}

/// A queued unit of work for a [`WorkerPool`] thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of worker threads fed owned jobs over a channel.
///
/// Workers block on a shared receiver and run jobs to completion; a job
/// that panics is contained (the worker survives and the panic surfaces
/// to the next [`WorkerPool::run`] caller). Dropping the pool closes the
/// queue and joins every worker.
#[derive(Debug)]
pub struct WorkerPool {
    queue: Option<mpsc::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) threads that live until the pool
    /// is dropped.
    pub fn new(workers: usize) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Holding the lock across `recv` is fine: exactly one
                    // idle worker waits on the channel, the rest wait on
                    // the lock — either way the next job wakes one thread.
                    let job = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match job {
                        // Contain panics so a poisoned job cannot strand
                        // the jobs still queued behind it.
                        Ok(job) => {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        Err(_) => break, // pool dropped: queue closed
                    }
                })
            })
            .collect();
        WorkerPool { queue: Some(tx), handles }
    }

    /// Threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs every job on the pool and returns the results in submission
    /// order (completion order is up to the scheduler).
    ///
    /// # Panics
    ///
    /// Panics if a job panicked on a worker (its result never arrives).
    pub fn run<R: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    ) -> Vec<R> {
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let queue = self.queue.as_ref().expect("queue lives until drop");
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            queue
                .send(Box::new(move || {
                    let _ = tx.send((i, job()));
                }))
                .expect("workers outlive the pool");
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        for _ in 0..n {
            let (i, r) = rx.recv().expect("a worker job panicked");
            slots[i] = Some(r);
        }
        slots.into_iter().map(|r| r.expect("every job reports once")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.queue.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 8] {
            let out = parallel_map(workers, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_requested_workers_resolves_to_cores() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }

    #[test]
    fn uneven_items_all_complete() {
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(4, &items, |_, &x| {
            // Vary per-item cost so the dynamic distribution is exercised.
            (0..(x % 7) * 1000).fold(x, |a, b| a.wrapping_add(b))
        });
        assert_eq!(out.len(), 37);
    }

    #[test]
    fn pool_returns_results_in_submission_order() {
        let pool = WorkerPool::new(4);
        for round in 0..3u64 {
            // Reusing the pool across rounds is the whole point: no new
            // threads between batches.
            let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..23u64)
                .map(|i| Box::new(move || i * 2 + round) as Box<dyn FnOnce() -> u64 + Send>)
                .collect();
            let out = pool.run(jobs);
            assert_eq!(out, (0..23u64).map(|i| i * 2 + round).collect::<Vec<_>>());
        }
        assert_eq!(pool.workers(), 4);
    }

    #[test]
    fn pool_handles_empty_and_single_job_batches() {
        let pool = WorkerPool::new(2);
        assert!(pool.run(Vec::<Box<dyn FnOnce() -> u8 + Send>>::new()).is_empty());
        let one: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 9)];
        assert_eq!(pool.run(one), vec![9]);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = WorkerPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..10usize).map(|i| Box::new(move || i) as Box<dyn FnOnce() -> usize + Send>).collect();
        let _ = pool.run(jobs);
        drop(pool); // must not hang
    }

    #[test]
    #[should_panic(expected = "a worker job panicked")]
    fn pool_propagates_job_panics() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom")),
            Box::new(|| 2),
        ];
        let _ = pool.run(jobs);
    }
}
