//! A scoped worker pool for evaluating independent trial candidates.
//!
//! The exploration driver batches upcoming trial configurations (see
//! [`UpdateTree::lookahead`](crate::UpdateTree::lookahead)) and simulates
//! them concurrently. Each candidate's simulation is self-contained — its
//! own [`Engine`](astra_gpu::Engine), its own schedule — so fanning them
//! out changes wall-clock time only, never results: [`parallel_map`]
//! returns results in item order, and the driver commits them to the
//! update tree and profile index in that same order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested worker count: `0` means one worker per available
/// CPU core (falling back to 1 if the parallelism query fails), any other
/// value is taken as-is.
pub fn effective_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// Applies `f` to every item on a pool of `workers` scoped threads and
/// returns the results in item order.
///
/// Work is distributed dynamically (an atomic next-item counter), so
/// uneven per-item cost does not idle workers. With `workers <= 1` or
/// fewer than two items, everything runs on the caller's thread — that
/// path is byte-for-byte the sequential loop.
///
/// # Panics
///
/// Propagates a panic from `f` to the caller.
pub fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let threads = workers.min(items.len());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    mine.push((i, f(i, &items[i])));
                }
                mine
            }));
        }
        for h in handles {
            for (i, r) in h.join().expect("worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every item computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 8] {
            let out = parallel_map(workers, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn zero_requested_workers_resolves_to_cores() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }

    #[test]
    fn uneven_items_all_complete() {
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(4, &items, |_, &x| {
            // Vary per-item cost so the dynamic distribution is exercised.
            (0..(x % 7) * 1000).fold(x, |a, b| a.wrapping_add(b))
        });
        assert_eq!(out.len(), 37);
    }
}
