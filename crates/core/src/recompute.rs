//! Recompute-for-memory adaptation (paper §3.4).
//!
//! The paper lists trading computation for memory as a natural further
//! dimension of the Astra state space: "saving part of the memory used for
//! forward-pass activations by redoing the computation ... a complex
//! dynamic that needs measurement." This module implements it:
//!
//! * [`peak_activation_bytes`] — a liveness analysis over the unit DAG:
//!   every unit's output is live from its production until its last
//!   consumer, and the peak of the running sum is the activation memory a
//!   mini-batch needs (the backward pass holds the whole forward alive).
//! * [`explore_recompute`] — checkpoint-segment adaptation: timesteps are
//!   grouped into segments of `k` steps; only activations crossing a
//!   segment boundary are kept (the checkpoints), everything else is freed
//!   after the forward pass and *recomputed* just before its segment's
//!   backward phase. Smaller segments mean less memory and more compute —
//!   and per the Astra recipe, each candidate is *measured* (the schedule
//!   with the real recompute kernels is executed on the simulator), not
//!   modelled.

use astra_gpu::{Engine, Schedule, StreamId};
use astra_ir::Pass;

use crate::error::AstraError;
use crate::plan::{build_units, ExecConfig, PlanContext, Unit};

/// Peak activation memory of a unit sequence executed in order, in bytes.
///
/// Inputs and parameters are not counted (they are resident for the whole
/// job); only unit outputs — activations and gradients — contribute.
pub fn peak_activation_bytes(units: &[Unit]) -> f64 {
    // Last consumer position of each unit's output.
    let mut last_use: Vec<usize> = (0..units.len()).collect();
    for (i, u) in units.iter().enumerate() {
        for &d in &u.deps {
            last_use[d] = last_use[d].max(i);
        }
    }
    let mut alive = 0.0_f64;
    let mut peak = 0.0_f64;
    // Free-list per position.
    let mut frees: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
    for (i, &lu) in last_use.iter().enumerate() {
        frees[lu].push(i);
    }
    for (i, u) in units.iter().enumerate() {
        alive += u.out_bytes;
        peak = peak.max(alive);
        for &f in &frees[i] {
            alive -= units[f].out_bytes;
        }
    }
    peak
}

/// One measured recompute candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RecomputePoint {
    /// Checkpoint segment length in timesteps (`u32::MAX` = recompute off).
    pub segment_steps: u32,
    /// Measured mini-batch time including the recompute kernels (ns).
    pub time_ns: f64,
    /// Peak activation bytes under this checkpointing.
    pub peak_bytes: f64,
    /// Number of recompute kernel launches added.
    pub recompute_launches: usize,
}

/// Result of the recompute exploration.
#[derive(Debug, Clone)]
pub struct RecomputeReport {
    /// Measured candidates, in the order explored.
    pub points: Vec<RecomputePoint>,
}

impl RecomputeReport {
    /// The fastest candidate whose peak fits in `capacity_bytes`, if any.
    pub fn fastest_within(&self, capacity_bytes: f64) -> Option<&RecomputePoint> {
        self.points
            .iter()
            .filter(|p| p.peak_bytes <= capacity_bytes)
            .min_by(|a, b| a.time_ns.total_cmp(&b.time_ns))
    }

    /// The smallest peak across candidates.
    pub fn min_peak_bytes(&self) -> f64 {
        self.points.iter().map(|p| p.peak_bytes).fold(f64::INFINITY, f64::min)
    }
}

/// A timeline item: a unit execution, possibly a recompute clone.
#[derive(Debug, Clone, Copy)]
struct TimelineItem {
    unit: usize,
    clone: bool,
}

/// Builds the recompute timeline for segment length `k` and returns
/// `(timeline, checkpoint flags)`.
fn build_timeline(units: &[Unit], k: u32) -> (Vec<TimelineItem>, Vec<bool>) {
    let seg = |u: &Unit| -> u32 { u.step.unwrap_or(0) / k.max(1) };
    // Checkpoints: forward outputs consumed by a unit of a different
    // segment (they cross a boundary and must survive), or by nothing at
    // all. Stepless forward units are always checkpoints.
    let mut checkpoint: Vec<bool> = units
        .iter()
        .map(|u| u.pass == Pass::Forward && u.step.is_none())
        .collect();
    for u in units.iter() {
        for &d in &u.deps {
            if units[d].pass == Pass::Forward && seg(&units[d]) != seg(u) {
                checkpoint[d] = true;
            }
        }
    }

    let max_seg = units.iter().filter(|u| u.pass == Pass::Forward).map(&seg).max().unwrap_or(0);

    // Effective segment of a backward unit: a unit must run no earlier than
    // its backward dependencies (segments are processed from high to low),
    // so cross-segment backward consumers — e.g. a fully-fused weight
    // gradient that reads every timestep's contribution — sink to the
    // lowest segment among their inputs.
    let mut eff: Vec<u32> = units.iter().map(seg).collect();
    for (i, u) in units.iter().enumerate() {
        if u.pass != Pass::Backward {
            continue;
        }
        for &d in &u.deps {
            if units[d].pass == Pass::Backward {
                eff[i] = eff[i].min(eff[d]);
            }
        }
    }

    let mut timeline: Vec<TimelineItem> = Vec::with_capacity(units.len() * 2);
    for (i, u) in units.iter().enumerate() {
        if u.pass == Pass::Forward {
            timeline.push(TimelineItem { unit: i, clone: false });
        }
    }
    for s in (0..=max_seg).rev() {
        // Recompute clones: non-checkpointed forward units of the segment.
        // The *last* segment needs none — its forward phase ends where the
        // backward phase begins, so nothing was freed early (this is also
        // what makes one-segment checkpointing identical to recompute-off).
        if s < max_seg {
            for (i, u) in units.iter().enumerate() {
                if u.pass == Pass::Forward && !checkpoint[i] && seg(u) == s {
                    timeline.push(TimelineItem { unit: i, clone: true });
                }
            }
        }
        for (i, u) in units.iter().enumerate() {
            if u.pass == Pass::Backward && eff[i] == s {
                timeline.push(TimelineItem { unit: i, clone: false });
            }
        }
    }
    (timeline, checkpoint)
}

/// Peak activation bytes of a recompute timeline: non-checkpointed forward
/// outputs die at the end of their segment's forward phase and are reborn
/// as clones; everything else lives to its last consumer.
fn timeline_peak_bytes(units: &[Unit], timeline: &[TimelineItem], checkpoint: &[bool]) -> f64 {
    let n = timeline.len();
    // Position of the original and clone instance of each unit.
    let mut orig_pos = vec![usize::MAX; units.len()];
    let mut clone_pos = vec![usize::MAX; units.len()];
    for (p, item) in timeline.iter().enumerate() {
        if item.clone {
            clone_pos[item.unit] = p;
        } else {
            orig_pos[item.unit] = p;
        }
    }
    // For each timeline position, which value instances does it read?
    // A reader at position p reading unit d uses d's clone if the clone
    // exists and p > clone position; otherwise the original.
    let mut last_use_of_instance: Vec<usize> = (0..n).collect();
    for (p, item) in timeline.iter().enumerate() {
        for &d in &units[item.unit].deps {
            let dp = if clone_pos[d] != usize::MAX && p > clone_pos[d] {
                clone_pos[d]
            } else {
                orig_pos[d]
            };
            if dp != usize::MAX {
                last_use_of_instance[dp] = last_use_of_instance[dp].max(p);
            }
        }
    }
    // Originals of non-checkpointed forward units additionally die no later
    // than their clone's rebirth (they were freed at segment end).
    for (i, &cp) in clone_pos.iter().enumerate() {
        if cp != usize::MAX && !checkpoint[i] {
            let op = orig_pos[i];
            last_use_of_instance[op] = last_use_of_instance[op].min(cp.saturating_sub(1));
        }
    }
    let mut frees: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (p, &lu) in last_use_of_instance.iter().enumerate() {
        frees[lu.min(n - 1)].push(p);
    }
    let mut alive = 0.0;
    let mut peak = 0.0_f64;
    for p in 0..n {
        alive += units[timeline[p].unit].out_bytes;
        peak = peak.max(alive);
        for &f in &frees[p] {
            alive -= units[timeline[f].unit].out_bytes;
        }
    }
    peak
}

/// Explores checkpoint segment lengths for a configuration, measuring each
/// candidate's mini-batch time (with real recompute kernels) and peak
/// activation memory.
///
/// `segments` are the candidate lengths in timesteps; include `u32::MAX`
/// for the recompute-off baseline. Exploration runs single-stream (the
/// paper's prototype dimensions compose; this extension is measured in the
/// same work-conserving way).
///
/// # Errors
///
/// Propagates unit-building or simulation failures.
pub fn explore_recompute(
    ctx: &PlanContext<'_>,
    cfg: &ExecConfig,
    dev: &astra_gpu::DeviceSpec,
    segments: &[u32],
) -> Result<RecomputeReport, AstraError> {
    let units = build_units(ctx, cfg)?;
    let mut points = Vec::new();
    for &k in segments {
        let (timeline, checkpoint) = build_timeline(&units, k);
        let mut sched = Schedule::new(1);
        let mut recompute_launches = 0;
        for item in &timeline {
            let u = &units[item.unit];
            if u.pre_copy_bytes > 0.0 {
                sched.launch(
                    StreamId(0),
                    astra_gpu::KernelDesc::MemCopy { bytes: u.pre_copy_bytes },
                );
            }
            sched.launch(StreamId(0), u.kernel);
            if item.clone {
                recompute_launches += 1;
            }
        }
        let time_ns = Engine::new(dev).run(&sched)?.total_ns;
        let peak_bytes = timeline_peak_bytes(&units, &timeline, &checkpoint);
        points.push(RecomputePoint { segment_steps: k, time_ns, peak_bytes, recompute_launches });
    }
    Ok(RecomputeReport { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::DeviceSpec;
    use astra_models::{Model, ModelConfig};

    fn small() -> astra_models::BuiltModel {
        // Recompute targets the activation-dominated regime: long unrolls
        // where forward activations dwarf the (sequence-independent) weight
        // gradients.
        let cfg = ModelConfig {
            seq_len: 32,
            hidden: 128,
            input: 128,
            vocab: 256,
            ..ModelConfig::ptb(16)
        };
        Model::SubLstm.build(&cfg)
    }

    #[test]
    fn liveness_peak_is_between_max_unit_and_total() {
        let built = small();
        let ctx = PlanContext::new(&built.graph);
        let units = build_units(&ctx, &ExecConfig::baseline()).unwrap();
        let peak = peak_activation_bytes(&units);
        let max_single = units.iter().map(|u| u.out_bytes).fold(0.0, f64::max);
        let total: f64 = units.iter().map(|u| u.out_bytes).sum();
        assert!(peak >= max_single);
        assert!(peak <= total);
        // Training holds the forward activations alive into the backward
        // pass: the peak must cover a large share of the forward outputs
        // (gradients are transient and free quickly; they may not all
        // stack).
        let fw_total: f64 = units
            .iter()
            .filter(|u| u.pass == astra_ir::Pass::Forward)
            .map(|u| u.out_bytes)
            .sum();
        assert!(peak > fw_total * 0.5, "peak {peak} vs forward total {fw_total}");
    }

    #[test]
    fn recompute_off_matches_baseline() {
        let built = small();
        let ctx = PlanContext::new(&built.graph);
        let dev = DeviceSpec::p100();
        let r = explore_recompute(&ctx, &ExecConfig::baseline(), &dev, &[u32::MAX]).unwrap();
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].recompute_launches, 0);
        let units = build_units(&ctx, &ExecConfig::baseline()).unwrap();
        let base_peak = peak_activation_bytes(&units);
        let ratio = r.points[0].peak_bytes / base_peak;
        assert!((0.9..=1.1).contains(&ratio), "off-peak {ratio} should match baseline");
    }

    #[test]
    fn smaller_segments_trade_time_for_memory() {
        let built = small();
        let ctx = PlanContext::new(&built.graph);
        let dev = DeviceSpec::p100();
        let r =
            explore_recompute(&ctx, &ExecConfig::baseline(), &dev, &[u32::MAX, 8, 4, 2]).unwrap();
        let off = &r.points[0];
        for p in &r.points[1..] {
            assert!(p.time_ns > off.time_ns, "recompute adds time: {} vs {}", p.time_ns, off.time_ns);
            assert!(
                p.peak_bytes < off.peak_bytes,
                "recompute saves memory: {} vs {}",
                p.peak_bytes,
                off.peak_bytes
            );
            assert!(p.recompute_launches > 0);
        }
        // Monotone-ish: k=2 uses no more memory than k=8.
        let k8 = r.points.iter().find(|p| p.segment_steps == 8).unwrap();
        let k2 = r.points.iter().find(|p| p.segment_steps == 2).unwrap();
        assert!(k2.peak_bytes <= k8.peak_bytes * 1.05);
    }

    #[test]
    fn fastest_within_respects_capacity() {
        let built = small();
        let ctx = PlanContext::new(&built.graph);
        let dev = DeviceSpec::p100();
        let r =
            explore_recompute(&ctx, &ExecConfig::baseline(), &dev, &[u32::MAX, 8, 2]).unwrap();
        // Unlimited capacity: recompute off wins (it is fastest).
        let best = r.fastest_within(f64::INFINITY).unwrap();
        assert_eq!(best.segment_steps, u32::MAX);
        // Capacity below the baseline peak forces checkpointing.
        let off_peak = r.points[0].peak_bytes;
        if let Some(tight) = r.fastest_within(off_peak * 0.6) {
            assert_ne!(tight.segment_steps, u32::MAX);
        }
        // Impossible capacity: no candidate.
        assert!(r.fastest_within(1.0).is_none());
    }

    #[test]
    fn recompute_enables_larger_batch_under_memory_cap() {
        // The paper's §3.4 scenario: with a fixed memory budget, recompute
        // admits a 2x mini-batch whose better utilization can win per
        // sample.
        let dev = DeviceSpec::p100();
        let build = |batch: u64| {
            let cfg = ModelConfig {
                seq_len: 32,
                hidden: 128,
                input: 128,
                vocab: 256,
                ..ModelConfig::ptb(batch)
            };
            Model::SubLstm.build(&cfg)
        };
        let small_b = build(16);
        let ctx_small = PlanContext::new(&small_b.graph);
        let r_small =
            explore_recompute(&ctx_small, &ExecConfig::baseline(), &dev, &[u32::MAX]).unwrap();
        let cap = r_small.points[0].peak_bytes * 1.2; // fits batch 8 plain

        let big_b = build(32);
        let ctx_big = PlanContext::new(&big_b.graph);
        let r_big =
            explore_recompute(&ctx_big, &ExecConfig::baseline(), &dev, &[u32::MAX, 4, 2]).unwrap();
        // Batch 16 without recompute must NOT fit the cap...
        assert!(r_big.points[0].peak_bytes > cap);
        // ...but some recompute candidate should come much closer (or fit).
        assert!(r_big.min_peak_bytes() < r_big.points[0].peak_bytes * 0.7);
    }
}
