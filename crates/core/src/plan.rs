//! Configuration → executable schedule.
//!
//! A trial configuration ([`ExecConfig`]) binds every adaptive variable:
//! per-set fusion chunk sizes, per-shape GEMM libraries, the allocation
//! strategy, and the stream assignment. This module materializes a
//! configuration as *units* — fused GEMM blocks, ladder-combine adds,
//! element-wise chains, and remaining single kernels — topologically sorts
//! them, inserts gather copies where the allocation strategy denied
//! contiguity, and emits an [`astra_gpu::Schedule`] with events, barriers,
//! and the profiling probes the custom wirer harvests.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use astra_exec::{fuse_elementwise_chains, lower, EwChain, Lowering};
use astra_gpu::{
    AllocationPlan, BufId, EventId, GemmLibrary, GemmShape, KernelDesc, Schedule, StreamId,
};
use astra_ir::{Graph, NodeId, OpKind};
use astra_predict::FeatureVec;

use crate::enumerate::alloc::{enumerate_alloc, AllocEnumeration};
use crate::enumerate::fusion::{enumerate_fusion, ColKind, FusionSet};
use crate::error::AstraError;

/// Identity of a schedulable unit, stable across rebuilds under the same
/// chunk configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitId {
    /// Fused GEMM block `(set, row-block, col-block)`.
    Block {
        /// Index of the fusion set.
        set: u32,
        /// Row-block index.
        rb: u32,
        /// Column-block index.
        cb: u32,
    },
    /// Ladder partial-sum combine add for a row-block.
    Combine {
        /// Index of the fusion set.
        set: u32,
        /// Row-block index.
        rb: u32,
        /// Combine position within the row-block.
        idx: u32,
    },
    /// A fused element-wise chain.
    Chain(u32),
    /// A single un-fused graph node.
    Node(u32),
}

/// One schedulable unit.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Stable identity.
    pub id: UnitId,
    /// The kernel to launch.
    pub kernel: KernelDesc,
    /// Indices (into the unit vector) of units this one depends on.
    pub deps: Vec<usize>,
    /// GEMM shape, when the unit is a (fused) matmul.
    pub gemm_shape: Option<GemmShape>,
    /// Bytes that must be gather-copied before launch because the
    /// allocation strategy left the fused operands non-contiguous.
    pub pre_copy_bytes: f64,
    /// Owning fusion set, for per-set profiling.
    pub set_idx: Option<usize>,
    /// Nominal FLOPs (for super-epoch budgeting and stream balancing).
    pub flops: f64,
    /// Bytes of activation output this unit materializes (drives the
    /// liveness analysis behind the recompute/memory adaptation).
    pub out_bytes: f64,
    /// Which pass the unit belongs to.
    pub pass: astra_ir::Pass,
    /// Originating timestep, when the unit's members have one.
    pub step: Option<u32>,
    /// Buffers the unit's kernel reads (sorted, deduplicated, minus its own
    /// writes). The static verifier resolves these against the allocation
    /// plan for the cross-stream hazard scan.
    pub reads: Vec<BufId>,
    /// Buffers the unit's kernel writes. Units that materialize no graph
    /// tensor (ladder partial blocks, intermediate combines) get a unique
    /// synthetic buffer above [`SYNTHETIC_BUF_BASE`] so the partial-sum
    /// dataflow is still visible to the verifier.
    pub writes: Vec<BufId>,
}

/// First synthetic buffer id: unit outputs that never materialize a graph
/// tensor (ladder partial sums) get `SYNTHETIC_BUF_BASE + creation_index`,
/// far above any lowered tensor buffer.
pub const SYNTHETIC_BUF_BASE: u64 = 1 << 32;

/// Everything derived once per (graph, enumeration) pair.
#[derive(Debug)]
pub struct PlanContext<'g> {
    /// The training graph.
    pub graph: &'g Graph,
    /// Per-node default kernels and buffer aliasing.
    pub lowering: Lowering,
    /// Fusion candidates from the enumerator.
    pub sets: Vec<FusionSet>,
    /// Always-on element-wise chains (§5.3).
    pub chains: Vec<EwChain>,
    /// Allocation strategies (≥1).
    pub alloc: AllocEnumeration,
}

impl<'g> PlanContext<'g> {
    /// Runs the full static enumeration for `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_lowering(graph, lower(graph))
    }

    /// Like [`PlanContext::new`], but reuses a lowering computed elsewhere
    /// (e.g. from an [`astra_exec::LoweringCache`]) instead of re-lowering
    /// the graph. `lowering` must be the lowering *of `graph`* — the
    /// enumeration trusts its node indexing.
    pub fn with_lowering(graph: &'g Graph, lowering: Lowering) -> Self {
        let sets = enumerate_fusion(graph);
        let chains = fuse_elementwise_chains(graph, &lowering);
        let alloc = enumerate_alloc(graph, &lowering, &sets);
        PlanContext { graph, lowering, sets, chains, alloc }
    }
}

/// How a plan maps onto the devices of a [`Topology`](astra_gpu::Topology).
///
/// Placement is an adaptive variable like fusion chunks or stream counts:
/// the driver enumerates a handful of candidates, measures each on the
/// simulated machine, and keeps the winner. The variants are deliberately
/// *parameterized* (non-uniform shares, arbitrary cut points) so that
/// heterogeneous device mixes can be served proportionally rather than
/// only uniformly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DevicePlacement {
    /// Everything on device 0 (the single-device plan).
    Single,
    /// Replicate the model; split the mini-batch across devices with
    /// `shares[d]` parts of the batch on device `d` (ring all-reduce of the
    /// gradients at the end of the step).
    DataParallel {
        /// Relative batch shares per device, all ≥ 1.
        shares: Vec<u32>,
    },
    /// Partition the (topologically sorted) unit DAG into contiguous
    /// layer-wise segments: device `d` runs units `cuts[d-1]..cuts[d]`
    /// (with implicit `cuts[-1] = 0` and `cuts[ndev-1] = units.len()`).
    /// Cross-segment dependencies become explicit device-to-device
    /// transfers.
    ModelParallel {
        /// Strictly increasing interior cut points (`ndev - 1` of them).
        cuts: Vec<usize>,
    },
}

impl DevicePlacement {
    /// Number of devices this placement spans.
    pub fn num_devices(&self) -> usize {
        match self {
            DevicePlacement::Single => 1,
            DevicePlacement::DataParallel { shares } => shares.len(),
            DevicePlacement::ModelParallel { cuts } => cuts.len() + 1,
        }
    }

    /// Whether this is the single-device placement.
    pub fn is_single(&self) -> bool {
        matches!(self, DevicePlacement::Single)
    }

    /// Short human-readable label (`single`, `dp[1:2]`, `mp[@7,@13]`).
    pub fn label(&self) -> String {
        match self {
            DevicePlacement::Single => "single".to_owned(),
            DevicePlacement::DataParallel { shares } => {
                let parts: Vec<String> = shares.iter().map(u32::to_string).collect();
                format!("dp[{}]", parts.join(":"))
            }
            DevicePlacement::ModelParallel { cuts } => {
                let parts: Vec<String> = cuts.iter().map(|c| format!("@{c}")).collect();
                format!("mp[{}]", parts.join(","))
            }
        }
    }
}

/// A complete binding of all adaptive variables.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// Per fusion set: (row chunk, col chunk) in member counts.
    pub chunks: BTreeMap<String, (usize, usize)>,
    /// Per realized GEMM shape: chosen kernel library.
    pub libs: BTreeMap<GemmShape, GemmLibrary>,
    /// Allocation strategy index into [`PlanContext::alloc`].
    pub strategy: usize,
    /// Number of streams *per device* (1 = no stream adaptation).
    pub num_streams: usize,
    /// Stream of each unit (missing units default to stream 0).
    pub streams: BTreeMap<UnitId, usize>,
    /// Device placement (ignored by unit building; honored by emission).
    pub placement: DevicePlacement,
}

impl ExecConfig {
    /// The unoptimized starting point: no fusion (chunks 1x1), default
    /// library, default allocation, a single stream.
    pub fn baseline() -> Self {
        ExecConfig {
            chunks: BTreeMap::new(),
            libs: BTreeMap::new(),
            strategy: 0,
            num_streams: 1,
            streams: BTreeMap::new(),
            placement: DevicePlacement::Single,
        }
    }

    /// The chunking for a set (default 1x1 = unfused).
    pub fn chunk_for(&self, set_id: &str) -> (usize, usize) {
        self.chunks.get(set_id).copied().unwrap_or((1, 1))
    }

    /// A canonical one-line rendering of every adaptive-variable binding.
    /// Two configs render equal iff they are the same plan (all maps are
    /// ordered), so the durability gates can compare final plans as
    /// strings across processes.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "chunks[");
        for (i, (id, (r, c))) in self.chunks.iter().enumerate() {
            let _ = write!(s, "{}{id}={r}x{c}", if i > 0 { "," } else { "" });
        }
        let _ = write!(s, "] libs[");
        for (i, (shape, lib)) in self.libs.iter().enumerate() {
            let _ = write!(s, "{}{shape:?}={lib:?}", if i > 0 { "," } else { "" });
        }
        let _ = write!(s, "] strategy={} streams={} bind[", self.strategy, self.num_streams);
        for (i, (u, st)) in self.streams.iter().enumerate() {
            let _ = write!(s, "{}{u:?}={st}", if i > 0 { "," } else { "" });
        }
        let _ = write!(s, "] place={}", self.placement.label());
        s
    }

    /// The library for a shape (default cuBLAS-like).
    pub fn lib_for(&self, shape: GemmShape) -> GemmLibrary {
        self.libs.get(&shape).copied().unwrap_or(astra_exec::DEFAULT_GEMM_LIB)
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Builds the unit DAG for a configuration, topologically sorted.
///
/// # Errors
///
/// Returns [`AstraError::Enumeration`] if the chunk configuration induces a
/// cyclic unit graph (a fusion block that would have to run both before and
/// after another unit). The wirer treats such configurations as invalid.
pub fn build_units(ctx: &PlanContext<'_>, cfg: &ExecConfig) -> Result<Vec<Unit>, AstraError> {
    build_units_with(ctx, cfg, None)
}

/// Like [`build_units`], but under a transient allocation failure: granted
/// buffer groups whose bit in `frag_word` is set (group `g` → bit `g % 64`)
/// are placed scattered instead of contiguously, inflating the gather
/// copies of every fusion over them. The unit set, ids, dependencies, and
/// topological order are identical to the clean build — only
/// `pre_copy_bytes` changes — so stream partitions and probe regions
/// computed from the clean units remain valid.
pub fn build_units_fragmented(
    ctx: &PlanContext<'_>,
    cfg: &ExecConfig,
    frag_word: u64,
) -> Result<Vec<Unit>, AstraError> {
    build_units_with(ctx, cfg, Some(frag_word))
}

fn build_units_with(
    ctx: &PlanContext<'_>,
    cfg: &ExecConfig,
    frag: Option<u64>,
) -> Result<Vec<Unit>, AstraError> {
    let graph = ctx.graph;
    let n_nodes = graph.nodes().len();

    #[derive(Clone, Copy, PartialEq)]
    enum Owner {
        Set(usize),
        Chain(usize),
        Absorbed, // ladder adds replaced by blocks/combines
        Single,
    }
    let mut owner = vec![Owner::Single; n_nodes];
    for (ci, chain) in ctx.chains.iter().enumerate() {
        for &m in &chain.nodes {
            owner[m.0 as usize] = Owner::Chain(ci);
        }
    }
    for (si, set) in ctx.sets.iter().enumerate() {
        for m in set.all_nodes() {
            owner[m.0 as usize] = Owner::Set(si);
        }
        for adds in &set.ladder_adds {
            for &a in adds {
                owner[a.0 as usize] = Owner::Absorbed;
            }
        }
    }

    // ---- Create units (unordered), and map tensors to producing units. ----
    let mut units: Vec<Unit> = Vec::new();
    let mut unit_of_tensor: HashMap<u32, usize> = HashMap::new(); // tensor id -> unit idx
    let mut members_of_unit: Vec<Vec<NodeId>> = Vec::new();

    let push_unit = |units: &mut Vec<Unit>,
                         members_of_unit: &mut Vec<Vec<NodeId>>,
                         unit: Unit,
                         members: Vec<NodeId>|
     -> usize {
        units.push(unit);
        members_of_unit.push(members);
        units.len() - 1
    };

    // Fusion-set blocks.
    for (si, set) in ctx.sets.iter().enumerate() {
        let (rc, cc) = cfg.chunk_for(&set.id);
        let rows = set.rows();
        let cols = set.cols();
        let rc = rc.clamp(1, rows.max(1));
        let cc = cc.clamp(1, cols.max(1));
        let rbs = div_ceil(rows, rc);
        let cbs = div_ceil(cols, cc);
        for rb in 0..rbs {
            let row_range = (rb * rc)..((rb * rc + rc).min(rows));
            let mut row_block_units: Vec<usize> = Vec::new();
            for cb in 0..cbs {
                let col_range = (cb * cc)..((cb * cc + cc).min(cols));
                let members: Vec<NodeId> = row_range
                    .clone()
                    .flat_map(|r| col_range.clone().map(move |c| (r, c)))
                    .map(|(r, c)| set.nodes[r][c])
                    .collect();
                let shape = set.block_shape(row_range.len(), col_range.start, col_range.len());
                let lib = cfg.lib_for(shape);
                let kernel = KernelDesc::Gemm { shape, lib };
                let flops = kernel.flops();
                // SharedLeft blocks materialize every member's output
                // (stacked along N); ladder blocks materialize only the
                // partial sum — one output per row.
                let out_bytes: u64 = match set.col_kind {
                    ColKind::SharedLeft => {
                        members.iter().map(|&m| graph.shape(graph.node(m).output).bytes()).sum()
                    }
                    ColKind::Ladder => row_range
                        .clone()
                        .map(|r| graph.shape(graph.node(set.nodes[r][0]).output).bytes())
                        .sum(),
                };
                let first_prov = &graph.node(members[0]).prov;
                let (upass, ustep) = (first_prov.pass, first_prov.timestep);
                let idx = push_unit(
                    &mut units,
                    &mut members_of_unit,
                    Unit {
                        id: UnitId::Block { set: si as u32, rb: rb as u32, cb: cb as u32 },
                        kernel,
                        deps: Vec::new(),
                        gemm_shape: Some(shape),
                        pre_copy_bytes: 0.0,
                        set_idx: Some(si),
                        flops,
                        out_bytes: out_bytes as f64,
                        pass: upass,
                        step: ustep,
                        reads: Vec::new(),
                        writes: Vec::new(),
                    },
                    members.clone(),
                );
                row_block_units.push(idx);
                // Member outputs resolve to this block (SharedLeft), or to
                // the row-block's final combine (Ladder, patched below).
                for &m in &members {
                    unit_of_tensor.insert(graph.node(m).output.0, idx);
                }
            }
            if set.col_kind == ColKind::Ladder {
                // Partial sums across col-blocks combine pairwise.
                let out_elems: u64 = row_range
                    .clone()
                    .map(|r| graph.shape(graph.node(set.nodes[r][0]).output).elements())
                    .sum();
                let combine_prov = &graph.node(set.nodes[row_range.start][0]).prov;
                let (cpass, cstep) = (combine_prov.pass, combine_prov.timestep);
                let mut acc = row_block_units[0];
                for (k, &blk) in row_block_units.iter().enumerate().skip(1) {
                    let kernel = KernelDesc::Elementwise {
                        elements: out_elems,
                        flops_per_element: 1.0,
                        inputs: 2,
                        outputs: 1,
                    };
                    let flops = kernel.flops();
                    let idx = push_unit(
                        &mut units,
                        &mut members_of_unit,
                        Unit {
                            id: UnitId::Combine {
                                set: si as u32,
                                rb: rb as u32,
                                idx: (k - 1) as u32,
                            },
                            kernel,
                            deps: vec![acc, blk],
                            gemm_shape: None,
                            pre_copy_bytes: 0.0,
                            set_idx: Some(si),
                            flops,
                            out_bytes: (out_elems * 4) as f64,
                            pass: cpass,
                            step: cstep,
                            reads: Vec::new(),
                            writes: Vec::new(),
                        },
                        Vec::new(),
                    );
                    acc = idx;
                }
                // The ladder-root outputs of these rows resolve to `acc`.
                for r in row_range {
                    for &add in &set.ladder_adds[r] {
                        unit_of_tensor.insert(graph.node(add).output.0, acc);
                    }
                    // Member mm outputs also resolve to the final sum
                    // (their individual values no longer exist).
                    for c in 0..cols {
                        unit_of_tensor.insert(graph.node(set.nodes[r][c]).output.0, acc);
                    }
                }
            }
        }
    }

    // Element-wise chains.
    for (ci, chain) in ctx.chains.iter().enumerate() {
        let flops = chain.kernel.flops();
        // Only outputs escaping the chain occupy memory.
        let member_set: std::collections::HashSet<NodeId> =
            chain.nodes.iter().copied().collect();
        let out_bytes: u64 = chain
            .nodes
            .iter()
            .filter(|&&m| {
                let consumers = graph.consumers(graph.node(m).output);
                consumers.is_empty() || consumers.iter().any(|c| !member_set.contains(c))
            })
            .map(|&m| graph.shape(graph.node(m).output).bytes())
            .sum();
        let idx = push_unit(
            &mut units,
            &mut members_of_unit,
            Unit {
                id: UnitId::Chain(ci as u32),
                kernel: chain.kernel,
                deps: Vec::new(),
                gemm_shape: None,
                pre_copy_bytes: 0.0,
                set_idx: None,
                flops,
                out_bytes: out_bytes as f64,
                pass: graph.node(chain.nodes[0]).prov.pass,
                step: graph.node(chain.nodes[0]).prov.timestep,
                reads: Vec::new(),
                writes: Vec::new(),
            },
            chain.nodes.clone(),
        );
        for &m in &chain.nodes {
            unit_of_tensor.insert(graph.node(m).output.0, idx);
        }
    }

    // Singles.
    for (i, node) in graph.nodes().iter().enumerate() {
        if owner[i] != Owner::Single {
            continue;
        }
        let Some(kernel) = ctx.lowering.ops()[i].kernel else {
            continue; // elided (transpose): resolved through aliasing below
        };
        let (kernel, gemm_shape) = match kernel {
            KernelDesc::Gemm { shape, .. } => {
                (KernelDesc::Gemm { shape, lib: cfg.lib_for(shape) }, Some(shape))
            }
            k => (k, None),
        };
        let flops = kernel.flops();
        let idx = push_unit(
            &mut units,
            &mut members_of_unit,
            Unit {
                id: UnitId::Node(i as u32),
                kernel,
                deps: Vec::new(),
                gemm_shape,
                pre_copy_bytes: 0.0,
                set_idx: None,
                flops,
                out_bytes: graph.shape(node.output).bytes() as f64,
                pass: node.prov.pass,
                step: node.prov.timestep,
                reads: Vec::new(),
                writes: Vec::new(),
            },
            vec![NodeId(i as u32)],
        );
        unit_of_tensor.insert(node.output.0, idx);
    }

    // Resolve elided nodes (transposes): their outputs alias the producing
    // unit of their input, transitively.
    let mut changed = true;
    while changed {
        changed = false;
        for node in graph.nodes().iter() {
            if matches!(node.op, OpKind::Transpose)
                && !unit_of_tensor.contains_key(&node.output.0)
            {
                if let Some(&u) = unit_of_tensor.get(&node.inputs[0].0) {
                    unit_of_tensor.insert(node.output.0, u);
                    changed = true;
                }
            }
        }
    }

    // ---- Dependencies. ----
    for ui in 0..units.len() {
        let mut deps: HashSet<usize> = units[ui].deps.iter().copied().collect();
        for &m in &members_of_unit[ui] {
            for &inp in &graph.node(m).inputs {
                if let Some(&p) = unit_of_tensor.get(&inp.0) {
                    if p != ui {
                        deps.insert(p);
                    }
                }
            }
        }
        let mut deps: Vec<usize> = deps.into_iter().collect();
        deps.sort_unstable();
        units[ui].deps = deps;
    }

    // ---- Buffer footprints (for the static verifier). ----
    // Writes: every graph tensor that resolves to the unit. Units whose
    // outputs all resolve elsewhere (ladder partial blocks, intermediate
    // combines) write a unique synthetic buffer, so the partial-sum chain
    // stays a visible dataflow.
    let mut writes: Vec<HashSet<BufId>> = vec![HashSet::new(); units.len()];
    for node in graph.nodes().iter() {
        if let Some(&u) = unit_of_tensor.get(&node.output.0) {
            writes[u].insert(ctx.lowering.buffer(node.output));
        }
    }
    for (ui, w) in writes.iter_mut().enumerate() {
        if w.is_empty() {
            w.insert(BufId(SYNTHETIC_BUF_BASE + ui as u64));
        }
    }
    // Reads: member inputs; member-less units (combines) read what their
    // dependencies write. A unit's own writes are excluded — a launch does
    // not race with itself.
    for ui in 0..units.len() {
        let mut reads: HashSet<BufId> = HashSet::new();
        if members_of_unit[ui].is_empty() {
            for &d in &units[ui].deps {
                reads.extend(writes[d].iter().copied());
            }
        } else {
            for &m in &members_of_unit[ui] {
                for &inp in &graph.node(m).inputs {
                    reads.insert(ctx.lowering.buffer(inp));
                }
            }
        }
        let mut reads: Vec<BufId> =
            reads.difference(&writes[ui]).copied().collect();
        reads.sort_unstable();
        units[ui].reads = reads;
        let mut w: Vec<BufId> = writes[ui].iter().copied().collect();
        w.sort_unstable();
        units[ui].writes = w;
    }

    // ---- Gather copies for non-contiguous fused operands. ----
    let plan = allocation_plan(ctx, cfg, frag);
    for (si, set) in ctx.sets.iter().enumerate() {
        let (rc, cc) = cfg.chunk_for(&set.id);
        let rc = rc.clamp(1, set.rows().max(1));
        let cc = cc.clamp(1, set.cols().max(1));
        if rc == 1 && cc == 1 {
            continue;
        }
        for unit in units.iter_mut() {
            let UnitId::Block { set: s, rb, cb } = unit.id else { continue };
            if s as usize != si {
                continue;
            }
            let row_range = (rb as usize * rc)..((rb as usize * rc + rc).min(set.rows()));
            let col_range = (cb as usize * cc)..((cb as usize * cc + cc).min(set.cols()));
            let mut lists: Vec<Vec<astra_ir::TensorId>> = Vec::new();
            match set.col_kind {
                ColKind::SharedLeft => {
                    if col_range.len() > 1 {
                        lists.push(
                            col_range
                                .clone()
                                .map(|c| graph.node(set.nodes[row_range.start][c]).inputs[1])
                                .collect(),
                        );
                    }
                    if row_range.len() > 1 {
                        lists.push(
                            row_range
                                .clone()
                                .map(|r| graph.node(set.nodes[r][col_range.start]).inputs[0])
                                .collect(),
                        );
                    }
                }
                ColKind::Ladder => {
                    if col_range.len() > 1 {
                        for r in row_range.clone() {
                            lists.push(
                                col_range.clone().map(|c| graph.node(set.nodes[r][c]).inputs[0]).collect(),
                            );
                            lists.push(
                                col_range.clone().map(|c| graph.node(set.nodes[r][c]).inputs[1]).collect(),
                            );
                        }
                    }
                    if row_range.len() > 1 {
                        for c in col_range.clone() {
                            lists.push(
                                row_range.clone().map(|r| graph.node(set.nodes[r][c]).inputs[0]).collect(),
                            );
                        }
                    }
                }
            }
            for list in lists {
                let bufs: Vec<_> = list.iter().map(|&t| ctx.lowering.buffer(t)).collect();
                unit.pre_copy_bytes += plan.gather_bytes(&bufs) as f64;
            }
        }
    }

    // ---- Topological sort (Kahn, stable by creation index). ----
    let n = units.len();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, u) in units.iter().enumerate() {
        for &d in &u.deps {
            out[d].push(i);
            indeg[i] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut queued = vec![false; n];
    for &r in &ready {
        queued[r] = true;
    }
    while !ready.is_empty() {
        ready.sort_unstable();
        let next = ready.remove(0);
        order.push(next);
        for &c in &out[next] {
            indeg[c] -= 1;
            if indeg[c] == 0 && !queued[c] {
                queued[c] = true;
                ready.push(c);
            }
        }
    }
    if order.len() != n {
        return Err(AstraError::Enumeration(format!(
            "chunk configuration induces a cyclic unit graph ({} of {n} sorted)",
            order.len()
        )));
    }

    // Re-index deps into the sorted order.
    let mut pos = vec![0usize; n];
    for (new_i, &old_i) in order.iter().enumerate() {
        pos[old_i] = new_i;
    }
    let mut sorted: Vec<Unit> = order.iter().map(|&i| units[i].clone()).collect();
    for u in &mut sorted {
        for d in &mut u.deps {
            *d = pos[*d];
        }
        u.deps.sort_unstable();
    }
    Ok(sorted)
}

/// Cache key for structurally identical unit DAGs: the applied chunk
/// geometry of every fusion set (in enumeration order) plus the allocation
/// strategy. Stream bindings and GEMM library choices are deliberately
/// absent — streams never influence unit building, and libraries are
/// re-bound onto cached units by [`bind_libs`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    chunks: Vec<(usize, usize)>,
    strategy: usize,
}

impl PlanKey {
    /// A stable 64-bit fingerprint of this structural key under a
    /// placement — the persisted identity of a verifier/linter verdict.
    /// FNV-1a over a canonical byte rendering, so it is stable across
    /// processes and builds (unlike `Hash` output, which the std hasher
    /// never pins down). Distinct plans colliding is possible in
    /// principle (2⁻⁶⁴-scale) and costs at most one wrong cached verdict
    /// in a warm store, never a wrong measurement.
    pub fn fingerprint(&self, placement: &DevicePlacement) -> u64 {
        let mut bytes = Vec::with_capacity(16 * self.chunks.len() + 32);
        let put = |v: u64, bytes: &mut Vec<u8>| bytes.extend_from_slice(&v.to_le_bytes());
        put(self.chunks.len() as u64, &mut bytes);
        for &(r, c) in &self.chunks {
            put(r as u64, &mut bytes);
            put(c as u64, &mut bytes);
        }
        put(self.strategy as u64, &mut bytes);
        match placement {
            DevicePlacement::Single => put(0, &mut bytes),
            DevicePlacement::DataParallel { shares } => {
                put(1, &mut bytes);
                put(shares.len() as u64, &mut bytes);
                for &s in shares {
                    put(u64::from(s), &mut bytes);
                }
            }
            DevicePlacement::ModelParallel { cuts } => {
                put(2, &mut bytes);
                put(cuts.len() as u64, &mut bytes);
                for &c in cuts {
                    put(c as u64, &mut bytes);
                }
            }
        }
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in &bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The schedule cache: memoizes [`build_units`] across trial
/// configurations.
///
/// Unit construction is the lowering → fusion-rewrite → allocation half of
/// a trial: dependency analysis, gather-copy accounting against the
/// allocation plan, and the topological sort. Exploration phases K and S,
/// the per-strategy playoffs, and repeated [`Astra::optimize`] calls all
/// revisit chunk geometries that were already built, so only the first
/// visit pays. Cached values are *structural* — built with the default
/// GEMM library — and [`bind_libs`] patches the per-shape library choice
/// in (a no-op returning the same allocation when nothing differs).
///
/// Invalid geometries (cyclic unit graphs) cache their error too, so the
/// fusion phase skips re-deriving the cycle on every revisit.
///
/// [`Astra::optimize`]: crate::Astra::optimize
#[derive(Debug, Default)]
pub struct PlanCache {
    map: HashMap<PlanKey, Result<Arc<[Unit]>, AstraError>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The structural key `cfg` maps to under `ctx`.
    pub fn key(ctx: &PlanContext<'_>, cfg: &ExecConfig) -> PlanKey {
        PlanKey {
            chunks: ctx.sets.iter().map(|s| cfg.chunk_for(&s.id)).collect(),
            strategy: cfg.strategy,
        }
    }

    /// Requests the units for `cfg`, counting one hit or miss and building
    /// on miss. The returned units have `cfg`'s libraries bound.
    ///
    /// # Errors
    ///
    /// Returns (and caches) the [`build_units`] error for cyclic
    /// configurations.
    pub fn units_for(
        &mut self,
        ctx: &PlanContext<'_>,
        cfg: &ExecConfig,
    ) -> Result<Arc<[Unit]>, AstraError> {
        let key = Self::key(ctx, cfg);
        let structural = if let Some(r) = self.map.get(&key) {
            self.hits += 1;
            r.clone()
        } else {
            self.misses += 1;
            let r = Self::build_structural(ctx, cfg);
            self.map.insert(key, r.clone());
            r
        };
        structural.map(|u| bind_libs(&u, cfg))
    }

    /// Builds the structural (default-library) units for `cfg` without
    /// touching the cache. The parallel exploration driver builds a batch's
    /// missing keys on worker threads and commits them afterwards with
    /// [`PlanCache::insert`].
    ///
    /// # Errors
    ///
    /// Returns the [`build_units`] error for cyclic configurations.
    pub fn build_structural(
        ctx: &PlanContext<'_>,
        cfg: &ExecConfig,
    ) -> Result<Arc<[Unit]>, AstraError> {
        let canonical = ExecConfig {
            chunks: cfg.chunks.clone(),
            libs: BTreeMap::new(),
            strategy: cfg.strategy,
            num_streams: 1,
            streams: BTreeMap::new(),
            // Units are placement-independent: the same DAG is replicated
            // (data parallel) or segmented (model parallel) at emission.
            placement: DevicePlacement::Single,
        };
        build_units(ctx, &canonical).map(Arc::from)
    }

    /// Whether `key` has a cached build.
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.map.contains_key(key)
    }

    /// The cached structural build for `key`, if present. Does not count.
    pub fn get(&self, key: &PlanKey) -> Option<&Result<Arc<[Unit]>, AstraError>> {
        self.map.get(key)
    }

    /// Commits a structural build produced by [`PlanCache::build_structural`].
    pub fn insert(&mut self, key: PlanKey, units: Result<Arc<[Unit]>, AstraError>) {
        self.map.insert(key, units);
    }

    /// Counts a request answered without building (key cached, or pending
    /// earlier in the same candidate batch).
    pub fn count_hit(&mut self) {
        self.hits += 1;
    }

    /// Counts a request that had to build.
    pub fn count_miss(&mut self) {
        self.misses += 1;
    }

    /// Requests answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that built units so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Rebinds every GEMM unit's library to `cfg`'s per-shape choice. Returns
/// a handle to the same allocation (no copy) when every library already
/// matches — in particular whenever `cfg.libs` is empty.
pub fn bind_libs(units: &Arc<[Unit]>, cfg: &ExecConfig) -> Arc<[Unit]> {
    let bound = |u: &Unit| match (u.gemm_shape, &u.kernel) {
        (Some(shape), KernelDesc::Gemm { lib, .. }) => *lib == cfg.lib_for(shape),
        _ => true,
    };
    if units.iter().all(bound) {
        return Arc::clone(units);
    }
    units
        .iter()
        .map(|u| {
            let mut u = u.clone();
            if let (Some(shape), KernelDesc::Gemm { lib, .. }) = (u.gemm_shape, &mut u.kernel) {
                *lib = cfg.lib_for(shape);
            }
            u
        })
        .collect()
}

/// Builds the device-memory plan `cfg`'s allocation strategy produces —
/// the same plan [`build_units`] consults for gather-copy accounting. The
/// static verifier resolves buffer footprints against it for the
/// placement-aliasing audit.
pub fn build_allocation_plan(ctx: &PlanContext<'_>, cfg: &ExecConfig) -> AllocationPlan {
    allocation_plan(ctx, cfg, None)
}

/// Builds the device-memory plan for a strategy: granted adjacency groups
/// first, then everything else. When `frag` is set (a transient allocation
/// failure), granted group `g` falls back to scattered placement if bit
/// `g % 64` of the word is set.
fn allocation_plan(ctx: &PlanContext<'_>, cfg: &ExecConfig, frag: Option<u64>) -> AllocationPlan {
    let mut plan = AllocationPlan::new();
    let strategy = &ctx.alloc.strategies[cfg.strategy.min(ctx.alloc.strategies.len() - 1)];
    for (gi, group) in strategy.granted.iter().enumerate() {
        let entries: Vec<_> = group
            .iter()
            .map(|&b| (b, ctx.graph.shape(astra_ir::TensorId(b.0 as u32)).bytes()))
            .collect();
        let denied = frag.is_some_and(|word| (word >> (gi % 64)) & 1 == 1);
        if denied {
            plan.place_scattered(&entries);
        } else {
            plan.place_group(&entries);
        }
    }
    plan
}

/// What to instrument in an emitted schedule. Probing costs stream time
/// (event records), so each exploration phase requests only the regions it
/// harvests — that is how the <0.5% overhead bound of §6.4 is kept.
#[derive(Debug, Clone, Default)]
pub struct ProbeSpec {
    /// Wrap the first block of each fusion set (phase F).
    pub sets: bool,
    /// Wrap the first GEMM of each distinct shape (phase K).
    pub shapes: bool,
    /// `(super-epoch, epoch)` pairs whose end should be marked per stream
    /// (phase S probes only epochs that actually have choices).
    pub epochs: std::collections::HashSet<(usize, usize)>,
}

impl ProbeSpec {
    /// No instrumentation (playoff and steady-state runs).
    pub fn none() -> Self {
        ProbeSpec::default()
    }

    /// Fusion-set instrumentation only (phase F).
    pub fn fusion_sets() -> Self {
        ProbeSpec { sets: true, ..ProbeSpec::default() }
    }

    /// GEMM-shape instrumentation only (phase K).
    pub fn gemm_shapes() -> Self {
        ProbeSpec { shapes: true, ..ProbeSpec::default() }
    }

    /// Epoch instrumentation for the given epochs.
    pub fn epochs(epochs: std::collections::HashSet<(usize, usize)>) -> Self {
        ProbeSpec { epochs, ..ProbeSpec::default() }
    }
}

/// Profiling probes of a built schedule.
#[derive(Debug, Clone, Default)]
pub struct Probes {
    /// Per fusion set: (set index, number of blocks, first-block region).
    pub set_regions: Vec<(usize, usize, EventId, EventId)>,
    /// Per distinct GEMM shape: first-occurrence region.
    pub shape_regions: Vec<(GemmShape, EventId, EventId)>,
    /// Start event of each probed super-epoch.
    pub se_starts: BTreeMap<usize, EventId>,
    /// End events (one per stream used) of each probed epoch.
    pub epoch_ends: BTreeMap<(usize, usize), Vec<EventId>>,
    /// Number of events recorded purely for profiling (excludes the
    /// cross-stream synchronization events the schedule needs anyway).
    pub probe_records: usize,
}

/// Emits the schedule for `units`, with optional stream partitioning and
/// profiling probes.
///
/// When `partition` is `Some`, units are emitted super-epoch by super-epoch
/// with device-wide barriers between super-epochs (§4.5.3); cross-stream
/// dependencies synchronize through events.
///
/// Multi-device placements ([`ExecConfig::placement`]) take their own
/// emission paths: data parallel replicates the unit program per device
/// with batch-share-scaled kernels and a trailing gradient all-reduce;
/// model parallel segments the DAG and threads cross-segment dependencies
/// through explicit transfers. Both ignore `partition` and probe regions
/// (placement trials are measured by whole-run time, not fine-grained
/// probes).
pub fn emit_schedule(
    ctx: &PlanContext<'_>,
    cfg: &ExecConfig,
    units: &[Unit],
    partition: Option<&crate::enumerate::epochs::Partition>,
    probe: &ProbeSpec,
) -> (Schedule, Probes) {
    match &cfg.placement {
        DevicePlacement::Single => {}
        DevicePlacement::DataParallel { shares } => {
            return (emit_data_parallel(ctx, cfg, units, shares), Probes::default());
        }
        DevicePlacement::ModelParallel { cuts } => {
            return (emit_model_parallel(cfg, units, cuts), Probes::default());
        }
    }
    let num_streams = cfg.num_streams.max(1);
    let mut sched = Schedule::new(num_streams);
    let mut probes = Probes::default();

    let stream_of = |u: &Unit| -> usize {
        cfg.streams.get(&u.id).copied().unwrap_or(0).min(num_streams - 1)
    };

    // Which units need completion events (consumer on a different stream).
    let mut needs_event = vec![false; units.len()];
    if num_streams > 1 {
        for u in units {
            let s = stream_of(u);
            for &d in &u.deps {
                if stream_of(&units[d]) != s {
                    needs_event[d] = true;
                }
            }
        }
    }

    let mut done_event: Vec<Option<EventId>> = vec![None; units.len()];
    let mut seen_sets: HashSet<usize> = HashSet::new();
    let mut seen_shapes: HashSet<GemmShape> = HashSet::new();
    let mut blocks_per_set: HashMap<usize, usize> = HashMap::new();
    for u in units {
        if let (Some(si), UnitId::Block { .. }) = (u.set_idx, u.id) {
            *blocks_per_set.entry(si).or_insert(0) += 1;
        }
    }

    let mut emit_unit = |sched: &mut Schedule, probes: &mut Probes, idx: usize, u: &Unit| {
        let stream = StreamId(stream_of(u));
        let waits: Vec<EventId> = u
            .deps
            .iter()
            .filter_map(|&d| {
                if stream_of(&units[d]) != stream.0 {
                    done_event[d]
                } else {
                    None
                }
            })
            .collect();
        // Profiling probes: first block of each set, first GEMM per shape.
        // The region opens before any gather copy so that chunk metrics
        // charge the copies a denied allocation forces.
        let probe_set = probe.sets
            && matches!(u.id, UnitId::Block { .. })
            && u.set_idx.is_some_and(|si| !seen_sets.contains(&si));
        let probe_shape = probe.shapes && u.gemm_shape.is_some_and(|s| !seen_shapes.contains(&s));
        let start_ev = if probe_set || probe_shape {
            probes.probe_records += 1;
            Some(sched.record(stream))
        } else {
            None
        };

        // Tag every launch with its unit index: the static verifier reads
        // the tags back to attach the unit's buffer footprint to the
        // command (the gather copy touches the same operands).
        if u.pre_copy_bytes > 0.0 {
            let c = sched.launch_after(
                stream,
                KernelDesc::MemCopy { bytes: u.pre_copy_bytes },
                waits.clone(),
            );
            sched.set_tag(c, idx as u32);
        }
        let k =
            sched.launch_after(stream, u.kernel, if u.pre_copy_bytes > 0.0 { Vec::new() } else { waits });
        sched.set_tag(k, idx as u32);

        if needs_event[idx] {
            done_event[idx] = Some(sched.record(stream));
        }
        if let Some(start) = start_ev {
            let end = done_event[idx].unwrap_or_else(|| {
                probes.probe_records += 1;
                sched.record(stream)
            });
            done_event[idx] = Some(end);
            if probe_set {
                let si = u.set_idx.expect("probe_set implies set");
                seen_sets.insert(si);
                probes.set_regions.push((si, blocks_per_set[&si], start, end));
            }
            if probe_shape {
                let shape = u.gemm_shape.expect("probe_shape implies gemm");
                seen_shapes.insert(shape);
                probes.shape_regions.push((shape, start, end));
            }
        }
    };

    match partition {
        None => {
            for (i, u) in units.iter().enumerate() {
                emit_unit(&mut sched, &mut probes, i, u);
                sched.mark_boundary();
            }
        }
        Some(part) => {
            for (sei, se) in part.super_epochs.iter().enumerate() {
                if sei > 0 {
                    sched.barrier();
                }
                let se_probed = (0..se.epochs.len()).any(|ei| probe.epochs.contains(&(sei, ei)));
                if se_probed {
                    let ev = sched.record(StreamId(0));
                    probes.probe_records += 1;
                    probes.se_starts.insert(sei, ev);
                }
                for (ei, epoch) in se.epochs.iter().enumerate() {
                    let mut streams_used: HashSet<usize> = HashSet::new();
                    for &ui in &epoch.units {
                        streams_used.insert(stream_of(&units[ui]));
                        emit_unit(&mut sched, &mut probes, ui, &units[ui]);
                        sched.mark_boundary();
                    }
                    if probe.epochs.contains(&(sei, ei)) {
                        let mut ends = Vec::new();
                        let mut su: Vec<usize> = streams_used.into_iter().collect();
                        su.sort_unstable();
                        for s in su {
                            ends.push(sched.record(StreamId(s)));
                            probes.probe_records += 1;
                        }
                        probes.epoch_ends.insert((sei, ei), ends);
                    }
                }
            }
        }
    }

    // Final boundary: a checkpoint here memoizes the *whole* run, so a cache
    // hit replays the finished result without any simulation.
    sched.mark_boundary();

    let _ = ctx;
    (sched, probes)
}

/// Stream → device map giving device `d` the stream block
/// `d*per .. (d+1)*per`.
fn device_stream_map(ndev: usize, per: usize) -> Vec<usize> {
    (0..ndev * per).map(|s| s / per).collect()
}

/// Total gradient payload of one training step, in bytes: every parameter
/// gets a same-shaped gradient that data-parallel replicas must all-reduce.
pub fn gradient_sync_bytes(graph: &Graph) -> u64 {
    (0..graph.num_tensors() as u32)
        .map(astra_ir::TensorId)
        .filter(|&t| graph.tensor(t).kind == astra_ir::TensorKind::Param)
        .map(|t| graph.shape(t).bytes())
        .sum()
}

fn scale_count(v: u64, num: u64, den: u64) -> u64 {
    (v * num).div_ceil(den).max(1)
}

/// Scales a kernel's batch-proportional extent by `num/den` — the
/// per-device slice of the mini-batch under non-uniform data parallelism.
/// Row/batch dimensions shrink; reduction widths and per-element arithmetic
/// do not.
fn scale_kernel(k: &KernelDesc, num: u64, den: u64) -> KernelDesc {
    let f = num as f64 / den as f64;
    match *k {
        KernelDesc::Gemm { shape, lib } => KernelDesc::Gemm {
            shape: GemmShape::new(scale_count(shape.m, num, den), shape.n, shape.k),
            lib,
        },
        KernelDesc::Elementwise { elements, flops_per_element, inputs, outputs } => {
            KernelDesc::Elementwise {
                elements: scale_count(elements, num, den),
                flops_per_element,
                inputs,
                outputs,
            }
        }
        KernelDesc::Softmax { rows, cols } => {
            KernelDesc::Softmax { rows: scale_count(rows, num, den), cols }
        }
        KernelDesc::EmbeddingLookup { rows, width } => {
            KernelDesc::EmbeddingLookup { rows: scale_count(rows, num, den), width }
        }
        KernelDesc::Compound { flops, bytes } => {
            KernelDesc::Compound { flops: flops * f, bytes: bytes * f }
        }
        KernelDesc::MemCopy { bytes } => KernelDesc::MemCopy { bytes: bytes * f },
        KernelDesc::HostRoundtrip { bytes } => KernelDesc::HostRoundtrip { bytes: bytes * f },
        KernelDesc::Conv { batch, gemm_m, gemm_k, gemm_n } => KernelDesc::Conv {
            batch: scale_count(batch, num, den),
            gemm_m: scale_count(gemm_m, num, den),
            gemm_k,
            gemm_n,
        },
    }
}

/// Data-parallel emission: device `d` replicates the whole unit program on
/// its own stream block with kernels scaled to its batch share, then all
/// replicas join at a barrier and each device's lead stream ring-all-reduces
/// the full gradient payload (group 0). Within a device, cross-stream
/// dependencies synchronize through events exactly as in the single-device
/// path; across devices the replicas are independent until the gradient
/// sync — which is what makes the placement profitable at all.
fn emit_data_parallel(
    ctx: &PlanContext<'_>,
    cfg: &ExecConfig,
    units: &[Unit],
    shares: &[u32],
) -> Schedule {
    let ndev = shares.len().max(1);
    let per = cfg.num_streams.max(1);
    let total: u64 = shares.iter().map(|&s| u64::from(s.max(1))).sum();
    let mut sched = Schedule::with_devices(ndev * per, device_stream_map(ndev, per));
    let stream_of = |u: &Unit| cfg.streams.get(&u.id).copied().unwrap_or(0).min(per - 1);

    let mut needs_event = vec![false; units.len()];
    if per > 1 {
        for u in units {
            let s = stream_of(u);
            for &d in &u.deps {
                if stream_of(&units[d]) != s {
                    needs_event[d] = true;
                }
            }
        }
    }

    let mut done: Vec<Vec<Option<EventId>>> = vec![vec![None; units.len()]; ndev];
    for (i, u) in units.iter().enumerate() {
        for dev in 0..ndev {
            let num = u64::from(shares[dev].max(1));
            let stream = StreamId(dev * per + stream_of(u));
            let waits: Vec<EventId> = u
                .deps
                .iter()
                .filter_map(|&d| {
                    if stream_of(&units[d]) != stream_of(u) {
                        done[dev][d]
                    } else {
                        None
                    }
                })
                .collect();
            if u.pre_copy_bytes > 0.0 {
                let c = sched.launch_after(
                    stream,
                    KernelDesc::MemCopy { bytes: u.pre_copy_bytes * num as f64 / total as f64 },
                    waits.clone(),
                );
                sched.set_tag(c, i as u32);
            }
            let k = sched.launch_after(
                stream,
                scale_kernel(&u.kernel, num, total),
                if u.pre_copy_bytes > 0.0 { Vec::new() } else { waits },
            );
            sched.set_tag(k, i as u32);
            if needs_event[i] {
                done[dev][i] = Some(sched.record(stream));
            }
        }
        sched.mark_boundary();
    }

    // Gradient sync: the barrier joins every replica stream (compute must
    // finish before reduction), then each device contributes the full
    // parameter-gradient payload to one rendezvous group.
    let grad = gradient_sync_bytes(ctx.graph).max(1);
    sched.barrier();
    for dev in 0..ndev {
        let _ = sched.all_reduce(StreamId(dev * per), grad, 0);
    }
    sched.mark_boundary();
    sched
}

/// Model-parallel emission: the topologically sorted unit DAG is split into
/// contiguous segments at `cuts`, device `d` runs segment `d` on its stream
/// block, and every cross-segment dependency ships the producer's output
/// once per consuming device — a transfer on the first consumer's stream
/// that waits on the producer's completion event, followed by a record that
/// all consumers on that device wait on. Contiguity in topological order
/// means data only ever flows to higher-numbered devices, so the link
/// graph is acyclic by construction.
fn emit_model_parallel(cfg: &ExecConfig, units: &[Unit], cuts: &[usize]) -> Schedule {
    let ndev = cuts.len() + 1;
    let per = cfg.num_streams.max(1);
    let mut sched = Schedule::with_devices(ndev * per, device_stream_map(ndev, per));
    let dev_of = |i: usize| cuts.iter().take_while(|&&c| c <= i).count();
    let stream_of = |u: &Unit| cfg.streams.get(&u.id).copied().unwrap_or(0).min(per - 1);

    // A unit needs a completion event when any consumer runs on a different
    // physical stream: another logical stream of the same device, or any
    // stream of a later device (the transfer waits on the event there).
    let mut needs_event = vec![false; units.len()];
    for (i, u) in units.iter().enumerate() {
        for &d in &u.deps {
            if dev_of(d) != dev_of(i) || stream_of(&units[d]) != stream_of(u) {
                needs_event[d] = true;
            }
        }
    }

    let mut done: Vec<Option<EventId>> = vec![None; units.len()];
    // (producer unit, destination device) → event after its transfer.
    let mut shipped: HashMap<(usize, usize), EventId> = HashMap::new();
    for (i, u) in units.iter().enumerate() {
        let du = dev_of(i);
        let stream = StreamId(du * per + stream_of(u));
        let mut waits: Vec<EventId> = Vec::new();
        for &d in &u.deps {
            let dd = dev_of(d);
            if dd == du {
                if stream_of(&units[d]) != stream_of(u) {
                    if let Some(e) = done[d] {
                        waits.push(e);
                    }
                }
            } else {
                let e = *shipped.entry((d, du)).or_insert_with(|| {
                    let bytes = units[d].out_bytes.max(1.0) as u64;
                    let produced =
                        done[d].expect("cross-device producers record a completion event");
                    let _ = sched.transfer(stream, bytes, dd, du, vec![produced]);
                    sched.record(stream)
                });
                waits.push(e);
            }
        }
        if u.pre_copy_bytes > 0.0 {
            let c = sched.launch_after(
                stream,
                KernelDesc::MemCopy { bytes: u.pre_copy_bytes },
                waits.clone(),
            );
            sched.set_tag(c, i as u32);
        }
        let k = sched.launch_after(
            stream,
            u.kernel,
            if u.pre_copy_bytes > 0.0 { Vec::new() } else { waits },
        );
        sched.set_tag(k, i as u32);
        if needs_event[i] {
            done[i] = Some(sched.record(stream));
        }
        sched.mark_boundary();
    }
    sched.mark_boundary();
    sched
}

/// Interior cut points splitting `units` into `weights.len()` contiguous
/// segments whose FLOP loads are proportional to `weights` (compute-
/// proportional segmentation for heterogeneous device mixes; uniform
/// weights give balanced halves/quarters). Every segment keeps at least one
/// unit.
///
/// # Panics
///
/// Panics if there are fewer units than segments or fewer than two
/// segments.
pub fn flop_balanced_cuts(units: &[Unit], weights: &[f64]) -> Vec<usize> {
    let n = weights.len();
    assert!(n >= 2, "segmentation needs at least two devices");
    assert!(units.len() >= n, "each segment needs at least one unit");
    let flops: Vec<f64> = units.iter().map(|u| u.flops.max(1.0)).collect();
    let total: f64 = flops.iter().sum();
    let wsum: f64 = weights.iter().sum();
    let mut cuts = Vec::with_capacity(n - 1);
    let mut wacc = 0.0;
    for (k, w) in weights[..n - 1].iter().enumerate() {
        wacc += w;
        let target = total * wacc / wsum;
        let mut acc = 0.0;
        let mut i = 0;
        while i < units.len() && acc + flops[i] <= target {
            acc += flops[i];
            i += 1;
        }
        let lo = cuts.last().map_or(1, |&c| c + 1);
        let hi = units.len() - (n - 1 - k);
        cuts.push(i.clamp(lo, hi));
    }
    cuts
}

/// The placement candidates the driver explores on `topo`: the single-
/// device plan, uniform data parallelism, FLOP-balanced model parallelism,
/// and — on heterogeneous mixes — compute-proportional variants of both, so
/// a fast device can take a larger batch share or a larger slice of the
/// layer stack.
pub fn placement_candidates(
    topo: &astra_gpu::Topology,
    units: &[Unit],
) -> Vec<DevicePlacement> {
    let n = topo.num_devices();
    if n <= 1 {
        return vec![DevicePlacement::Single];
    }
    let mut out = vec![DevicePlacement::Single];
    out.push(DevicePlacement::DataParallel { shares: vec![1; n] });
    let w: Vec<f64> = topo.devices().iter().map(|d| d.peak_flops_per_ns()).collect();
    if !topo.is_homogeneous() {
        let wmin = w.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-9);
        let shares: Vec<u32> =
            w.iter().map(|x| ((x / wmin) * 4.0).round().max(1.0) as u32).collect();
        if shares.iter().any(|&s| s != shares[0]) {
            out.push(DevicePlacement::DataParallel { shares });
        }
    }
    if units.len() >= 2 * n {
        let uniform = flop_balanced_cuts(units, &vec![1.0; n]);
        out.push(DevicePlacement::ModelParallel { cuts: uniform.clone() });
        if !topo.is_homogeneous() {
            let prop = flop_balanced_cuts(units, &w);
            if prop != uniform {
                out.push(DevicePlacement::ModelParallel { cuts: prop });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Predictor feature extraction
// ---------------------------------------------------------------------------

/// Shared candidate features: allocation strategy, stream count, placement
/// geometry, and the topology fingerprint. The *full* candidate identity —
/// the chunk map and the exact placement label — is folded into the
/// fingerprint only (see [`FeatureVec::note`]), so distinct `(chunks,
/// strategy, placement, topology)` candidates always have distinct
/// fingerprints regardless of hash-bucket collisions, while the model's
/// bucketed view keeps only features it can generalize over.
fn candidate_base(cfg: &ExecConfig, topo_fp: u64) -> FeatureVec {
    let mut f = FeatureVec::new();
    f.tag("strategy", &cfg.strategy.to_string());
    f.push("num_streams", cfg.num_streams as f64);
    f.tag("topology", &format!("{topo_fp:016x}"));
    let kind = match &cfg.placement {
        DevicePlacement::Single => "single",
        DevicePlacement::DataParallel { .. } => "dp",
        DevicePlacement::ModelParallel { .. } => "mp",
    };
    f.tag("place_kind", kind);
    f.push("devices", cfg.placement.num_devices() as f64);
    if let DevicePlacement::DataParallel { shares } = &cfg.placement {
        let total: u32 = shares.iter().sum();
        let max = shares.iter().copied().max().unwrap_or(1);
        // Max share relative to a uniform split: 1.0 = balanced.
        f.push("share_skew", f64::from(max) * shares.len() as f64 / f64::from(total.max(1)));
    }
    f.note("placement", &cfg.placement.label());
    let chunks: Vec<String> =
        cfg.chunks.iter().map(|(s, (r, c))| format!("{s}={r}x{c}")).collect();
    f.note("chunks", &chunks.join(","));
    f
}

/// Features of one fusion-set chunking choice: the chunk pair under
/// evaluation plus the set's static geometry (member grid, base GEMM
/// shape, column kind, estimated FLOPs), over the candidate base.
pub fn fusion_features(
    cfg: &ExecConfig,
    topo_fp: u64,
    set: &FusionSet,
    rc: usize,
    cc: usize,
) -> FeatureVec {
    let mut f = candidate_base(cfg, topo_fp);
    f.tag("set", &set.id);
    f.push("row_chunk", rc as f64);
    f.push("col_chunk", cc as f64);
    f.push("set_rows", set.rows() as f64);
    f.push("set_cols", set.cols() as f64);
    let s = set.base_shape;
    f.push_log("set_m", s.m as f64);
    f.push_log("set_k", s.k as f64);
    f.push_log("set_n", s.n as f64);
    let stacked: u64 = set.col_dims.iter().sum();
    let flops = match set.col_kind {
        ColKind::SharedLeft => 2.0 * s.m as f64 * s.k as f64 * stacked as f64,
        ColKind::Ladder => 2.0 * s.m as f64 * stacked as f64 * s.n as f64,
    } * set.rows() as f64;
    f.push_log("set_flops", flops);
    f.tag("col_kind", match set.col_kind {
        ColKind::SharedLeft => "shared-left",
        ColKind::Ladder => "ladder",
    });
    f.push("row_fusable", f64::from(u8::from(set.row_fusable)));
    f
}

/// Features of one kernel-library choice for a realized GEMM shape.
pub fn kernel_features(
    cfg: &ExecConfig,
    topo_fp: u64,
    shape: GemmShape,
    lib: GemmLibrary,
) -> FeatureVec {
    let mut f = candidate_base(cfg, topo_fp);
    f.tag("lib", &format!("{lib:?}"));
    f.push_log("gemm_m", shape.m as f64);
    f.push_log("gemm_k", shape.k as f64);
    f.push_log("gemm_n", shape.n as f64);
    f.push_log("gemm_flops", 2.0 * shape.m as f64 * shape.k as f64 * shape.n as f64);
    // Aspect ratios drive the wide-vs-tall tile tradeoff.
    f.push("gemm_aspect_nk", ((1 + shape.n) as f64 / (1 + shape.k) as f64).log2());
    f
}

/// Features of one epoch stream-mapping choice: fanout, occupancy, and
/// FLOP balance of the assignment, plus the epoch's position in the
/// partition (the epoch metric spans from the super-epoch start, so later
/// epochs inherit their prefix's elapsed time).
pub fn epoch_features(
    cfg: &ExecConfig,
    topo_fp: u64,
    sei: usize,
    ei: usize,
    choice: usize,
    assignment: &[(UnitId, usize)],
    flops_of: &BTreeMap<UnitId, f64>,
) -> FeatureVec {
    let mut f = candidate_base(cfg, topo_fp);
    f.tag("epoch", &format!("se{sei}.e{ei}"));
    f.push("epoch_pos", ei as f64);
    f.push("epoch_units", assignment.len() as f64);
    let mut per_stream: BTreeMap<usize, (usize, f64)> = BTreeMap::new();
    let mut total = 0.0;
    for &(uid, s) in assignment {
        let fl = flops_of.get(&uid).copied().unwrap_or(0.0);
        let e = per_stream.entry(s).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += fl;
        total += fl;
    }
    f.push("fanout", per_stream.len() as f64);
    let max_units = per_stream.values().map(|&(n, _)| n).max().unwrap_or(0);
    f.push("stream_occupancy", max_units as f64);
    let max_flops = per_stream.values().map(|&(_, fl)| fl).fold(0.0, f64::max);
    // 1/fanout = perfectly balanced, 1.0 = fully serialized.
    f.push("flop_imbalance", if total > 0.0 { max_flops / total } else { 1.0 });
    f.push_log("epoch_flops", total);
    f.note("echoice", &format!("{choice}"));
    f
}

/// Features of one device-placement choice: placement geometry plus the
/// communication and footprint terms — all-reduce bytes and replicated
/// parameter overlap for data parallelism, cross-cut activation transfer
/// bytes for model parallelism.
pub fn placement_features(
    cfg: &ExecConfig,
    topo_fp: u64,
    units: &[Unit],
    sync_bytes: u64,
) -> FeatureVec {
    let mut f = candidate_base(cfg, topo_fp);
    let footprint: f64 = units.iter().map(|u| u.out_bytes).sum();
    f.push_log("footprint", footprint);
    match &cfg.placement {
        DevicePlacement::Single => {}
        DevicePlacement::DataParallel { shares } => {
            f.push_log("allreduce_bytes", sync_bytes as f64);
            // Parameters replicated onto every extra device.
            f.push_log("replica_overlap", sync_bytes as f64 * (shares.len() - 1) as f64);
        }
        DevicePlacement::ModelParallel { cuts } => {
            f.push("cuts", cuts.len() as f64);
            let dev_of = |i: usize| cuts.iter().filter(|&&c| c <= i).count();
            let mut transfer = 0.0;
            for (i, u) in units.iter().enumerate() {
                for &d in &u.deps {
                    if dev_of(d) != dev_of(i) {
                        transfer += units[d].out_bytes;
                    }
                }
            }
            f.push_log("transfer_bytes", transfer);
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{DeviceSpec, Engine};
    use astra_models::{Model, ModelConfig};

    fn tiny_model() -> astra_models::BuiltModel {
        let cfg = ModelConfig {
            seq_len: 4,
            hidden: 64,
            input: 64,
            vocab: 128,
            ..ModelConfig::ptb(8)
        };
        Model::SubLstm.build(&cfg)
    }

    #[test]
    fn baseline_units_match_lowering() {
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        let units = build_units(&ctx, &ExecConfig::baseline()).unwrap();
        // Baseline (1x1 chunks): every kernel appears (blocks are single
        // members; chains fused; combines absent for cc=1... ladders with
        // cc=1 emit per-member blocks plus no combines, so the ladder adds
        // must be represented).
        assert!(!units.is_empty());
        // Topological order: every dep precedes its user.
        for (i, u) in units.iter().enumerate() {
            for &d in &u.deps {
                assert!(d < i, "unit {i} depends on later unit {d}");
            }
        }
    }

    #[test]
    fn fragmented_build_changes_only_gather_bytes() {
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        // Greedily fuse each set as far as it stays acyclic, so the config
        // is valid but actually exercises multi-member fusion groups.
        let mut cfg = ExecConfig::baseline();
        for set in &ctx.sets {
            let prev = cfg.chunks.insert(set.id.clone(), (set.rows().max(1), set.cols().max(1)));
            if build_units(&ctx, &cfg).is_err() {
                match prev {
                    Some(p) => cfg.chunks.insert(set.id.clone(), p),
                    None => cfg.chunks.remove(&set.id),
                };
            }
        }
        let clean = build_units(&ctx, &cfg).unwrap();
        // Deny every granted group.
        let frag = build_units_fragmented(&ctx, &cfg, u64::MAX).unwrap();
        assert_eq!(clean.len(), frag.len());
        let mut extra = 0.0;
        for (a, b) in clean.iter().zip(&frag) {
            assert_eq!(a.id, b.id, "fragmentation must not reorder units");
            assert_eq!(a.deps, b.deps, "fragmentation must not rewire deps");
            assert!(b.pre_copy_bytes >= a.pre_copy_bytes, "denial can only add gather copies");
            extra += b.pre_copy_bytes - a.pre_copy_bytes;
        }
        assert!(extra > 0.0, "full denial must force at least one gather copy");
        // A word denying nothing reproduces the clean build exactly.
        let same = build_units_fragmented(&ctx, &cfg, 0).unwrap();
        for (a, b) in clean.iter().zip(&same) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.pre_copy_bytes.to_bits(), b.pre_copy_bytes.to_bits());
        }
    }

    #[test]
    fn fused_config_has_fewer_units() {
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        let base = build_units(&ctx, &ExecConfig::baseline()).unwrap();
        let mut cfg = ExecConfig::baseline();
        for set in &ctx.sets {
            cfg.chunks.insert(
                set.id.clone(),
                (*set.row_chunks().last().unwrap(), *set.col_chunks().last().unwrap()),
            );
        }
        let fused = build_units(&ctx, &cfg).unwrap();
        assert!(
            fused.len() < base.len(),
            "full fusion {} should shrink unit count {}",
            fused.len(),
            base.len()
        );
    }

    #[test]
    fn fused_schedule_runs_and_is_faster() {
        let dev = DeviceSpec::p100();
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);

        let base_units = build_units(&ctx, &ExecConfig::baseline()).unwrap();
        let (base_sched, _) = emit_schedule(&ctx, &ExecConfig::baseline(), &base_units, None, &ProbeSpec::none());
        let base = Engine::new(&dev).run(&base_sched).unwrap().total_ns;

        let mut cfg = ExecConfig::baseline();
        for set in &ctx.sets {
            cfg.chunks.insert(
                set.id.clone(),
                (*set.row_chunks().last().unwrap(), *set.col_chunks().last().unwrap()),
            );
        }
        let units = build_units(&ctx, &cfg).unwrap();
        let (sched, _) = emit_schedule(&ctx, &cfg, &units, None, &ProbeSpec::none());
        let fused = Engine::new(&dev).run(&sched).unwrap().total_ns;
        assert!(fused < base, "fused {fused} should beat unfused {base}");
    }

    #[test]
    fn probes_cover_sets_and_shapes() {
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        let cfg = ExecConfig::baseline();
        let units = build_units(&ctx, &cfg).unwrap();
        let (sched, probes) = emit_schedule(&ctx, &cfg, &units, None, &ProbeSpec { sets: true, shapes: true, ..ProbeSpec::default() });
        assert_eq!(probes.set_regions.len(), ctx.sets.len());
        assert!(!probes.shape_regions.is_empty());
        let dev = DeviceSpec::p100();
        let r = Engine::new(&dev).run(&sched).unwrap();
        for (_, _, start, end) in &probes.set_regions {
            let dt = r.elapsed(*start, *end).unwrap();
            assert!(dt > 0.0);
        }
    }

    #[test]
    fn plan_cache_hits_on_lib_and_stream_variants() {
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        let mut cache = PlanCache::new();

        let mut cfg = ExecConfig::baseline();
        for set in &ctx.sets {
            cfg.chunks.insert(
                set.id.clone(),
                (*set.row_chunks().last().unwrap(), *set.col_chunks().last().unwrap()),
            );
        }
        let first = cache.units_for(&ctx, &cfg).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        // Same chunks, different stream binding: structural hit.
        let mut streamed = cfg.clone();
        streamed.num_streams = 4;
        streamed.streams.insert(first[0].id, 2);
        let second = cache.units_for(&ctx, &streamed).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&first, &second), "stream variants share the built units");

        // Same chunks, different library: hit, but a rebound copy.
        let mut libbed = cfg.clone();
        if let Some(shape) = first.iter().find_map(|u| u.gemm_shape) {
            let other = GemmLibrary::all()
                .iter()
                .copied()
                .find(|&l| l != cfg.lib_for(shape))
                .expect("more than one library");
            libbed.libs.insert(shape, other);
            let third = cache.units_for(&ctx, &libbed).unwrap();
            assert_eq!((cache.hits(), cache.misses()), (2, 1));
            assert!(!Arc::ptr_eq(&first, &third));
            let rebound = third
                .iter()
                .find(|u| u.gemm_shape == Some(shape))
                .expect("shape still present");
            assert_eq!(rebound.kernel, KernelDesc::Gemm { shape, lib: other });
        }

        // Different chunks: miss.
        let base = ExecConfig::baseline();
        let _ = cache.units_for(&ctx, &base).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cached_units_match_direct_build() {
        // The structural cache + bind_libs must be indistinguishable from
        // calling build_units directly with the full configuration.
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        let mut cache = PlanCache::new();
        let mut cfg = ExecConfig::baseline();
        for set in &ctx.sets {
            cfg.chunks.insert(
                set.id.clone(),
                (*set.row_chunks().last().unwrap(), *set.col_chunks().last().unwrap()),
            );
        }
        if let Some(shape) =
            build_units(&ctx, &cfg).unwrap().iter().find_map(|u| u.gemm_shape)
        {
            cfg.libs.insert(shape, GemmLibrary::all()[1]);
        }
        let direct = build_units(&ctx, &cfg).unwrap();
        let cached = cache.units_for(&ctx, &cfg).unwrap();
        assert_eq!(direct.len(), cached.len());
        for (a, b) in direct.iter().zip(cached.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.deps, b.deps);
            assert_eq!(a.pre_copy_bytes.to_bits(), b.pre_copy_bytes.to_bits());
        }
    }

    #[test]
    fn gather_copies_appear_when_contiguity_denied() {
        // Build with a strategy index beyond the granted ones? Instead:
        // strategy 0 grants greedily; force copies by checking that a fused
        // block whose requirement was NOT granted pays bytes. We simulate by
        // constructing a context whose allocation has conflicts — if the
        // model has none, pre_copy stays 0 and the test only asserts
        // consistency.
        let built = tiny_model();
        let ctx = PlanContext::new(&built.graph);
        let mut cfg = ExecConfig::baseline();
        for set in &ctx.sets {
            cfg.chunks.insert(
                set.id.clone(),
                (*set.row_chunks().last().unwrap(), *set.col_chunks().last().unwrap()),
            );
        }
        for strategy in 0..ctx.alloc.strategies.len() {
            cfg.strategy = strategy;
            let units = build_units(&ctx, &cfg).unwrap();
            let copies: f64 = units.iter().map(|u| u.pre_copy_bytes).sum();
            assert!(copies >= 0.0);
        }
    }
}
