//! Edge conversions between the driver's warm exploration state and
//! [`astra_store`]'s plain-data records, plus [`DriverStore`] — the handle
//! [`crate::Astra`] loads from before `optimize` and journals through
//! during it.
//!
//! `astra-store` deliberately knows nothing about Astra's domain types:
//! its records are strings, integers, and floats. Everything
//! domain-shaped — [`ProfileKey`]s, `SimCache` keys, engine memos,
//! cost-model snapshots — crosses the boundary here, in both directions,
//! so a codec change and a domain change can never silently disagree
//! (the conversions in this module are the single meeting point).
//!
//! [`DriverStore`] also owns the *authoritative persisted state*: the
//! loaded records folded into typed structures, extended by every journal
//! append. Compaction snapshots that state rather than re-reading the
//! files, so a compacted store is exactly the fold of everything written
//! — loaded or journaled — with samples collapsed into running stats and
//! superseded predictor snapshots dropped.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;
use std::sync::Arc;

use astra_gpu::{
    ClockMode, EngineCheckpoint, EventId, FaultSummary, KernelSpan, MemoParts, RunResult,
    StreamId,
};
use astra_predict::CostModelState;
use astra_store::{
    MemoKey, MemoRec, MemoSpan, PredictorRec, ProfileSampleRec, ProfileStatsRec, QuarantineRec,
    Record, Store, StoreOptions, VerdictKind, VerdictRec,
};

use crate::profile::{ProfileIndex, ProfileKey, SampleStats};
use crate::simcache::SimKey;

/// Auto-compaction threshold: when a run ends with at least this many
/// journal appends since the last compaction, the journal is folded into
/// the snapshot. High enough that short runs never pay the rewrite, low
/// enough that the journal cannot grow without bound across sessions.
const AUTO_COMPACT_APPENDS: u64 = 4096;

/// Quarantine identity as persisted: the profile key's structural triple
/// plus the fault-plan fingerprint the failures happened under.
type QuarantineId = (Vec<String>, String, u64, u64);

fn clock_parts(clock: ClockMode) -> (u8, u64) {
    match clock {
        ClockMode::Fixed => (0, 0),
        ClockMode::Autoboost { seed } => (1, seed),
    }
}

fn clock_from_parts(tag: u8, seed: u64) -> Option<ClockMode> {
    match tag {
        0 => Some(ClockMode::Fixed),
        1 => Some(ClockMode::Autoboost { seed }),
        _ => None,
    }
}

fn memo_key(key: &SimKey) -> MemoKey {
    let (clock_tag, clock_seed) = clock_parts(key.clock);
    MemoKey {
        prefix_hash: key.prefix_hash,
        device: key.device,
        clock_tag,
        clock_seed,
        fault_fp: key.fault,
        salt: key.salt,
    }
}

/// Journal form of one profile observation.
pub(crate) fn sample_record(key: &ProfileKey, value_ns: f64) -> Record {
    Record::ProfileSample(ProfileSampleRec {
        contexts: key.contexts().to_vec(),
        entity: key.entity_name().to_owned(),
        choice: key.choice() as u64,
        value_ns,
    })
}

/// Snapshot form of one profile key's running stats.
fn stats_record(key: &ProfileKey, stats: &SampleStats) -> Record {
    let (count, mean, m2, min) = stats.raw();
    Record::ProfileStats(ProfileStatsRec {
        contexts: key.contexts().to_vec(),
        entity: key.entity_name().to_owned(),
        choice: key.choice() as u64,
        count,
        mean,
        m2,
        min,
    })
}

fn quarantine_record(key: &ProfileKey, fault_fp: u64) -> Record {
    Record::Quarantine(QuarantineRec {
        contexts: key.contexts().to_vec(),
        entity: key.entity_name().to_owned(),
        choice: key.choice() as u64,
        fault_fp,
    })
}

fn predictor_record(kind: &str, state: &CostModelState) -> Record {
    Record::Predictor(PredictorRec {
        kind: kind.to_owned(),
        weights: state.weights.clone(),
        bias: state.bias,
        updates: state.updates,
        t_min: state.t_min,
        t_max: state.t_max,
    })
}

fn key_from_parts(contexts: Vec<String>, entity: String, choice: u64) -> Option<ProfileKey> {
    Some(ProfileKey::from_parts(contexts, entity, usize::try_from(choice).ok()?))
}

/// Converts a full-run engine memo into its persisted record. Interns span
/// labels first-appearance order into the record's string table.
fn memo_record(key: &SimKey, parts: &MemoParts) -> Record {
    let mut labels: Vec<String> = Vec::new();
    let mut label_idx: HashMap<&str, u32> = HashMap::new();
    let mut spans = Vec::with_capacity(parts.result.spans.len());
    for s in &parts.result.spans {
        let label = match label_idx.get(&*s.label) {
            Some(&i) => i,
            None => {
                let i = u32::try_from(labels.len()).expect("span label table fits u32");
                labels.push(s.label.to_string());
                label_idx.insert(&s.label, i);
                i
            }
        };
        spans.push(MemoSpan {
            label,
            stream: s.stream.0 as u64,
            start_ns: s.start_ns,
            end_ns: s.end_ns,
            cmd_idx: s.cmd_idx as u64,
        });
    }
    Record::Memo(Box::new(MemoRec {
        key: memo_key(key),
        cmd_idx: parts.cmd_idx as u64,
        num_streams: parts.num_streams as u64,
        cpu_ns: parts.cpu_ns,
        barrier_seq: parts.barrier_seq as u64,
        now: parts.now,
        events: parts.events.iter().map(|&(EventId(e), t)| (e, t)).collect(),
        barrier_arrivals: parts
            .barrier_arrivals
            .iter()
            .map(|(id, arr)| {
                (*id as u64, arr.iter().map(|&(s, t)| (s as u64, t)).collect())
            })
            .collect(),
        barrier_expect: parts
            .barrier_expect
            .iter()
            .map(|&(id, n)| (id as u64, n as u64))
            .collect(),
        ar_arrivals: parts
            .ar_arrivals
            .iter()
            .map(|(id, arr)| {
                (
                    *id,
                    arr.iter().map(|&(s, t, b, c)| (s as u64, t, b, c as u64)).collect(),
                )
            })
            .collect(),
        rates: parts.rates.clone(),
        rates_dirty: parts.rates_dirty,
        clock_rng_state: parts.clock_rng_state,
        total_ns: parts.result.total_ns,
        event_ns: parts.result.event_ns.iter().map(|(&EventId(e), &t)| (e, t)).collect(),
        num_launches: parts.result.num_launches as u64,
        num_records: parts.result.num_records as u64,
        profiling_overhead_ns: parts.result.profiling_overhead_ns,
        faults: [
            parts.result.faults.timing_spikes,
            parts.result.faults.launch_retries,
            parts.result.faults.alloc_retries,
            parts.result.faults.straggler_streams,
        ],
        labels,
        spans,
    }))
}

/// Rebuilds a cache-ready checkpoint from a persisted memo. `None` means
/// the record is domain-invalid (unknown clock tag, label index out of
/// range, counts that don't fit) — the caller drops it, degrading that
/// key to a cold start.
fn memo_from_record(rec: &MemoRec) -> Option<(SimKey, EngineCheckpoint)> {
    let clock = clock_from_parts(rec.key.clock_tag, rec.key.clock_seed)?;
    let key = SimKey {
        prefix_hash: rec.key.prefix_hash,
        device: rec.key.device,
        clock,
        fault: rec.key.fault_fp,
        salt: rec.key.salt,
    };
    let labels: Vec<Arc<str>> =
        rec.labels.iter().map(|l| Arc::from(l.as_str())).collect();
    let mut spans = Vec::with_capacity(rec.spans.len());
    for s in &rec.spans {
        spans.push(KernelSpan {
            label: Arc::clone(labels.get(s.label as usize)?),
            stream: StreamId(usize::try_from(s.stream).ok()?),
            start_ns: s.start_ns,
            end_ns: s.end_ns,
            cmd_idx: usize::try_from(s.cmd_idx).ok()?,
        });
    }
    let mut barrier_arrivals = Vec::with_capacity(rec.barrier_arrivals.len());
    for (id, arr) in &rec.barrier_arrivals {
        let mut out = Vec::with_capacity(arr.len());
        for &(s, t) in arr {
            out.push((usize::try_from(s).ok()?, t));
        }
        barrier_arrivals.push((usize::try_from(*id).ok()?, out));
    }
    let mut barrier_expect = Vec::with_capacity(rec.barrier_expect.len());
    for &(id, n) in &rec.barrier_expect {
        barrier_expect.push((usize::try_from(id).ok()?, usize::try_from(n).ok()?));
    }
    let mut ar_arrivals = Vec::with_capacity(rec.ar_arrivals.len());
    for (id, arr) in &rec.ar_arrivals {
        let mut out = Vec::with_capacity(arr.len());
        for &(s, t, b, c) in arr {
            out.push((usize::try_from(s).ok()?, t, b, usize::try_from(c).ok()?));
        }
        ar_arrivals.push((*id, out));
    }
    let result = RunResult {
        total_ns: rec.total_ns,
        event_ns: rec.event_ns.iter().map(|&(e, t)| (EventId(e), t)).collect(),
        spans,
        num_launches: usize::try_from(rec.num_launches).ok()?,
        num_records: usize::try_from(rec.num_records).ok()?,
        profiling_overhead_ns: rec.profiling_overhead_ns,
        faults: FaultSummary {
            timing_spikes: rec.faults[0],
            launch_retries: rec.faults[1],
            alloc_retries: rec.faults[2],
            straggler_streams: rec.faults[3],
        },
    };
    let parts = MemoParts {
        cmd_idx: usize::try_from(rec.cmd_idx).ok()?,
        prefix_hash: rec.key.prefix_hash,
        num_streams: usize::try_from(rec.num_streams).ok()?,
        cpu_ns: rec.cpu_ns,
        barrier_seq: usize::try_from(rec.barrier_seq).ok()?,
        now: rec.now,
        events: rec.events.iter().map(|&(e, t)| (EventId(e), t)).collect(),
        barrier_arrivals,
        barrier_expect,
        ar_arrivals,
        rates: rec.rates.clone(),
        rates_dirty: rec.rates_dirty,
        clock_mode: clock,
        clock_rng_state: rec.clock_rng_state,
        result,
    };
    Some((key, EngineCheckpoint::from_memo(parts)))
}

/// Everything a warm store start hands the driver, already converted to
/// domain types. Which parts the driver *applies* is its policy call:
/// memos, verdicts, and fault-matched quarantine marks are
/// outcome-invariant (they change wall-clock, never the decision
/// sequence), while the profile index and predictor weights steer the
/// search and are only applied under `warm_index`.
pub(crate) struct WarmState {
    /// Persisted full-run memos under their exact cache keys.
    pub memos: Vec<(SimKey, Arc<EngineCheckpoint>)>,
    /// Verifier verdicts by plan fingerprint.
    pub verify: HashMap<u64, bool>,
    /// Linter verdicts by plan fingerprint.
    pub lint: HashMap<u64, bool>,
    /// Quarantine marks with the fault fingerprint they were earned under.
    pub quarantine: Vec<(ProfileKey, u64)>,
    /// The persisted profile index (stats snapshots replayed, then journal
    /// samples on top, in record order).
    pub index: ProfileIndex,
    /// Latest persisted cost-model snapshot per phase kind.
    pub predictors: Vec<(String, CostModelState)>,
    /// Clean records loaded and interpreted.
    pub loaded_records: u64,
    /// Records quarantined by the store (torn/corrupt/version-mismatch)
    /// plus records that decoded but failed domain validation.
    pub corrupt_records: u64,
}

/// The driver's handle on one on-disk store: the [`Store`] itself plus the
/// authoritative fold of everything in it.
#[derive(Debug)]
pub(crate) struct DriverStore {
    store: Store,
    /// Persisted profile state: loaded records replayed, plus every sample
    /// journaled through this handle.
    profile: ProfileIndex,
    /// Persisted verdicts keyed `(kind tag, plan fingerprint)`.
    verdicts: BTreeMap<(u8, u64), bool>,
    /// Persisted quarantine marks.
    quarantine: BTreeSet<QuarantineId>,
    /// Latest cost-model snapshot per phase kind.
    predictors: BTreeMap<String, CostModelState>,
    /// Every persisted memo record, keyed for dedupe and kept whole so
    /// compaction never depends on what the in-memory cache has evicted.
    memos: BTreeMap<MemoKey, Record>,
    /// First journaling I/O error, if any: the store degrades to inert
    /// (appends become no-ops) rather than failing the optimization.
    degraded: Option<String>,
}

impl DriverStore {
    /// Opens (creating if absent) the store under `dir`, recovering from
    /// any crash artifacts, and folds the loaded records into a
    /// [`WarmState`].
    pub fn open(dir: &Path, opts: &StoreOptions) -> std::io::Result<(DriverStore, WarmState)> {
        let (store, records) = Store::open(dir, opts)?;
        let mut ds = DriverStore {
            store,
            profile: ProfileIndex::new(),
            verdicts: BTreeMap::new(),
            quarantine: BTreeSet::new(),
            predictors: BTreeMap::new(),
            memos: BTreeMap::new(),
            degraded: None,
        };
        let mut warm = WarmState {
            memos: Vec::new(),
            verify: HashMap::new(),
            lint: HashMap::new(),
            quarantine: Vec::new(),
            index: ProfileIndex::new(),
            predictors: Vec::new(),
            loaded_records: 0,
            corrupt_records: ds.store.load_summary().corrupt_records,
        };
        for rec in &records {
            if ds.fold(rec, Some(&mut warm)) {
                warm.loaded_records += 1;
            } else {
                warm.corrupt_records += 1;
            }
        }
        warm.index = ds.profile.clone();
        warm.predictors =
            ds.predictors.iter().map(|(k, s)| (k.clone(), s.clone())).collect();
        Ok((ds, warm))
    }

    /// Folds one record into the authoritative state (and, on load, the
    /// warm-state view). Returns `false` for records that decode but fail
    /// domain validation.
    fn fold(&mut self, rec: &Record, warm: Option<&mut WarmState>) -> bool {
        match rec {
            Record::ProfileSample(r) => {
                let Some(key) =
                    key_from_parts(r.contexts.clone(), r.entity.clone(), r.choice)
                else {
                    return false;
                };
                if !r.value_ns.is_finite() {
                    return false;
                }
                self.profile.record(&key, r.value_ns);
            }
            Record::ProfileStats(r) => {
                let Some(key) =
                    key_from_parts(r.contexts.clone(), r.entity.clone(), r.choice)
                else {
                    return false;
                };
                let Some(stats) = SampleStats::from_raw(r.count, r.mean, r.m2, r.min)
                else {
                    return false;
                };
                self.profile.insert_stats(key, stats);
            }
            Record::Verdict(r) => {
                let tag = verdict_tag(r.kind);
                self.verdicts.insert((tag, r.plan_fp), r.clean);
                if let Some(warm) = warm {
                    match r.kind {
                        VerdictKind::Verify => warm.verify.insert(r.plan_fp, r.clean),
                        VerdictKind::Lint => warm.lint.insert(r.plan_fp, r.clean),
                    };
                }
            }
            Record::Quarantine(r) => {
                let Some(key) =
                    key_from_parts(r.contexts.clone(), r.entity.clone(), r.choice)
                else {
                    return false;
                };
                self.quarantine.insert((
                    r.contexts.clone(),
                    r.entity.clone(),
                    r.choice,
                    r.fault_fp,
                ));
                if let Some(warm) = warm {
                    warm.quarantine.push((key, r.fault_fp));
                }
            }
            Record::Predictor(r) => {
                let state = CostModelState {
                    weights: r.weights.clone(),
                    bias: r.bias,
                    updates: r.updates,
                    t_min: r.t_min,
                    t_max: r.t_max,
                };
                self.predictors.insert(r.kind.clone(), state);
            }
            Record::Memo(r) => {
                let Some((key, ck)) = memo_from_record(r) else {
                    return false;
                };
                self.memos.insert(r.key.clone(), rec.clone());
                if let Some(warm) = warm {
                    warm.memos.push((key, Arc::new(ck)));
                }
            }
        }
        true
    }

    fn append(&mut self, rec: &Record) {
        if self.degraded.is_some() {
            return;
        }
        if let Err(e) = self.store.append(rec) {
            self.degraded = Some(e.to_string());
        }
    }

    /// Journals one committed profile sample.
    pub fn journal_sample(&mut self, key: &ProfileKey, value_ns: f64) {
        self.profile.record(key, value_ns);
        self.append(&sample_record(key, value_ns));
    }

    /// Journals one fresh verify/lint verdict (deduped: re-deriving an
    /// already-persisted verdict appends nothing).
    pub fn journal_verdict(&mut self, kind: VerdictKind, plan_fp: u64, clean: bool) {
        let tag = verdict_tag(kind);
        if self.verdicts.insert((tag, plan_fp), clean) == Some(clean) {
            return;
        }
        self.append(&Record::Verdict(VerdictRec { kind, plan_fp, clean }));
    }

    /// Journals one quarantine mark (deduped per key and fault profile).
    pub fn journal_quarantine(&mut self, key: &ProfileKey, fault_fp: u64) {
        let id = (
            key.contexts().to_vec(),
            key.entity_name().to_owned(),
            key.choice() as u64,
            fault_fp,
        );
        if !self.quarantine.insert(id) {
            return;
        }
        self.append(&quarantine_record(key, fault_fp));
    }

    /// Journals a captured checkpoint if it exports as a full-run memo and
    /// its key isn't persisted yet. Mid-run and faulted checkpoints are
    /// silently skipped — callers feed every capture through.
    pub fn journal_memo(&mut self, key: &SimKey, ck: &EngineCheckpoint) {
        let mkey = memo_key(key);
        if self.memos.contains_key(&mkey) {
            return;
        }
        let Some(parts) = ck.export_memo() else { return };
        let rec = memo_record(key, &parts);
        self.append(&rec);
        self.memos.insert(mkey, rec);
    }

    /// End-of-run bookkeeping: snapshot changed predictor models, flush
    /// the journal to disk, and fold it into the snapshot if it has grown
    /// past the auto-compaction threshold.
    pub fn finish_run(&mut self, models: Vec<(&'static str, CostModelState)>) {
        for (kind, state) in models {
            if self.predictors.get(kind) == Some(&state) {
                continue;
            }
            self.append(&predictor_record(kind, &state));
            self.predictors.insert(kind.to_owned(), state);
        }
        if self.degraded.is_none() {
            if let Err(e) = self.store.sync() {
                self.degraded = Some(e.to_string());
            }
        }
        if self.store.journal_appends() >= AUTO_COMPACT_APPENDS {
            self.compact();
        }
    }

    /// Rewrites the snapshot from the authoritative in-memory fold and
    /// truncates the journal (atomically — a crash leaves the old state).
    pub fn compact(&mut self) {
        if self.degraded.is_some() {
            return;
        }
        let records = self.snapshot_records();
        if let Err(e) = self.store.compact(&records) {
            self.degraded = Some(e.to_string());
        }
    }

    /// The compacted record set: profile stats (samples folded), verdicts,
    /// quarantine marks, predictor snapshots, memos — each group in its
    /// deterministic key order.
    pub fn snapshot_records(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for (key, stats) in self.profile.iter() {
            out.push(stats_record(key, stats));
        }
        for (&(tag, plan_fp), &clean) in &self.verdicts {
            let kind = if tag == 0 { VerdictKind::Verify } else { VerdictKind::Lint };
            out.push(Record::Verdict(VerdictRec { kind, plan_fp, clean }));
        }
        for (contexts, entity, choice, fault_fp) in &self.quarantine {
            out.push(Record::Quarantine(QuarantineRec {
                contexts: contexts.clone(),
                entity: entity.clone(),
                choice: *choice,
                fault_fp: *fault_fp,
            }));
        }
        for (kind, state) in &self.predictors {
            out.push(predictor_record(kind, state));
        }
        out.extend(self.memos.values().cloned());
        out
    }

    /// Journal appends since open (or the last compaction).
    pub fn journal_appends(&self) -> u64 {
        self.store.journal_appends()
    }

    /// Compactions performed through this handle.
    pub fn compactions(&self) -> u64 {
        self.store.compactions()
    }

    /// First journaling error, if the store has degraded to inert.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }
}

/// Opens the store at `dir`, recovers whatever survives, and compacts the
/// full fold into the snapshot — the `astra-cli store compact` entry
/// point. Returns `(records_loaded, records_in_snapshot)`: loaded counts
/// every clean record replayed, the snapshot count is smaller when
/// samples fold into stats or duplicate marks collapse.
///
/// # Errors
///
/// Real I/O failures opening or rewriting the store files.
pub fn compact_store(dir: &Path) -> std::io::Result<(u64, u64)> {
    let (mut ds, warm) = DriverStore::open(dir, &StoreOptions::default())?;
    let snapshot_len = ds.snapshot_records().len() as u64;
    ds.compact();
    if let Some(e) = ds.degraded.as_deref() {
        return Err(std::io::Error::other(e.to_owned()));
    }
    Ok((warm.loaded_records, snapshot_len))
}

fn verdict_tag(kind: VerdictKind) -> u8 {
    match kind {
        VerdictKind::Verify => 0,
        VerdictKind::Lint => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{
        DeviceSpec, Engine, FaultPlan, GemmLibrary, GemmShape, KernelDesc, Schedule,
    };

    fn finished_checkpoint(clock: ClockMode) -> EngineCheckpoint {
        let dev = DeviceSpec::v100();
        let mut sched = Schedule::new(2);
        let g = GemmShape::new(64, 256, 256);
        sched.launch(StreamId(0), KernelDesc::Gemm { shape: g, lib: GemmLibrary::CublasLike });
        sched.launch(StreamId(1), KernelDesc::Gemm { shape: g, lib: GemmLibrary::OaiWide });
        sched.mark_boundary();
        let (_, mut cks) = Engine::with_faults(&dev, clock, FaultPlan::none(), 0)
            .run_incremental(&sched, None, &[sched.cmds().len()])
            .expect("clean run");
        cks.remove(0)
    }

    #[test]
    fn memo_roundtrips_through_the_record_form() {
        for clock in [ClockMode::Fixed, ClockMode::Autoboost { seed: 9 }] {
            let ck = finished_checkpoint(clock);
            let key = SimKey {
                prefix_hash: ck.prefix_hash(),
                device: 0xD1CE,
                clock,
                fault: 0,
                salt: 0,
            };
            let parts = ck.export_memo().expect("finished checkpoint exports");
            let rec = memo_record(&key, &parts);
            let Record::Memo(mrec) = &rec else { panic!("memo record") };
            let (key2, ck2) = memo_from_record(mrec).expect("valid memo loads");
            assert_eq!(key2, key);
            let parts2 = ck2.export_memo().expect("rebuilt checkpoint re-exports");
            assert_eq!(
                parts.result.total_ns.to_bits(),
                parts2.result.total_ns.to_bits(),
                "memoized result survives the record form bit-exactly"
            );
            assert_eq!(parts.result.spans.len(), parts2.result.spans.len());
            assert_eq!(parts.events, parts2.events);
            assert_eq!(parts.clock_rng_state, parts2.clock_rng_state);
            // Encoding the rebuilt memo reproduces the identical record.
            assert_eq!(memo_record(&key2, &parts2), rec);
        }
    }

    #[test]
    fn invalid_memo_records_are_dropped_not_trusted() {
        let ck = finished_checkpoint(ClockMode::Fixed);
        let key = SimKey {
            prefix_hash: ck.prefix_hash(),
            device: 1,
            clock: ClockMode::Fixed,
            fault: 0,
            salt: 0,
        };
        let parts = ck.export_memo().unwrap();
        let Record::Memo(mut rec) = memo_record(&key, &parts) else { panic!() };
        rec.key.clock_tag = 7;
        assert!(memo_from_record(&rec).is_none(), "unknown clock tag");
        rec.key.clock_tag = 0;
        if let Some(s) = rec.spans.first_mut() {
            s.label = 99;
            assert!(memo_from_record(&rec).is_none(), "label index out of range");
        }
    }

    #[test]
    fn driver_store_folds_loads_and_compacts_losslessly() {
        let dir = std::env::temp_dir().join(format!(
            "astra-driverstore-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions::default();

        let key_a = ProfileKey::entity("fuse:0", 1).in_context("alloc:0");
        let key_b = ProfileKey::entity("kern:gemm", 2);
        {
            let (mut ds, warm) = DriverStore::open(&dir, &opts).unwrap();
            assert_eq!(warm.loaded_records, 0);
            ds.journal_sample(&key_a, 100.0);
            ds.journal_sample(&key_a, 90.0);
            ds.journal_sample(&key_b, 55.5);
            ds.journal_verdict(VerdictKind::Verify, 42, true);
            ds.journal_verdict(VerdictKind::Verify, 42, true); // deduped
            ds.journal_verdict(VerdictKind::Lint, 43, false);
            ds.journal_quarantine(&key_b, 7);
            ds.journal_quarantine(&key_b, 7); // deduped
            let ck = finished_checkpoint(ClockMode::Fixed);
            let skey = SimKey {
                prefix_hash: ck.prefix_hash(),
                device: 5,
                clock: ClockMode::Fixed,
                fault: 0,
                salt: 0,
            };
            ds.journal_memo(&skey, &ck);
            ds.journal_memo(&skey, &ck); // deduped
            assert_eq!(ds.journal_appends(), 7);
            ds.finish_run(Vec::new());
        }
        let warm1 = {
            let (mut ds, warm) = DriverStore::open(&dir, &opts).unwrap();
            assert_eq!(warm.corrupt_records, 0);
            assert_eq!(warm.index.get(&key_a), Some(90.0));
            assert_eq!(warm.index.stats(&key_a).map(SampleStats::count), Some(2));
            assert_eq!(warm.verify.get(&42), Some(&true));
            assert_eq!(warm.lint.get(&43), Some(&false));
            assert_eq!(warm.quarantine.len(), 1);
            assert_eq!(warm.memos.len(), 1);
            ds.compact();
            warm
        };
        // After compaction the fold is unchanged (samples became stats).
        let (_, warm2) = DriverStore::open(&dir, &opts).unwrap();
        assert_eq!(warm2.index, warm1.index);
        assert_eq!(warm2.verify, warm1.verify);
        assert_eq!(warm2.lint, warm1.lint);
        assert_eq!(warm2.quarantine, warm1.quarantine);
        assert_eq!(warm2.memos.len(), warm1.memos.len());
        assert_eq!(warm2.corrupt_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
