//! Profile indexing (paper §4.6).
//!
//! Astra manages its exploration by *indexing profile data*: every
//! measurement is stored under a mangled key. The key's trailing part
//! identifies the measured entity (a GEMM, a fusion group, an epoch) and the
//! chosen option; *context prefixes* (allocation strategy, bucket id,
//! higher-level bindings) are prepended so that changing a higher-level
//! policy causes a *miss* and forces re-evaluation, while measurements in
//! unaffected contexts stay valid.

use std::collections::BTreeMap;


/// A hierarchical profile key: context prefixes plus an entity/choice tail.
///
/// # Examples
///
/// ```
/// use astra_core::ProfileKey;
///
/// let k = ProfileKey::entity("gemm:64x1024x1024", 2).in_context("alloc:1");
/// assert_eq!(k.to_string(), "alloc:1/gemm:64x1024x1024#2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileKey {
    contexts: Vec<String>,
    entity: String,
    choice: usize,
}

impl ProfileKey {
    /// A context-free key for `entity` under option `choice`.
    pub fn entity(entity: impl Into<String>, choice: usize) -> Self {
        ProfileKey { contexts: Vec::new(), entity: entity.into(), choice }
    }

    /// Returns this key with `ctx` prepended (outermost context first).
    pub fn in_context(mut self, ctx: impl Into<String>) -> Self {
        self.contexts.insert(0, ctx.into());
        self
    }

    /// The entity name (without contexts or choice).
    pub fn entity_name(&self) -> &str {
        &self.entity
    }

    /// The choice index this key measures.
    pub fn choice(&self) -> usize {
        self.choice
    }
}

impl std::fmt::Display for ProfileKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.contexts {
            write!(f, "{c}/")?;
        }
        write!(f, "{}#{}", self.entity, self.choice)
    }
}

/// The measurement store: key → best observed metric (ns).
///
/// Re-measuring the same key keeps the *minimum* (measurements are
/// repeatable under a fixed clock; min guards against profiling noise when
/// autoboost is on).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileIndex {
    map: BTreeMap<String, f64>,
}

impl ProfileIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a measurement for `key`.
    pub fn record(&mut self, key: &ProfileKey, value_ns: f64) {
        let k = key.to_string();
        self.map
            .entry(k)
            .and_modify(|v| *v = v.min(value_ns))
            .or_insert(value_ns);
    }

    /// Whether `key` has been measured (a hit means no re-run needed).
    pub fn contains(&self, key: &ProfileKey) -> bool {
        self.map.contains_key(&key.to_string())
    }

    /// The measurement for `key`, if present.
    pub fn get(&self, key: &ProfileKey) -> Option<f64> {
        self.map.get(&key.to_string()).copied()
    }

    /// The best (choice, value) among `choices` keys for an entity in a
    /// context-mangled keyspace. Returns `None` if none are measured.
    pub fn best_choice(
        &self,
        mk_key: impl Fn(usize) -> ProfileKey,
        choices: usize,
    ) -> Option<(usize, f64)> {
        (0..choices)
            .filter_map(|c| self.get(&mk_key(c)).map(|v| (c, v)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Number of stored measurements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_mangling_causes_misses() {
        let mut idx = ProfileIndex::new();
        let plain = ProfileKey::entity("gemm:a", 0);
        idx.record(&plain, 100.0);
        assert!(idx.contains(&plain));
        // Same entity under a different allocation context: miss.
        let ctxed = ProfileKey::entity("gemm:a", 0).in_context("alloc:1");
        assert!(!idx.contains(&ctxed));
    }

    #[test]
    fn re_recording_keeps_minimum() {
        let mut idx = ProfileIndex::new();
        let k = ProfileKey::entity("e", 0);
        idx.record(&k, 50.0);
        idx.record(&k, 80.0);
        assert_eq!(idx.get(&k), Some(50.0));
        idx.record(&k, 20.0);
        assert_eq!(idx.get(&k), Some(20.0));
    }

    #[test]
    fn best_choice_picks_minimum() {
        let mut idx = ProfileIndex::new();
        for (c, v) in [(0, 30.0), (1, 10.0), (2, 20.0)] {
            idx.record(&ProfileKey::entity("fuse:g", c), v);
        }
        let (c, v) = idx.best_choice(|c| ProfileKey::entity("fuse:g", c), 3).unwrap();
        assert_eq!((c, v), (1, 10.0));
        // Unmeasured choices are skipped, missing entity yields None.
        assert!(idx.best_choice(|c| ProfileKey::entity("ghost", c), 3).is_none());
    }

    #[test]
    fn display_orders_contexts_outermost_first() {
        let k = ProfileKey::entity("epoch:3", 1)
            .in_context("superepoch:0")
            .in_context("bucket:24");
        assert_eq!(k.to_string(), "bucket:24/superepoch:0/epoch:3#1");
    }
}
