//! Profile indexing (paper §4.6).
//!
//! Astra manages its exploration by *indexing profile data*: every
//! measurement is stored under a mangled key. The key's trailing part
//! identifies the measured entity (a GEMM, a fusion group, an epoch) and the
//! chosen option; *context prefixes* (allocation strategy, bucket id,
//! higher-level bindings) are prepended so that changing a higher-level
//! policy causes a *miss* and forces re-evaluation, while measurements in
//! unaffected contexts stay valid.
//!
//! The index stores full per-key [`SampleStats`] (count / mean / min /
//! variance) rather than a single scalar: under fault injection the same
//! key is measured repeatedly, and the driver needs the spread to tell a
//! statistical outlier (re-measure) from a genuinely slow choice (accept).

use std::collections::BTreeMap;

/// A hierarchical profile key: context prefixes plus an entity/choice tail.
///
/// Keys compare *structurally* on the `(contexts, entity, choice)` triple,
/// so the mangling is injective: two distinct triples can never collide,
/// even when entity names themselves contain the `/` and `#` separators the
/// textual form uses.
///
/// # Examples
///
/// ```
/// use astra_core::ProfileKey;
///
/// let k = ProfileKey::entity("gemm:64x1024x1024", 2).in_context("alloc:1");
/// assert_eq!(k.to_string(), "alloc:1/gemm:64x1024x1024#2");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileKey {
    contexts: Vec<String>,
    entity: String,
    choice: usize,
}

impl ProfileKey {
    /// A context-free key for `entity` under option `choice`.
    pub fn entity(entity: impl Into<String>, choice: usize) -> Self {
        ProfileKey { contexts: Vec::new(), entity: entity.into(), choice }
    }

    /// Returns this key with `ctx` prepended (outermost context first).
    pub fn in_context(mut self, ctx: impl Into<String>) -> Self {
        self.contexts.insert(0, ctx.into());
        self
    }

    /// The entity name (without contexts or choice).
    pub fn entity_name(&self) -> &str {
        &self.entity
    }

    /// The choice index this key measures.
    pub fn choice(&self) -> usize {
        self.choice
    }

    /// The context prefixes, outermost first. With
    /// [`ProfileKey::entity_name`] and [`ProfileKey::choice`] this exposes
    /// the full structural triple, so the store can persist keys without a
    /// lossy textual mangle (entity names may contain the separators).
    pub fn contexts(&self) -> &[String] {
        &self.contexts
    }

    /// Rebuilds a key from its structural triple — the inverse of the
    /// accessors, used when loading persisted profile records.
    pub fn from_parts(contexts: Vec<String>, entity: String, choice: usize) -> Self {
        ProfileKey { contexts, entity, choice }
    }
}

impl std::fmt::Display for ProfileKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in &self.contexts {
            write!(f, "{c}/")?;
        }
        write!(f, "{}#{}", self.entity, self.choice)
    }
}

impl std::fmt::Debug for ProfileKey {
    /// Debug-prints as the quoted mangled string — what tests and dumps key
    /// on — rather than the struct fields.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "\"{self}\"")
    }
}

/// Running statistics over every sample recorded for one key: count, mean,
/// minimum, and variance, maintained with Welford's algorithm (numerically
/// stable, O(1) per sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
}

impl SampleStats {
    fn new(value: f64) -> Self {
        SampleStats { count: 1, mean: value, m2: 0.0, min: value }
    }

    fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        if value < self.min {
            self.min = value;
        }
    }

    /// Number of samples recorded (always ≥ 1 — stats exist only for
    /// measured keys).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample — the value exploration decisions use, since the
    /// noise model (autoboost, faults) only ever slows a run down.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Population variance of the samples (0 for a single sample).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// The raw Welford accumulator `(count, mean, m2, min)`, for lossless
    /// persistence. Restored by [`SampleStats::from_raw`].
    pub fn raw(&self) -> (u64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min)
    }

    /// Rebuilds stats from a persisted accumulator. Returns `None` for a
    /// zero count (stats exist only for measured keys) or non-finite
    /// fields — a corrupt snapshot must not poison decisions.
    pub fn from_raw(count: u64, mean: f64, m2: f64, min: f64) -> Option<Self> {
        if count == 0 || !mean.is_finite() || !m2.is_finite() || !min.is_finite() {
            return None;
        }
        Some(SampleStats { count, mean, m2, min })
    }
}

/// The measurement store: key → per-key [`SampleStats`].
///
/// Lookups that feed exploration decisions ([`ProfileIndex::get`],
/// [`ProfileIndex::best_choice`]) return the per-key *minimum*:
/// measurements are repeatable under a fixed clock, and every injected
/// noise source is slow-only, so the smallest sample is the best estimate
/// of the true cost. The full stats stay available via
/// [`ProfileIndex::stats`] for outlier detection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileIndex {
    map: BTreeMap<ProfileKey, SampleStats>,
}

impl ProfileIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a measurement for `key`.
    pub fn record(&mut self, key: &ProfileKey, value_ns: f64) {
        match self.map.get_mut(key) {
            Some(stats) => stats.push(value_ns),
            None => {
                self.map.insert(key.clone(), SampleStats::new(value_ns));
            }
        }
    }

    /// Whether `key` has been measured (a hit means no re-run needed).
    pub fn contains(&self, key: &ProfileKey) -> bool {
        self.map.contains_key(key)
    }

    /// The measurement for `key` (its minimum sample), if present.
    pub fn get(&self, key: &ProfileKey) -> Option<f64> {
        self.map.get(key).map(|s| s.min)
    }

    /// The full sample statistics for `key`, if present.
    pub fn stats(&self, key: &ProfileKey) -> Option<&SampleStats> {
        self.map.get(key)
    }

    /// The best (choice, value) among `choices` keys for an entity in a
    /// context-mangled keyspace. Returns `None` if none are measured.
    ///
    /// Ties on the metric break toward the *lowest* choice index — an
    /// explicit, stable rule rather than an accident of iteration order.
    pub fn best_choice(
        &self,
        mk_key: impl Fn(usize) -> ProfileKey,
        choices: usize,
    ) -> Option<(usize, f64)> {
        (0..choices)
            .filter_map(|c| self.get(&mk_key(c)).map(|v| (c, v)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// Number of stored measurements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates every `(key, stats)` pair in key order, for snapshotting.
    pub fn iter(&self) -> impl Iterator<Item = (&ProfileKey, &SampleStats)> {
        self.map.iter()
    }

    /// Installs snapshotted stats for `key`, replacing whatever is there —
    /// the load path for compacted [`SampleStats`] records. Journal-form
    /// single samples go through [`ProfileIndex::record`] instead.
    pub fn insert_stats(&mut self, key: ProfileKey, stats: SampleStats) {
        self.map.insert(key, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_mangling_causes_misses() {
        let mut idx = ProfileIndex::new();
        let plain = ProfileKey::entity("gemm:a", 0);
        idx.record(&plain, 100.0);
        assert!(idx.contains(&plain));
        // Same entity under a different allocation context: miss.
        let ctxed = ProfileKey::entity("gemm:a", 0).in_context("alloc:1");
        assert!(!idx.contains(&ctxed));
    }

    #[test]
    fn re_recording_keeps_minimum() {
        let mut idx = ProfileIndex::new();
        let k = ProfileKey::entity("e", 0);
        idx.record(&k, 50.0);
        idx.record(&k, 80.0);
        assert_eq!(idx.get(&k), Some(50.0));
        idx.record(&k, 20.0);
        assert_eq!(idx.get(&k), Some(20.0));
    }

    #[test]
    fn best_choice_picks_minimum() {
        let mut idx = ProfileIndex::new();
        for (c, v) in [(0, 30.0), (1, 10.0), (2, 20.0)] {
            idx.record(&ProfileKey::entity("fuse:g", c), v);
        }
        let (c, v) = idx.best_choice(|c| ProfileKey::entity("fuse:g", c), 3).unwrap();
        assert_eq!((c, v), (1, 10.0));
        // Unmeasured choices are skipped, missing entity yields None.
        assert!(idx.best_choice(|c| ProfileKey::entity("ghost", c), 3).is_none());
    }

    #[test]
    fn best_choice_ties_break_to_lowest_index() {
        let mut idx = ProfileIndex::new();
        // Exact ties across three choices, recorded out of order.
        for c in [2usize, 0, 1] {
            idx.record(&ProfileKey::entity("fuse:t", c), 42.0);
        }
        let (c, v) = idx.best_choice(|c| ProfileKey::entity("fuse:t", c), 3).unwrap();
        assert_eq!((c, v), (0, 42.0), "ties must resolve to the lowest choice index");
        // A strictly better later choice still wins.
        idx.record(&ProfileKey::entity("fuse:t", 2), 41.0);
        let (c, _) = idx.best_choice(|c| ProfileKey::entity("fuse:t", c), 3).unwrap();
        assert_eq!(c, 2);
    }

    #[test]
    fn stats_track_count_mean_min_variance() {
        let mut idx = ProfileIndex::new();
        let k = ProfileKey::entity("e", 0);
        for v in [10.0, 20.0, 30.0] {
            idx.record(&k, v);
        }
        let s = *idx.stats(&k).unwrap();
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-9);
        assert_eq!(s.min(), 10.0);
        // Population variance of {10, 20, 30} is 200/3.
        assert!((s.variance() - 200.0 / 3.0).abs() < 1e-9);
        // Single-sample keys have zero variance.
        let k1 = ProfileKey::entity("e", 1);
        idx.record(&k1, 5.0);
        assert_eq!(idx.stats(&k1).unwrap().variance(), 0.0);
    }

    #[test]
    fn structural_keys_distinguish_slash_laden_entities() {
        // The textual mangling of these two keys is identical
        // ("a/b#0"-style collision); structural comparison must not be.
        let as_context = ProfileKey::entity("b", 0).in_context("a");
        let as_entity = ProfileKey::entity("a/b", 0);
        assert_eq!(as_context.to_string(), as_entity.to_string());
        assert_ne!(as_context, as_entity);
        let mut idx = ProfileIndex::new();
        idx.record(&as_context, 1.0);
        assert!(!idx.contains(&as_entity), "string-colliding keys must stay distinct");
    }

    #[test]
    fn display_orders_contexts_outermost_first() {
        let k = ProfileKey::entity("epoch:3", 1)
            .in_context("superepoch:0")
            .in_context("bucket:24");
        assert_eq!(k.to_string(), "bucket:24/superepoch:0/epoch:3#1");
    }

    #[test]
    fn debug_form_is_the_quoted_mangled_string() {
        let k = ProfileKey::entity("kern:8x64x64", 1).in_context("bucket:3");
        assert_eq!(format!("{k:?}"), "\"bucket:3/kern:8x64x64#1\"");
    }
}
