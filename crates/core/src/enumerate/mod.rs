//! The enumerator half of Astra's compiler-runtime split (paper §4.4).
//!
//! The enumerator uses static knowledge to produce the *state space* —
//! fusion candidates, allocation strategies, and the epoch structure for
//! stream exploration — but never ranks options; ranking is the custom
//! wirer's job, by measurement.

pub mod alloc;
pub mod epochs;
pub mod fusion;

pub use alloc::{enumerate_alloc, AllocEnumeration, AllocStrategy};
pub use epochs::{epoch_choices, partition_units, Epoch, EquivClass, Partition, SuperEpoch};
pub use fusion::{enumerate_fusion, ColKind, FusionSet};
