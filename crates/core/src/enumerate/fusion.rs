//! GEMM fusion enumeration (paper §4.4.1).
//!
//! The enumerator finds *maximal* fusion candidates by graph pattern
//! matching; the custom wirer later decides the actual fusion granularity by
//! chunking. Two patterns are detected:
//!
//! * **Shared-argument sets** — GEMMs with a common left argument and no
//!   dependency among them (the paper's `%10 = mm(%1, %5); %11 = mm(%1, %6)`
//!   example). Fused by stacking the right operands along N.
//! * **Fusion ladders** — GEMM-accumulator chains
//!   (`mm + mm + add`), fused along the reduction dimension K. Gradient
//!   accumulation in the generated backward pass produces these naturally.
//!
//! Both patterns extend along a second axis: instances of the same structural
//! operation at different timesteps can additionally be stacked along M
//! (a *2-D fusion set*), when no recurrent dependency links the rows. To
//! keep the state space small, only nodes with the same provenance are
//! grouped (§4.4.1), and membership is node-disjoint — conflicts between
//! sets arise through *tensors* (allocation), not shared nodes, and are
//! handled by `enumerate::alloc`.

use std::collections::{BTreeMap, HashMap, HashSet};

use astra_gpu::GemmShape;
use astra_ir::{Graph, NodeId, OpKind, TensorId};

/// How the columns of a fusion set combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColKind {
    /// Columns share the left operand; fusion stacks right operands along N.
    SharedLeft,
    /// Columns form an accumulation ladder; fusion stacks along K.
    Ladder,
}

/// A (possibly 2-D) GEMM fusion candidate.
///
/// Columns need not be dimension-uniform: shared-left columns may have
/// different `n` (SC-RNN's context and hidden projections both read `x`),
/// and ladder columns may have different `k` (gradient contributions coming
/// through differently-sized weights). The stacked axis simply sums.
#[derive(Debug, Clone)]
pub struct FusionSet {
    /// Stable identifier (used as the adaptive variable / profile entity).
    pub id: String,
    /// `nodes[r][c]`: the GEMM node at row-instance `r`, column `c`.
    pub nodes: Vec<Vec<NodeId>>,
    /// Shape of the first column's members (`m` and the non-stacked
    /// dimension are uniform across columns).
    pub base_shape: GemmShape,
    /// Per-column size along the stacked dimension: `n` per column for
    /// [`ColKind::SharedLeft`], `k` per column for [`ColKind::Ladder`].
    pub col_dims: Vec<u64>,
    /// Column combination kind.
    pub col_kind: ColKind,
    /// Whether rows may be stacked along M (no cross-row dependencies).
    pub row_fusable: bool,
    /// For ladders: the absorbed accumulation `Add` nodes, per row.
    pub ladder_adds: Vec<Vec<NodeId>>,
}

impl FusionSet {
    /// Number of row instances.
    pub fn rows(&self) -> usize {
        self.nodes.len()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.nodes.first().map_or(0, |r| r.len())
    }

    /// Chunk-size choices along the row axis (powers of two up to the row
    /// count, plus the full count). `[1]` when rows cannot fuse.
    pub fn row_chunks(&self) -> Vec<usize> {
        if self.row_fusable {
            chunk_choices(self.rows())
        } else {
            vec![1]
        }
    }

    /// Chunk-size choices along the column axis.
    pub fn col_chunks(&self) -> Vec<usize> {
        chunk_choices(self.cols())
    }

    /// The fused GEMM shape of a block spanning `rc` rows and the columns
    /// `[col_start, col_start + cc)`.
    pub fn block_shape(&self, rc: usize, col_start: usize, cc: usize) -> GemmShape {
        let s = self.base_shape;
        let stacked: u64 = self.col_dims[col_start..(col_start + cc).min(self.col_dims.len())]
            .iter()
            .sum();
        match self.col_kind {
            ColKind::SharedLeft => GemmShape::new(s.m * rc as u64, s.k, stacked),
            ColKind::Ladder => GemmShape::new(s.m * rc as u64, stacked, s.n),
        }
    }

    /// Every member node, flattened.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().flatten().copied()
    }

    /// Tensor lists that must be allocated contiguously (in order) for
    /// zero-copy fusion at *any* chunking: per-column row stacks (left
    /// operands and outputs along M) and the per-row column stacks.
    pub fn adjacency_requirements(&self, graph: &Graph) -> Vec<Vec<TensorId>> {
        let mut reqs = Vec::new();
        // Column fusion requirements (per row).
        if self.cols() > 1 {
            match self.col_kind {
                ColKind::SharedLeft => {
                    // Right operands (identical across rows): one list.
                    let rights: Vec<TensorId> =
                        self.nodes[0].iter().map(|&n| graph.node(n).inputs[1]).collect();
                    reqs.push(rights);
                }
                ColKind::Ladder => {
                    for row in &self.nodes {
                        let lefts: Vec<TensorId> =
                            row.iter().map(|&n| graph.node(n).inputs[0]).collect();
                        reqs.push(lefts);
                        let rights: Vec<TensorId> =
                            row.iter().map(|&n| graph.node(n).inputs[1]).collect();
                        reqs.push(rights);
                    }
                }
            }
        }
        // Row fusion requirements (per column): left operands and outputs
        // stacked along M.
        if self.row_fusable && self.rows() > 1 {
            for c in 0..self.cols() {
                let lefts: Vec<TensorId> =
                    self.nodes.iter().map(|r| graph.node(r[c]).inputs[0]).collect();
                reqs.push(lefts);
            }
        }
        reqs.retain(|r| r.len() > 1);
        // Deduplicate identical requirement lists (ladder rows often repeat
        // the same right-operand params).
        let mut seen = HashSet::new();
        reqs.retain(|r| seen.insert(r.clone()));
        reqs
    }
}

/// Chunk choices: powers of two up to `n`, plus `n` itself.
fn chunk_choices(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut c = 1;
    while c < n {
        out.push(c);
        c *= 2;
    }
    out.push(n);
    out.dedup();
    out
}

/// Structural identity of a GEMM node: provenance modulo timestep.
fn structural_key(graph: &Graph, n: NodeId) -> (String, String, astra_ir::Pass) {
    graph.node(n).prov.structural_key()
}

/// Finds all fusion sets in `graph`. Sets are node-disjoint; shared-argument
/// sets take priority over ladders.
pub fn enumerate_fusion(graph: &Graph) -> Vec<FusionSet> {
    let mut used: HashSet<NodeId> = HashSet::new();
    let mut sets = Vec::new();
    sets.extend(shared_left_sets(graph, &mut used));
    sets.extend(ladder_sets(graph, &mut used));
    sets.sort_by(|a, b| a.id.cmp(&b.id));
    sets
}

/// Shape of a matmul node.
fn mm_shape(graph: &Graph, n: NodeId) -> GemmShape {
    let node = graph.node(n);
    let a = graph.shape(node.inputs[0]);
    let b = graph.shape(node.inputs[1]);
    GemmShape::new(a.dims()[0], a.dims()[1], b.dims()[1])
}

/// Detects shared-left-argument sets with timestep rows.
fn shared_left_sets(graph: &Graph, used: &mut HashSet<NodeId>) -> Vec<FusionSet> {
    // Structural column: key -> sorted (timestep, node).
    let mut columns: BTreeMap<(String, String, String), Vec<(u32, NodeId)>> = BTreeMap::new();
    for (i, node) in graph.nodes().iter().enumerate() {
        if !matches!(node.op, OpKind::MatMul) {
            continue;
        }
        let id = NodeId(i as u32);
        let (layer, role, pass) = structural_key(graph, id);
        let pass_s = format!("{pass:?}");
        let t = node.prov.timestep.unwrap_or(0);
        columns.entry((layer, role, pass_s)).or_default().push((t, id));
    }
    for v in columns.values_mut() {
        v.sort_unstable();
    }

    // Cluster columns by (pass, layer, m, k, left-operand sequence) —
    // columns may differ in n (they stack along N).
    #[allow(clippy::type_complexity)]
    let mut clusters: HashMap<(String, String, u64, u64, Vec<TensorId>), Vec<(String, Vec<NodeId>)>> =
        HashMap::new();
    for ((layer, role, pass), members) in &columns {
        // Uniform timesteps only: one node per timestep.
        let nodes: Vec<NodeId> = members.iter().map(|&(_, n)| n).collect();
        let ts: Vec<u32> = members.iter().map(|&(t, _)| t).collect();
        let mut uniq = ts.clone();
        uniq.dedup();
        if uniq.len() != ts.len() {
            continue;
        }
        let shape = mm_shape(graph, nodes[0]);
        if nodes.iter().any(|&n| mm_shape(graph, n) != shape) {
            continue;
        }
        let lefts: Vec<TensorId> = nodes.iter().map(|&n| graph.node(n).inputs[0]).collect();
        clusters
            .entry((pass.clone(), layer.clone(), shape.m, shape.k, lefts))
            .or_default()
            .push((role.clone(), nodes));
    }

    let mut sets = Vec::new();
    let mut keys: Vec<_> = clusters.keys().cloned().collect();
    keys.sort();
    for key in keys {
        let mut cols = clusters.remove(&key).expect("key exists");
        if cols.len() < 2 {
            continue;
        }
        cols.sort_by(|a, b| a.0.cmp(&b.0));
        let (pass, layer, _m, _k, _lefts) = &key;
        // Independence: no column member may depend on another column's
        // member in the same row (checked on row 0; rows are structurally
        // identical).
        let row0: Vec<NodeId> = cols.iter().map(|(_, ns)| ns[0]).collect();
        let mut independent = true;
        'dep: for &a in &row0 {
            for &b in &row0 {
                if a != b && (graph.depends_on(b, a) || graph.depends_on(a, b)) {
                    independent = false;
                    break 'dep;
                }
            }
        }
        if !independent {
            continue;
        }
        let rows = cols[0].1.len();
        if cols.iter().any(|(_, ns)| ns.len() != rows) {
            continue;
        }
        let nodes: Vec<Vec<NodeId>> =
            (0..rows).map(|r| cols.iter().map(|(_, ns)| ns[r]).collect()).collect();
        if nodes.iter().flatten().any(|n| used.contains(n)) {
            continue;
        }
        let row_fusable = rows_independent(graph, &nodes);
        for n in nodes.iter().flatten() {
            used.insert(*n);
        }
        let roles: Vec<&str> = cols.iter().map(|(r, _)| r.as_str()).collect();
        let col_dims: Vec<u64> =
            cols.iter().map(|(_, ns)| mm_shape(graph, ns[0]).n).collect();
        let base_shape = mm_shape(graph, nodes[0][0]);
        sets.push(FusionSet {
            id: format!("F:{pass}:{layer}:{}", roles.join("+")),
            nodes,
            base_shape,
            col_dims,
            col_kind: ColKind::SharedLeft,
            row_fusable,
            ladder_adds: Vec::new(),
        });
    }
    sets
}

/// True when no member of any row depends on a member of another row in
/// *either* direction (stacking rows along M is then legal). Backward-pass
/// rows run in reverse timestep order, so both directions must be checked.
fn rows_independent(graph: &Graph, nodes: &[Vec<NodeId>]) -> bool {
    if nodes.len() < 2 {
        return false;
    }
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            for &a in &nodes[i] {
                for &b in &nodes[j] {
                    if graph.depends_on(b, a) || graph.depends_on(a, b) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Detects GEMM-accumulator ladders: maximal add-trees over unused matmuls.
fn ladder_sets(graph: &Graph, used: &mut HashSet<NodeId>) -> Vec<FusionSet> {
    let nodes = graph.nodes();
    // An add qualifies when both inputs are single-consumer outputs of
    // (unused matmul | qualifying add). Find chain roots: qualifying adds
    // whose own output is NOT consumed by a further qualifying add.
    let mut qualifies: Vec<bool> = vec![false; nodes.len()];
    let is_mm_leaf = |graph: &Graph, t: TensorId, used: &HashSet<NodeId>| -> Option<NodeId> {
        let p = graph.producer(t)?;
        if matches!(graph.node(p).op, OpKind::MatMul)
            && !used.contains(&p)
            && graph.consumers(t).len() == 1
        {
            Some(p)
        } else {
            None
        }
    };
    for (i, node) in nodes.iter().enumerate() {
        if !matches!(node.op, OpKind::Add) {
            continue;
        }
        let ok = node.inputs.iter().all(|&inp| {
            if is_mm_leaf(graph, inp, used).is_some() {
                return true;
            }
            if let Some(p) = graph.producer(inp) {
                return qualifies[p.0 as usize] && graph.consumers(inp).len() == 1;
            }
            false
        });
        qualifies[i] = ok;
    }

    // Collect chains from roots.
    let mut instances: Vec<(Vec<NodeId>, Vec<NodeId>)> = Vec::new(); // (mms, adds)
    for (i, node) in nodes.iter().enumerate() {
        if !qualifies[i] {
            continue;
        }
        // Root: no qualifying-add consumer.
        let is_root = graph
            .consumers(node.output)
            .iter()
            .all(|c| !qualifies[c.0 as usize]);
        if !is_root {
            continue;
        }
        let mut mms = Vec::new();
        let mut adds = Vec::new();
        let mut stack = vec![NodeId(i as u32)];
        while let Some(cur) = stack.pop() {
            adds.push(cur);
            for &inp in &graph.node(cur).inputs {
                if let Some(mm) = is_mm_leaf(graph, inp, used) {
                    mms.push(mm);
                } else if let Some(p) = graph.producer(inp) {
                    stack.push(p);
                }
            }
        }
        mms.sort_unstable();
        // A self-add (`add(t, t)`) contributes the same leaf twice; a
        // one-leaf "ladder" is not a fusion candidate.
        mms.dedup();
        if mms.len() < 2 {
            continue;
        }
        // NodeId order is creation order, which is availability order in
        // both passes (the backward pass emits late timesteps first) — the
        // partial-sum combine chain therefore accumulates progressively
        // instead of holding every contribution alive.
        adds.sort_unstable();
        // K-stacking requires uniform (m, n); k may differ per member.
        let shape = mm_shape(graph, mms[0]);
        if mms.iter().any(|&m| {
            let s = mm_shape(graph, m);
            s.m != shape.m || s.n != shape.n
        }) {
            continue;
        }
        instances.push((mms, adds));
    }

    // Group instances by structural signature.
    type Instance = (u32, Vec<NodeId>, Vec<NodeId>);
    let mut by_sig: BTreeMap<String, Vec<Instance>> = BTreeMap::new();
    for (mms, adds) in instances {
        let mut sig_parts: Vec<String> = mms
            .iter()
            .map(|&m| {
                let (layer, role, pass) = structural_key(graph, m);
                format!("{layer}/{role}/{pass:?}")
            })
            .collect();
        let min_t = mms
            .iter()
            .filter_map(|&m| graph.node(m).prov.timestep)
            .min()
            .unwrap_or(0);
        sig_parts.sort();
        // Compact runs of identical structural keys ("part*count") — a
        // cross-timestep ladder otherwise repeats one key per step.
        let mut compact: Vec<String> = Vec::new();
        for part in sig_parts {
            match compact.last_mut() {
                Some(last) if last.split('*').next() == Some(part.as_str()) => {
                    let count: usize =
                        last.split('*').nth(1).and_then(|c| c.parse().ok()).unwrap_or(1);
                    *last = format!("{part}*{}", count + 1);
                }
                _ => compact.push(part),
            }
        }
        let sig = compact.join("+");
        by_sig.entry(sig).or_default().push((min_t, mms, adds));
    }

    let mut sets = Vec::new();
    for (sig, mut rows) in by_sig {
        rows.sort_by_key(|&(t, _, _)| t);
        let cols = rows[0].1.len();
        if rows.iter().any(|(_, mms, _)| mms.len() != cols) {
            // Ragged instances: emit each row as its own set.
            for (t, mms, adds) in rows {
                if mms.iter().any(|n| used.contains(n)) {
                    continue;
                }
                for &n in &mms {
                    used.insert(n);
                }
                let col_dims: Vec<u64> = mms.iter().map(|&m| mm_shape(graph, m).k).collect();
                sets.push(FusionSet {
                    id: format!("L:{sig}:t{t}"),
                    base_shape: mm_shape(graph, mms[0]),
                    col_dims,
                    nodes: vec![mms],
                    col_kind: ColKind::Ladder,
                    row_fusable: false,
                    ladder_adds: vec![adds],
                });
            }
            continue;
        }
        let node_matrix: Vec<Vec<NodeId>> = rows.iter().map(|(_, mms, _)| mms.clone()).collect();
        if node_matrix.iter().flatten().any(|n| used.contains(n)) {
            continue;
        }
        for n in node_matrix.iter().flatten() {
            used.insert(*n);
        }
        let row_fusable = rows_independent(graph, &node_matrix);
        let base_shape = mm_shape(graph, node_matrix[0][0]);
        let col_dims: Vec<u64> =
            node_matrix[0].iter().map(|&m| mm_shape(graph, m).k).collect();
        // Columns must be dimension-consistent across rows for 2-D blocks.
        let consistent = node_matrix.iter().all(|row| {
            row.iter().zip(&col_dims).all(|(&m, &k)| mm_shape(graph, m).k == k)
        });
        if !consistent {
            continue;
        }
        sets.push(FusionSet {
            id: format!("L:{sig}"),
            base_shape,
            col_dims,
            ladder_adds: rows.into_iter().map(|(_, _, adds)| adds).collect(),
            nodes: node_matrix,
            col_kind: ColKind::Ladder,
            row_fusable,
        });
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_ir::{append_backward, Provenance, Shape};

    /// Four gate-style GEMMs sharing x, at two timesteps.
    fn gate_graph() -> Graph {
        let mut g = Graph::new();
        let w: Vec<_> = (0..4)
            .map(|i| g.param(Shape::matrix(64, 128), format!("w{i}")))
            .collect();
        for t in 0..2 {
            let x = g.input(Shape::matrix(8, 64), format!("x{t}"));
            for (i, &wi) in w.iter().enumerate() {
                g.set_context(Provenance::layer("cell").at_step(t).with_role(format!("g{i}.x")));
                let _ = g.mm(x, wi);
            }
        }
        g
    }

    #[test]
    fn shared_left_set_detected_with_rows() {
        let g = gate_graph();
        let sets = enumerate_fusion(&g);
        assert_eq!(sets.len(), 1, "{sets:?}");
        let s = &sets[0];
        assert_eq!(s.col_kind, ColKind::SharedLeft);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.rows(), 2);
        assert!(s.row_fusable, "x_t are independent across steps");
        assert_eq!(s.block_shape(2, 0, 4), GemmShape::new(16, 64, 512));
    }

    #[test]
    fn recurrent_rows_are_not_fusable() {
        // h_{t+1} = mm(h_t, w): rows chained.
        let mut g = Graph::new();
        let w1 = g.param(Shape::matrix(32, 32), "w1");
        let w2 = g.param(Shape::matrix(32, 32), "w2");
        let mut h = g.input(Shape::matrix(4, 32), "h0");
        for t in 0..3 {
            g.set_context(Provenance::layer("rnn").at_step(t).with_role("a"));
            let a = g.mm(h, w1);
            g.set_context(Provenance::layer("rnn").at_step(t).with_role("b"));
            let b = g.mm(h, w2);
            g.set_context(Provenance::layer("rnn").at_step(t).with_role("act"));
            h = g.add(a, b);
        }
        let sets = enumerate_fusion(&g);
        let shared: Vec<_> = sets.iter().filter(|s| s.col_kind == ColKind::SharedLeft).collect();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].cols(), 2);
        assert!(!shared[0].row_fusable, "recurrence forbids row fusion");
    }

    #[test]
    fn ladder_detected_from_paper_pattern() {
        // %12 = add(mm(%1,%5), mm(%2,%6)) — the §4.4.1 ladder.
        let mut g = Graph::new();
        let a1 = g.input(Shape::matrix(8, 32), "a1");
        let a2 = g.input(Shape::matrix(8, 32), "a2");
        let b1 = g.param(Shape::matrix(32, 16), "b1");
        let b2 = g.param(Shape::matrix(32, 16), "b2");
        g.set_context(Provenance::layer("l").with_role("p"));
        let m1 = g.mm(a1, b1);
        g.set_context(Provenance::layer("l").with_role("q"));
        let m2 = g.mm(a2, b2);
        g.set_context(Provenance::layer("l").with_role("acc"));
        let _ = g.add(m1, m2);
        let sets = enumerate_fusion(&g);
        assert_eq!(sets.len(), 1);
        let s = &sets[0];
        assert_eq!(s.col_kind, ColKind::Ladder);
        assert_eq!(s.cols(), 2);
        // K-stacking: (8 x 64) x (64 x 16).
        assert_eq!(s.block_shape(1, 0, 2), GemmShape::new(8, 64, 16));
        assert_eq!(s.ladder_adds[0].len(), 1);
    }

    #[test]
    fn backward_pass_produces_ladders() {
        // A weight used by two matmuls with different activations gets an
        // accumulated gradient: dw = mm(x1^T, ds) + mm(x2^T, ds) — a ladder
        // with distinct left operands (the §4.4.1 mm/mm/add pattern).
        let mut g = Graph::new();
        let x1 = g.input(Shape::matrix(8, 32), "x1");
        let x2 = g.input(Shape::matrix(8, 32), "x2");
        let w = g.param(Shape::matrix(32, 16), "w");
        g.set_context(Provenance::layer("l").with_role("m1"));
        let y1 = g.mm(x1, w);
        g.set_context(Provenance::layer("l").with_role("m2"));
        let y2 = g.mm(x2, w);
        g.set_context(Provenance::layer("l").with_role("join"));
        let s = g.add(y1, y2);
        let loss = g.reduce_sum(s);
        append_backward(&mut g, loss);
        let sets = enumerate_fusion(&g);
        assert!(
            sets.iter().any(|s| s.col_kind == ColKind::Ladder),
            "expected a backward ladder in {:?}",
            sets.iter().map(|s| &s.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sets_are_node_disjoint() {
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(8, 64), "x");
        for i in 0..4 {
            let w = g.param(Shape::matrix(64, 64), format!("w{i}"));
            g.set_context(Provenance::layer("l").with_role(format!("r{i}")));
            let _ = g.mm(x, w);
        }
        let sets = enumerate_fusion(&g);
        let mut seen = HashSet::new();
        for s in &sets {
            for n in s.all_nodes() {
                assert!(seen.insert(n), "node {n} in two sets");
            }
        }
    }

    #[test]
    fn hetero_n_columns_fuse_shared_left() {
        // SC-RNN forward: x feeds both a [64->16] and a [64->128] GEMM;
        // they fuse along N into [64 -> 144].
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(8, 64), "x");
        let b = g.param(Shape::matrix(64, 16), "B");
        let a = g.param(Shape::matrix(64, 128), "A");
        g.set_context(Provenance::layer("cell").at_step(0).with_role("ctx"));
        let _ = g.mm(x, b);
        g.set_context(Provenance::layer("cell").at_step(0).with_role("hid"));
        let _ = g.mm(x, a);
        let sets = enumerate_fusion(&g);
        assert_eq!(sets.len(), 1, "{sets:?}");
        assert_eq!(sets[0].col_dims, vec![16, 128]);
        assert_eq!(sets[0].block_shape(1, 0, 2), GemmShape::new(8, 64, 144));
    }

    #[test]
    fn hetero_k_ladder_fuses() {
        // ds = mm(p, P^T) + mm(q, V^T) with different inner dims.
        let mut g = Graph::new();
        let p1 = g.input(Shape::matrix(8, 32), "p");
        let q1 = g.input(Shape::matrix(8, 80), "q");
        let wp = g.param(Shape::matrix(32, 24), "wp");
        let wq = g.param(Shape::matrix(80, 24), "wq");
        g.set_context(Provenance::layer("l").with_role("a"));
        let m1 = g.mm(p1, wp);
        g.set_context(Provenance::layer("l").with_role("b"));
        let m2 = g.mm(q1, wq);
        g.set_context(Provenance::layer("l").with_role("acc"));
        let _ = g.add(m1, m2);
        let sets = enumerate_fusion(&g);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].col_kind, ColKind::Ladder);
        assert_eq!(sets[0].col_dims, vec![32, 80]);
        assert_eq!(sets[0].block_shape(1, 0, 2), GemmShape::new(8, 112, 24));
    }

    #[test]
    fn chunk_choices_cover_powers_and_full() {
        assert_eq!(chunk_choices(1), vec![1]);
        assert_eq!(chunk_choices(4), vec![1, 2, 4]);
        assert_eq!(chunk_choices(20), vec![1, 2, 4, 8, 16, 20]);
    }

    #[test]
    fn adjacency_requirements_for_shared_left() {
        let g = gate_graph();
        let sets = enumerate_fusion(&g);
        let reqs = sets[0].adjacency_requirements(&g);
        // Right operands (4 weights) + per-column left stacks (x0, x1) x4.
        assert!(reqs.iter().any(|r| r.len() == 4), "weight adjacency present");
        assert!(reqs.iter().filter(|r| r.len() == 2).count() >= 1, "row stacks present");
    }
}
