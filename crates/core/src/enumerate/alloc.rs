//! Memory-allocation strategy enumeration (paper §4.5.2, Figure 1).
//!
//! Zero-copy GEMM fusion requires the fused operands to be contiguous in
//! GPU memory. Each fusion set therefore imposes *adjacency requirements* —
//! ordered tensor lists that must be co-allocated. Requirements from
//! different sets can conflict: the classic case (the paper's Figure 1, from
//! the SC-RNN backward pass) is a gate-gradient tensor that one ladder wants
//! adjacent to its *sibling gates at the same timestep* while another wants
//! it adjacent to *the same gate at neighbouring timesteps*.
//!
//! Per the paper: conflicts resolvable by dropping a single offending tensor
//! are resolved statically; non-trivial conflicts produce a *fork* of
//! allocation strategies that the custom wirer explores by measurement.

use std::collections::{HashMap, HashSet};

use astra_exec::Lowering;
use astra_gpu::BufId;
use astra_ir::Graph;

use super::fusion::FusionSet;

/// One allocation strategy: the adjacency requirements it grants.
#[derive(Debug, Clone)]
pub struct AllocStrategy {
    /// Human-readable label (shown in reports).
    pub label: String,
    /// Ordered buffer lists co-allocated contiguously, in placement order.
    /// Requirements are expressed on *physical buffers* (transpose views
    /// resolved), so a weight and its backward-pass transpose view count as
    /// the same storage.
    pub granted: Vec<Vec<BufId>>,
}

/// Output of allocation enumeration.
#[derive(Debug, Clone)]
pub struct AllocEnumeration {
    /// The strategies to fork over (always at least one).
    pub strategies: Vec<AllocStrategy>,
    /// Number of conflicts resolved statically (single-tensor overlaps).
    pub static_resolutions: usize,
    /// Number of non-trivial conflict components that caused the fork.
    pub conflict_components: usize,
    /// Ids of fusion sets whose requirements participate in a conflict:
    /// their measurements are allocation-context-dependent (§4.6), so their
    /// profile keys get the strategy prefix and they re-explore per
    /// strategy; unaffected sets' measurements are shared across strategies.
    pub conflicted_sets: HashSet<String>,
}

/// Whether two adjacency requirements are compatible: disjoint, equal, or
/// one a consecutive sublist of the other.
fn compatible(a: &[BufId], b: &[BufId]) -> bool {
    let sa: HashSet<_> = a.iter().collect();
    let sb: HashSet<_> = b.iter().collect();
    if sa.is_disjoint(&sb) {
        return true;
    }
    let sublist =
        |small: &[BufId], big: &[BufId]| big.windows(small.len()).any(|w| w == small);
    if a.len() <= b.len() {
        sublist(a, b)
    } else {
        sublist(b, a)
    }
}

/// The buffers shared between two requirements.
fn overlap(a: &[BufId], b: &[BufId]) -> Vec<BufId> {
    let sb: HashSet<_> = b.iter().collect();
    a.iter().filter(|t| sb.contains(t)).copied().collect()
}

/// Enumerates allocation strategies for a collection of fusion sets.
///
/// Strategy 0 is the greedy default (grant requirements in declaration
/// order; later conflicting ones lose). Additional strategies permute which
/// requirement of each conflict component wins. The fork is capped to keep
/// exploration bounded.
pub fn enumerate_alloc(graph: &Graph, lowering: &Lowering, sets: &[FusionSet]) -> AllocEnumeration {
    /// Cap on strategies per conflict component.
    const PER_COMPONENT: usize = 3;
    /// Cap on total strategies.
    const TOTAL_CAP: usize = 6;

    // Gather requirements with owning-set labels, resolved to buffers.
    let mut reqs: Vec<(String, Vec<BufId>)> = Vec::new();
    for set in sets {
        for r in set.adjacency_requirements(graph) {
            let bufs: Vec<BufId> = r.iter().map(|&t| lowering.buffer(t)).collect();
            reqs.push((set.id.clone(), bufs));
        }
    }

    // Static resolution: single-tensor overlaps drop the offending tensor
    // from the *longer* requirement (both fusions then coexist, §4.5.2).
    let mut static_resolutions = 0;
    loop {
        let mut changed = false;
        'outer: for i in 0..reqs.len() {
            for j in (i + 1)..reqs.len() {
                if compatible(&reqs[i].1, &reqs[j].1) {
                    continue;
                }
                let ov = overlap(&reqs[i].1, &reqs[j].1);
                if ov.len() == 1 {
                    let victim = if reqs[i].1.len() >= reqs[j].1.len() { i } else { j };
                    reqs[victim].1.retain(|t| *t != ov[0]);
                    static_resolutions += 1;
                    changed = true;
                    break 'outer;
                }
            }
        }
        if !changed {
            break;
        }
    }
    reqs.retain(|(_, r)| r.len() > 1);

    // Conflict graph over remaining requirements.
    let n = reqs.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if !compatible(&reqs[i].1, &reqs[j].1) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }

    // Connected components with at least one edge are conflict components.
    let mut comp: Vec<Option<usize>> = vec![None; n];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        if comp[i].is_some() || adj[i].is_empty() {
            continue;
        }
        let cid = components.len();
        let mut stack = vec![i];
        let mut members = Vec::new();
        while let Some(x) = stack.pop() {
            if comp[x].is_some() {
                continue;
            }
            comp[x] = Some(cid);
            members.push(x);
            stack.extend(adj[x].iter().copied());
        }
        members.sort_unstable();
        components.push(members);
    }

    // Per-component alternatives: for the first PER_COMPONENT members,
    // "member m wins" — grant m, then greedily grant whatever else fits.
    let greedy = |prefer: &[usize]| -> Vec<usize> {
        let mut granted: Vec<usize> = Vec::new();
        let order: Vec<usize> =
            prefer.iter().copied().chain((0..n).filter(|i| !prefer.contains(i))).collect();
        for i in order {
            if granted.iter().all(|&g| compatible(&reqs[g].1, &reqs[i].1)) {
                granted.push(i);
            }
        }
        granted.sort_unstable();
        granted
    };

    let mut strategy_grants: Vec<(String, Vec<usize>)> = vec![("default".into(), greedy(&[]))];
    for members in &components {
        let base: Vec<(String, Vec<usize>)> = strategy_grants.clone();
        let mut expanded = Vec::new();
        for (label, _grants) in &base {
            for &m in members.iter().take(PER_COMPONENT) {
                let mut prefer = vec![m];
                // Keep earlier components' preferences by re-greedy with the
                // label breadcrumbs only; simplest: prefer = [m].
                let g = greedy(&prefer);
                prefer.clear();
                expanded.push((format!("{label}+{}", reqs[m].0), g));
            }
        }
        strategy_grants.extend(expanded);
        strategy_grants.dedup_by(|a, b| a.1 == b.1);
        if strategy_grants.len() >= TOTAL_CAP {
            strategy_grants.truncate(TOTAL_CAP);
            break;
        }
    }
    // Dedup identical grant sets across all collected strategies.
    let mut seen: HashMap<Vec<usize>, ()> = HashMap::new();
    strategy_grants.retain(|(_, g)| seen.insert(g.clone(), ()).is_none());

    let strategies = strategy_grants
        .into_iter()
        .map(|(label, grants)| AllocStrategy {
            label,
            granted: grants.iter().map(|&i| reqs[i].1.clone()).collect(),
        })
        .collect();

    let conflicted_sets: HashSet<String> = components
        .iter()
        .flatten()
        .map(|&i| reqs[i].0.clone())
        .collect();

    AllocEnumeration {
        strategies,
        static_resolutions,
        conflict_components: components.len(),
        conflicted_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::fusion::enumerate_fusion;
    use astra_exec::lower;
    use astra_ir::{append_backward, Provenance, Shape};

    fn t(i: u64) -> BufId {
        BufId(i)
    }

    #[test]
    fn compatibility_rules() {
        assert!(compatible(&[t(1), t(2)], &[t(3), t(4)]));
        assert!(compatible(&[t(1), t(2)], &[t(1), t(2)]));
        assert!(compatible(&[t(2), t(3)], &[t(1), t(2), t(3), t(4)]));
        // Shared tensor, different neighbours: conflict.
        assert!(!compatible(&[t(1), t(2)], &[t(2), t(3)]));
        // Same set, different order: conflict.
        assert!(!compatible(&[t(1), t(2)], &[t(2), t(1)]));
        // Non-consecutive subset: conflict.
        assert!(!compatible(&[t(1), t(3)], &[t(1), t(2), t(3)]));
    }

    #[test]
    fn no_conflicts_yields_single_strategy() {
        // Independent gate fusion only: requirements are disjoint.
        let mut g = Graph::new();
        let x = g.input(Shape::matrix(8, 64), "x");
        for i in 0..4 {
            let w = g.param(Shape::matrix(64, 64), format!("w{i}"));
            g.set_context(Provenance::layer("l").with_role(format!("g{i}.x")));
            let _ = g.mm(x, w);
        }
        let sets = enumerate_fusion(&g);
        let e = enumerate_alloc(&g, &lower(&g), &sets);
        assert_eq!(e.strategies.len(), 1);
        assert_eq!(e.conflict_components, 0);
    }

    /// The Figure-1 situation: a recurrent model whose backward pass has
    /// both per-step gate ladders and cross-step weight-gradient ladders
    /// sharing the gate-gradient tensors.
    #[test]
    fn recurrent_backward_forks_strategies() {
        let mut g = Graph::new();
        let w1 = g.param(Shape::matrix(32, 32), "w1");
        let w2 = g.param(Shape::matrix(32, 32), "w2");
        let mut h: Option<astra_ir::TensorId> = None;
        let mut acc: Option<astra_ir::TensorId> = None;
        for step in 0..3 {
            let x = g.input(Shape::matrix(8, 32), format!("x{step}"));
            let inp = match h {
                None => x,
                Some(prev) => {
                    g.set_context(Provenance::layer("cell").at_step(step).with_role("mix"));
                    g.add(prev, x)
                }
            };
            g.set_context(Provenance::layer("cell").at_step(step).with_role("a"));
            let a = g.mm(inp, w1);
            g.set_context(Provenance::layer("cell").at_step(step).with_role("b"));
            let b = g.mm(inp, w2);
            g.set_context(Provenance::layer("cell").at_step(step).with_role("join"));
            let s = g.mul(a, b);
            h = Some(s);
            let sl = g.reduce_sum(s);
            acc = Some(match acc {
                None => sl,
                Some(prev) => g.add(prev, sl),
            });
        }
        append_backward(&mut g, acc.unwrap());
        let sets = enumerate_fusion(&g);
        let e = enumerate_alloc(&g, &lower(&g), &sets);
        // Whether or not this specific graph conflicts, the enumeration must
        // be sound: at least one strategy, all grants mutually compatible.
        assert!(!e.strategies.is_empty());
        for s in &e.strategies {
            for i in 0..s.granted.len() {
                for j in (i + 1)..s.granted.len() {
                    assert!(
                        compatible(&s.granted[i], &s.granted[j]),
                        "strategy {} grants conflicting requirements",
                        s.label
                    );
                }
            }
        }
    }

    #[test]
    fn forced_conflict_produces_multiple_strategies() {
        // Construct requirements that conflict by hand through two fusion
        // sets sharing operand tensors with different neighbours:
        // set1 wants [a, b] adjacent; set2 wants [b, c] adjacent.
        // We simulate via the low-level pieces: two ladders over shared dz.
        let mut g = Graph::new();
        let a0 = g.input(Shape::matrix(4, 8), "a0");
        let a1 = g.input(Shape::matrix(4, 8), "a1");
        let a2 = g.input(Shape::matrix(4, 8), "a2");
        let b = g.param(Shape::matrix(8, 8), "b");
        // Ladder 1: mm(a0,b)+mm(a1,b) — wants [a0, a1] adjacent.
        g.set_context(Provenance::layer("l1").with_role("p"));
        let m1 = g.mm(a0, b);
        g.set_context(Provenance::layer("l1").with_role("q"));
        let m2 = g.mm(a1, b);
        g.set_context(Provenance::layer("l1").with_role("acc"));
        let _ = g.add(m1, m2);
        // Ladder 2: mm(a1,b)+mm(a2,b) — wants [a1, a2] adjacent. (A second
        // use of a1 as a left operand.)
        g.set_context(Provenance::layer("l2").with_role("p"));
        let m3 = g.mm(a1, b);
        g.set_context(Provenance::layer("l2").with_role("q"));
        let m4 = g.mm(a2, b);
        g.set_context(Provenance::layer("l2").with_role("acc"));
        let _ = g.add(m3, m4);

        let sets = enumerate_fusion(&g);
        let e = enumerate_alloc(&g, &lower(&g), &sets);
        // [a0,a1] vs [a1,a2]: single-tensor overlap (a1) -> statically
        // resolved per the paper, not forked.
        assert!(e.static_resolutions >= 1 || e.strategies.len() > 1);
    }
}
