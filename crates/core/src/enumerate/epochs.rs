//! Super-epochs, epochs, and equivalence classes (paper §4.5.3-§4.5.5).
//!
//! Stream scheduling is history-sensitive: the best stream for a kernel
//! depends on everything scheduled before it. Astra bounds the blast radius
//! of this history three ways:
//!
//! * **Super-epochs** — the unit DAG is cut into chunks of roughly a few
//!   milliseconds of estimated GPU time (static FLOP count). A device-wide
//!   barrier at each boundary resets stream history, so super-epochs explore
//!   *in parallel*.
//! * **Epochs** — dependency levels within a super-epoch, explored
//!   *prefix*-wise: earlier epochs freeze their best stream mapping before
//!   later ones explore.
//! * **Equivalence classes** — kernels in an epoch with the same kernel
//!   signature are interchangeable; only *how many* go to each stream
//!   matters, collapsing `2^n` assignments to `O(n)` split counts.

use std::collections::BTreeMap;

use crate::plan::{Unit, UnitId};

/// Kernels in one epoch that are interchangeable for scheduling.
#[derive(Debug, Clone)]
pub struct EquivClass {
    /// Signature (kernel kind + shape).
    pub key: String,
    /// Unit indices (into the unit vector), in topological order.
    pub units: Vec<usize>,
}

/// One dependency level within a super-epoch.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// All unit indices in this epoch.
    pub units: Vec<usize>,
    /// Equivalence classes partitioning [`Epoch::units`].
    pub classes: Vec<EquivClass>,
}

/// A barrier-delimited chunk of the unit DAG.
#[derive(Debug, Clone)]
pub struct SuperEpoch {
    /// Epochs in dependency order.
    pub epochs: Vec<Epoch>,
}

/// The full stream-exploration structure.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Super-epochs in topological order.
    pub super_epochs: Vec<SuperEpoch>,
}

impl Partition {
    /// Total number of epochs.
    pub fn num_epochs(&self) -> usize {
        self.super_epochs.iter().map(|se| se.epochs.len()).sum()
    }
}

/// Signature under which kernels are interchangeable.
fn class_key(u: &Unit) -> String {
    u.kernel.label()
}

/// Partitions topologically-sorted `units` into super-epochs of roughly
/// `flops_budget` FLOPs, then into dependency-level epochs with equivalence
/// classes.
pub fn partition_units(units: &[Unit], flops_budget: f64) -> Partition {
    // ---- Cut into super-epochs along the topological order. ----
    let mut boundaries = Vec::new(); // exclusive end indices
    let mut acc = 0.0;
    for (i, u) in units.iter().enumerate() {
        acc += u.flops;
        if acc >= flops_budget && i + 1 < units.len() {
            boundaries.push(i + 1);
            acc = 0.0;
        }
    }
    boundaries.push(units.len());

    let mut super_epochs = Vec::new();
    let mut start = 0;
    for end in boundaries {
        if end <= start {
            continue;
        }
        super_epochs.push(build_super_epoch(units, start, end));
        start = end;
    }
    Partition { super_epochs }
}

fn build_super_epoch(units: &[Unit], start: usize, end: usize) -> SuperEpoch {
    // Dependency levels *within* the super-epoch: deps outside count as
    // level 0 (they are behind the barrier).
    let mut level: BTreeMap<usize, u32> = BTreeMap::new();
    for (i, u) in units.iter().enumerate().take(end).skip(start) {
        let lvl = u
            .deps
            .iter()
            .filter(|&&d| d >= start)
            .map(|&d| level.get(&d).copied().unwrap_or(0) + 1)
            .max()
            .unwrap_or(0);
        level.insert(i, lvl);
    }
    let max_level = level.values().copied().max().unwrap_or(0);
    let mut epochs = Vec::new();
    for l in 0..=max_level {
        let members: Vec<usize> =
            (start..end).filter(|i| level[i] == l).collect();
        if members.is_empty() {
            continue;
        }
        let mut classes: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for &m in &members {
            classes.entry(class_key(&units[m])).or_default().push(m);
        }
        let classes = classes
            .into_iter()
            .map(|(key, units)| EquivClass { key, units })
            .collect();
        epochs.push(Epoch { units: members, classes });
    }
    SuperEpoch { epochs }
}

/// One stream-mapping option for an epoch: the stream of each unit.
pub type EpochAssignment = Vec<(UnitId, usize)>;

/// Maximum split options explored for the adapted class (paper's example
/// uses 5 for a 10-kernel class).
const MAX_SPLITS: usize = 5;

/// Enumerates the stream-mapping choices of one epoch on `num_streams`
/// streams (§4.5.5): the largest equivalence class varies its per-stream
/// counts; all other units are balanced by FLOPs (the §4.8 static policy).
///
/// Always returns at least one choice (the balanced default).
pub fn epoch_choices(units: &[Unit], epoch: &Epoch, num_streams: usize) -> Vec<EpochAssignment> {
    if num_streams <= 1 || epoch.units.len() < 2 {
        return vec![epoch.units.iter().map(|&u| (units[u].id, 0)).collect()];
    }

    // The class with the most members adapts; everything else is balanced.
    let adapted = epoch
        .classes
        .iter()
        .max_by_key(|c| c.units.len())
        .expect("epoch has at least one class");

    let mut choices = Vec::new();
    let n = adapted.units.len();
    // Split counts for the adapted class: first stream takes `a`, the rest
    // round-robin over the remaining streams.
    let min_a = n.div_ceil(num_streams);
    let mut splits: Vec<usize> = (min_a..=n).collect();
    if splits.len() > MAX_SPLITS {
        // Evenly sample MAX_SPLITS options including both extremes.
        let k = splits.len();
        splits = (0..MAX_SPLITS)
            .map(|i| splits[i * (k - 1) / (MAX_SPLITS - 1)])
            .collect();
        splits.dedup();
    }

    for &a in &splits {
        let mut asg: EpochAssignment = Vec::with_capacity(epoch.units.len());
        // Adapted class: first `a` on stream 0, rest round-robin on 1..S.
        for (i, &u) in adapted.units.iter().enumerate() {
            let s = if i < a { 0 } else { 1 + (i - a) % (num_streams - 1) };
            asg.push((units[u].id, s));
        }
        // Other units: greedy flops balancing across streams, seeded with
        // the adapted class's load.
        let mut load = vec![0.0f64; num_streams];
        for (i, &u) in adapted.units.iter().enumerate() {
            let s = if i < a { 0 } else { 1 + (i - a) % (num_streams - 1) };
            load[s] += units[u].flops;
        }
        for class in &epoch.classes {
            if std::ptr::eq(class, adapted) {
                continue;
            }
            for &u in &class.units {
                let (s, _) = load
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .expect("streams non-empty");
                load[s] += units[u].flops;
                asg.push((units[u].id, s));
            }
        }
        choices.push(asg);
    }
    choices
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_gpu::{GemmShape, KernelDesc};

    fn unit(i: u32, deps: Vec<usize>, flops: f64, shape_n: u64) -> Unit {
        let shape = GemmShape::new(8, 64, shape_n);
        Unit {
            id: UnitId::Node(i),
            kernel: KernelDesc::Gemm { shape, lib: astra_gpu::GemmLibrary::CublasLike },
            deps,
            gemm_shape: Some(shape),
            pre_copy_bytes: 0.0,
            set_idx: None,
            flops,
            out_bytes: 4.0 * 8.0 * shape_n as f64,
            pass: astra_ir::Pass::Forward,
            step: Some(i),
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    #[test]
    fn budget_splits_super_epochs() {
        let units: Vec<Unit> = (0..10).map(|i| unit(i, vec![], 100.0, 64)).collect();
        let p = partition_units(&units, 250.0);
        assert!(p.super_epochs.len() >= 3, "{}", p.super_epochs.len());
        let total: usize = p
            .super_epochs
            .iter()
            .flat_map(|se| se.epochs.iter())
            .map(|e| e.units.len())
            .sum();
        assert_eq!(total, 10, "every unit in exactly one epoch");
    }

    #[test]
    fn huge_budget_yields_one_super_epoch() {
        let units: Vec<Unit> = (0..5).map(|i| unit(i, vec![], 1.0, 64)).collect();
        let p = partition_units(&units, 1e18);
        assert_eq!(p.super_epochs.len(), 1);
    }

    #[test]
    fn epochs_follow_dependency_levels() {
        // 0,1 independent; 2 depends on 0; 3 depends on 2.
        let units = vec![
            unit(0, vec![], 1.0, 64),
            unit(1, vec![], 1.0, 64),
            unit(2, vec![0], 1.0, 64),
            unit(3, vec![2], 1.0, 64),
        ];
        let p = partition_units(&units, 1e18);
        let se = &p.super_epochs[0];
        assert_eq!(se.epochs.len(), 3);
        assert_eq!(se.epochs[0].units, vec![0, 1]);
        assert_eq!(se.epochs[1].units, vec![2]);
        assert_eq!(se.epochs[2].units, vec![3]);
    }

    #[test]
    fn equivalence_collapses_same_shape_kernels() {
        // 10 identical kernels on 2 streams: choices ~ MAX_SPLITS, not 2^10
        // (the paper's §4.5.5 example).
        let units: Vec<Unit> = (0..10).map(|i| unit(i, vec![], 1.0, 64)).collect();
        let p = partition_units(&units, 1e18);
        let epoch = &p.super_epochs[0].epochs[0];
        assert_eq!(epoch.classes.len(), 1);
        let choices = epoch_choices(&units, epoch, 2);
        assert!(choices.len() <= MAX_SPLITS, "{} choices", choices.len());
        assert!(choices.len() >= 2);
        // Every choice assigns all 10 units.
        for c in &choices {
            assert_eq!(c.len(), 10);
        }
    }

    #[test]
    fn different_shapes_form_different_classes() {
        let units = vec![
            unit(0, vec![], 1.0, 64),
            unit(1, vec![], 1.0, 64),
            unit(2, vec![], 1.0, 128),
        ];
        let p = partition_units(&units, 1e18);
        let epoch = &p.super_epochs[0].epochs[0];
        assert_eq!(epoch.classes.len(), 2);
    }

    #[test]
    fn single_stream_gets_single_choice() {
        let units: Vec<Unit> = (0..4).map(|i| unit(i, vec![], 1.0, 64)).collect();
        let p = partition_units(&units, 1e18);
        let choices = epoch_choices(&units, &p.super_epochs[0].epochs[0], 1);
        assert_eq!(choices.len(), 1);
        assert!(choices[0].iter().all(|&(_, s)| s == 0));
    }

    #[test]
    fn non_adapted_units_are_flop_balanced() {
        // One big class of 4 + two heavy singles: the singles must land on
        // different streams under any choice.
        let mut units: Vec<Unit> = (0..4).map(|i| unit(i, vec![], 1.0, 64)).collect();
        units.push(unit(4, vec![], 1000.0, 256));
        units.push(unit(5, vec![], 1000.0, 512));
        let p = partition_units(&units, 1e18);
        let epoch = &p.super_epochs[0].epochs[0];
        for choice in epoch_choices(&units, epoch, 2) {
            let s4 = choice.iter().find(|(id, _)| *id == UnitId::Node(4)).unwrap().1;
            let s5 = choice.iter().find(|(id, _)| *id == UnitId::Node(5)).unwrap().1;
            assert_ne!(s4, s5, "heavy kernels must balance");
        }
    }
}
