//! Adaptive variables and the update tree (paper §4.4.2).
//!
//! The enumerator organises every tunable decision into an *adaptive
//! variable* — `initialize` / `iterate` / `get_profile_value` — and arranges
//! the variables in an *update tree* whose interior nodes are annotated with
//! an exploration mode:
//!
//! * [`ExploreMode::Parallel`] — children iterate simultaneously; one trial
//!   advances every unfinished child (fine-grained profiling makes their
//!   measurements independent, §4.5.1). The state space is *additive*.
//! * [`ExploreMode::Exhaustive`] — brute-force cartesian product (used for
//!   small history-sensitive sets, §4.5.3).
//! * [`ExploreMode::Prefix`] — children explored one at a time, in order;
//!   a finished child is frozen at its best value before the next starts
//!   (§4.5.4). The state space is additive in the number of children.
//!
//! The custom wirer drives the tree: each `advance` produces the next trial
//! configuration; after running a mini-batch under it, per-variable metrics
//! are reported back with [`UpdateTree::record`].

use std::collections::BTreeMap;

/// How an interior node explores its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// All children advance together (independent measurements).
    Parallel,
    /// Cartesian product of children (odometer).
    Exhaustive,
    /// One child at a time; earlier children frozen at their best.
    Prefix,
}

/// One node of the update tree.
#[derive(Debug, Clone)]
pub enum UpdateNode {
    /// A leaf adaptive variable.
    Var(AdaptiveVar),
    /// An interior node exploring `children` under `mode`.
    Group {
        /// Exploration mode annotation from the enumerator.
        mode: ExploreMode,
        /// Child nodes.
        children: Vec<UpdateNode>,
        /// For [`ExploreMode::Prefix`]: index of the child currently
        /// exploring.
        active: usize,
    },
}

/// A leaf adaptive variable: a named decision with `choices` options.
#[derive(Debug, Clone)]
pub struct AdaptiveVar {
    id: String,
    choices: usize,
    current: usize,
    best: Option<(usize, f64)>,
    exhausted: bool,
}

impl AdaptiveVar {
    /// Creates a variable with `choices` options, starting at option 0.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is zero.
    pub fn new(id: impl Into<String>, choices: usize) -> Self {
        assert!(choices > 0, "adaptive variable needs at least one choice");
        AdaptiveVar { id: id.into(), choices, current: 0, best: None, exhausted: choices == 1 }
    }

    /// The variable's identity (also its profile-key entity).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Number of options.
    pub fn choices(&self) -> usize {
        self.choices
    }

    /// The option used in the current trial.
    pub fn current(&self) -> usize {
        self.current
    }

    /// The best (option, metric) observed so far.
    pub fn best(&self) -> Option<(usize, f64)> {
        self.best
    }

    /// Resets to the default choice (paper's `initialize`).
    pub fn initialize(&mut self) {
        self.current = 0;
        self.best = None;
        self.exhausted = self.choices == 1;
    }

    fn record(&mut self, metric: f64) {
        // A NaN metric (corrupted measurement) must never poison the
        // comparison chain: map it to +inf, which any finite later sample
        // displaces, while two infinities deterministically keep the first.
        let metric = if metric.is_nan() { f64::INFINITY } else { metric };
        if self.best.is_none_or(|(_, b)| metric < b) {
            self.best = Some((self.current, metric));
        }
    }

    fn iterate(&mut self) -> bool {
        if self.current + 1 < self.choices {
            self.current += 1;
            true
        } else {
            self.exhausted = true;
            false
        }
    }

    fn freeze_best(&mut self) {
        if let Some((c, _)) = self.best {
            self.current = c;
        }
    }
}

impl UpdateNode {
    /// A leaf node.
    pub fn var(id: impl Into<String>, choices: usize) -> Self {
        UpdateNode::Var(AdaptiveVar::new(id, choices))
    }

    /// An interior node.
    pub fn group(mode: ExploreMode, children: Vec<UpdateNode>) -> Self {
        UpdateNode::Group { mode, children, active: 0 }
    }

    fn exhausted(&self) -> bool {
        match self {
            UpdateNode::Var(v) => v.exhausted,
            UpdateNode::Group { mode, children, active } => match mode {
                ExploreMode::Parallel | ExploreMode::Exhaustive => {
                    children.iter().all(|c| c.exhausted())
                }
                ExploreMode::Prefix => *active >= children.len(),
            },
        }
    }

    /// Advances to the next configuration. Returns `false` when exhausted.
    fn advance(&mut self) -> bool {
        let mut froze = false;
        self.advance_tracking(&mut froze)
    }

    /// Like `advance`, but flags whether the step froze a prefix child at
    /// its best observed choice — the only *metric-dependent* transition in
    /// the tree. Everything else (parallel stepping, odometer carries,
    /// resets) depends only on the tree's shape, which is what makes
    /// [`UpdateTree::lookahead`] sound.
    fn advance_tracking(&mut self, froze: &mut bool) -> bool {
        match self {
            UpdateNode::Var(v) => v.iterate(),
            UpdateNode::Group { mode, children, active } => match mode {
                ExploreMode::Parallel => {
                    let mut any = false;
                    for c in children {
                        if !c.exhausted() && c.advance_tracking(froze) {
                            any = true;
                        }
                    }
                    any
                }
                ExploreMode::Exhaustive => {
                    // Odometer: advance the first child that can; reset all
                    // children before it.
                    for i in 0..children.len() {
                        if children[i].advance_tracking(froze) {
                            for c in children.iter_mut().take(i) {
                                c.reset_choices();
                            }
                            return true;
                        }
                    }
                    false
                }
                ExploreMode::Prefix => {
                    while *active < children.len() {
                        if children[*active].advance_tracking(froze) {
                            return true;
                        }
                        children[*active].freeze_best();
                        *froze = true;
                        *active += 1;
                        // The next child starts from its initial choice,
                        // which it already occupies; running one trial at
                        // that position is handled by the caller's loop.
                        if *active < children.len() {
                            return true;
                        }
                    }
                    false
                }
            },
        }
    }

    fn reset_choices(&mut self) {
        match self {
            UpdateNode::Var(v) => {
                v.current = 0;
                v.exhausted = v.choices == 1;
            }
            UpdateNode::Group { children, active, .. } => {
                *active = 0;
                for c in children {
                    c.reset_choices();
                }
            }
        }
    }

    fn freeze_best(&mut self) {
        match self {
            UpdateNode::Var(v) => v.freeze_best(),
            UpdateNode::Group { children, .. } => {
                for c in children {
                    c.freeze_best();
                }
            }
        }
    }

    fn visit_vars<'a>(&'a self, out: &mut Vec<&'a AdaptiveVar>) {
        match self {
            UpdateNode::Var(v) => out.push(v),
            UpdateNode::Group { children, .. } => {
                for c in children {
                    c.visit_vars(out);
                }
            }
        }
    }

    fn visit_vars_mut<'a>(&'a mut self, out: &mut Vec<&'a mut AdaptiveVar>) {
        match self {
            UpdateNode::Var(v) => out.push(v),
            UpdateNode::Group { children, .. } => {
                for c in children {
                    c.visit_vars_mut(out);
                }
            }
        }
    }
}

/// The update tree: drives exploration trials and records metrics.
#[derive(Debug, Clone)]
pub struct UpdateTree {
    root: UpdateNode,
    started: bool,
    trials: usize,
}

impl UpdateTree {
    /// Wraps a root node.
    pub fn new(root: UpdateNode) -> Self {
        UpdateTree { root, started: false, trials: 0 }
    }

    /// The assignment (variable id → choice) for the next trial, or `None`
    /// when the space is exhausted. The first call yields the initial
    /// configuration; later calls advance the tree.
    pub fn next_trial(&mut self) -> Option<BTreeMap<String, usize>> {
        if self.started {
            if !self.root.advance() {
                return None;
            }
        } else {
            self.started = true;
        }
        self.trials += 1;
        Some(self.assignment())
    }

    /// Peeks at up to `max` upcoming trial assignments without consuming
    /// them.
    ///
    /// The batch stops early at any *metric-dependent* transition — a
    /// prefix child freezing at its best-so-far choice — because trials
    /// still in the batch may change which choice is best. (A freeze on the
    /// batch's very first advance is fine: it can only use metrics recorded
    /// before this batch.) Every other advance depends only on the tree's
    /// shape, so replaying [`UpdateTree::next_trial`] once per returned
    /// assignment — recording metrics between replays exactly as a
    /// sequential driver would — reproduces this batch verbatim. That is
    /// the contract the parallel exploration driver relies on: evaluate the
    /// batch concurrently, then commit results in order.
    ///
    /// A corollary the cache-aware batch runner exploits: because every
    /// returned assignment is committed via [`UpdateTree::next_trial`] *in
    /// candidate order* after the whole batch has run, the runner is free
    /// to **execute** trials in any order it likes — e.g. regrouped so
    /// candidates sharing a long schedule prefix run consecutively and
    /// resume each other's simulator checkpoints — as long as each result
    /// is scattered back to its original candidate index before the commit
    /// loop. Reordering execution can never change outcomes, only cache
    /// locality.
    pub fn lookahead(&self, max: usize) -> Vec<BTreeMap<String, usize>> {
        let mut peek = self.clone();
        let mut out = Vec::new();
        while out.len() < max {
            if peek.started {
                let mut froze = false;
                if !peek.root.advance_tracking(&mut froze) {
                    break;
                }
                if froze && !out.is_empty() {
                    break;
                }
            } else {
                peek.started = true;
            }
            out.push(peek.assignment());
        }
        out
    }

    /// The current assignment of every variable.
    pub fn assignment(&self) -> BTreeMap<String, usize> {
        let mut vars = Vec::new();
        self.root.visit_vars(&mut vars);
        vars.into_iter().map(|v| (v.id.clone(), v.current)).collect()
    }

    /// Reports the measured metric for a variable in the *current* trial.
    pub fn record(&mut self, id: &str, metric: f64) {
        let mut vars = Vec::new();
        self.root.visit_vars_mut(&mut vars);
        for v in vars {
            if v.id == id {
                v.record(metric);
                return;
            }
        }
    }

    /// Quarantines a variable's *current* choice: records +inf for it, so
    /// it can never be frozen as best unless every other choice is also
    /// quarantined. The robust exploration driver calls this for candidates
    /// whose measurements stayed faulted through all retries, and for
    /// structurally invalid configurations.
    pub fn poison(&mut self, id: &str) {
        self.record(id, f64::INFINITY);
    }

    /// Freezes every variable at its best observed choice and returns the
    /// final assignment.
    pub fn best_assignment(&mut self) -> BTreeMap<String, usize> {
        self.root.freeze_best();
        self.assignment()
    }

    /// Number of trials issued so far.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Best metric for a variable, if recorded.
    pub fn best_of(&self, id: &str) -> Option<(usize, f64)> {
        let mut vars = Vec::new();
        self.root.visit_vars(&mut vars);
        vars.into_iter().find(|v| v.id == id).and_then(|v| v.best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a tree to exhaustion with a synthetic metric; returns the
    /// number of trials.
    fn drive(tree: &mut UpdateTree, metric: impl Fn(&BTreeMap<String, usize>, &str) -> f64) -> usize {
        let mut n = 0;
        while let Some(asg) = tree.next_trial() {
            n += 1;
            let ids: Vec<String> = asg.keys().cloned().collect();
            for id in ids {
                let m = metric(&asg, &id);
                tree.record(&id, m);
            }
            assert!(n < 10_000, "runaway exploration");
        }
        n
    }

    #[test]
    fn parallel_is_additive_not_multiplicative() {
        // 5 groups x 6 choices: parallel exploration needs 6 trials, not 6^5
        // (the paper's §4.5.1 example).
        let children: Vec<UpdateNode> =
            (0..5).map(|i| UpdateNode::var(format!("g{i}"), 6)).collect();
        let mut tree = UpdateTree::new(UpdateNode::group(ExploreMode::Parallel, children));
        let trials = drive(&mut tree, |asg, id| (asg[id] as f64 - 3.0).abs());
        assert_eq!(trials, 6);
        // Every variable found its own optimum (choice 3).
        let best = tree.best_assignment();
        for i in 0..5 {
            assert_eq!(best[&format!("g{i}")], 3);
        }
    }

    #[test]
    fn exhaustive_is_multiplicative() {
        let children = vec![UpdateNode::var("a", 3), UpdateNode::var("b", 4)];
        let mut tree = UpdateTree::new(UpdateNode::group(ExploreMode::Exhaustive, children));
        let mut seen = std::collections::HashSet::new();
        while let Some(asg) = tree.next_trial() {
            seen.insert((asg["a"], asg["b"]));
        }
        assert_eq!(seen.len(), 12, "all 3x4 combinations visited");
    }

    #[test]
    fn prefix_freezes_earlier_children() {
        // Two children of 4 choices: prefix explores ~4 + 4 trials, and when
        // the second child explores, the first sits at its best.
        let children = vec![UpdateNode::var("e0", 4), UpdateNode::var("e1", 4)];
        let mut tree = UpdateTree::new(UpdateNode::group(ExploreMode::Prefix, children));
        let mut e0_during_e1 = Vec::new();
        let mut prev_e1 = None;
        while let Some(asg) = tree.next_trial() {
            // Metric: e0 best at 2, e1 best at 1.
            tree.record("e0", (asg["e0"] as f64 - 2.0).abs());
            tree.record("e1", (asg["e1"] as f64 - 1.0).abs());
            if prev_e1.map_or(false, |p| p != asg["e1"]) {
                e0_during_e1.push(asg["e0"]);
            }
            prev_e1 = Some(asg["e1"]);
        }
        assert!(tree.trials() <= 9, "prefix is additive: {} trials", tree.trials());
        assert!(e0_during_e1.iter().all(|&c| c == 2), "e0 frozen at best while e1 explores");
        assert_eq!(tree.best_assignment()["e1"], 1);
    }

    #[test]
    fn nested_parallel_of_prefix_groups() {
        // Two super-epochs in parallel, each a prefix over 2 epochs:
        // trials = max over super-epochs of (sum of epoch choices), additive.
        let se = |n: usize| {
            UpdateNode::group(
                ExploreMode::Prefix,
                vec![
                    UpdateNode::var(format!("se{n}.e0"), 3),
                    UpdateNode::var(format!("se{n}.e1"), 3),
                ],
            )
        };
        let mut tree =
            UpdateTree::new(UpdateNode::group(ExploreMode::Parallel, vec![se(0), se(1)]));
        let trials = drive(&mut tree, |asg, id| asg[id] as f64);
        assert!(trials <= 6, "nested additive exploration: {trials}");
    }

    #[test]
    fn single_choice_space_yields_one_trial() {
        let mut tree = UpdateTree::new(UpdateNode::var("only", 1));
        assert!(tree.next_trial().is_some());
        assert!(tree.next_trial().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one choice")]
    fn zero_choices_panics() {
        let _ = AdaptiveVar::new("x", 0);
    }

    #[test]
    fn lookahead_covers_parallel_groups_fully() {
        // Parallel-only trees have no metric-dependent transitions, so the
        // whole 6-trial space is visible in one batch.
        let children: Vec<UpdateNode> =
            (0..5).map(|i| UpdateNode::var(format!("g{i}"), 6)).collect();
        let tree = UpdateTree::new(UpdateNode::group(ExploreMode::Parallel, children));
        let batch = tree.lookahead(100);
        assert_eq!(batch.len(), 6);
        for (t, asg) in batch.iter().enumerate() {
            for i in 0..5 {
                assert_eq!(asg[&format!("g{i}")], t);
            }
        }
    }

    #[test]
    fn lookahead_stops_before_prefix_freeze() {
        // Prefix: e0 explores its 4 choices first; the transition to e1
        // freezes e0 at its best, which depends on metrics the batch has
        // not recorded yet — the batch must stop at the boundary.
        let children = vec![UpdateNode::var("e0", 4), UpdateNode::var("e1", 4)];
        let tree = UpdateTree::new(UpdateNode::group(ExploreMode::Prefix, children));
        let batch = tree.lookahead(100);
        assert_eq!(batch.len(), 4, "only e0's sweep is metric-independent");
        assert!(batch.iter().all(|a| a["e1"] == 0));
    }

    #[test]
    fn lookahead_replay_matches_sequential_driver() {
        // Drive the same tree twice — once trial-by-trial, once via
        // lookahead batches with in-order commits — and require identical
        // trial sequences and final assignments.
        let make = || {
            let se = |n: usize| {
                UpdateNode::group(
                    ExploreMode::Prefix,
                    vec![
                        UpdateNode::var(format!("se{n}.e0"), 3),
                        UpdateNode::var(format!("se{n}.e1"), 4),
                    ],
                )
            };
            UpdateTree::new(UpdateNode::group(ExploreMode::Parallel, vec![se(0), se(1)]))
        };
        let metric = |asg: &BTreeMap<String, usize>, id: &str| {
            // Arbitrary but deterministic: different optimum per variable.
            ((asg[id] * 7 + id.len()) % 5) as f64
        };

        let mut seq = make();
        let mut seq_trace = Vec::new();
        while let Some(asg) = seq.next_trial() {
            let ids: Vec<String> = asg.keys().cloned().collect();
            for id in &ids {
                seq.record(id, metric(&asg, id));
            }
            seq_trace.push(asg);
        }

        let mut bat = make();
        let mut bat_trace = Vec::new();
        loop {
            let batch = bat.lookahead(3);
            if batch.is_empty() {
                break;
            }
            for expect in batch {
                let asg = bat.next_trial().expect("lookahead bounds the batch");
                assert_eq!(asg, expect, "replayed assignment diverged");
                let ids: Vec<String> = asg.keys().cloned().collect();
                for id in &ids {
                    bat.record(id, metric(&asg, id));
                }
                bat_trace.push(asg);
            }
        }

        assert_eq!(seq_trace, bat_trace);
        assert_eq!(seq.best_assignment(), bat.best_assignment());
    }

    #[test]
    fn nan_metric_never_wedges_best() {
        let mut v = AdaptiveVar::new("v", 3);
        v.record(f64::NAN);
        assert!(v.iterate());
        v.record(7.0);
        // The finite sample must displace the corrupted one.
        assert_eq!(v.best(), Some((1, 7.0)));
    }

    #[test]
    fn poison_quarantines_current_choice() {
        let mut tree = UpdateTree::new(UpdateNode::var("v", 3));
        assert!(tree.next_trial().is_some()); // choice 0
        tree.poison("v");
        assert!(tree.next_trial().is_some()); // choice 1
        tree.record("v", 9.0);
        assert!(tree.next_trial().is_some()); // choice 2
        tree.record("v", 11.0);
        assert_eq!(tree.best_assignment()["v"], 1, "poisoned choice must lose to any finite");
    }

    #[test]
    fn initialize_resets() {
        let mut v = AdaptiveVar::new("v", 3);
        v.record(5.0);
        assert!(v.iterate());
        v.record(1.0);
        v.initialize();
        assert_eq!(v.current(), 0);
        assert!(v.best().is_none());
    }
}
