//! Bucketed profiling for dynamic graphs (paper §5.5, §6.5).
//!
//! With dynamic graphs the unrolled computation depends on the mini-batch's
//! maximum input length, breaking the "every mini-batch is identical"
//! assumption. Astra bucketizes lengths (5 PTB-calibrated buckets) and runs
//! the state-space exploration independently per bucket; mini-batches map to
//! the nearest larger bucket, paying a small amount of wasted compute in
//! exchange for profile validity. The bucket id prefixes every profile key
//! (the 5x state-space growth the paper reports).

use astra_exec::{native_schedule, LoweringCache};
use astra_gpu::{DeviceSpec, Engine};
use astra_ir::Graph;

use crate::astra::{Astra, AstraOptions, Report};
use crate::error::AstraError;
use crate::plan::PlanContext;

/// Maps a length to the smallest bucket covering it (lengths beyond the
/// last bucket clamp to it) — the paper's "nearest larger bucket" rule.
fn bucket_for(len: u32, buckets: &[u32]) -> u32 {
    assert!(!buckets.is_empty(), "need at least one bucket");
    buckets
        .iter()
        .copied()
        .find(|&b| len <= b)
        .unwrap_or(*buckets.last().expect("non-empty"))
}

/// Report of a bucketed optimization over a stream of mini-batch lengths.
#[derive(Debug, Clone)]
pub struct BucketedReport {
    /// Per bucket: (bucket length, optimization report).
    pub per_bucket: Vec<(u32, Report)>,
    /// Total time of the native dynamic-graph baseline over the workload
    /// (each mini-batch unrolled to its exact length, dispatched natively).
    pub dynamic_native_ns: f64,
    /// Total time under Astra with bucketed adaptation (each mini-batch
    /// mapped to its nearest larger bucket, run at that bucket's best
    /// configuration).
    pub bucketed_astra_ns: f64,
    /// Total configurations explored across buckets.
    pub configs_explored: usize,
}

impl BucketedReport {
    /// Workload-level speedup of bucketed Astra over the dynamic baseline
    /// (Table 8's metric).
    pub fn speedup(&self) -> f64 {
        self.dynamic_native_ns / self.bucketed_astra_ns
    }
}

/// Optimizes a dynamic-graph model with bucketed profiling.
///
/// `build` constructs the training graph for a given unrolled length;
/// `lengths` is the stream of mini-batch lengths (e.g. from
/// `astra_models::LengthSampler`); `buckets` are the bucket boundaries
/// (e.g. `astra_models::PTB_BUCKETS`).
///
/// # Errors
///
/// Propagates simulation failures from the per-bucket optimizations.
pub fn optimize_bucketed(
    build: impl Fn(u32) -> Graph,
    lengths: &[u32],
    buckets: &[u32],
    dev: &DeviceSpec,
    opts: &AstraOptions,
) -> Result<BucketedReport, AstraError> {
    assert!(!lengths.is_empty(), "need at least one mini-batch length");

    // Which buckets does the workload touch?
    let mut used_buckets: Vec<u32> = lengths.iter().map(|&l| bucket_for(l, buckets)).collect();
    used_buckets.sort_unstable();
    used_buckets.dedup();

    // The graph for a given unrolled length lowers identically every time
    // `build` is called with it, so one lowering cache (keyed by length)
    // serves both the per-bucket optimizations and the dynamic baseline:
    // a length that coincides with a bucket boundary lowers once, not
    // twice.
    let mut lowerings = LoweringCache::new();

    // Optimize once per bucket, threading a single profile index through
    // all buckets: structure-dependent keys (fusion, epochs) carry the
    // bucket prefix and re-explore per bucket (the 5x state-space growth of
    // §5.5), while kernel-shape measurements are bucket-independent and hit
    // across buckets.
    let mut per_bucket: Vec<(u32, Report)> = Vec::new();
    let mut configs = 0usize;
    let mut index = crate::profile::ProfileIndex::new();
    for &b in &used_buckets {
        let graph = build(b);
        let lowering = lowerings.lower(u64::from(b), &graph);
        let mut bucket_opts = opts.clone();
        bucket_opts.key_context = Some(format!("bucket:{b}"));
        let ctx = PlanContext::with_lowering(&graph, (*lowering).clone());
        let mut astra = Astra::with_context(ctx, dev, bucket_opts, index);
        let report = astra.optimize()?;
        index = astra.into_index();
        configs += report.configs_explored;
        per_bucket.push((b, report));
    }

    // Dynamic native baseline: exact-length graphs, native dispatch.
    let mut dynamic_native_ns = 0.0;
    let mut distinct: Vec<u32> = lengths.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let mut native_of = std::collections::BTreeMap::new();
    for &l in &distinct {
        let graph = build(l);
        let sched = native_schedule(&lowerings.lower(u64::from(l), &graph));
        let t = Engine::with_clock(dev, opts.clock).run(&sched)?.total_ns;
        native_of.insert(l, t);
    }
    for &l in lengths {
        dynamic_native_ns += native_of[&l];
    }

    // Bucketed Astra: per mini-batch, steady time of its bucket.
    let steady_of = |b: u32| -> f64 {
        per_bucket
            .iter()
            .find(|(bb, _)| *bb == b)
            .map(|(_, r)| r.steady_ns)
            .expect("bucket optimized")
    };
    let bucketed_astra_ns: f64 =
        lengths.iter().map(|&l| steady_of(bucket_for(l, buckets))).sum();

    Ok(BucketedReport { per_bucket, dynamic_native_ns, bucketed_astra_ns, configs_explored: configs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astra::Dims;
    use astra_models::{Model, ModelConfig};

    #[test]
    fn bucketed_astra_beats_dynamic_native() {
        let dev = DeviceSpec::p100();
        let build = |seq: u32| {
            let cfg = ModelConfig {
                seq_len: seq,
                hidden: 64,
                input: 64,
                vocab: 128,
                ..ModelConfig::ptb(8)
            };
            Model::SubLstm.build(&cfg).graph
        };
        let lengths = [3, 5, 4, 6, 3];
        let buckets = [4, 6];
        let opts = AstraOptions { dims: Dims::fk(), ..Default::default() };
        let r = optimize_bucketed(build, &lengths, &buckets, &dev, &opts).unwrap();
        assert_eq!(r.per_bucket.len(), 2, "two buckets touched");
        assert!(
            r.speedup() > 1.0,
            "bucketed Astra should beat dynamic native despite padding: {}",
            r.speedup()
        );
    }

    #[test]
    fn bucket_contexts_mangle_structure_keys_only() {
        // §5.5: the bucket id prefixes structure-dependent profile keys
        // (fusion chunks re-explore per bucket), while kernel-shape keys
        // stay context-free and are shared across buckets through the one
        // threaded index. Trial *counts* do not shrink — parallel phases
        // run the same number of mini-batches — but no measurement is ever
        // redone for a shared key, and sharing must never cost extra.
        let dev = DeviceSpec::p100();
        let build = |seq: u32| {
            let cfg = ModelConfig {
                seq_len: seq,
                hidden: 64,
                input: 64,
                vocab: 128,
                ..ModelConfig::ptb(8)
            };
            Model::SubLstm.build(&cfg).graph
        };
        let opts = AstraOptions { dims: Dims::fk(), ..Default::default() };
        // Thread one index through two buckets manually to inspect it.
        let g3 = build(3);
        let mut o3 = opts.clone();
        o3.key_context = Some("bucket:3".into());
        let mut a3 = Astra::with_index(&g3, &dev, o3, crate::profile::ProfileIndex::new());
        let r3 = a3.optimize().unwrap();
        let index = a3.into_index();

        // Fusion keys are bucket-prefixed; kernel keys are not.
        let keyd = format!("{index:?}");
        assert!(keyd.contains("bucket:3/fuse:"), "fusion keys carry the bucket context");
        assert!(keyd.contains("\"kern:"), "kernel keys are context-free");
        assert!(!keyd.contains("bucket:3/kern:"), "kernel keys must not be bucket-mangled");

        let g6 = build(6);
        let mut o6 = opts.clone();
        o6.key_context = Some("bucket:6".into());
        let mut a6 = Astra::with_index(&g6, &dev, o6, index);
        let r6 = a6.optimize().unwrap();

        // Sharing never costs extra trials vs an independent bucket-6 run.
        let mut indep = Astra::new(&g6, &dev, opts.clone());
        let ri = indep.optimize().unwrap();
        assert!(r6.configs_explored <= ri.configs_explored);
        assert!(r3.configs_explored > 0);
    }

    #[test]
    fn state_space_scales_with_buckets() {
        let dev = DeviceSpec::p100();
        let build = |seq: u32| {
            let cfg = ModelConfig {
                seq_len: seq,
                hidden: 32,
                input: 32,
                vocab: 64,
                ..ModelConfig::ptb(4)
            };
            Model::Scrnn.build(&cfg).graph
        };
        let opts = AstraOptions { dims: Dims::f(), ..Default::default() };
        let one = optimize_bucketed(&build, &[3, 3], &[3], &dev, &opts).unwrap();
        let two = optimize_bucketed(&build, &[3, 5], &[3, 5], &dev, &opts).unwrap();
        assert!(two.configs_explored > one.configs_explored);
    }
}
