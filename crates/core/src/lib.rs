//! # astra-core — the Astra adaptive optimizer
//!
//! A from-scratch Rust reproduction of *Astra: Exploiting Predictability to
//! Optimize Deep Learning* (Sivathanu, Chugh, Singapuram, Zhou — ASPLOS
//! 2019). Astra splits optimization between an **enumerator** (the compiler
//! half: finds fusion candidates, allocation strategies, and the stream
//! exploration structure using static knowledge) and a **custom wirer** (the
//! runtime half: explores the enumerated space online, one configuration per
//! training mini-batch, using fine-grained profiling) — no cost model
//! anywhere.
//!
//! * [`Astra`] / [`AstraOptions`] / [`Dims`] — the top-level optimizer and
//!   its ablation switches (`Astra_F`, `Astra_FK`, `Astra_FKS`,
//!   `Astra_all`).
//! * [`enumerate`] — fusion sets (shared-argument + ladders, 2-D),
//!   allocation conflicts/strategies, super-epochs/epochs/equivalence.
//! * [`AdaptiveVar`] / [`UpdateTree`] / [`ExploreMode`] — the paper's
//!   adaptive-variable interface and exploration modes.
//! * [`ProfileKey`] / [`ProfileIndex`] — context-mangled profile indexing.
//! * [`optimize_bucketed`] — dynamic-graph support via bucketed profiling.
//! * [`SimCache`] — engine checkpoints shared across candidate trials, so
//!   schedules with common prefixes resume instead of re-simulating;
//!   [`plan_prefix_batch`] orders each lookahead batch into prefix groups
//!   (a trie DFS over boundary-hash chains) so those resumes actually
//!   land, and [`GroupShard`] gives each group a worker-local cache view
//!   merged back deterministically at the batch barrier.
//! * [`explore_recompute`] — the §3.4 recompute-for-memory adaptation,
//!   backed by a liveness analysis ([`peak_activation_bytes`]).
//! * [`AstraOptions::store_dir`] / [`compact_store`] — crash-safe
//!   persistence of warm exploration state (profile samples, verdicts,
//!   quarantine marks, predictor weights, full-run memos) via
//!   `astra-store`; an interrupted `optimize` resumed against the same
//!   store produces the bit-identical final plan.
//! * [`fusion_features`] / [`kernel_features`] / [`epoch_features`] /
//!   [`placement_features`] — plan feature extraction for the in-tree
//!   learned cost model (`astra-predict`), which prunes each lookahead
//!   batch to its predicted top-k plus an epsilon tail under a
//!   bounded-regret guard (`AstraOptions::predictor`).
//!
//! ## Example
//!
//! ```
//! use astra_core::{Astra, AstraOptions, Dims};
//! use astra_gpu::DeviceSpec;
//! use astra_models::{Model, ModelConfig};
//!
//! let cfg = ModelConfig { seq_len: 2, hidden: 32, input: 32, vocab: 64,
//!                         ..ModelConfig::ptb(8) };
//! let built = Model::SubLstm.build(&cfg);
//! let dev = DeviceSpec::p100();
//! let mut astra = Astra::new(&built.graph, &dev, AstraOptions {
//!     dims: Dims::fk(),
//!     ..Default::default()
//! });
//! let report = astra.optimize().unwrap();
//! assert!(report.speedup() >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod astra;
mod bucketing;
pub mod enumerate;
mod error;
mod parallel;
mod persist;
mod plan;
mod predictor;
mod profile;
mod recompute;
mod simcache;
mod verify;

pub use adaptive::{AdaptiveVar, ExploreMode, UpdateNode, UpdateTree};
pub use astra::{Astra, AstraOptions, Dims, Report};
pub use bucketing::{optimize_bucketed, BucketedReport};
pub use error::AstraError;
pub use parallel::{effective_workers, parallel_map, WorkerPool};
pub use persist::compact_store;
pub use plan::{
    bind_libs, build_allocation_plan, build_units, build_units_fragmented, emit_schedule,
    epoch_features, flop_balanced_cuts, fusion_features, gradient_sync_bytes, kernel_features,
    placement_candidates, placement_features, DevicePlacement, ExecConfig, PlanCache, PlanContext,
    PlanKey, ProbeSpec, Probes, Unit, UnitId, SYNTHETIC_BUF_BASE,
};
pub use profile::{ProfileIndex, ProfileKey, SampleStats};
pub use recompute::{explore_recompute, peak_activation_bytes, RecomputePoint, RecomputeReport};
pub use simcache::{
    plan_prefix_batch, GroupShard, KeyCtx, PrefixPlan, SimCache, TrialBase, HIT_DEPTH_BUCKETS,
};
pub use verify::{access_table, lint_plan, verify_plan, REPLICA_BUF_STRIDE};
