//! Driver-side glue for the learned cost predictor.
//!
//! [`Pruner`] owns the [`CostModel`], the pruning policy, the fixed-seed
//! epsilon RNG, and the counters the [`crate::Report`] surfaces. All of
//! its methods run on the driver thread, in candidate order — selection,
//! training, and the epsilon draws are therefore pure functions of the
//! committed measurement sequence, which is worker-count invariant.

use std::collections::BTreeMap;

use astra_predict::{select_trials, CostModel, CostModelState, FeatureVec, PredEntry, PrunePolicy};
use astra_util::Rng64;

/// Fixed seed for the exploration-epsilon tail. A constant (not an option)
/// so that two optimizers with the same inputs always draw the same tail.
const EPSILON_SEED: u64 = 0x00A5_7A0C_0DE1_u64;

/// The driver's pruning state: per-phase models, policy, epsilon RNG,
/// counters.
#[derive(Debug)]
pub(crate) struct Pruner {
    /// One model per phase kind ("fuse", "kern", "epoch", "place"). The
    /// kinds predict different region metrics whose scales differ by
    /// orders of magnitude; separate weight vectors keep one kind's
    /// gradient from dragging another's predictions around.
    models: BTreeMap<&'static str, CostModel>,
    policy: PrunePolicy,
    rng: Rng64,
    enabled: bool,
    /// Cumulative |predicted − measured| over simulated candidates that
    /// carried a prediction, and the sample count, for the MAE report.
    pub abs_err_ns: f64,
    pub err_samples: u64,
}

impl Pruner {
    pub fn new(enabled: bool, top_k: usize, epsilon: f64) -> Self {
        Pruner {
            models: BTreeMap::new(),
            policy: PrunePolicy { top_k: top_k.max(1), epsilon, ..PrunePolicy::default() },
            rng: Rng64::new(EPSILON_SEED),
            enabled,
            abs_err_ns: 0.0,
            err_samples: 0,
        }
    }

    /// Whether batches of `kind` may be pruned: the predictor is on and
    /// the kind's model is warm enough on its metric scale.
    pub fn active(&self, kind: &'static str) -> bool {
        self.enabled
            && self.models.get(kind).map_or(0, CostModel::updates) >= self.policy.min_updates
    }

    pub fn predict_ns(&self, kind: &'static str, f: &FeatureVec) -> f64 {
        self.models.get(kind).map_or(1.0, |m| m.predict_ns(f))
    }

    /// Trains the kind's model on one committed (feature, measurement)
    /// pair; also folds the pre-update prediction error into the MAE when
    /// the candidate carried a selection-time prediction (`pred > 0`).
    pub fn observe(&mut self, kind: &'static str, f: &FeatureVec, pred: f64, measured_ns: f64) {
        if !self.enabled {
            return;
        }
        if pred > 0.0 {
            self.abs_err_ns += (pred - measured_ns).abs();
            self.err_samples += 1;
        }
        self.models.entry(kind).or_default().observe(f, measured_ns);
    }

    pub fn updates(&self) -> u64 {
        self.models.values().map(CostModel::updates).sum()
    }

    /// Snapshots every phase model for persistence, kind-sorted (the
    /// models live in a `BTreeMap`, so the order is deterministic).
    pub fn export_models(&self) -> Vec<(&'static str, CostModelState)> {
        self.models.iter().map(|(k, m)| (*k, m.to_state())).collect()
    }

    /// Installs a persisted model snapshot for `kind`, replacing any
    /// in-memory model. Snapshots with a mismatched feature dimension are
    /// dropped (an incompatible store must not steer pruning).
    pub fn import_model(&mut self, kind: &'static str, state: &CostModelState) {
        if let Some(m) = CostModel::from_state(state) {
            self.models.insert(kind, m);
        }
    }

    pub fn margin(&self) -> f64 {
        self.policy.margin
    }

    /// Selects the trials of one batch to simulate (see
    /// [`astra_predict::select_trials`]); draws the epsilon tail from the
    /// fixed-seed RNG in trial order.
    pub fn select(&mut self, preds: &[Option<Vec<PredEntry>>]) -> Vec<bool> {
        select_trials(&self.policy, preds, &mut self.rng)
    }
}
