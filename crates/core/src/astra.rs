//! The custom wirer: Astra's top-level optimization loop (paper §4.7).
//!
//! [`Astra::optimize`] performs the work-conserving online exploration: each
//! trial executes one (simulated) training mini-batch under one candidate
//! configuration, harvests the fine-grained profile events, updates the
//! profile index and the update tree, and moves on. Phases:
//!
//! 1. **F — fusion chunking**: all fusion sets explore their (row, col)
//!    chunk choices *in parallel* (one trial advances every set).
//! 2. **K — kernel selection**: every realized GEMM shape explores the
//!    kernel libraries in parallel (three trials for the whole model).
//! 3. **S — stream scheduling**: super-epochs explore in parallel (barriers
//!    make them independent); epochs within a super-epoch explore
//!    prefix-wise; equivalence classes collapse the per-epoch choices.
//! 4. **A — allocation strategies**: a high-level fork; conflicted fusion
//!    sets re-explore per strategy (their profile keys carry the strategy
//!    context), unaffected measurements are shared via profile-index hits.
//!
//! A final playoff runs the best configuration of each allocation context
//! and picks the overall winner (§4.5.2).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use astra_exec::native_schedule;
use astra_gpu::{
    ClockMode, DeviceSpec, Engine, EngineCheckpoint, FaultPlan, GemmLibrary, GemmShape,
    RunResult, Schedule, Topology,
};
use astra_ir::Graph;
use astra_predict::{FeatureVec, PredEntry};
use astra_store::{StoreOptions, VerdictKind};

use crate::adaptive::{ExploreMode, UpdateNode, UpdateTree};
use crate::enumerate::epochs::{epoch_choices, partition_units, EpochAssignment, Partition};
use crate::error::AstraError;
use crate::parallel::{effective_workers, parallel_map, WorkerPool};
use crate::persist::{DriverStore, WarmState};
use crate::plan::{
    bind_libs, build_units_fragmented, emit_schedule, epoch_features, fusion_features,
    gradient_sync_bytes, kernel_features, placement_candidates, placement_features,
    DevicePlacement, ExecConfig, PlanCache, PlanContext, PlanKey, ProbeSpec, Probes, Unit,
};
use crate::predictor::Pruner;
use crate::profile::{ProfileIndex, ProfileKey};
use crate::simcache::{
    plan_prefix_batch, GroupShard, KeyCtx, PrefixPlan, SimCache, TrialBase, HIT_DEPTH_BUCKETS,
};

/// Maximum fault-triggered re-measurements per candidate before it is
/// quarantined. Each retry is a real training mini-batch (work-conserving),
/// so the budget is deliberately small.
const MAX_FAULT_RETRIES: u32 = 3;

/// A measurement is an outlier when it exceeds the key's recorded minimum
/// by this factor. The threshold sits between the autoboost jitter ceiling
/// (1.12x) and the smallest injected timing spike (2x), so legitimate clock
/// variance never triggers a re-measure while an undetected spike on a
/// previously measured key does.
const OUTLIER_FACTOR: f64 = 1.5;

/// Trials peeled off the update tree per lookahead batch. Deliberately a
/// constant rather than a multiple of the worker count: the batch
/// partition determines the prefix grouping, the capture plan, and every
/// sim-cache counter, so fixing it makes all of those bit-identical at
/// any worker count. 32 trials give the prefix trie enough material to
/// group on while keeping the batch's emitted schedules bounded in
/// memory. (Trial *outcomes* never depend on the batch size at all —
/// [`UpdateTree::lookahead`] batches replay the exact sequential trial
/// sequence.)
const LOOKAHEAD_TRIALS: usize = 32;

/// Whether `metric` is a statistical outlier against the samples already
/// indexed for `key`. First measurements are never outliers (there is no
/// history to contradict).
fn is_outlier(index: &ProfileIndex, key: &ProfileKey, metric: f64) -> bool {
    match index.get(key) {
        Some(best) if best > 0.0 => metric > best * OUTLIER_FACTOR,
        _ => false,
    }
}

/// Synthetic [`ProfileKey`] naming one quarantined *candidate*: the full
/// assignment over every variable the trial explored, one rendered key per
/// context slot. Quarantine marks must identify the candidate, not its
/// individual per-variable keys — per-variable marks from two different
/// quarantined candidates could otherwise combine to falsely match a
/// never-quarantined third combination.
fn quarantine_id(phase: &str, keys: impl IntoIterator<Item = ProfileKey>) -> ProfileKey {
    let contexts: Vec<String> = keys.into_iter().map(|k| k.to_string()).collect();
    ProfileKey::from_parts(contexts, format!("quarantine:{phase}"), 0)
}

/// Running totals for one [`Astra::optimize`] call, threaded through every
/// exploration phase.
#[derive(Default)]
struct ExploreStats {
    trials: usize,
    exploration_ns: f64,
    overhead_ns: f64,
    fault_events: usize,
    retries: usize,
    quarantined: usize,
    placements: usize,
    pruned: usize,
    bound_pruned: usize,
}

/// One prepared candidate simulation: the emitted schedule, its probes,
/// and the fault salt it runs under. Prepared sequentially in candidate
/// order; the batch runner ([`Astra::run_batch`]) derives each trial's
/// cache work plan (resume checkpoint + capture boundaries) from the
/// batch's prefix trie, not here.
struct Prepared {
    sched: Schedule,
    probes: Probes,
    salt: u64,
}

/// A batch trial's outcome: the simulated run plus the probes that decode
/// it (`None` for invalid or verify-rejected candidates).
type TrialOut = Option<(RunResult, Probes)>;

/// One trial's predictor features for one *active* adaptive variable: the
/// variable's tree id, its index in the phase's active-variable list, the
/// choice this trial assigns, the extracted features, and the
/// selection-time prediction (0 until the batch is scored, and forever in
/// cold batches — a zero prediction is never counted toward the MAE).
struct VarFeat {
    var: String,
    vidx: usize,
    choice: usize,
    feat: FeatureVec,
    pred: f64,
}

/// Per-trial feature sets for a lookahead batch, parallel to the prepared
/// candidates (`None` for invalid or verify-rejected trials).
type BatchFeats = Vec<Option<Vec<VarFeat>>>;

/// Outcome of one trial in a predictor-scored batch.
enum BatchOutcome {
    /// Invalid or verify-rejected candidate; the phase poisons its choices
    /// exactly as it would for a `None` result of the plain batch runner.
    Invalid,
    /// Simulated — selected by the policy, re-admitted by the regret
    /// guard, or part of a batch that was not pruned at all.
    Measured(RunResult, Probes),
    /// Pruned: the phase records the trial's predicted per-variable
    /// metrics in the update tree instead of measurements. The regret
    /// guard guarantees every recorded prediction exceeds the variable's
    /// measured best by more than the policy margin, so a prediction can
    /// never decide a variable's final assignment.
    Pruned,
    /// Vetoed by a sound critical-path lower bound: every active
    /// variable's floor strictly exceeds that variable's committed
    /// measured best, so the trial provably cannot win any variable. The
    /// phase records the floors (stamped into [`VarFeat::pred`]) in the
    /// update tree; unlike [`BatchOutcome::Pruned`] these entries are
    /// proven losses, not predictions, so no regret guard is needed.
    BoundPruned,
}

/// Whether trial `i` is provably dominated against `best`, the running
/// per-variable measured minima tagged with the choice that achieved each
/// (`vidx → (metric, choice)`). A trial is vetoed only when every active
/// variable either
///
/// * has a critical-path floor strictly above the variable's measured
///   best — the trial's true metric is ≥ the floor, so this choice loses
///   outright — or
/// * carries the *same* choice that achieved the measured best, so
///   re-simulating it can at most reinforce an assignment it already
///   holds (exploration pins exhausted variables at their incumbent, and
///   the incumbent's floor sits a jitter-width *below* its own measured
///   value, so requiring `floor > best` there would block every veto).
///
/// On veto, each variable's floor (clamped to the measured best for the
/// incumbent choice, which lacks one in epoch batches) is stamped into
/// [`VarFeat::pred`] so the phase records an entry that provably cannot
/// steal the variable from a measured candidate.
fn bound_veto(
    feats: &mut BatchFeats,
    bounds: &[Vec<(usize, f64)>],
    i: usize,
    best: &BTreeMap<usize, (f64, usize)>,
) -> bool {
    let Some(fs) = feats.get_mut(i).and_then(Option::as_mut) else { return false };
    if fs.is_empty() {
        return false;
    }
    let b = bounds.get(i).map_or(&[][..], Vec::as_slice);
    let floor_of = |vidx: usize| b.iter().find(|&&(v, _)| v == vidx).map(|&(_, f)| f);
    let veto = fs.iter().all(|vf| {
        best.get(&vf.vidx).is_some_and(|&(bst, bchoice)| {
            vf.choice == bchoice || floor_of(vf.vidx).is_some_and(|floor| floor > bst)
        })
    });
    if veto {
        for vf in fs.iter_mut() {
            let (bst, bchoice) = best[&vf.vidx];
            vf.pred = match floor_of(vf.vidx) {
                Some(f) if vf.choice == bchoice => f.min(bst),
                Some(f) => f,
                None => bst,
            };
        }
    }
    veto
}

/// The dominance inputs of one predicted batch: per-trial per-variable
/// critical-path floors (`vidx → floor`, empty when bound pruning is off
/// or the candidate had none) and the phase's committed per-variable
/// measured minima tagged with the choice that achieved each.
struct DominanceCtx<'a> {
    bounds: &'a [Vec<(usize, f64)>],
    prior_best: &'a BTreeMap<usize, (f64, usize)>,
}

/// Folds one measured trial's decoded per-variable metrics into `best`,
/// tagging each minimum with the choice trial `i` carried for it.
fn fold_best(
    best: &mut BTreeMap<usize, (f64, usize)>,
    feats: &BatchFeats,
    i: usize,
    metrics: &[(usize, f64)],
) {
    let Some(fs) = feats.get(i).and_then(Option::as_ref) else { return };
    for &(vidx, m) in metrics {
        let Some(choice) = fs.iter().find(|vf| vf.vidx == vidx).map(|vf| vf.choice) else {
            continue;
        };
        let e = best.entry(vidx).or_insert((f64::INFINITY, choice));
        if m < e.0 {
            *e = (m, choice);
        }
    }
}

/// One prefix group's jobs and results: the member trials in group order,
/// each tagged with its candidate index and pre-batch cache view.
type GroupJob = Vec<(usize, Prepared, TrialBase)>;
type GroupOut = (GroupShard, Vec<(usize, Result<TrialOut, AstraError>)>);

/// Executes one prefix group sequentially: probe the group shard (layered
/// over each trial's pre-batch base), simulate, absorb captures back into
/// the shard. Runs unchanged on the caller's thread or a pool worker —
/// everything it touches is owned by the job.
/// The simulation substrate a trial group runs on: the device (or the
/// full node topology when placement search is active), the clock mode,
/// and the fault plan. One value per batch, shared by every group.
#[derive(Clone, Copy)]
struct SimTarget<'a> {
    dev: &'a DeviceSpec,
    topo: Option<&'a Topology>,
    clock: ClockMode,
    faults: FaultPlan,
}

fn run_group(
    members: GroupJob,
    sim: SimTarget<'_>,
    ctx: KeyCtx,
    branches: &HashSet<u64>,
    use_cache: bool,
) -> GroupOut {
    let mut shard = GroupShard::new(ctx);
    let mut runs = Vec::with_capacity(members.len());
    for (i, p, base) in members {
        let (resume, caps) = if use_cache {
            shard.probe_and_plan(&p.sched, p.salt, &base, branches)
        } else {
            (None, Vec::new())
        };
        let res = match sim.topo {
            Some(t) => Engine::with_topology(t, sim.clock, sim.faults, p.salt)
                .run_incremental(&p.sched, resume.as_deref(), &caps),
            None => Engine::with_faults(sim.dev, sim.clock, sim.faults, p.salt)
                .run_incremental(&p.sched, resume.as_deref(), &caps),
        };
        runs.push((
            i,
            match res {
                Ok((r, captured)) => {
                    if use_cache {
                        shard.absorb(p.salt, captured);
                    }
                    Ok(Some((r, p.probes)))
                }
                Err(e) => Err(e.into()),
            },
        ));
    }
    (shard, runs)
}

/// Which adaptation dimensions are enabled (the paper's ablation columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// GEMM fusion chunk adaptation (Astra_F).
    pub fusion: bool,
    /// Kernel library selection (the K in Astra_FK).
    pub kernel: bool,
    /// Multi-stream scheduling (the S in Astra_FKS).
    pub streams: bool,
    /// Memory-allocation strategy fork (Astra_all).
    pub alloc: bool,
}

impl Dims {
    /// `Astra_F`: fusion only.
    pub fn f() -> Self {
        Dims { fusion: true, kernel: false, streams: false, alloc: false }
    }

    /// `Astra_FK`: fusion + kernel selection.
    pub fn fk() -> Self {
        Dims { kernel: true, ..Dims::f() }
    }

    /// `Astra_FKS`: fusion + kernels + streams.
    pub fn fks() -> Self {
        Dims { streams: true, ..Dims::fk() }
    }

    /// `Astra_all`: everything, including allocation adaptation.
    pub fn all() -> Self {
        Dims { alloc: true, ..Dims::fks() }
    }
}

/// Tuning knobs for an optimization run.
#[derive(Debug, Clone)]
pub struct AstraOptions {
    /// Enabled adaptation dimensions.
    pub dims: Dims,
    /// Streams used when stream adaptation is on.
    pub num_streams: usize,
    /// Super-epoch FLOP budget; `None` = 1/8 of the model per super-epoch.
    pub super_epoch_flops: Option<f64>,
    /// Simulated clock mode (the paper pins the base clock, §7).
    pub clock: ClockMode,
    /// Outermost profile-key context for *structure-dependent* measurements
    /// (fusion chunks, epochs). Bucketed dynamic-graph adaptation sets this
    /// to the bucket id (§5.5); kernel-shape measurements stay context-free
    /// because a GEMM's time depends only on its shape and library, so
    /// buckets share them through profile-index hits.
    pub key_context: Option<String>,
    /// Worker threads for evaluating candidate trials. The exploration
    /// driver batches metric-independent trials from the update tree
    /// ([`UpdateTree::lookahead`]), simulates them concurrently, and
    /// commits measurements in candidate order — so results are
    /// bit-identical at every setting. `0` = one worker per available CPU
    /// core; `1` = fully sequential evaluation.
    pub workers: usize,
    /// Fault injection applied to every simulated mini-batch (see
    /// [`FaultPlan`]). The driver re-measures candidates whose run reported
    /// a fault or whose measurement is a statistical outlier, with bounded
    /// retries and deterministic backoff; candidates still faulted after
    /// the budget are quarantined. [`FaultPlan::none`] (the default) is
    /// zero-cost.
    pub faults: FaultPlan,
    /// Whether to reuse engine checkpoints across candidate trials (see
    /// [`crate::SimCache`]). Resumed runs are bit-identical to cold runs,
    /// so this only changes wall-clock time; `false` forces every trial to
    /// simulate from `t = 0` and reports zero sim-cache counters.
    pub sim_cache: bool,
    /// Whether to statically verify every candidate plan before it runs
    /// (see [`crate::verify_plan`]): happens-before hazard analysis,
    /// event-liveness checks, and an allocation aliasing audit over the
    /// emitted schedule. Verdicts are cached per plan key, so repeated
    /// geometries cost nothing; rejected candidates are quarantined like
    /// persistently faulted ones instead of simulating. On by default.
    pub verify: bool,
    /// Whether to statically lint every candidate plan before it runs
    /// (see [`crate::lint_plan`]): liveness-based peak-memory accounting
    /// per device against [`DeviceSpec::mem_bytes`]. A plan whose peak
    /// live bytes exceed any device's capacity is rejected — quarantined
    /// like a
    /// verify-rejected plan — before a single simulated mini-batch is
    /// spent on it. Verdicts are cached per plan key and placement, so
    /// repeated geometries cost nothing. On by default.
    pub lint: bool,
    /// Whether to rewrite every emitted candidate schedule without its
    /// redundant event waits (see [`astra_lint::elide_redundant_syncs`])
    /// before simulating. The rewrite is reachability-preserving (elided
    /// schedules stay verify-clean) and keeps at least one wait per
    /// non-empty wait list, so the engine charges the same sync
    /// penalties and the simulated cost is bit-identical; only the
    /// schedules get shorter. Off by default.
    pub elide_syncs: bool,
    /// Whether sound critical-path lower bounds veto lookahead trials
    /// before simulation (see [`astra_lint::region_floors`]): a trial
    /// whose floor for *every* active variable strictly exceeds that
    /// variable's committed measured best provably cannot win any
    /// variable, so it is skipped and its floors recorded as losses.
    /// Composes with the learned predictor (the veto runs first) and
    /// preserves the final plan exactly. Self-disables under fault plans
    /// with a sub-unit straggler factor (which speed kernels up and
    /// would break the floors' soundness). Off by default.
    pub bound_prune: bool,
    /// Whether the learned cost predictor prunes lookahead batches (see
    /// [`astra_predict`]): once warm, each batch simulates only the
    /// predicted top-k choices per variable plus an exploration-epsilon
    /// tail, and pruned candidates inherit predicted costs under a
    /// bounded-regret guard that re-measures near-misses. Selection and
    /// training run sequentially on the driver thread in candidate order,
    /// so results stay bit-identical at any worker count; `false` disables
    /// pruning entirely, reports zero predictor counters, and reproduces
    /// the unpruned exploration exactly.
    pub predictor: bool,
    /// Predicted-cheapest choices per adaptive variable that are always
    /// simulated when the predictor prunes a batch (minimum 1).
    pub predictor_top_k: usize,
    /// Probability that an otherwise-pruned trial is simulated anyway
    /// (drawn from a fixed-seed deterministic RNG).
    pub predictor_epsilon: f64,
    /// Directory of the crash-safe on-disk store for warm exploration
    /// state (see [`astra_store`]). When set, the optimizer loads
    /// persisted full-run memos, verify/lint verdicts, and fault-matched
    /// quarantine marks before `optimize` — all outcome-invariant, so an
    /// interrupted run resumed against the same store produces the
    /// bit-identical final plan — and journals new state during the run.
    /// `None` (the default) disables persistence entirely and reports
    /// zeroed store counters. A store that fails to *open* degrades to
    /// `None` behavior (see [`Astra::store_error`]); a store that fails
    /// mid-run stops journaling but never fails the optimization.
    pub store_dir: Option<std::path::PathBuf>,
    /// Whether loaded profile samples and predictor weights also seed the
    /// in-memory exploration state. These steer the search (index hits
    /// skip measurements, warm models prune from the first batch), so the
    /// resulting plan may legitimately differ from a cold run's — this is
    /// cross-session warm-starting, not crash-resume, and carries no
    /// bit-identity claim. Off by default; requires `store_dir`.
    pub warm_index: bool,
    /// Write-fault injection for the store: after this many bytes of
    /// store writes, the store behaves as if the process was killed
    /// mid-write — the partial write is truncated at the boundary and
    /// everything after is dropped. This is the crash-recovery test
    /// harness ([`astra_store::StoreOptions::fail_after_bytes`]); when
    /// set it overrides the `ASTRA_STORE_CRASH_AFTER` environment hook
    /// the CLI gates use. The optimization itself always completes.
    pub store_crash_after: Option<u64>,
}

impl Default for AstraOptions {
    fn default() -> Self {
        AstraOptions {
            dims: Dims::all(),
            num_streams: 4,
            super_epoch_flops: None,
            clock: ClockMode::Fixed,
            key_context: None,
            workers: 0,
            faults: FaultPlan::none(),
            sim_cache: true,
            verify: true,
            lint: true,
            elide_syncs: false,
            bound_prune: false,
            predictor: true,
            predictor_top_k: 2,
            predictor_epsilon: 0.1,
            store_dir: None,
            warm_index: false,
            store_crash_after: None,
        }
    }
}

/// Outcome of an optimization run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Native single-stream baseline mini-batch time.
    pub native_ns: f64,
    /// Mini-batch time under the best configuration found.
    pub steady_ns: f64,
    /// Configurations explored — each one ran as a real training mini-batch
    /// (Table 7's metric).
    pub configs_explored: usize,
    /// Total simulated time spent in exploration mini-batches.
    pub exploration_ns: f64,
    /// Average fraction of exploration mini-batch time spent on profiling
    /// events (the paper bounds this at 0.5%, §6.4).
    pub profiling_overhead_frac: f64,
    /// The winning configuration.
    pub best: ExecConfig,
    /// Number of allocation strategies explored.
    pub strategies_explored: usize,
    /// Number of fusion sets the enumerator found.
    pub fusion_sets: usize,
    /// Number of super-epochs in the stream partition (0 if streams off).
    pub super_epochs: usize,
    /// Schedule-cache requests this run answered with already-built units
    /// (see [`crate::PlanCache`]).
    pub plan_cache_hits: u64,
    /// Schedule-cache requests this run that had to build units.
    pub plan_cache_misses: u64,
    /// Exploration mini-batches that reported at least one injected fault.
    pub fault_events: usize,
    /// Fault- or outlier-triggered re-measurements (each one a real
    /// mini-batch, counted in `configs_explored` too).
    pub retries: usize,
    /// Candidates excluded from the profile index and recorded as unusable
    /// in the update tree: still faulted after the retry budget, or
    /// rejected by the static verifier before running.
    pub quarantined: usize,
    /// Distinct candidate plans the static verifier analyzed this run (see
    /// [`crate::verify_plan`]). Verdicts are cached per plan key, so this
    /// counts verifier executions, not trials; zero when
    /// [`AstraOptions::verify`] is off.
    pub plans_verified: u64,
    /// Distinct plans the verifier rejected; every trial of a rejected
    /// plan is quarantined without simulating.
    pub verify_rejects: u64,
    /// Distinct plans the static linter rejected for over-capacity peak
    /// memory (`lint-mem-capacity`): every trial of a rejected plan is
    /// quarantined before simulating. Zero with [`AstraOptions::lint`]
    /// off.
    pub lint_rejects: u64,
    /// Redundant event waits elided from emitted candidate schedules
    /// (summed over every prepared trial). Zero with
    /// [`AstraOptions::elide_syncs`] off.
    pub syncs_elided: u64,
    /// Lookahead trials vetoed by sound critical-path lower bounds
    /// instead of simulating — skipped *in addition to* the learned
    /// predictor's `trials_pruned`, with the final plan provably
    /// unchanged. Zero with [`AstraOptions::bound_prune`] off.
    pub bound_pruned: usize,
    /// Simulated runs this call resumed from a cached engine checkpoint
    /// (see [`crate::SimCache`]). Zero when [`AstraOptions::sim_cache`] is
    /// off.
    pub sim_cache_hits: u64,
    /// Simulated runs this call had to start from `t = 0`.
    pub sim_cache_misses: u64,
    /// Fraction of simulated schedule commands skipped by resuming from
    /// checkpoints (0 with the cache off).
    pub resumed_fraction: f64,
    /// Histogram of sim-cache hit depths: bucket `b` counts resumes that
    /// skipped `[b/8, (b+1)/8)` of the run's commands, full-run memo
    /// replays land in the last bucket. All zeros with the cache off.
    pub sim_cache_hit_depth: [u64; HIT_DEPTH_BUCKETS],
    /// Prefix groups the cache-aware batch scheduler formed over this
    /// run's lookahead batches (see [`crate::plan_prefix_batch`]): fewer
    /// groups per batch means deeper shared prefixes between consecutive
    /// trials. Zero with the cache off.
    pub prefix_group_count: u64,
    /// SM busy fraction per device during the winning playoff run, indexed
    /// by device. Single-device runs report one entry; transfers and
    /// collectives occupy links, not SMs, so they never count as busy time.
    pub device_utilization: Vec<f64>,
    /// Steady-state mini-batch time weighted by the topology's total device
    /// cost (cheapest device = 1.0): lower is better, and a heterogeneous
    /// mix only wins over a cheaper subset if its speedup outpaces its
    /// added cost. Equals `steady_ns` on a single-device node.
    pub cost_per_throughput: f64,
    /// Candidate placements the placement phase considered (0 on a
    /// single-device node, where placement never varies).
    pub placements_explored: usize,
    /// Lookahead trials the learned predictor pruned instead of
    /// simulating: their update-tree entries are predicted costs, kept
    /// from ever winning a variable by the regret guard. Zero with
    /// [`AstraOptions::predictor`] off.
    pub trials_pruned: usize,
    /// Committed measurements the cost model trained on this run. Zero
    /// with the predictor off.
    pub predictor_updates: u64,
    /// Mean absolute error, in ns, between the predictor's selection-time
    /// score and the committed measurement over candidates that were both
    /// scored and simulated this run (0 when none were, or with the
    /// predictor off).
    pub predicted_vs_measured_mae: f64,
    /// Whether this optimizer started from a non-empty persistent store
    /// ([`AstraOptions::store_dir`] set and at least one record loaded).
    /// `false` with the store off or on a fresh (cold) store.
    pub warm_start: bool,
    /// Clean records loaded from the store at open. Zero with the store
    /// off.
    pub store_loaded_keys: u64,
    /// Records the store quarantined at open — torn tails, checksum or
    /// decode failures, version mismatches, plus records that decoded but
    /// failed domain validation. Each one degrades exactly its own key to
    /// a cold start; unaffected keys load normally. Zero with the store
    /// off.
    pub store_corrupt_records: u64,
    /// Records appended to the store's journal during this `optimize`
    /// call (samples, verdicts, quarantine marks, memos, predictor
    /// snapshots). Zero with the store off.
    pub store_journal_appends: u64,
    /// Snapshot compactions performed during this `optimize` call. Zero
    /// with the store off.
    pub store_compactions: u64,
}

impl Report {
    /// End-to-end speedup over the native baseline.
    pub fn speedup(&self) -> f64 {
        self.native_ns / self.steady_ns
    }
}

/// The Astra optimizer, bound to a training graph and a device.
#[derive(Debug)]
pub struct Astra<'g> {
    ctx: PlanContext<'g>,
    dev: &'g DeviceSpec,
    /// Multi-device node this optimizer targets, when built through
    /// [`Astra::with_topology`]; `dev` then aliases device 0. `None` keeps
    /// the classic single-device engine path.
    topo: Option<&'g Topology>,
    opts: AstraOptions,
    index: ProfileIndex,
    plan_cache: PlanCache,
    sim_cache: SimCache,
    /// Static-verification verdicts keyed by plan geometry and device
    /// placement: a geometry's first emitted schedule under each placement
    /// is analyzed once and the verdict reused for every later candidate
    /// sharing both. (Placement changes the wiring — replicas, transfers,
    /// collectives — without changing the unit geometry, so it must key
    /// the verdict alongside the plan key.)
    verify_cache: HashMap<(PlanKey, DevicePlacement), bool>,
    /// Cumulative count of verifier executions (cache misses).
    plans_verified: u64,
    /// Cumulative count of rejected plans.
    verify_rejects: u64,
    /// Static-lint verdicts, keyed like `verify_cache` (peak memory
    /// depends on both the unit geometry and the placement's wiring).
    lint_cache: HashMap<(PlanKey, DevicePlacement), bool>,
    /// Cumulative count of plans the linter rejected (over capacity).
    lint_rejects: u64,
    /// Cumulative count of redundant waits elided from emitted schedules.
    syncs_elided: u64,
    /// Monotonic fault-salt counter: every measured mini-batch gets the next
    /// salt, assigned in candidate order *before* a batch evaluates. Batch
    /// boundaries partition the same candidate sequence at every worker
    /// count, so the salt each candidate draws — and therefore every
    /// injected fault — is worker-count invariant.
    fault_seq: u64,
    /// Persistent worker pool for batch evaluation, created lazily on the
    /// first multi-group batch when `workers > 1` and reused for the
    /// optimizer's whole lifetime (no per-batch thread spawns).
    pool: Option<WorkerPool>,
    /// Cumulative count of prefix groups formed by cache-aware batch
    /// scheduling (stays zero while the sim cache is off).
    prefix_groups: u64,
    /// The learned cost predictor: model, pruning policy, epsilon RNG, and
    /// cumulative counters. Persists across `optimize` calls like the
    /// profile index, so steady-state re-exploration prunes from the first
    /// batch.
    pruner: Pruner,
    /// The persistent warm-state store, when [`AstraOptions::store_dir`]
    /// is set and the directory opened cleanly. All journaling is a no-op
    /// when `None`.
    store: Option<DriverStore>,
    /// Why the configured store could not be opened, if it couldn't; the
    /// optimizer then runs exactly as if `store_dir` were `None`.
    store_error: Option<String>,
    /// Whether the store loaded at least one record at open.
    warm_start: bool,
    /// Clean records loaded at open.
    store_loaded: u64,
    /// Records quarantined at open (store-level corruption plus
    /// domain-validation drops).
    store_corrupt: u64,
    /// Persisted verifier verdicts by plan fingerprint: consulted on a
    /// `verify_cache` miss before running the verifier, never mutated
    /// after load.
    warm_verify: HashMap<u64, bool>,
    /// Persisted linter verdicts, keyed like `warm_verify`.
    warm_lint: HashMap<u64, bool>,
    /// Persisted quarantine marks whose fault fingerprint matches this
    /// optimizer's fault plan: candidates measured under these keys are
    /// poisoned without re-probing (the fault plan is deterministic, so
    /// they would exhaust their retries again). Marks earned under other
    /// fault plans are ignored at load.
    warm_quarantine: HashSet<ProfileKey>,
}

impl<'g> Astra<'g> {
    /// Enumerates the optimization state space for `graph` on `dev`.
    pub fn new(graph: &'g Graph, dev: &'g DeviceSpec, opts: AstraOptions) -> Self {
        Astra::with_index(graph, dev, opts, ProfileIndex::new())
    }

    /// Enumerates the optimization state space for `graph` on a (possibly
    /// multi-device) `topo`. Device 0 doubles as the reference device for
    /// kernel cost lookups; on a multi-device node the placement dimension
    /// joins the exploration, and every simulated mini-batch runs on the
    /// topology engine (per-device clocks, link contention, collectives).
    /// A single-device topology behaves exactly like [`Astra::new`] on
    /// that device.
    pub fn with_topology(graph: &'g Graph, topo: &'g Topology, opts: AstraOptions) -> Self {
        let mut astra = Astra::with_index(graph, topo.device(0), opts, ProfileIndex::new());
        astra.topo = Some(topo);
        astra
    }

    /// Like [`Astra::new`], but seeded with an existing profile index —
    /// measurements from earlier runs (other buckets, earlier sessions) are
    /// reused through index hits instead of re-measured.
    pub fn with_index(
        graph: &'g Graph,
        dev: &'g DeviceSpec,
        opts: AstraOptions,
        index: ProfileIndex,
    ) -> Self {
        Astra::with_context(PlanContext::new(graph), dev, opts, index)
    }

    /// Like [`Astra::with_index`], but takes an already-enumerated
    /// [`PlanContext`] — callers that pre-lower graphs (e.g. bucketed
    /// dynamic-graph optimization sharing an `astra_exec::LoweringCache`)
    /// skip the redundant enumeration work.
    pub fn with_context(
        ctx: PlanContext<'g>,
        dev: &'g DeviceSpec,
        opts: AstraOptions,
        index: ProfileIndex,
    ) -> Self {
        let pruner = Pruner::new(opts.predictor, opts.predictor_top_k, opts.predictor_epsilon);
        let mut astra = Astra {
            ctx,
            dev,
            topo: None,
            opts,
            index,
            plan_cache: PlanCache::new(),
            sim_cache: SimCache::new(),
            verify_cache: HashMap::new(),
            plans_verified: 0,
            verify_rejects: 0,
            lint_cache: HashMap::new(),
            lint_rejects: 0,
            syncs_elided: 0,
            fault_seq: 0,
            pool: None,
            prefix_groups: 0,
            pruner,
            store: None,
            store_error: None,
            warm_start: false,
            store_loaded: 0,
            store_corrupt: 0,
            warm_verify: HashMap::new(),
            warm_lint: HashMap::new(),
            warm_quarantine: HashSet::new(),
        };
        if let Some(dir) = astra.opts.store_dir.clone() {
            let mut sopts = StoreOptions::from_env();
            if astra.opts.store_crash_after.is_some() {
                sopts.fail_after_bytes = astra.opts.store_crash_after;
            }
            match DriverStore::open(&dir, &sopts) {
                Ok((store, warm)) => astra.install_warm(store, warm),
                Err(e) => astra.store_error = Some(format!("{}: {e}", dir.display())),
            }
        }
        astra
    }

    /// Applies a freshly opened store's warm state: memos, verdicts, and
    /// fault-matched quarantine marks always (outcome-invariant — they
    /// change wall-clock, never the decision sequence); the profile index
    /// and predictor weights only under [`AstraOptions::warm_index`]
    /// (they steer the search).
    fn install_warm(&mut self, store: DriverStore, warm: WarmState) {
        self.store_loaded = warm.loaded_records;
        self.store_corrupt = warm.corrupt_records;
        self.warm_start = warm.loaded_records > 0;
        for (key, ck) in warm.memos {
            self.sim_cache.seed(key, ck);
        }
        self.warm_verify = warm.verify;
        self.warm_lint = warm.lint;
        let fault_fp = self.fault_fp();
        for (key, fp) in warm.quarantine {
            if fp == fault_fp {
                self.warm_quarantine.insert(key);
            }
        }
        if self.opts.warm_index {
            for (key, stats) in warm.index.iter() {
                // Measurements handed in via `with_index` outrank the
                // store's: the caller's index is this session's truth.
                if !self.index.contains(key) {
                    self.index.insert_stats(key.clone(), *stats);
                }
            }
            for (kind, state) in &warm.predictors {
                // Phase kinds are a closed set; records from a future
                // vocabulary are ignored rather than guessed at.
                for known in ["fuse", "kern", "epoch", "place"] {
                    if kind == known {
                        self.pruner.import_model(known, state);
                    }
                }
            }
        }
        self.store = Some(store);
    }

    /// This optimizer's fault-plan fingerprint as persisted in quarantine
    /// records (0 when fault injection is off, matching the sim-cache
    /// key normalization).
    fn fault_fp(&self) -> u64 {
        if self.opts.faults.is_none() {
            0
        } else {
            self.opts.faults.fingerprint()
        }
    }

    /// Why the store configured via [`AstraOptions::store_dir`] is not
    /// (or is no longer) persisting: the open failure if it never opened,
    /// or the first journaling error if it degraded mid-run. The
    /// optimizer still works — it simply runs cold / stops journaling —
    /// but callers that asked for persistence deserve to know they
    /// aren't getting it.
    pub fn store_error(&self) -> Option<&str> {
        self.store_error
            .as_deref()
            .or_else(|| self.store.as_ref().and_then(DriverStore::degraded))
    }

    /// Consumes the optimizer and returns its profile index (to thread into
    /// another run via [`Astra::with_index`]).
    pub fn into_index(self) -> ProfileIndex {
        self.index
    }

    /// The static enumeration (inspectable for diagnostics).
    pub fn context(&self) -> &PlanContext<'g> {
        &self.ctx
    }

    /// The profile index accumulated so far.
    pub fn profile_index(&self) -> &ProfileIndex {
        &self.index
    }

    /// Resolved worker count for candidate evaluation.
    fn workers(&self) -> usize {
        effective_workers(self.opts.workers)
    }

    /// The sim-cache key context for this optimizer's runs. Multi-device
    /// topologies fold their fingerprint into the key so a checkpoint
    /// captured under one device mix can never resume a run on another;
    /// single-device topologies key exactly like the plain device path.
    fn key_ctx(&self) -> KeyCtx {
        match self.topo {
            Some(t) => KeyCtx::with_topology(t, self.opts.clock, &self.opts.faults),
            None => KeyCtx::new(self.dev, self.opts.clock, &self.opts.faults),
        }
    }

    /// Probes the sim cache for the deepest checkpoint matching `sched`
    /// and plans this run's captures. Boundary-free schedules (the native
    /// baseline) and a disabled cache bypass entirely, counting nothing.
    fn sim_probe(
        &mut self,
        sched: &Schedule,
        salt: u64,
    ) -> (Option<Arc<EngineCheckpoint>>, Vec<usize>) {
        if !self.opts.sim_cache {
            return (None, Vec::new());
        }
        let ctx = self.key_ctx();
        self.sim_cache.probe_and_plan_ctx(sched, &ctx, salt)
    }

    /// Commits the checkpoints one run captured. Called in candidate order
    /// (the parallel stage only computes; all cache mutation is here).
    fn sim_absorb(&mut self, salt: u64, captured: Vec<EngineCheckpoint>) {
        if captured.is_empty() {
            return;
        }
        let ctx = self.key_ctx();
        if let Some(store) = self.store.as_mut() {
            // Journal under exactly the key the cache will file them by;
            // only full-run memos stick (mid-run captures export nothing).
            for ck in &captured {
                store.journal_memo(&ctx.key(ck.prefix_hash(), salt), ck);
            }
        }
        self.sim_cache.absorb_ctx(&ctx, salt, captured);
    }

    /// Commits one measurement: profile index always, store journal when
    /// persistence is on.
    fn commit_sample(&mut self, key: &ProfileKey, value_ns: f64) {
        self.index.record(key, value_ns);
        if let Some(store) = self.store.as_mut() {
            store.journal_sample(key, value_ns);
        }
    }

    /// Persists a retry-exhaustion quarantine mark for `key` under this
    /// run's fault fingerprint, so a future run against the same store and
    /// fault plan poisons the candidate without burning the retry budget
    /// again. Deliberately does *not* touch `warm_quarantine`: within the
    /// writing run, behavior stays identical to a store-less run.
    fn journal_quarantine(&mut self, key: &ProfileKey) {
        let fault_fp = self.fault_fp();
        if let Some(store) = self.store.as_mut() {
            store.journal_quarantine(key, fault_fp);
        }
    }

    /// Runs one prepared lookahead batch cache-aware and returns the
    /// outcomes in *candidate* order.
    ///
    /// The batch is ordered by [`plan_prefix_batch`]: candidates sharing
    /// long schedule prefixes become consecutive members of one prefix
    /// group, groups execute sequentially against a [`GroupShard`] (so a
    /// trial resumes from checkpoints its group siblings captured moments
    /// earlier), and the trie's branch points become the capture plan.
    /// Independent groups fan out over the persistent worker pool; their
    /// shards and counters merge back in deterministic group order at the
    /// batch barrier. Each trial's pre-batch cache view is snapshotted
    /// here, before anything runs — a resume can therefore never depend
    /// on which worker a sibling *group* landed on, and every counter is
    /// a pure function of batch content: bit-identical at any worker
    /// count, and zero with the cache off.
    fn run_batch(&mut self, prepared: Vec<Option<Prepared>>) -> Vec<Result<TrialOut, AstraError>> {
        let use_cache = self.opts.sim_cache;
        let chains: Vec<Vec<u64>> = prepared
            .iter()
            .map(|p| match p {
                Some(p) if use_cache => {
                    p.sched.boundaries().iter().map(|&(_, h)| h).collect()
                }
                _ => Vec::new(),
            })
            .collect();
        let plan = if use_cache {
            let plan = plan_prefix_batch(&chains);
            self.prefix_groups += plan.groups.len() as u64;
            plan
        } else {
            PrefixPlan::naive(prepared.len())
        };
        let ctx = self.key_ctx();
        let branches = Arc::new(plan.branches);

        let mut slots: Vec<Option<Prepared>> = prepared;
        let mut jobs: Vec<GroupJob> = Vec::with_capacity(plan.groups.len());
        for group in &plan.groups {
            let mut members: GroupJob = Vec::with_capacity(group.len());
            for &i in group {
                if let Some(p) = slots[i].take() {
                    let base = if use_cache {
                        self.sim_cache.trial_base(&p.sched, &ctx, p.salt)
                    } else {
                        TrialBase::default()
                    };
                    members.push((i, p, base));
                }
            }
            if !members.is_empty() {
                jobs.push(members);
            }
        }

        let clock = self.opts.clock;
        let faults = self.opts.faults;
        let workers = self.workers();
        let outs: Vec<GroupOut> = if workers > 1 && jobs.len() > 1 {
            let mut boxed: Vec<Box<dyn FnOnce() -> GroupOut + Send>> =
                Vec::with_capacity(jobs.len());
            for job in jobs {
                let dev = self.dev.clone();
                let topo = self.topo.cloned();
                let branches = Arc::clone(&branches);
                boxed.push(Box::new(move || {
                    let sim = SimTarget { dev: &dev, topo: topo.as_ref(), clock, faults };
                    run_group(job, sim, ctx, &branches, use_cache)
                }));
            }
            self.pool.get_or_insert_with(|| WorkerPool::new(workers)).run(boxed)
        } else {
            let sim = SimTarget { dev: self.dev, topo: self.topo, clock, faults };
            jobs.into_iter()
                .map(|job| run_group(job, sim, ctx, &branches, use_cache))
                .collect()
        };

        let mut results: Vec<Result<TrialOut, AstraError>> = Vec::with_capacity(slots.len());
        results.resize_with(slots.len(), || Ok(None));
        for (shard, runs) in outs {
            if use_cache {
                if let Some(store) = self.store.as_mut() {
                    for (key, ck) in shard.entries() {
                        store.journal_memo(key, ck);
                    }
                }
                self.sim_cache.merge_shard(shard);
            }
            for (i, res) in runs {
                results[i] = res;
            }
        }
        results
    }

    /// The topology fingerprint folded into predictor features (0 on the
    /// plain single-device path).
    fn topo_fp(&self) -> u64 {
        self.topo.map_or(0, Topology::fingerprint)
    }

    /// Runs one prepared lookahead batch through the learned-predictor
    /// pruning pipeline.
    ///
    /// When the predictor is cold on this phase `kind` (or off, or the
    /// batch has no variable whose choice varies), every candidate is
    /// simulated via [`Astra::run_batch`] — in candidate-order chunks
    /// when `bounds` are present so the lower-bound veto can skip trials
    /// that earlier chunks proved dominated, in one call otherwise.
    /// Otherwise:
    ///
    /// 1. **Score.** Every valid candidate's per-variable features are
    ///    scored by the model (filling [`VarFeat::pred`]).
    /// 2. **Select.** Per active variable, the trials carrying the top-k
    ///    predicted-cheapest choices are simulated, plus an
    ///    epsilon-probability tail drawn from the fixed-seed RNG.
    /// 3. **Regret guard.** After the selected wave runs, `decode` maps
    ///    each outcome to its per-variable metrics; any pruned trial whose
    ///    prediction for some variable lands within `(1 + margin)` of the
    ///    variable's measured best — including `prior_best`, the phase's
    ///    committed history — is re-admitted and simulated in a second
    ///    wave. What stays pruned is therefore predicted to lose by more
    ///    than the margin, so recording its prediction in the update tree
    ///    can never steal a variable from a measured candidate.
    ///
    /// Selection, the epsilon draws, and both waves happen on the driver
    /// thread in candidate order; outcomes are returned in candidate order
    /// for the phase's usual sequential commit loop.
    fn run_batch_predicted(
        &mut self,
        kind: &'static str,
        mut prepared: Vec<Option<Prepared>>,
        feats: &mut BatchFeats,
        dom: DominanceCtx<'_>,
        decode: impl Fn(&Probes, &RunResult) -> Vec<(usize, f64)>,
        stats: &mut ExploreStats,
    ) -> Result<Vec<BatchOutcome>, AstraError> {
        let DominanceCtx { bounds, prior_best } = dom;
        // Sound lower-bound veto, ahead of (and composing with) the
        // learned prune. A trial is skipped only when a per-variable
        // floor covers *every* active variable and each floor strictly
        // exceeds that variable's measured best so far: the trial's
        // true metrics are ≥ their floors, the bests only decrease, and
        // ties keep the earlier entry — so the vetoed trial provably
        // cannot change any variable's final assignment. (Under fault
        // injection a wave measurement that later fails its retries is
        // never committed, so a veto against it is empirical rather
        // than proven — the same caveat the regret guard's pruning
        // already carries.) The floors are unsound under a sub-unit
        // straggler factor (kernels run *faster* than solo), so the
        // veto self-disables there.
        let bound_ok = self.opts.bound_prune && self.opts.faults.straggler_factor >= 1.0;
        let mut vetoed = vec![false; prepared.len()];
        if bound_ok {
            for i in 0..prepared.len() {
                if prepared[i].is_some() && bound_veto(feats, bounds, i, prior_best) {
                    prepared[i] = None;
                    vetoed[i] = true;
                    stats.bound_pruned += 1;
                }
            }
        }

        let has_active =
            feats.iter().zip(&prepared).any(|(fs, p)| {
                p.is_some() && fs.as_ref().is_some_and(|fs| !fs.is_empty())
            });
        if !self.pruner.active(kind) || !has_active {
            // Cold path: no learned scores to select a wave with, but the
            // bound veto still composes — run the batch in candidate-order
            // chunks, fold each chunk's measured per-variable minima into
            // the running best, and re-test later chunks' floors against
            // it. The chunk partition is a pure function of the batch
            // length and decoding walks candidates in order, so outcomes
            // are identical at any worker count.
            let staged = bound_ok && bounds.iter().any(|b| !b.is_empty());
            if !staged {
                let mut outs = Vec::with_capacity(prepared.len());
                for (i, r) in self.run_batch(prepared).into_iter().enumerate() {
                    outs.push(match r? {
                        Some((r, p)) => BatchOutcome::Measured(r, p),
                        None if vetoed[i] => BatchOutcome::BoundPruned,
                        None => BatchOutcome::Invalid,
                    });
                }
                return Ok(outs);
            }
            let n = prepared.len();
            let chunk = 2.max(n / 8);
            let mut best = prior_best.clone();
            let mut slots = prepared;
            let mut results: Vec<TrialOut> = Vec::with_capacity(n);
            results.resize_with(n, || None);
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                for i in start..end {
                    if slots[i].is_some() && bound_veto(feats, bounds, i, &best) {
                        slots[i] = None;
                        vetoed[i] = true;
                        stats.bound_pruned += 1;
                    }
                }
                let wave: Vec<Option<Prepared>> = slots
                    .iter_mut()
                    .enumerate()
                    .map(|(i, s)| if (start..end).contains(&i) { s.take() } else { None })
                    .collect();
                for (i, r) in self.run_batch(wave).into_iter().enumerate() {
                    let Some((run, probes)) = r? else { continue };
                    let metrics = decode(&probes, &run);
                    fold_best(&mut best, feats, i, &metrics);
                    results[i] = Some((run, probes));
                }
                start = end;
            }
            let mut outs = Vec::with_capacity(n);
            for (i, res) in results.into_iter().enumerate() {
                outs.push(match res {
                    Some((r, p)) => BatchOutcome::Measured(r, p),
                    None if vetoed[i] => BatchOutcome::BoundPruned,
                    None => BatchOutcome::Invalid,
                });
            }
            return Ok(outs);
        }

        // Score every valid candidate with the current model.
        let mut preds: Vec<Option<Vec<PredEntry>>> = Vec::with_capacity(feats.len());
        for (fs, p) in feats.iter_mut().zip(&prepared) {
            preds.push(match fs {
                Some(fs) if p.is_some() => Some(
                    fs.iter_mut()
                        .map(|vf| {
                            vf.pred = self.pruner.predict_ns(kind, &vf.feat);
                            PredEntry {
                                var: vf.vidx,
                                choice: vf.choice,
                                predicted_ns: vf.pred,
                            }
                        })
                        .collect(),
                ),
                _ => None,
            });
        }
        let simulate = self.pruner.select(&preds);

        // Wave 1: the selected trials.
        let mut slots = prepared;
        let wave: Vec<Option<Prepared>> = slots
            .iter_mut()
            .zip(&simulate)
            .map(|(s, &sel)| if sel { s.take() } else { None })
            .collect();
        let mut results: Vec<TrialOut> = Vec::with_capacity(wave.len());
        for r in self.run_batch(wave) {
            results.push(r?);
        }

        // Measured best per active variable: this wave plus the phase's
        // committed history. Fault-spiked metrics only inflate values and
        // the guard takes minima, so noise can only cause extra
        // re-admissions, never hide one.
        let mut best = prior_best.clone();
        for (i, out) in results.iter().enumerate() {
            let Some((run, probes)) = out else { continue };
            let metrics = decode(probes, run);
            fold_best(&mut best, feats, i, &metrics);
        }

        // Regret guard: re-admit near-miss predictions (and any trial of a
        // variable with no measurement at all — conservative).
        let margin = self.pruner.margin();
        let readmit: Vec<bool> = slots
            .iter()
            .zip(feats.iter())
            .map(|(s, fs)| {
                s.is_some()
                    && fs.as_ref().is_some_and(|fs| {
                        fs.iter().any(|vf| {
                            best.get(&vf.vidx)
                                .is_none_or(|&(b, _)| vf.pred <= b * (1.0 + margin))
                        })
                    })
            })
            .collect();
        if readmit.contains(&true) {
            let wave2: Vec<Option<Prepared>> = slots
                .iter_mut()
                .zip(&readmit)
                .map(|(s, &r)| if r { s.take() } else { None })
                .collect();
            for (i, r) in self.run_batch(wave2).into_iter().enumerate() {
                if readmit[i] {
                    results[i] = r?;
                }
            }
        }

        let mut outs = Vec::with_capacity(slots.len());
        for (i, (slot, res)) in slots.into_iter().zip(results).enumerate() {
            outs.push(match res {
                Some((r, p)) => BatchOutcome::Measured(r, p),
                None if slot.is_some() => {
                    stats.pruned += 1;
                    BatchOutcome::Pruned
                }
                None if vetoed[i] => BatchOutcome::BoundPruned,
                None => BatchOutcome::Invalid,
            });
        }
        Ok(outs)
    }

    /// Statically verifies a candidate's emitted schedule the first time
    /// its plan key is seen, caching the verdict (libs and stream maps
    /// share the key: they reshuffle a geometry the verifier has already
    /// cleared or condemned). Returns whether the candidate may run; with
    /// [`AstraOptions::verify`] off this is always `true` and free.
    fn verify_candidate(&mut self, cfg: &ExecConfig, units: &[Unit], sched: &Schedule) -> bool {
        if !self.opts.verify {
            return true;
        }
        let key = (PlanCache::key(&self.ctx, cfg), cfg.placement.clone());
        if let Some(&clean) = self.verify_cache.get(&key) {
            return clean;
        }
        // Persisted verdicts answer before the verifier runs: the analysis
        // is a pure function of the plan, so a stored verdict is as good
        // as a fresh one (and costs nothing). Counters track verifier
        // *executions*, so a warm hit moves none of them.
        let fp = key.0.fingerprint(&key.1);
        if let Some(&clean) = self.warm_verify.get(&fp) {
            self.verify_cache.insert(key, clean);
            return clean;
        }
        let workers = self.workers();
        let report = crate::verify::verify_plan(&self.ctx, cfg, units, sched, workers);
        self.plans_verified += 1;
        let clean = report.is_clean();
        if !clean {
            self.verify_rejects += 1;
        }
        self.verify_cache.insert(key, clean);
        if let Some(store) = self.store.as_mut() {
            store.journal_verdict(VerdictKind::Verify, fp, clean);
        }
        clean
    }

    /// Statically lints a candidate's emitted schedule the first time its
    /// plan key and placement are seen, caching the verdict. Only
    /// error-severity findings (`lint-mem-capacity`) reject a plan;
    /// advisories never block exploration. With [`AstraOptions::lint`]
    /// off this is always `true` and free.
    fn lint_candidate(&mut self, cfg: &ExecConfig, units: &[Unit], sched: &Schedule) -> bool {
        if !self.opts.lint {
            return true;
        }
        let key = (PlanCache::key(&self.ctx, cfg), cfg.placement.clone());
        if let Some(&clean) = self.lint_cache.get(&key) {
            return clean;
        }
        let fp = key.0.fingerprint(&key.1);
        if let Some(&clean) = self.warm_lint.get(&fp) {
            self.lint_cache.insert(key, clean);
            return clean;
        }
        let report =
            crate::verify::lint_plan(&self.ctx, cfg, units, sched, &self.lint_topology(), 1);
        let clean = report.errors() == 0;
        if !clean {
            self.lint_rejects += 1;
        }
        self.lint_cache.insert(key, clean);
        if let Some(store) = self.store.as_mut() {
            store.journal_verdict(VerdictKind::Lint, fp, clean);
        }
        clean
    }

    /// Admission control for one prepared candidate: the static verifier
    /// (hazards) then the static linter (resources). Rejections from
    /// either quarantine the candidate before it simulates.
    fn admit_candidate(&mut self, cfg: &ExecConfig, units: &[Unit], sched: &Schedule) -> bool {
        self.verify_candidate(cfg, units, sched) && self.lint_candidate(cfg, units, sched)
    }

    /// The topology candidate lints and floors evaluate against: the real
    /// node topology when placement search is active, else the plain
    /// device wrapped as a single-device node.
    fn lint_topology(&self) -> Topology {
        match self.topo {
            Some(t) => t.clone(),
            None => Topology::single(self.dev.clone()),
        }
    }

    /// Applies redundant-sync elision to an emitted schedule when
    /// [`AstraOptions::elide_syncs`] is on (counting the removed waits);
    /// a no-op pass-through otherwise. Elision preserves the verifier's
    /// verdict and the engine's simulated cost bit-for-bit, so it is
    /// applied after admission and before the trial runs.
    fn maybe_elide(&mut self, sched: Schedule) -> Schedule {
        if !self.opts.elide_syncs {
            return sched;
        }
        let (out, n) = astra_lint::elide_redundant_syncs(&sched);
        self.syncs_elided += n as u64;
        out
    }

    /// One simulated mini-batch through the sim cache: probe, run
    /// incrementally, absorb. The sequential path — the native baseline,
    /// playoff runs, and fault retries all come through here.
    fn sim_run(&mut self, sched: &Schedule, salt: u64) -> Result<RunResult, AstraError> {
        let (resume, caps) = self.sim_probe(sched, salt);
        let (r, captured) = match self.topo {
            Some(t) => Engine::with_topology(t, self.opts.clock, self.opts.faults, salt)
                .run_incremental(sched, resume.as_deref(), &caps)?,
            None => Engine::with_faults(self.dev, self.opts.clock, self.opts.faults, salt)
                .run_incremental(sched, resume.as_deref(), &caps)?,
        };
        self.sim_absorb(salt, captured);
        Ok(r)
    }

    /// Runs `sched`, re-running under deterministic retry salts while the
    /// run reports an injected fault (bounded by [`MAX_FAULT_RETRIES`]).
    /// Every attempt is a real mini-batch; the caller decides whether the
    /// attempts count as exploration trials. Returns the fastest attempt,
    /// the number of mini-batches run, and their summed simulated time.
    /// With [`FaultPlan::none`] this is exactly one clean run.
    fn measured_run(
        &mut self,
        sched: &Schedule,
        salt: u64,
        stats: &mut ExploreStats,
    ) -> Result<(RunResult, usize, f64), AstraError> {
        let mut runs = 0usize;
        let mut spent = 0.0;
        let mut best: Option<RunResult> = None;
        for attempt in 0..=MAX_FAULT_RETRIES {
            let r = self.sim_run(sched, FaultPlan::attempt_salt(salt, attempt))?;
            runs += 1;
            spent += r.total_ns;
            let faulted = r.faults.any();
            if faulted {
                stats.fault_events += 1;
            }
            if best.as_ref().is_none_or(|b| r.total_ns < b.total_ns) {
                best = Some(r);
            }
            if !faulted {
                break;
            }
            if attempt < MAX_FAULT_RETRIES {
                stats.retries += 1;
            }
        }
        Ok((best.expect("at least one attempt ran"), runs, spent))
    }

    /// Runs the full work-conserving exploration and returns the report.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying simulation fails; invalid fusion
    /// configurations (cyclic unit graphs) are skipped, not fatal.
    pub fn optimize(&mut self) -> Result<Report, AstraError> {
        let mut stats = ExploreStats::default();
        let native_salt = self.fault_seq;
        self.fault_seq += 1;
        let native_sched = native_schedule(&self.ctx.lowering);
        let (native, _, _) = self.measured_run(&native_sched, native_salt, &mut stats)?;
        let native_ns = native.total_ns;
        let cache_hits0 = self.plan_cache.hits();
        let cache_misses0 = self.plan_cache.misses();
        let sim_hits0 = self.sim_cache.hits();
        let sim_misses0 = self.sim_cache.misses();
        let sim_resumed0 = self.sim_cache.resumed_cmds();
        let sim_total0 = self.sim_cache.total_cmds();
        let sim_depth0 = self.sim_cache.hit_depth();
        let groups0 = self.prefix_groups;
        let verified0 = self.plans_verified;
        let rejects0 = self.verify_rejects;
        let lint_rejects0 = self.lint_rejects;
        let syncs_elided0 = self.syncs_elided;
        let pred_upd0 = self.pruner.updates();
        let pred_err0 = self.pruner.abs_err_ns;
        let pred_errn0 = self.pruner.err_samples;
        let journal0 = self.store.as_ref().map_or(0, DriverStore::journal_appends);
        let compact0 = self.store.as_ref().map_or(0, DriverStore::compactions);

        let dims = self.opts.dims;
        let strategies = if dims.alloc { self.ctx.alloc.strategies.len() } else { 1 };

        let mut best_overall: Option<(f64, ExecConfig, usize, Vec<f64>)> = None;

        for strategy in 0..strategies {
            let mut cfg = ExecConfig::baseline();
            cfg.strategy = strategy;
            let strat_ctx = (strategies > 1).then(|| format!("alloc:{strategy}"));

            if dims.fusion {
                self.explore_fusion(&mut cfg, strat_ctx.as_deref(), &mut stats)?;
            }
            if dims.kernel {
                self.explore_kernels(&mut cfg, &mut stats)?;
            }
            let mut partition = None;
            if dims.streams {
                partition = self.explore_streams(&mut cfg, strat_ctx.as_deref(), &mut stats)?;
            }
            // Phase P: placement across the node's devices (no-op without a
            // multi-device topology).
            self.explore_placements(&mut cfg, strat_ctx.as_deref(), &mut stats)?;

            // Context playoff run: best configuration end-to-end (§4.7).
            // Bounded fault retries keep the strategy comparison honest — a
            // spiked playoff would otherwise disqualify a good context.
            // Super-epoch partitions only shape single-device schedules:
            // multi-device placements emit their own wiring.
            let units = self.plan_cache.units_for(&self.ctx, &cfg)?;
            let playoff_partition =
                if cfg.placement.is_single() { partition.as_ref() } else { None };
            let (sched, _) =
                emit_schedule(&self.ctx, &cfg, &units, playoff_partition, &ProbeSpec::none());
            if !self.admit_candidate(&cfg, &units, &sched) {
                stats.quarantined += 1;
                continue;
            }
            let sched = self.maybe_elide(sched);
            let salt = self.fault_seq;
            self.fault_seq += 1;
            let (r, runs, spent) = self.measured_run(&sched, salt, &mut stats)?;
            stats.trials += runs;
            stats.exploration_ns += spent;
            let se_count = playoff_partition.map_or(0, |p| p.super_epochs.len());
            if best_overall.as_ref().is_none_or(|(b, ..)| r.total_ns < *b) {
                // Utilization covers every device in the node, including
                // ones the winning placement leaves idle.
                let mut util = r.device_utilization(&sched);
                util.resize(self.topo.map_or(1, Topology::num_devices), 0.0);
                best_overall = Some((r.total_ns, cfg, se_count, util));
            }
        }

        let Some((steady_ns, best, super_epochs, device_utilization)) = best_overall else {
            return Err(AstraError::AllPlansRejected(format!(
                "{} verify reject(s), {} lint reject(s) across {strategies} strategies",
                self.verify_rejects - rejects0,
                self.lint_rejects - lint_rejects0,
            )));
        };
        let cost_per_throughput = match self.topo {
            Some(t) => t.total_cost() * steady_ns,
            None => steady_ns,
        };
        // Seal the run: flush learned predictor snapshots and compact when
        // the journal has grown past the auto-compaction threshold. Store
        // trouble degrades to a cold cache, never to a failed optimize.
        if let Some(store) = self.store.as_mut() {
            store.finish_run(self.pruner.export_models());
        }
        Ok(Report {
            native_ns,
            steady_ns,
            configs_explored: stats.trials,
            exploration_ns: stats.exploration_ns,
            profiling_overhead_frac: if stats.exploration_ns > 0.0 {
                stats.overhead_ns / stats.exploration_ns
            } else {
                0.0
            },
            best,
            strategies_explored: strategies,
            fusion_sets: self.ctx.sets.len(),
            super_epochs,
            plan_cache_hits: self.plan_cache.hits() - cache_hits0,
            plan_cache_misses: self.plan_cache.misses() - cache_misses0,
            fault_events: stats.fault_events,
            retries: stats.retries,
            quarantined: stats.quarantined,
            plans_verified: self.plans_verified - verified0,
            verify_rejects: self.verify_rejects - rejects0,
            lint_rejects: self.lint_rejects - lint_rejects0,
            syncs_elided: self.syncs_elided - syncs_elided0,
            bound_pruned: stats.bound_pruned,
            sim_cache_hits: self.sim_cache.hits() - sim_hits0,
            sim_cache_misses: self.sim_cache.misses() - sim_misses0,
            resumed_fraction: {
                let total = self.sim_cache.total_cmds() - sim_total0;
                if total == 0 {
                    0.0
                } else {
                    (self.sim_cache.resumed_cmds() - sim_resumed0) as f64 / total as f64
                }
            },
            sim_cache_hit_depth: {
                let now = self.sim_cache.hit_depth();
                std::array::from_fn(|b| now[b] - sim_depth0[b])
            },
            prefix_group_count: self.prefix_groups - groups0,
            device_utilization,
            cost_per_throughput,
            placements_explored: stats.placements,
            trials_pruned: stats.pruned,
            predictor_updates: self.pruner.updates() - pred_upd0,
            predicted_vs_measured_mae: {
                let n = self.pruner.err_samples - pred_errn0;
                if n == 0 {
                    0.0
                } else {
                    (self.pruner.abs_err_ns - pred_err0) / n as f64
                }
            },
            warm_start: self.warm_start,
            store_loaded_keys: self.store_loaded,
            store_corrupt_records: self.store_corrupt,
            store_journal_appends: self
                .store
                .as_ref()
                .map_or(0, DriverStore::journal_appends)
                .saturating_sub(journal0),
            store_compactions: self
                .store
                .as_ref()
                .map_or(0, DriverStore::compactions)
                .saturating_sub(compact0),
        })
    }

    /// Phase P: placement exploration across the node's devices. The
    /// candidate placements — single-device, data-parallel batch splits
    /// (equal and, on heterogeneous mixes, capability-proportional), and
    /// layer-wise model-parallel cuts — form one parallel adaptive
    /// variable, explored through the same lookahead / batched /
    /// cache-aware trial machinery as the other phases. The metric is the
    /// whole mini-batch time; profile keys fold the topology fingerprint
    /// so a shared index never leaks timings across device mixes.
    fn explore_placements(
        &mut self,
        cfg: &mut ExecConfig,
        strat_ctx: Option<&str>,
        stats: &mut ExploreStats,
    ) -> Result<(), AstraError> {
        let Some(topo) = self.topo else { return Ok(()) };
        if !topo.is_multi() {
            return Ok(());
        }
        let units = self.plan_cache.units_for(&self.ctx, cfg)?;
        let candidates = placement_candidates(topo, &units);
        stats.placements = stats.placements.max(candidates.len());
        if candidates.len() <= 1 {
            return Ok(());
        }

        let bucket_ctx = self.opts.key_context.clone();
        let fp = topo.fingerprint();
        let strat_owned = strat_ctx.map(str::to_owned);
        let key_for = move |choice: usize| {
            let mut k = ProfileKey::entity(format!("place:{fp:016x}"), choice);
            if let Some(c) = &strat_owned {
                k = k.in_context(c.clone());
            }
            if let Some(b) = &bucket_ctx {
                k = k.in_context(b.clone());
            }
            k
        };

        let all_hit = (0..candidates.len()).all(|c| self.index.contains(&key_for(c)));
        if all_hit {
            let (best, _) = self
                .index
                .best_choice(&key_for, candidates.len())
                .expect("all hits implies a best");
            cfg.placement = candidates[best].clone();
            return Ok(());
        }

        let mut tree = UpdateTree::new(UpdateNode::group(
            ExploreMode::Parallel,
            vec![UpdateNode::var("placement".to_owned(), candidates.len())],
        ));
        let sync_bytes = gradient_sync_bytes(self.ctx.graph);
        let mut best_measured: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
        let bound_topo = self.opts.bound_prune.then(|| self.lint_topology());

        loop {
            let batch = tree.lookahead(LOOKAHEAD_TRIALS);
            if batch.is_empty() {
                break;
            }
            let cfgs: Vec<ExecConfig> = batch
                .iter()
                .map(|asg| {
                    let mut c = cfg.clone();
                    c.placement = candidates[asg["placement"]].clone();
                    c
                })
                .collect();

            let salt0 = self.fault_seq;
            self.fault_seq += batch.len() as u64;

            // Sequential prepare in candidate order: placements share the
            // unit geometry, so every trial is a schedule-cache hit and
            // only the wiring differs.
            let mut prepared: Vec<Option<Prepared>> = Vec::with_capacity(cfgs.len());
            for (i, c) in cfgs.iter().enumerate() {
                let salt = salt0 + i as u64;
                let alloc_fault = self.opts.faults.alloc_event(salt);
                let frag;
                let units_run: &[Unit] = match alloc_fault {
                    Some(word) => {
                        frag = build_units_fragmented(&self.ctx, c, word)?;
                        &frag
                    }
                    None => &units,
                };
                let (sched, probes) =
                    emit_schedule(&self.ctx, c, units_run, None, &ProbeSpec::none());
                if alloc_fault.is_none() && !self.admit_candidate(c, units_run, &sched) {
                    stats.quarantined += 1;
                    prepared.push(None);
                    continue;
                }
                prepared.push(Some(Prepared { sched: self.maybe_elide(sched), probes, salt }));
            }

            // Whole-run lower bound per candidate: the placement metric is
            // the mini-batch time itself, so the critical-path floor over
            // the emitted wiring bounds it directly.
            let bounds: Vec<Vec<(usize, f64)>> = match &bound_topo {
                Some(t) => prepared
                    .iter()
                    .map(|p| {
                        p.as_ref().map_or(Vec::new(), |p| {
                            vec![(0, astra_lint::critical_path_floor(&p.sched, t, &|_, _| None))]
                        })
                    })
                    .collect(),
                None => Vec::new(),
            };

            let fp_self = self.topo_fp();
            let mut feats: BatchFeats = cfgs
                .iter()
                .zip(&prepared)
                .zip(&batch)
                .map(|((c, p), asg)| {
                    p.as_ref().map(|_| {
                        vec![VarFeat {
                            var: "placement".to_owned(),
                            vidx: 0,
                            choice: asg["placement"],
                            feat: placement_features(c, fp_self, &units, sync_bytes),
                            pred: 0.0,
                        }]
                    })
                })
                .collect();

            let outcomes = self.run_batch_predicted(
                "place",
                prepared,
                &mut feats,
                DominanceCtx { bounds: &bounds, prior_best: &best_measured },
                |_, r| vec![(0, r.total_ns)],
                stats,
            )?;

            for (bi, outcome) in outcomes.into_iter().enumerate() {
                let asg = tree.next_trial().expect("lookahead bounds the batch");
                debug_assert_eq!(asg, batch[bi]);
                let salt = salt0 + bi as u64;
                let (r, _) = match outcome {
                    BatchOutcome::Invalid => {
                        tree.poison("placement");
                        continue;
                    }
                    BatchOutcome::Pruned | BatchOutcome::BoundPruned => {
                        for vf in feats[bi].iter().flatten() {
                            tree.record(&vf.var, vf.pred);
                        }
                        continue;
                    }
                    BatchOutcome::Measured(r, p) => (r, p),
                };
                let pkey = key_for(asg["placement"]);
                if self.warm_quarantine.contains(&pkey) {
                    // Persisted mark under this exact fault plan: the
                    // failures are deterministic, so skip the retry budget
                    // and poison directly.
                    stats.quarantined += 1;
                    tree.poison("placement");
                    continue;
                }
                let mut total = r.total_ns;
                let mut faulted = r.faults.any();
                let mut attempt = 0u32;
                let committed = loop {
                    stats.trials += 1;
                    stats.exploration_ns += total;
                    if faulted {
                        stats.fault_events += 1;
                    }
                    let suspect = faulted || is_outlier(&self.index, &pkey, total);
                    if !suspect {
                        tree.record("placement", total);
                        self.commit_sample(&pkey, total);
                        if let Some(vf) = feats[bi].iter().flatten().next() {
                            self.pruner.observe("place", &vf.feat, vf.pred, total);
                        }
                        let choice = asg["placement"];
                        let e = best_measured.entry(0).or_insert((f64::INFINITY, choice));
                        if total < e.0 {
                            *e = (total, choice);
                        }
                        break true;
                    }
                    if attempt >= MAX_FAULT_RETRIES {
                        break false;
                    }
                    attempt += 1;
                    stats.retries += 1;
                    let rsalt = FaultPlan::attempt_salt(salt, attempt);
                    let frag;
                    let units_r: &[Unit] = match self.opts.faults.alloc_event(rsalt) {
                        Some(word) => {
                            frag = build_units_fragmented(&self.ctx, &cfgs[bi], word)?;
                            &frag
                        }
                        None => &units,
                    };
                    let (sched, _) =
                        emit_schedule(&self.ctx, &cfgs[bi], units_r, None, &ProbeSpec::none());
                    let sched = self.maybe_elide(sched);
                    let r = self.sim_run(&sched, rsalt)?;
                    total = r.total_ns;
                    faulted = r.faults.any();
                };
                if !committed {
                    stats.quarantined += 1;
                    tree.poison("placement");
                    self.journal_quarantine(&pkey);
                }
            }
        }

        let best = tree.best_assignment();
        cfg.placement = candidates[best["placement"]].clone();
        Ok(())
    }

    /// Phase F: parallel exploration of per-set chunk choices.
    fn explore_fusion(
        &mut self,
        cfg: &mut ExecConfig,
        strat_ctx: Option<&str>,
        stats: &mut ExploreStats,
    ) -> Result<(), AstraError> {
        // Choice list per set: cartesian (row chunk, col chunk).
        type ChoiceList = (String, Vec<(usize, usize)>, bool);
        let mut choice_lists: Vec<ChoiceList> = Vec::new();
        for set in &self.ctx.sets {
            let mut choices = Vec::new();
            for &rc in &set.row_chunks() {
                for &cc in &set.col_chunks() {
                    choices.push((rc, cc));
                }
            }
            let ctx_dependent = self.ctx.alloc.conflicted_sets.contains(&set.id);
            choice_lists.push((set.id.clone(), choices, ctx_dependent));
        }

        let bucket_ctx = self.opts.key_context.clone();
        let key_for = move |set_id: &str, ctx_dep: bool, choice: usize| {
            let mut k = ProfileKey::entity(format!("fuse:{set_id}"), choice);
            if let (true, Some(c)) = (ctx_dep, strat_ctx) {
                k = k.in_context(c.to_owned());
            }
            if let Some(b) = &bucket_ctx {
                k = k.in_context(b.clone());
            }
            k
        };

        // Sets whose every choice is already indexed (from a previous
        // strategy) need no re-exploration: pick best from the index.
        let mut vars = Vec::new();
        let mut explored_sets = Vec::new();
        for (set_id, choices, ctx_dep) in &choice_lists {
            let all_hit = choices
                .iter()
                .enumerate()
                .all(|(ci, _)| self.index.contains(&key_for(set_id, *ctx_dep, ci)));
            if all_hit {
                let (best_ci, _) = self
                    .index
                    .best_choice(|c| key_for(set_id, *ctx_dep, c), choices.len())
                    .expect("all hits implies a best");
                cfg.chunks.insert(set_id.clone(), choices[best_ci]);
            } else {
                vars.push(UpdateNode::var(set_id.clone(), choices.len()));
                explored_sets.push((set_id.clone(), choices.clone(), *ctx_dep));
            }
        }
        if vars.is_empty() {
            return Ok(());
        }
        let mut tree = UpdateTree::new(UpdateNode::group(ExploreMode::Parallel, vars));
        let workers = self.workers();

        // Fusion-set index (into `ctx.sets`) → active-variable index, for
        // mapping probe metrics to predictor variables.
        let mut si_vidx: BTreeMap<usize, usize> = BTreeMap::new();
        for (vidx, (set_id, _, _)) in explored_sets.iter().enumerate() {
            if let Some(si) = self.ctx.sets.iter().position(|s| s.id == *set_id) {
                si_vidx.insert(si, vidx);
            }
        }
        let mut best_measured: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
        let bound_topo = self.opts.bound_prune.then(|| self.lint_topology());

        // A valid candidate's harvested measurements, computed on a worker.
        struct Outcome {
            total_ns: f64,
            probe_records: usize,
            faulted: bool,
            set_metrics: Vec<(usize, f64)>,
        }

        loop {
            let batch = tree.lookahead(LOOKAHEAD_TRIALS);
            if batch.is_empty() {
                break;
            }
            let cfgs: Vec<ExecConfig> = batch
                .iter()
                .map(|asg| {
                    let mut c = cfg.clone();
                    for (set_id, choices, _) in &explored_sets {
                        c.chunks.insert(set_id.clone(), choices[asg[set_id]]);
                    }
                    c
                })
                .collect();

            // Schedule-cache bookkeeping happens in candidate order so the
            // hit/miss counters are deterministic, then the batch's missing
            // geometries build on the worker pool.
            let keys: Vec<PlanKey> = cfgs.iter().map(|c| PlanCache::key(&self.ctx, c)).collect();
            let mut to_build: Vec<usize> = Vec::new();
            for (i, key) in keys.iter().enumerate() {
                if self.plan_cache.contains(key) || to_build.iter().any(|&j| keys[j] == *key) {
                    self.plan_cache.count_hit();
                } else {
                    self.plan_cache.count_miss();
                    to_build.push(i);
                }
            }
            let ctx = &self.ctx;
            let built = parallel_map(workers, &to_build, |_, &i| {
                PlanCache::build_structural(ctx, &cfgs[i])
            });
            for (&i, r) in to_build.iter().zip(built) {
                self.plan_cache.insert(keys[i].clone(), r);
            }

            // One salt per candidate, assigned in candidate order before the
            // batch evaluates: the injected faults are worker-count
            // invariant. Retries re-use the candidate's salt with an attempt
            // index, consuming no further sequence numbers.
            let salt0 = self.fault_seq;
            self.fault_seq += batch.len() as u64;

            // Sequential prepare, in candidate order: select this salt's
            // unit geometry (the alloc-fault draw is salt-determined, so a
            // degraded placement is known up front) and emit the schedule.
            // `None` marks an invalid (cyclic) or verify-rejected
            // combination.
            let mut prepared: Vec<Option<Prepared>> = Vec::with_capacity(cfgs.len());
            for (i, c) in cfgs.iter().enumerate() {
                let salt = salt0 + i as u64;
                let alloc_fault = self.opts.faults.alloc_event(salt);
                let units: Option<Arc<[Unit]>> = match alloc_fault {
                    // Transient allocation failure: this run sees the
                    // degraded, fragmented placement. Built outside the
                    // schedule cache so the clean geometry stays cached.
                    Some(word) => build_units_fragmented(&self.ctx, c, word).ok().map(Arc::from),
                    None => match self.plan_cache.get(&keys[i]).expect("batch keys are built") {
                        Err(_) => None,
                        Ok(u) => Some(bind_libs(u, c)),
                    },
                };
                let trial = match units {
                    None => None,
                    Some(u) => {
                        let (sched, probes) =
                            emit_schedule(&self.ctx, c, &u, None, &ProbeSpec::fusion_sets());
                        // Fragmented (fault-degraded) geometries skip the
                        // verifier: their placements differ from the clean
                        // plan the cached verdict would be keyed on.
                        if alloc_fault.is_none() && !self.admit_candidate(c, &u, &sched) {
                            stats.quarantined += 1;
                            None
                        } else {
                            Some(Prepared { sched: self.maybe_elide(sched), probes, salt })
                        }
                    }
                };
                prepared.push(trial);
            }

            let set_metrics_of = |probes: &Probes, r: &RunResult| -> Vec<(usize, f64)> {
                let mut m = Vec::new();
                for (si, nblocks, start, end) in &probes.set_regions {
                    if let Some(dt) = r.elapsed(*start, *end) {
                        m.push((*si, dt.max(0.0) * *nblocks as f64));
                    }
                }
                m
            };

            // Per-set metric floors: the probe-region floor scaled by the
            // same block count the measured metric is scaled by.
            let bounds: Vec<Vec<(usize, f64)>> = match &bound_topo {
                Some(t) => prepared
                    .iter()
                    .map(|p| {
                        p.as_ref().map_or(Vec::new(), |p| {
                            let regions: Vec<_> =
                                p.probes.set_regions.iter().map(|&(_, _, s, e)| (s, e)).collect();
                            let floors =
                                astra_lint::region_floors(&p.sched, &regions, t, &|_, _| None);
                            p.probes
                                .set_regions
                                .iter()
                                .zip(floors)
                                .filter_map(|(&(si, nb, _, _), f)| {
                                    si_vidx.get(&si).map(|&v| (v, f * nb as f64))
                                })
                                .collect()
                        })
                    })
                    .collect(),
                None => Vec::new(),
            };

            // Per-trial predictor features: one entry per explored set,
            // in active-variable order.
            let fp_self = self.topo_fp();
            let mut feats: BatchFeats = Vec::with_capacity(cfgs.len());
            for ((c, p), asg) in cfgs.iter().zip(&prepared).zip(&batch) {
                feats.push(p.as_ref().map(|_| {
                    explored_sets
                        .iter()
                        .enumerate()
                        .map(|(vidx, (set_id, choices, _))| {
                            let (rc, cc) = choices[asg[set_id]];
                            let set = self
                                .ctx
                                .sets
                                .iter()
                                .find(|s| s.id == *set_id)
                                .expect("explored sets come from the enumeration");
                            VarFeat {
                                var: set_id.clone(),
                                vidx,
                                choice: asg[set_id],
                                feat: fusion_features(c, fp_self, set, rc, cc),
                                pred: 0.0,
                            }
                        })
                        .collect()
                }));
            }

            // Fan the prepared batch out through the cache-aware runner
            // (prefix-grouped order, per-group shards, persistent pool),
            // pruning predicted-slow candidates once the model is warm.
            let outcomes = self.run_batch_predicted(
                "fuse",
                prepared,
                &mut feats,
                DominanceCtx { bounds: &bounds, prior_best: &best_measured },
                |probes, r| {
                    set_metrics_of(probes, r)
                        .into_iter()
                        .filter_map(|(si, m)| si_vidx.get(&si).map(|&v| (v, m)))
                        .collect()
                },
                stats,
            )?;

            // Commit measurements in candidate order: the tree and the
            // profile index see exactly the sequential driver's updates.
            for (bi, outcome) in outcomes.into_iter().enumerate() {
                let asg = tree.next_trial().expect("lookahead bounds the batch");
                debug_assert_eq!(asg, batch[bi]);
                let salt = salt0 + bi as u64;
                let mut o = match outcome {
                    BatchOutcome::Invalid => {
                        // Invalid or verify-rejected combination: poison
                        // these choices.
                        for (set_id, _, _) in &explored_sets {
                            tree.poison(set_id);
                        }
                        continue;
                    }
                    BatchOutcome::Pruned | BatchOutcome::BoundPruned => {
                        // Inherit predicted set metrics (or proven floors);
                        // either way every recorded value is strictly above
                        // the committed measured best.
                        for vf in feats[bi].iter().flatten() {
                            tree.record(&vf.var, vf.pred);
                        }
                        continue;
                    }
                    BatchOutcome::Measured(r, probes) => Outcome {
                        total_ns: r.total_ns,
                        probe_records: probes.probe_records,
                        faulted: r.faults.any(),
                        set_metrics: set_metrics_of(&probes, &r),
                    },
                };
                let qid = quarantine_id(
                    "fuse",
                    explored_sets.iter().map(|(id, _, ctx_dep)| key_for(id, *ctx_dep, asg[id])),
                );
                if self.warm_quarantine.contains(&qid) {
                    stats.quarantined += 1;
                    for (set_id, _, _) in &explored_sets {
                        tree.poison(set_id);
                    }
                    continue;
                }
                let mut attempt = 0u32;
                let committed = loop {
                    stats.trials += 1;
                    stats.exploration_ns += o.total_ns;
                    stats.overhead_ns += o.probe_records as f64 * self.dev.event_record_cost_ns;
                    if o.faulted {
                        stats.fault_events += 1;
                    }
                    // Probe regions are single-stream and interference-free,
                    // so a measurement far above the key's recorded minimum
                    // is noise even when the run reported no fault.
                    let suspect = o.faulted
                        || o.set_metrics.iter().any(|&(si, metric)| {
                            let set_id = &self.ctx.sets[si].id;
                            explored_sets.iter().any(|(id, _, ctx_dep)| {
                                id == set_id
                                    && is_outlier(
                                        &self.index,
                                        &key_for(set_id, *ctx_dep, asg[set_id]),
                                        metric,
                                    )
                            })
                        });
                    if !suspect {
                        for (si, metric) in o.set_metrics {
                            let set_id = &self.ctx.sets[si].id;
                            tree.record(set_id, metric);
                            if let Some((_, _, ctx_dep)) =
                                explored_sets.iter().find(|(id, _, _)| id == set_id)
                            {
                                let key = key_for(set_id, *ctx_dep, asg[set_id]);
                                self.commit_sample(&key, metric);
                            }
                            if let (Some(&v), Some(fs)) =
                                (si_vidx.get(&si), feats[bi].as_ref())
                            {
                                let vf = &fs[v];
                                self.pruner.observe("fuse", &vf.feat, vf.pred, metric);
                                let e =
                                    best_measured.entry(v).or_insert((f64::INFINITY, vf.choice));
                                if metric < e.0 {
                                    *e = (metric, vf.choice);
                                }
                            }
                        }
                        break true;
                    }
                    if attempt >= MAX_FAULT_RETRIES {
                        break false;
                    }
                    // Deterministic backoff: the retry re-measures under the
                    // candidate's salt at the next attempt index,
                    // sequentially and through the sim cache.
                    attempt += 1;
                    stats.retries += 1;
                    let rsalt = FaultPlan::attempt_salt(salt, attempt);
                    let units: Option<Arc<[Unit]>> = match self.opts.faults.alloc_event(rsalt) {
                        Some(word) => {
                            build_units_fragmented(&self.ctx, &cfgs[bi], word).ok().map(Arc::from)
                        }
                        None => match self.plan_cache.get(&keys[bi]).expect("batch keys are built")
                        {
                            Err(_) => None,
                            Ok(u) => Some(bind_libs(u, &cfgs[bi])),
                        },
                    };
                    match units {
                        None => break false,
                        Some(u) => {
                            let (sched, probes) =
                                emit_schedule(&self.ctx, &cfgs[bi], &u, None, &ProbeSpec::fusion_sets());
                            let sched = self.maybe_elide(sched);
                            let r = self.sim_run(&sched, rsalt)?;
                            o = Outcome {
                                total_ns: r.total_ns,
                                probe_records: probes.probe_records,
                                faulted: r.faults.any(),
                                set_metrics: set_metrics_of(&probes, &r),
                            };
                        }
                    }
                };
                if !committed {
                    // Still faulted after the retry budget: quarantine. The
                    // update tree sees +inf for these choices (so the best
                    // known configuration wins), and the profile index keeps
                    // no sample, leaving the candidate re-measurable later.
                    stats.quarantined += 1;
                    for (set_id, _, _) in &explored_sets {
                        tree.poison(set_id);
                    }
                    self.journal_quarantine(&qid);
                }
            }
        }

        let best = tree.best_assignment();
        for (set_id, choices, _) in &explored_sets {
            cfg.chunks.insert(set_id.clone(), choices[best[set_id]]);
        }
        Ok(())
    }

    /// Phase K: parallel exploration of kernel libraries per realized shape.
    fn explore_kernels(
        &mut self,
        cfg: &mut ExecConfig,
        stats: &mut ExploreStats,
    ) -> Result<(), AstraError> {
        let libs = GemmLibrary::all();
        let units = self.plan_cache.units_for(&self.ctx, cfg)?;
        let mut shapes: Vec<GemmShape> = units.iter().filter_map(|u| u.gemm_shape).collect();
        shapes.sort_unstable();
        shapes.dedup();

        // Kernel timings depend only on (shape, lib): context-free keys.
        let key_for =
            |shape: &GemmShape, choice: usize| ProfileKey::entity(format!("kern:{shape}"), choice);

        let mut vars = Vec::new();
        let mut explored: Vec<GemmShape> = Vec::new();
        for shape in &shapes {
            let all_hit = (0..libs.len()).all(|c| self.index.contains(&key_for(shape, c)));
            if all_hit {
                let (ci, _) = self
                    .index
                    .best_choice(|c| key_for(shape, c), libs.len())
                    .expect("all hits");
                cfg.libs.insert(*shape, libs[ci]);
            } else {
                vars.push(UpdateNode::var(format!("{shape}"), libs.len()));
                explored.push(*shape);
            }
        }
        if vars.is_empty() {
            return Ok(());
        }
        let mut tree = UpdateTree::new(UpdateNode::group(ExploreMode::Parallel, vars));

        // Realized GEMM shape → active-variable index for the predictor.
        let shape_vidx: BTreeMap<GemmShape, usize> =
            explored.iter().enumerate().map(|(v, s)| (*s, v)).collect();
        let mut best_measured: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
        let bound_topo = self.opts.bound_prune.then(|| self.lint_topology());

        struct Outcome {
            total_ns: f64,
            probe_records: usize,
            faulted: bool,
            shape_metrics: Vec<(GemmShape, f64)>,
        }

        loop {
            let batch = tree.lookahead(LOOKAHEAD_TRIALS);
            if batch.is_empty() {
                break;
            }
            let cfgs: Vec<ExecConfig> = batch
                .iter()
                .map(|asg| {
                    let mut c = cfg.clone();
                    for shape in &explored {
                        c.libs.insert(*shape, libs[asg[&format!("{shape}")]]);
                    }
                    c
                })
                .collect();
            // Library trials share one chunk geometry: every request after
            // the phase's first is a schedule-cache hit, and bind_libs
            // patches the per-candidate library choices in.
            let mut bound = Vec::with_capacity(cfgs.len());
            for c in &cfgs {
                bound.push(self.plan_cache.units_for(&self.ctx, c)?);
            }

            let salt0 = self.fault_seq;
            self.fault_seq += batch.len() as u64;

            // Sequential prepare in candidate order: emit each schedule.
            // Library trials share a prefix up to the first differing
            // GEMM, so late-differing candidates resume deep into the
            // common geometry once the batch runner groups them.
            let mut prepared: Vec<Option<Prepared>> = Vec::with_capacity(cfgs.len());
            for (i, c) in cfgs.iter().enumerate() {
                let salt = salt0 + i as u64;
                let alloc_fault = self.opts.faults.alloc_event(salt);
                let frag;
                let units: &[Unit] = match alloc_fault {
                    Some(word) => {
                        frag = build_units_fragmented(&self.ctx, c, word)?;
                        &frag
                    }
                    None => &bound[i],
                };
                let (sched, probes) =
                    emit_schedule(&self.ctx, c, units, None, &ProbeSpec::gemm_shapes());
                if alloc_fault.is_none() && !self.admit_candidate(c, units, &sched) {
                    stats.quarantined += 1;
                    prepared.push(None);
                    continue;
                }
                prepared.push(Some(Prepared { sched: self.maybe_elide(sched), probes, salt }));
            }

            let shape_metrics_of = |probes: &Probes, r: &RunResult| -> Vec<(GemmShape, f64)> {
                let mut m = Vec::new();
                for (shape, start, end) in &probes.shape_regions {
                    if let Some(dt) = r.elapsed(*start, *end) {
                        m.push((*shape, dt.max(0.0)));
                    }
                }
                m
            };

            // Per-shape metric floors over the probe regions.
            let bounds: Vec<Vec<(usize, f64)>> = match &bound_topo {
                Some(t) => prepared
                    .iter()
                    .map(|p| {
                        p.as_ref().map_or(Vec::new(), |p| {
                            let regions: Vec<_> =
                                p.probes.shape_regions.iter().map(|&(_, s, e)| (s, e)).collect();
                            let floors =
                                astra_lint::region_floors(&p.sched, &regions, t, &|_, _| None);
                            p.probes
                                .shape_regions
                                .iter()
                                .zip(floors)
                                .filter_map(|(&(sh, _, _), f)| {
                                    shape_vidx.get(&sh).map(|&v| (v, f))
                                })
                                .collect()
                        })
                    })
                    .collect(),
                None => Vec::new(),
            };

            // Per-trial predictor features: one entry per explored shape,
            // in active-variable order.
            let fp_self = self.topo_fp();
            let mut feats: BatchFeats = Vec::with_capacity(cfgs.len());
            for ((c, p), asg) in cfgs.iter().zip(&prepared).zip(&batch) {
                feats.push(p.as_ref().map(|_| {
                    explored
                        .iter()
                        .enumerate()
                        .map(|(vidx, shape)| {
                            let choice = asg[&format!("{shape}")];
                            VarFeat {
                                var: format!("{shape}"),
                                vidx,
                                choice,
                                feat: kernel_features(c, fp_self, *shape, libs[choice]),
                                pred: 0.0,
                            }
                        })
                        .collect()
                }));
            }

            let outcomes = self.run_batch_predicted(
                "kern",
                prepared,
                &mut feats,
                DominanceCtx { bounds: &bounds, prior_best: &best_measured },
                |probes, r| {
                    shape_metrics_of(probes, r)
                        .into_iter()
                        .filter_map(|(s, m)| shape_vidx.get(&s).map(|&v| (v, m)))
                        .collect()
                },
                stats,
            )?;

            for (bi, outcome) in outcomes.into_iter().enumerate() {
                let asg = tree.next_trial().expect("lookahead bounds the batch");
                debug_assert_eq!(asg, batch[bi]);
                let salt = salt0 + bi as u64;
                let mut o = match outcome {
                    BatchOutcome::Invalid => {
                        // Verify-rejected candidate: poison its choices.
                        for shape in &explored {
                            tree.poison(&format!("{shape}"));
                        }
                        continue;
                    }
                    BatchOutcome::Pruned | BatchOutcome::BoundPruned => {
                        // Inherit predicted per-shape metrics (or proven
                        // floors); every recorded value is strictly above
                        // the committed measured best.
                        for vf in feats[bi].iter().flatten() {
                            tree.record(&vf.var, vf.pred);
                        }
                        continue;
                    }
                    BatchOutcome::Measured(r, probes) => Outcome {
                        total_ns: r.total_ns,
                        probe_records: probes.probe_records,
                        faulted: r.faults.any(),
                        shape_metrics: shape_metrics_of(&probes, &r),
                    },
                };
                let qid = quarantine_id(
                    "kern",
                    explored.iter().map(|shape| key_for(shape, asg[&format!("{shape}")])),
                );
                if self.warm_quarantine.contains(&qid) {
                    stats.quarantined += 1;
                    for shape in &explored {
                        tree.poison(&format!("{shape}"));
                    }
                    continue;
                }
                let mut attempt = 0u32;
                let committed = loop {
                    stats.trials += 1;
                    stats.exploration_ns += o.total_ns;
                    stats.overhead_ns += o.probe_records as f64 * self.dev.event_record_cost_ns;
                    if o.faulted {
                        stats.fault_events += 1;
                    }
                    let suspect = o.faulted
                        || o.shape_metrics.iter().any(|(shape, metric)| {
                            explored.contains(shape)
                                && is_outlier(
                                    &self.index,
                                    &key_for(shape, asg[&format!("{shape}")]),
                                    *metric,
                                )
                        });
                    if !suspect {
                        for (shape, metric) in o.shape_metrics {
                            let id = format!("{shape}");
                            tree.record(&id, metric);
                            if explored.contains(&shape) {
                                let key = key_for(&shape, asg[&id]);
                                self.commit_sample(&key, metric);
                            }
                            if let (Some(&v), Some(fs)) =
                                (shape_vidx.get(&shape), feats[bi].as_ref())
                            {
                                let vf = &fs[v];
                                self.pruner.observe("kern", &vf.feat, vf.pred, metric);
                                let e =
                                    best_measured.entry(v).or_insert((f64::INFINITY, vf.choice));
                                if metric < e.0 {
                                    *e = (metric, vf.choice);
                                }
                            }
                        }
                        break true;
                    }
                    if attempt >= MAX_FAULT_RETRIES {
                        break false;
                    }
                    attempt += 1;
                    stats.retries += 1;
                    let rsalt = FaultPlan::attempt_salt(salt, attempt);
                    let frag;
                    let units_r: &[Unit] = match self.opts.faults.alloc_event(rsalt) {
                        Some(word) => {
                            frag = build_units_fragmented(&self.ctx, &cfgs[bi], word)?;
                            &frag
                        }
                        None => &bound[bi],
                    };
                    let (sched, probes) =
                        emit_schedule(&self.ctx, &cfgs[bi], units_r, None, &ProbeSpec::gemm_shapes());
                    let sched = self.maybe_elide(sched);
                    let r = self.sim_run(&sched, rsalt)?;
                    o = Outcome {
                        total_ns: r.total_ns,
                        probe_records: probes.probe_records,
                        faulted: r.faults.any(),
                        shape_metrics: shape_metrics_of(&probes, &r),
                    };
                };
                if !committed {
                    stats.quarantined += 1;
                    for shape in &explored {
                        tree.poison(&format!("{shape}"));
                    }
                    self.journal_quarantine(&qid);
                }
            }
        }

        let best = tree.best_assignment();
        for shape in &explored {
            cfg.libs.insert(*shape, libs[best[&format!("{shape}")]]);
        }
        Ok(())
    }

    /// Phase S: stream exploration — parallel across super-epochs, prefix
    /// across epochs, equivalence-class splits within an epoch.
    fn explore_streams(
        &mut self,
        cfg: &mut ExecConfig,
        strat_ctx: Option<&str>,
        stats: &mut ExploreStats,
    ) -> Result<Option<Partition>, AstraError> {
        cfg.num_streams = self.opts.num_streams.max(2);
        let units = self.plan_cache.units_for(&self.ctx, cfg)?;
        let total_flops: f64 = units.iter().map(|u| u.flops).sum();
        let budget = self.opts.super_epoch_flops.unwrap_or(total_flops / 8.0).max(1.0);
        let partition = partition_units(&units, budget);

        // Per-epoch choice lists. Epochs with a single choice (one class
        // member, or one stream) get no adaptive variable and no probe —
        // their only assignment is applied statically.
        let mut epoch_opts: BTreeMap<String, Vec<EpochAssignment>> = BTreeMap::new();
        let mut id_pos: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        let mut fixed_assignment: Vec<(crate::plan::UnitId, usize)> = Vec::new();
        let mut probed: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        let mut se_children = Vec::new();
        for (sei, se) in partition.super_epochs.iter().enumerate() {
            let mut epoch_vars = Vec::new();
            for (ei, epoch) in se.epochs.iter().enumerate() {
                let choices = epoch_choices(&units, epoch, cfg.num_streams);
                if choices.len() <= 1 {
                    fixed_assignment.extend(choices.into_iter().flatten());
                    continue;
                }
                let id = format!("se{sei}.e{ei}");
                epoch_vars.push(UpdateNode::var(id.clone(), choices.len()));
                id_pos.insert(id.clone(), (sei, ei));
                epoch_opts.insert(id, choices);
                probed.insert((sei, ei));
            }
            if !epoch_vars.is_empty() {
                se_children.push(UpdateNode::group(ExploreMode::Prefix, epoch_vars));
            }
        }
        if se_children.is_empty() {
            cfg.streams = fixed_assignment.into_iter().collect();
            return Ok(Some(partition));
        }
        let mut tree = UpdateTree::new(UpdateNode::group(ExploreMode::Parallel, se_children));
        let probe_spec = ProbeSpec::epochs(probed);

        // Predictor bookkeeping. Variable indices are positions in
        // `epoch_opts` iteration order — stable across batches, so the
        // regret guard's measured minima accumulate per epoch variable.
        let flops_of: BTreeMap<crate::plan::UnitId, f64> =
            units.iter().map(|u| (u.id, u.flops)).collect();
        let id_vidx: BTreeMap<String, usize> =
            epoch_opts.keys().enumerate().map(|(v, id)| (id.clone(), v)).collect();
        let mut best_measured: BTreeMap<usize, (f64, usize)> = BTreeMap::new();
        let bound_topo = self.opts.bound_prune.then(|| self.lint_topology());

        let apply = |cfg: &mut ExecConfig, asg: &BTreeMap<String, usize>| {
            cfg.streams.clear();
            cfg.streams.extend(fixed_assignment.iter().copied());
            for (id, &choice) in asg {
                for &(uid, s) in &epoch_opts[id][choice] {
                    cfg.streams.insert(uid, s);
                }
            }
        };

        struct Outcome {
            total_ns: f64,
            probe_records: usize,
            faulted: bool,
            epoch_metrics: Vec<((usize, usize), f64)>,
        }

        loop {
            // Prefix epochs freeze at their best between exploration steps,
            // so lookahead batches stop at those metric-dependent
            // boundaries; super-epochs still explore in parallel inside a
            // batch.
            let batch = tree.lookahead(LOOKAHEAD_TRIALS);
            if batch.is_empty() {
                break;
            }
            let cfgs: Vec<ExecConfig> = batch
                .iter()
                .map(|asg| {
                    let mut c = cfg.clone();
                    apply(&mut c, asg);
                    c
                })
                .collect();

            let salt0 = self.fault_seq;
            self.fault_seq += batch.len() as u64;

            // Sequential prepare in candidate order. Prefix exploration is
            // where the sim cache pays off most: earlier epochs are frozen
            // at their best assignment, so every candidate in the batch
            // shares the schedule prefix up to the epoch under exploration
            // and resumes a checkpoint captured just before it.
            let mut prepared: Vec<Option<Prepared>> = Vec::with_capacity(cfgs.len());
            for (i, c) in cfgs.iter().enumerate() {
                let salt = salt0 + i as u64;
                let alloc_fault = self.opts.faults.alloc_event(salt);
                // A fragmented build keeps unit ids, dependencies, and
                // order, so the partition and probe spec stay valid.
                let frag;
                let units_run: &[Unit] = match alloc_fault {
                    Some(word) => {
                        frag = build_units_fragmented(&self.ctx, c, word)?;
                        &frag
                    }
                    None => &units,
                };
                let (sched, probes) =
                    emit_schedule(&self.ctx, c, units_run, Some(&partition), &probe_spec);
                if alloc_fault.is_none() && !self.admit_candidate(c, units_run, &sched) {
                    stats.quarantined += 1;
                    prepared.push(None);
                    continue;
                }
                prepared.push(Some(Prepared { sched: self.maybe_elide(sched), probes, salt }));
            }

            // Epoch metric: time from super-epoch start to the last kernel
            // dispatched in any stream up to this epoch (§4.7).
            let epoch_metrics_of = |probes: &Probes, r: &RunResult| -> Vec<((usize, usize), f64)> {
                let mut m = Vec::new();
                for (&(sei, ei), ends) in &probes.epoch_ends {
                    let Some(&start_ev) = probes.se_starts.get(&sei) else { continue };
                    let Some(&start) = r.event_ns.get(&start_ev) else { continue };
                    let end = ends
                        .iter()
                        .filter_map(|e| r.event_ns.get(e).copied())
                        .fold(f64::NAN, f64::max);
                    if end.is_finite() {
                        m.push(((sei, ei), (end - start).max(0.0)));
                    }
                }
                m
            };

            // Active epoch variables: those whose choice varies across this
            // batch. Frozen (prefix-fixed) epochs carry no features — their
            // metrics are still committed, but never drive pruning.
            let active: Vec<&String> = epoch_opts
                .keys()
                .filter(|id| {
                    let first = batch[0][*id];
                    batch.iter().any(|asg| asg[*id] != first)
                })
                .collect();
            let mut active_vidx: BTreeMap<(usize, usize), usize> = BTreeMap::new();
            let mut active_slot: BTreeMap<(usize, usize), usize> = BTreeMap::new();
            for (slot, id) in active.iter().enumerate() {
                active_vidx.insert(id_pos[*id], id_vidx[*id]);
                active_slot.insert(id_pos[*id], slot);
            }
            let fp_self = self.topo_fp();
            let mut feats: BatchFeats = Vec::with_capacity(cfgs.len());
            for ((c, p), asg) in cfgs.iter().zip(&prepared).zip(&batch) {
                feats.push(p.as_ref().map(|_| {
                    active
                        .iter()
                        .map(|id| {
                            let (sei, ei) = id_pos[*id];
                            let choice = asg[*id];
                            VarFeat {
                                var: (*id).clone(),
                                vidx: id_vidx[*id],
                                choice,
                                feat: epoch_features(
                                    c,
                                    fp_self,
                                    sei,
                                    ei,
                                    choice,
                                    &epoch_opts[*id][choice],
                                    &flops_of,
                                ),
                                pred: 0.0,
                            }
                        })
                        .collect()
                }));
            }

            // Epoch metric floors: the epoch's span floor — the longest
            // happens-before path from the super-epoch start record to any
            // of the epoch's per-stream end records under per-command
            // duration floors (see [`astra_lint::span_floors`]). The
            // measured metric is a max over those end records, so one
            // reachable end already bounds it from below.
            let bounds: Vec<Vec<(usize, f64)>> = match &bound_topo {
                Some(t) => prepared
                    .iter()
                    .map(|p| {
                        p.as_ref().map_or(Vec::new(), |p| {
                            let mut vidxs = Vec::new();
                            let mut spans = Vec::new();
                            for id in &active {
                                let (sei, ei) = id_pos[*id];
                                let start = p.probes.se_starts.get(&sei);
                                let ends = p.probes.epoch_ends.get(&(sei, ei));
                                let (Some(&start), Some(ends)) = (start, ends) else {
                                    continue;
                                };
                                vidxs.push(id_vidx[*id]);
                                spans.push((start, ends.as_slice()));
                            }
                            let floors =
                                astra_lint::span_floors(&p.sched, &spans, t, &|_, _| None);
                            vidxs.into_iter().zip(floors).collect()
                        })
                    })
                    .collect(),
                None => Vec::new(),
            };

            let outcomes = self.run_batch_predicted(
                "epoch",
                prepared,
                &mut feats,
                DominanceCtx { bounds: &bounds, prior_best: &best_measured },
                |probes, r| {
                    epoch_metrics_of(probes, r)
                        .into_iter()
                        .filter_map(|(pos, m)| active_vidx.get(&pos).map(|&v| (v, m)))
                        .collect()
                },
                stats,
            )?;

            for (bi, outcome) in outcomes.into_iter().enumerate() {
                let asg = tree.next_trial().expect("lookahead bounds the batch");
                debug_assert_eq!(asg, batch[bi]);
                let salt = salt0 + bi as u64;
                let mut o = match outcome {
                    BatchOutcome::Invalid => {
                        // Verify-rejected candidate: poison its choices.
                        for id in epoch_opts.keys() {
                            tree.poison(id);
                        }
                        continue;
                    }
                    BatchOutcome::Pruned | BatchOutcome::BoundPruned => {
                        // Inherit predicted epoch metrics for the batch's
                        // active variables; the regret guard keeps them
                        // strictly above the measured best.
                        for vf in feats[bi].iter().flatten() {
                            tree.record(&vf.var, vf.pred);
                        }
                        continue;
                    }
                    BatchOutcome::Measured(r, probes) => Outcome {
                        total_ns: r.total_ns,
                        probe_records: probes.probe_records,
                        faulted: r.faults.any(),
                        epoch_metrics: epoch_metrics_of(&probes, &r),
                    },
                };
                let qid = quarantine_id(
                    "epoch",
                    active.iter().map(|id| {
                        let mut key = ProfileKey::entity(format!("epoch:{id}"), asg[*id]);
                        if let Some(c) = strat_ctx {
                            key = key.in_context(c.to_owned());
                        }
                        if let Some(b) = &self.opts.key_context {
                            key = key.in_context(b.clone());
                        }
                        key
                    }),
                );
                if self.warm_quarantine.contains(&qid) {
                    stats.quarantined += 1;
                    for id in epoch_opts.keys() {
                        tree.poison(id);
                    }
                    continue;
                }
                let mut attempt = 0u32;
                let committed = loop {
                    stats.trials += 1;
                    stats.exploration_ns += o.total_ns;
                    stats.overhead_ns += o.probe_records as f64 * self.dev.event_record_cost_ns;
                    if o.faulted {
                        stats.fault_events += 1;
                    }
                    // No outlier check here: epoch metrics legitimately vary
                    // with later-epoch stream assignments (processor
                    // sharing), so only a reported fault marks a suspect.
                    if !o.faulted {
                        for ((sei, ei), metric) in o.epoch_metrics {
                            let id = format!("se{sei}.e{ei}");
                            tree.record(&id, metric);
                            let mut key = ProfileKey::entity(format!("epoch:{id}"), asg[&id]);
                            if let Some(c) = strat_ctx {
                                key = key.in_context(c.to_owned());
                            }
                            if let Some(b) = &self.opts.key_context {
                                key = key.in_context(b.clone());
                            }
                            self.commit_sample(&key, metric);
                            if let (Some(&slot), Some(fs)) =
                                (active_slot.get(&(sei, ei)), feats[bi].as_ref())
                            {
                                let vf = &fs[slot];
                                self.pruner.observe("epoch", &vf.feat, vf.pred, metric);
                                let e = best_measured
                                    .entry(vf.vidx)
                                    .or_insert((f64::INFINITY, vf.choice));
                                if metric < e.0 {
                                    *e = (metric, vf.choice);
                                }
                            } else if self.opts.predictor {
                                // Frozen epochs train the model too — their
                                // metrics are committed anyway, and the extra
                                // samples warm the epoch model much faster
                                // than the few actively-varying trials would.
                                let choice = asg[&id];
                                let f = epoch_features(
                                    &cfgs[bi],
                                    fp_self,
                                    sei,
                                    ei,
                                    choice,
                                    &epoch_opts[&id][choice],
                                    &flops_of,
                                );
                                self.pruner.observe("epoch", &f, 0.0, metric);
                            }
                        }
                        break true;
                    }
                    if attempt >= MAX_FAULT_RETRIES {
                        break false;
                    }
                    attempt += 1;
                    stats.retries += 1;
                    let rsalt = FaultPlan::attempt_salt(salt, attempt);
                    let frag;
                    let units_r: &[Unit] = match self.opts.faults.alloc_event(rsalt) {
                        Some(word) => {
                            frag = build_units_fragmented(&self.ctx, &cfgs[bi], word)?;
                            &frag
                        }
                        None => &units,
                    };
                    let (sched, probes) =
                        emit_schedule(&self.ctx, &cfgs[bi], units_r, Some(&partition), &probe_spec);
                    let sched = self.maybe_elide(sched);
                    let r = self.sim_run(&sched, rsalt)?;
                    o = Outcome {
                        total_ns: r.total_ns,
                        probe_records: probes.probe_records,
                        faulted: r.faults.any(),
                        epoch_metrics: epoch_metrics_of(&probes, &r),
                    };
                };
                if !committed {
                    stats.quarantined += 1;
                    for id in epoch_opts.keys() {
                        tree.poison(id);
                    }
                    self.journal_quarantine(&qid);
                }
            }
        }

        let best = tree.best_assignment();
        apply(cfg, &best);
        Ok(Some(partition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_models::Model;

    fn tiny(model: Model) -> astra_models::BuiltModel {
        let mut c = model.default_config(8);
        c.hidden = 64;
        c.input = 64;
        c.vocab = 128;
        c.seq_len = 3;
        c.layers = c.layers.min(2);
        model.build(&c)
    }

    fn optimize(model: Model, dims: Dims) -> Report {
        let built = tiny(model);
        let dev = DeviceSpec::p100();
        let mut astra = Astra::new(&built.graph, &dev, AstraOptions { dims, ..Default::default() });
        astra.optimize().expect("optimization succeeds")
    }

    #[test]
    fn fusion_speeds_up_sublstm() {
        let r = optimize(Model::SubLstm, Dims::f());
        assert!(r.speedup() > 1.0, "Astra_F speedup {} <= 1", r.speedup());
        assert!(r.configs_explored > 1);
        assert!(r.fusion_sets > 0);
    }

    #[test]
    fn dims_are_cumulative_on_average() {
        // FKS must not be worse than F alone (it includes F's space and the
        // playoff picks the best measured config).
        let f = optimize(Model::Scrnn, Dims::f());
        let fks = optimize(Model::Scrnn, Dims::fks());
        assert!(
            fks.steady_ns <= f.steady_ns * 1.01,
            "FKS {} should not lose to F {}",
            fks.steady_ns,
            f.steady_ns
        );
        assert!(fks.configs_explored > f.configs_explored);
    }

    #[test]
    fn profiling_overhead_is_small() {
        // The <0.5% bound (§6.4) holds at realistic model sizes, where a
        // mini-batch is milliseconds long. (Toy graphs with near-empty
        // kernels inflate the ratio, so this test uses a wider model.)
        let mut c = Model::SubLstm.default_config(16);
        c.hidden = 768;
        c.input = 768;
        c.vocab = 2000;
        c.seq_len = 6;
        let built = Model::SubLstm.build(&c);
        let dev = DeviceSpec::p100();
        let mut astra =
            Astra::new(&built.graph, &dev, AstraOptions { dims: Dims::fks(), ..Default::default() });
        let r = astra.optimize().expect("optimization succeeds");
        assert!(
            r.profiling_overhead_frac < 0.005,
            "profiling overhead {} >= 0.5%",
            r.profiling_overhead_frac
        );
    }

    #[test]
    fn exploration_is_work_conserving() {
        // Exploration time is bounded: no trial costs more than a few
        // native mini-batches (every mini-batch makes training progress).
        let r = optimize(Model::MiLstm, Dims::fk());
        let avg_trial = r.exploration_ns / r.configs_explored as f64;
        assert!(
            avg_trial < 3.0 * r.native_ns,
            "avg trial {} vs native {}",
            avg_trial,
            r.native_ns
        );
    }

    #[test]
    fn all_dims_run_on_all_models() {
        for m in Model::all() {
            let r = optimize(m, Dims::all());
            assert!(r.steady_ns > 0.0);
            assert!(
                r.steady_ns <= r.native_ns * 1.05,
                "{m}: Astra_all {} much worse than native {}",
                r.steady_ns,
                r.native_ns
            );
        }
    }

    #[test]
    fn second_optimize_reuses_the_index() {
        // Re-optimizing with the accumulated index: every measurement hits,
        // so the second run needs only the playoff trial(s).
        let built = tiny(Model::SubLstm);
        let dev = DeviceSpec::p100();
        let mut astra = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::fk(), ..Default::default() },
        );
        let first = astra.optimize().expect("first run");
        let second = astra.optimize().expect("second run");
        assert!(
            second.configs_explored < first.configs_explored / 2,
            "second run {} should mostly hit the index (first {})",
            second.configs_explored,
            first.configs_explored
        );
        assert!((second.steady_ns - first.steady_ns).abs() < first.steady_ns * 0.01);
    }

    #[test]
    fn stream_exploration_reports_super_epochs() {
        let r = optimize(Model::StackedLstm, Dims::fks());
        assert!(r.super_epochs >= 1);
    }

    #[test]
    fn clean_runs_report_zero_fault_counters() {
        // Fault injection must be zero-cost when disabled: no event, retry,
        // or quarantine ever shows up without a fault plan — including under
        // autoboost clock jitter, which must not trip the outlier check.
        for clock in [ClockMode::Fixed, ClockMode::Autoboost { seed: 3 }] {
            let built = tiny(Model::SubLstm);
            let dev = DeviceSpec::p100();
            let mut astra = Astra::new(
                &built.graph,
                &dev,
                AstraOptions { dims: Dims::fks(), clock, ..Default::default() },
            );
            let r = astra.optimize().expect("clean optimization");
            assert_eq!(
                (r.fault_events, r.retries, r.quarantined),
                (0, 0, 0),
                "clean run must report zero fault counters under {clock:?}"
            );
        }
    }

    #[test]
    fn candidate_plans_verify_clean_and_cache() {
        let built = tiny(Model::SubLstm);
        let dev = DeviceSpec::p100();
        let mut astra = Astra::new(&built.graph, &dev, AstraOptions::default());
        let r = astra.optimize().expect("optimization succeeds");
        assert!(r.plans_verified > 0, "default options verify candidate plans");
        assert_eq!(r.verify_rejects, 0, "generated schedules must verify clean");
        assert_eq!(r.quarantined, 0);
        assert!(
            (r.plans_verified as usize) < r.configs_explored,
            "verdicts are cached per plan key ({} verified, {} trials)",
            r.plans_verified,
            r.configs_explored
        );

        // Verification off: zero counters, identical exploration outcome.
        let mut off = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { verify: false, ..Default::default() },
        );
        let r_off = off.optimize().expect("optimization succeeds");
        assert_eq!((r_off.plans_verified, r_off.verify_rejects), (0, 0));
        assert_eq!(r_off.steady_ns, r.steady_ns, "verification must not change the outcome");
        assert_eq!(r_off.configs_explored, r.configs_explored);
    }

    #[test]
    fn sync_elision_is_cost_invariant_and_counted() {
        let built = tiny(Model::SubLstm);
        let dev = DeviceSpec::p100();
        let base = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::fks(), ..Default::default() },
        )
        .optimize()
        .expect("baseline optimization");
        let elided = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::fks(), elide_syncs: true, ..Default::default() },
        )
        .optimize()
        .expect("elided optimization");
        assert_eq!(base.syncs_elided, 0, "elision off must count nothing");
        assert!(elided.syncs_elided > 0, "multi-stream schedules carry redundant waits");
        assert_eq!(
            elided.steady_ns, base.steady_ns,
            "elision must keep the simulated cost bit-identical"
        );
        assert_eq!(elided.best, base.best, "elision must not change the winning plan");
        assert_eq!(elided.verify_rejects, 0, "elided schedules stay verify-clean");
    }

    #[test]
    fn bound_pruning_preserves_the_final_plan() {
        let built = tiny(Model::MiLstm);
        let dev = DeviceSpec::p100();
        let base = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::fk(), ..Default::default() },
        )
        .optimize()
        .expect("baseline optimization");
        let bp = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::fk(), bound_prune: true, ..Default::default() },
        )
        .optimize()
        .expect("bound-pruned optimization");
        assert_eq!(base.bound_pruned, 0, "pruning off must count nothing");
        assert!(bp.bound_pruned > 0, "some chunk choices must be provably dominated");
        assert_eq!(bp.steady_ns, base.steady_ns, "the veto must not change the outcome");
        assert_eq!(bp.best, base.best, "the veto must not change the winning plan");
        assert!(
            bp.configs_explored < base.configs_explored,
            "vetoed trials must not simulate ({} vs {})",
            bp.configs_explored,
            base.configs_explored
        );
    }

    #[test]
    fn bound_pruning_self_disables_under_subunit_stragglers() {
        // A straggler factor < 1 speeds kernels up, breaking the floors'
        // soundness precondition — the veto must not fire at all.
        let built = tiny(Model::SubLstm);
        let dev = DeviceSpec::p100();
        let faults = FaultPlan {
            straggler_prob: 0.2,
            straggler_factor: 0.5,
            ..FaultPlan::none()
        };
        let mut astra = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::f(), bound_prune: true, faults, ..Default::default() },
        );
        let r = astra.optimize().expect("optimization succeeds");
        assert_eq!(r.bound_pruned, 0, "unsound floors must never veto");
    }

    #[test]
    fn over_capacity_plans_are_lint_rejected() {
        let built = tiny(Model::SubLstm);
        let mut dev = DeviceSpec::p100();
        dev.mem_bytes = 1024; // nothing fits in 1 KiB
        let mut astra = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::f(), ..Default::default() },
        );
        let err = astra.optimize().expect_err("over-capacity plans must be rejected");
        assert!(
            matches!(err, AstraError::AllPlansRejected(_)),
            "expected AllPlansRejected, got {err:?}"
        );

        // Lint off: the driver happily simulates the oversized plan (the
        // simulator itself has no capacity model) and reports zero lint
        // counters.
        let mut off = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::f(), lint: false, ..Default::default() },
        );
        let r = off.optimize().expect("lint off admits everything");
        assert_eq!(r.lint_rejects, 0);
    }

    #[test]
    fn lint_counters_are_zero_on_clean_defaults() {
        let built = tiny(Model::SubLstm);
        let dev = DeviceSpec::p100();
        let mut astra = Astra::new(&built.graph, &dev, AstraOptions::default());
        let r = astra.optimize().expect("optimization succeeds");
        assert_eq!(r.lint_rejects, 0, "zoo-sized plans fit comfortably");
        assert_eq!(r.syncs_elided, 0, "elision is off by default");
        assert_eq!(r.bound_pruned, 0, "bound pruning is off by default");
    }

    #[test]
    fn faulted_exploration_reports_events_and_converges() {
        let built = tiny(Model::SubLstm);
        let dev = DeviceSpec::p100();
        let mut astra = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::fk(), faults: FaultPlan::chaos(7), ..Default::default() },
        );
        let r = astra.optimize().expect("faulted optimization still completes");
        assert!(r.fault_events > 0, "chaos plan should trip at least one fault");
        assert!(r.retries > 0, "a faulted measurement must be retried");
        assert!(r.steady_ns > 0.0 && r.steady_ns.is_finite());
    }
}
