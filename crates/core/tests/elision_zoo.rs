//! Zoo-wide property: redundant-sync elision keeps every model's
//! exploration verify-clean and its simulated engine cost bit-identical,
//! so `--elide-syncs` can never change which plan wins or what it costs.

use astra_core::{Astra, AstraOptions, Dims};
use astra_gpu::DeviceSpec;
use astra_models::Model;

fn tiny(model: Model) -> astra_models::BuiltModel {
    let mut c = model.default_config(8);
    c.hidden = 64;
    c.input = 64;
    c.vocab = 128;
    c.seq_len = 3;
    c.layers = c.layers.min(2);
    model.build(&c)
}

#[test]
fn sync_elision_is_invariant_across_the_zoo() {
    let dev = DeviceSpec::p100();
    let mut any_elided = false;
    for model in Model::all() {
        let built = tiny(model);
        let base = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::fks(), ..Default::default() },
        )
        .optimize()
        .unwrap_or_else(|e| panic!("{model:?} baseline failed: {e}"));
        let elided = Astra::new(
            &built.graph,
            &dev,
            AstraOptions { dims: Dims::fks(), elide_syncs: true, ..Default::default() },
        )
        .optimize()
        .unwrap_or_else(|e| panic!("{model:?} elided failed: {e}"));

        assert_eq!(base.syncs_elided, 0, "{model:?}: elision off must count nothing");
        assert_eq!(
            elided.steady_ns, base.steady_ns,
            "{model:?}: elision must keep the simulated cost bit-identical"
        );
        assert_eq!(
            elided.best, base.best,
            "{model:?}: elision must not change the winning plan"
        );
        assert_eq!(
            elided.verify_rejects, 0,
            "{model:?}: elided schedules must stay verify-clean"
        );
        assert_eq!(
            elided.lint_rejects, 0,
            "{model:?}: elided schedules must stay lint-clean"
        );
        any_elided |= elided.syncs_elided > 0;
    }
    assert!(any_elided, "at least one zoo model must carry redundant waits");
}
