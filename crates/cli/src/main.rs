//! `astra-cli` — command-line front end for the Astra adaptive optimizer.
//!
//! ```text
//! astra-cli optimize --model sublstm --batch 16 --dims all [--streams 4] [--v100]
//! astra-cli compare  --model scrnn --batch 32        # native / XLA / cuDNN / Astra
//! astra-cli trace    --model milstm --batch 16 --out t.json
//! astra-cli scaling  --model sublstm --global-batch 256 --link nvlink
//! astra-cli verify   --model sublstm --streams 4      # static schedule verification
//! astra-cli verify   --fixtures tests/golden          # verify rendered fixtures
//! astra-cli lint     --model sublstm --streams 4      # static resource & perf lint
//! astra-cli lint     --fixtures tests/golden          # lint rendered fixtures
//! astra-cli store    stats --dir .astra-store         # persistent-store maintenance
//! astra-cli models                                    # list available models
//! ```
//!
//! Argument parsing is hand-rolled (no dependencies beyond the workspace).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use astra_core::{Astra, AstraOptions, Dims};
use astra_distrib::{explore_scaling, node_topology, LinkSpec};
use astra_exec::{cudnn_schedule, detect_covered_layers, lower, native_schedule, xla_schedule};
use astra_gpu::{trace_json, DeviceSpec, Engine, FaultPlan};
use astra_models::Model;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "optimize" => cmd_optimize(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "scaling" => cmd_scaling(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "store" => cmd_store(&args[1..]),
        "models" => {
            for m in Model::all() {
                println!(
                    "{:<12} {:<20} cuDNN-covered: {}",
                    flag_name(m),
                    m.name(),
                    m.cudnn_covered()
                );
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: astra-cli <command> [options]

commands:
  optimize  --model <name> --batch <n> [--dims f|fk|fks|all] [--streams <n>] [--v100] [--seq <n>]
            [--workers <n>]   candidate-evaluation threads (0 = all cores, 1 = sequential;
                              results are identical at every setting)
            [--fault none|spikes|launch|alloc|straggler|chaos] [--fault-seed <n>]
                              inject deterministic faults into every simulated mini-batch
                              (default none; seed defaults to 42)
            [--no-sim-cache]  simulate every trial from t=0 instead of resuming cached
                              engine checkpoints (results are identical either way)
            [--predictor on|off] [--top-k <n>] [--epsilon <p>]
                              learned cost model that prunes each lookahead batch to the
                              predicted top-k choices per variable plus an epsilon tail of
                              random re-admissions (default on, k=2, p=0.1); pruned trials
                              inherit predicted costs under a bounded-regret guard, and
                              `off` reproduces the unpruned exploration exactly
            [--lint on|off]   static resource lint gate on candidate plans (default on):
                              plans whose peak live memory exceeds device capacity are
                              quarantined before simulation (lint-mem-capacity)
            [--elide-syncs]   drop transitively-implied event waits from every explored
                              schedule before simulating; the rewrite is verify-clean and
                              the simulated cost is bit-identical
            [--bound-prune on|off]
                              skip candidates whose critical-path lower bound already
                              exceeds the measured best (default off); composes with the
                              predictor and preserves the final plan bit-identically
            [--json]          print the optimization report as JSON instead of text
            [--store <dir>]   persist warm exploration state (profile samples, verdicts,
                              quarantine marks, predictor weights, full-run sim memos) in a
                              crash-safe on-disk store; an interrupted run resumes from the
                              store and produces the bit-identical final plan
            [--warm-index]    also seed the profile index and predictor weights from the
                              store; steers the search (faster, but no bit-identity claim
                              against a cold run)
            [--devices <n|list>] [--topology nvlink|pcie3|ethernet]
                              explore placements on a simulated multi-device node: a count
                              (`--devices 4`) means that many copies of the base device, a
                              model list (`--devices p100,v100`) names each one; placement
                              (single, data-parallel splits, layer-wise model-parallel cuts)
                              becomes one more adaptive variable, and the report adds the
                              chosen placement, per-device utilization, and cost-per-throughput
  compare   --model <name> --batch <n>          compare native / XLA / cuDNN / Astra
  trace     --model <name> --batch <n> --out <file>   write Chrome-tracing JSON
  scaling   --model <name> --global-batch <n> [--link nvlink|pcie3|ethernet]
  verify    --model <name> [--batch <n>] [--seq <n>] [--streams <n>] [--workers <n>] [--json]
                              statically verify the model's enumerated plans (happens-before
                              hazards, event liveness, allocation aliasing); exits nonzero
                              on any error-severity finding
            --model <name> --devices <n|list> [--topology <link>]
                              verify every candidate placement on the given node instead
                              (cross-device transfer ordering, all-reduce deadlock, replica
                              coherence)
            --fixtures <dir> [--json] [--workers <n>]
                              parse rendered schedule fixtures (*.txt) and verify their
                              event structure (no footprints: liveness checks only)
  lint      --model <name> [--batch <n>] [--seq <n>] [--streams <n>] [--workers <n>] [--json]
                              statically lint the model's enumerated plans: liveness peak
                              memory against device capacity (lint-mem-capacity error,
                              lint-mem-occupancy advisory), transitively-implied event
                              waits (lint-redundant-sync), and the critical-path lower
                              bound; exits nonzero on any error-severity finding
            [--mem-mib <n>]   override per-device memory capacity in MiB (default: the
                              device's real capacity — p100 16 GiB, v100 32 GiB)
            [--devices <n|list>] [--topology <link>]
                              lint candidate placements on a simulated node instead
            --fixtures <dir> [--json] [--workers <n>]
                              lint rendered schedule fixtures (no footprints: sync
                              redundancy and the critical-path floor only)
  store     stats   --dir <d> [--json]          record counts, file sizes, corruption history
            compact --dir <d> [--json]          fold the journal into the snapshot atomically
            fsck    --dir <d> [--json]          read-only integrity check; exits nonzero if
                                                any record is torn, corrupt, or undecodable
  models                                        list the model zoo

models: scrnn, milstm, sublstm, stackedlstm, gnmt, rhn";

fn flag_name(m: Model) -> &'static str {
    match m {
        Model::Scrnn => "scrnn",
        Model::MiLstm => "milstm",
        Model::SubLstm => "sublstm",
        Model::StackedLstm => "stackedlstm",
        Model::Gnmt => "gnmt",
        Model::Rhn => "rhn",
    }
}

/// Minimal `--key value` / `--flag` parser.
struct Opts<'a>(&'a [String]);

impl<'a> Opts<'a> {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for {key}: {v}")),
        }
    }
}

fn parse_model(opts: &Opts<'_>) -> Result<Model, String> {
    let name = opts.get("--model").ok_or("--model is required (see `astra models`)")?;
    match name.to_ascii_lowercase().as_str() {
        "scrnn" => Ok(Model::Scrnn),
        "milstm" | "mi-lstm" => Ok(Model::MiLstm),
        "sublstm" => Ok(Model::SubLstm),
        "stackedlstm" | "stacked-lstm" | "lstm" => Ok(Model::StackedLstm),
        "gnmt" => Ok(Model::Gnmt),
        "rhn" => Ok(Model::Rhn),
        other => Err(format!("unknown model '{other}' (see `astra models`)")),
    }
}

fn parse_faults(opts: &Opts<'_>) -> Result<FaultPlan, String> {
    let seed: u64 = opts.parse("--fault-seed", 42)?;
    match opts.get("--fault").unwrap_or("none") {
        "none" => Ok(FaultPlan::none()),
        "spikes" => Ok(FaultPlan::timing_spikes(seed)),
        "launch" => Ok(FaultPlan::launch_failures(seed)),
        "alloc" => Ok(FaultPlan::alloc_failures(seed)),
        "straggler" => Ok(FaultPlan::stragglers(seed)),
        "chaos" => Ok(FaultPlan::chaos(seed)),
        other => {
            Err(format!("invalid --fault '{other}' (none|spikes|launch|alloc|straggler|chaos)"))
        }
    }
}

/// Predictor controls: `--predictor on|off` plus its `--top-k` /
/// `--epsilon` knobs (defaults match [`AstraOptions::default`]).
fn parse_predictor(opts: &Opts<'_>) -> Result<(bool, usize, f64), String> {
    let on = match opts.get("--predictor").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("invalid --predictor '{other}' (on|off)")),
    };
    let top_k: usize = opts.parse("--top-k", 2)?;
    let epsilon: f64 = opts.parse("--epsilon", 0.1)?;
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(format!("--epsilon must be in [0, 1], got {epsilon}"));
    }
    Ok((on, top_k, epsilon))
}

/// Parses an `on|off` switch with a default.
fn parse_on_off(opts: &Opts<'_>, key: &str, default: bool) -> Result<bool, String> {
    match opts.get(key) {
        None => Ok(default),
        Some("on") => Ok(true),
        Some("off") => Ok(false),
        Some(other) => Err(format!("invalid {key} '{other}' (on|off)")),
    }
}

fn parse_dims(opts: &Opts<'_>) -> Result<Dims, String> {
    match opts.get("--dims").unwrap_or("all") {
        "f" => Ok(Dims::f()),
        "fk" => Ok(Dims::fk()),
        "fks" => Ok(Dims::fks()),
        "all" => Ok(Dims::all()),
        other => Err(format!("invalid --dims '{other}' (f|fk|fks|all)")),
    }
}

fn device(opts: &Opts<'_>) -> DeviceSpec {
    if opts.flag("--v100") {
        DeviceSpec::v100()
    } else {
        DeviceSpec::p100()
    }
}

/// The simulated node `--devices`/`--topology` describe, if requested.
/// `--topology` without `--devices` is rejected — a link with nothing on
/// it is almost certainly a mistyped invocation.
fn parse_node(opts: &Opts<'_>, dev: &DeviceSpec) -> Result<Option<astra_gpu::Topology>, String> {
    match opts.get("--devices") {
        Some(spec) => {
            let link = opts.get("--topology").unwrap_or("nvlink");
            node_topology(spec, link, dev).map(Some)
        }
        None if opts.get("--topology").is_some() => {
            Err("--topology requires --devices (see `astra-cli help`)".to_owned())
        }
        None => Ok(None),
    }
}

fn build(model: Model, opts: &Opts<'_>) -> Result<astra_models::BuiltModel, String> {
    let batch: u64 = opts.parse("--batch", 16)?;
    let mut cfg = model.default_config(batch);
    if let Some(seq) = opts.get("--seq") {
        cfg.seq_len = seq.parse().map_err(|_| format!("invalid --seq {seq}"))?;
    }
    Ok(model.build(&cfg))
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let opts = Opts(args);
    let model = parse_model(&opts)?;
    let dims = parse_dims(&opts)?;
    let dev = device(&opts);
    let num_streams: usize = opts.parse("--streams", 4)?;
    let workers: usize = opts.parse("--workers", 0)?;
    let faults = parse_faults(&opts)?;
    let built = build(model, &opts)?;

    let sim_cache = !opts.flag("--no-sim-cache");
    let (predictor, predictor_top_k, predictor_epsilon) = parse_predictor(&opts)?;
    let lint = parse_on_off(&opts, "--lint", true)?;
    let bound_prune = parse_on_off(&opts, "--bound-prune", false)?;
    let elide_syncs = opts.flag("--elide-syncs");
    let node = parse_node(&opts, &dev)?;
    let store_dir = opts.get("--store").map(std::path::PathBuf::from);
    let store_on = store_dir.is_some();
    let warm_index = opts.flag("--warm-index");
    if warm_index && !store_on {
        return Err("--warm-index requires --store (see `astra-cli help`)".to_owned());
    }
    let options = AstraOptions {
        dims,
        num_streams,
        workers,
        faults,
        sim_cache,
        predictor,
        predictor_top_k,
        predictor_epsilon,
        lint,
        elide_syncs,
        bound_prune,
        store_dir,
        warm_index,
        ..Default::default()
    };
    let mut astra = match &node {
        Some(topo) => Astra::with_topology(&built.graph, topo, options),
        None => Astra::new(&built.graph, &dev, options),
    };
    let json = opts.flag("--json");
    if !json {
        println!(
            "{} on {} — {} graph nodes, {} fusion sets, {} allocation strategies",
            model.name(),
            dev.name,
            built.graph.nodes().len(),
            astra.context().sets.len(),
            astra.context().alloc.strategies.len()
        );
        if let Some(topo) = &node {
            let names: Vec<&str> = topo.devices().iter().map(|d| d.name.as_str()).collect();
            println!(
                "node: {} device(s) [{}] over {}",
                topo.num_devices(),
                names.join(", "),
                topo.link().name
            );
        }
    }
    let r = astra.optimize().map_err(|e| e.to_string())?;
    if let Some(e) = astra.store_error() {
        eprintln!("warning: store not persisting ({e}); this run is cold");
    }
    if json {
        println!("{}", report_json(&r, node.as_ref()));
        return Ok(());
    }
    println!("native:   {:>10.2} ms/mini-batch", r.native_ns / 1e6);
    println!("Astra:    {:>10.2} ms/mini-batch", r.steady_ns / 1e6);
    println!("speedup:  {:>10.2}x", r.speedup());
    println!("explored: {:>10} configs ({} strategies, overhead {:.3}%)",
        r.configs_explored, r.strategies_explored, r.profiling_overhead_frac * 100.0);
    println!("schedule cache: {} hits / {} misses", r.plan_cache_hits, r.plan_cache_misses);
    println!(
        "sim cache: {} hits / {} misses, {:.1}% of commands resumed",
        r.sim_cache_hits,
        r.sim_cache_misses,
        r.resumed_fraction * 100.0
    );
    println!(
        "prefix groups: {} (hit depth histogram: {})",
        r.prefix_group_count,
        r.sim_cache_hit_depth.map(|c| c.to_string()).join("/")
    );
    println!(
        "faults: {} events, {} retries, {} quarantined",
        r.fault_events, r.retries, r.quarantined
    );
    println!("verify: {} plans analyzed, {} rejected", r.plans_verified, r.verify_rejects);
    println!(
        "lint: {} plans rejected, {} syncs elided, {} trials bound-pruned",
        r.lint_rejects, r.syncs_elided, r.bound_pruned
    );
    println!(
        "predictor: {} trials pruned / {} simulated ({} model updates, MAE {:.2} us)",
        r.trials_pruned,
        r.configs_explored,
        r.predictor_updates,
        r.predicted_vs_measured_mae / 1e3
    );
    if store_on {
        println!(
            "store: warm start {} — {} record(s) loaded, {} corrupt; {} journal append(s), {} compaction(s)",
            r.warm_start,
            r.store_loaded_keys,
            r.store_corrupt_records,
            r.store_journal_appends,
            r.store_compactions
        );
    }
    if let Some(topo) = &node {
        println!(
            "placement: {} ({} candidate(s) explored)",
            r.best.placement.label(),
            r.placements_explored
        );
        let util: Vec<String> = r
            .device_utilization
            .iter()
            .enumerate()
            .map(|(i, u)| format!("d{i} {:.0}%", u * 100.0))
            .collect();
        println!("device utilization: {}", util.join(", "));
        println!(
            "cost-per-throughput: {:.3} cost*ms (node cost {:.2}, steady {:.2} ms)",
            r.cost_per_throughput / 1e6,
            topo.total_cost(),
            r.steady_ns / 1e6
        );
    }
    Ok(())
}

/// Renders the optimize report as a single JSON object (hand-rolled; the
/// workspace takes no serialization dependency). Fixed-precision numeric
/// formatting keeps reports diffable across runs.
fn report_json(r: &astra_core::Report, node: Option<&astra_gpu::Topology>) -> String {
    let mut f = vec![
        format!("\"native_ns\":{:.1}", r.native_ns),
        format!("\"steady_ns\":{:.1}", r.steady_ns),
        format!("\"speedup\":{:.4}", r.speedup()),
        format!("\"configs_explored\":{}", r.configs_explored),
        format!("\"trials_pruned\":{}", r.trials_pruned),
        format!("\"predictor_updates\":{}", r.predictor_updates),
        format!("\"predicted_vs_measured_mae_ns\":{:.1}", r.predicted_vs_measured_mae),
        format!("\"exploration_ns\":{:.1}", r.exploration_ns),
        format!("\"profiling_overhead_frac\":{:.6}", r.profiling_overhead_frac),
        format!("\"strategies_explored\":{}", r.strategies_explored),
        format!("\"fusion_sets\":{}", r.fusion_sets),
        format!("\"super_epochs\":{}", r.super_epochs),
        format!("\"plan_cache_hits\":{}", r.plan_cache_hits),
        format!("\"plan_cache_misses\":{}", r.plan_cache_misses),
        format!("\"sim_cache_hits\":{}", r.sim_cache_hits),
        format!("\"sim_cache_misses\":{}", r.sim_cache_misses),
        format!("\"resumed_fraction\":{:.6}", r.resumed_fraction),
        format!("\"prefix_group_count\":{}", r.prefix_group_count),
        format!("\"fault_events\":{}", r.fault_events),
        format!("\"retries\":{}", r.retries),
        format!("\"quarantined\":{}", r.quarantined),
        format!("\"plans_verified\":{}", r.plans_verified),
        format!("\"verify_rejects\":{}", r.verify_rejects),
        format!("\"lint_rejects\":{}", r.lint_rejects),
        format!("\"syncs_elided\":{}", r.syncs_elided),
        format!("\"bound_pruned\":{}", r.bound_pruned),
        format!("\"warm_start\":{}", r.warm_start),
        format!("\"store_loaded_keys\":{}", r.store_loaded_keys),
        format!("\"store_corrupt_records\":{}", r.store_corrupt_records),
        format!("\"store_journal_appends\":{}", r.store_journal_appends),
        format!("\"store_compactions\":{}", r.store_compactions),
        format!("\"best_plan\":{}", json_string(&r.best.summary())),
    ];
    if let Some(topo) = node {
        f.push(format!("\"placement\":\"{}\"", r.best.placement.label()));
        f.push(format!("\"placements_explored\":{}", r.placements_explored));
        let util: Vec<String> = r.device_utilization.iter().map(|u| format!("{u:.4}")).collect();
        f.push(format!("\"device_utilization\":[{}]", util.join(",")));
        f.push(format!("\"cost_per_throughput\":{:.1}", r.cost_per_throughput));
        f.push(format!("\"num_devices\":{}", topo.num_devices()));
    }
    format!("{{{}}}", f.join(","))
}

/// Renders `s` as a JSON string literal (escaping quotes, backslashes,
/// and control characters — plan summaries are plain ASCII but the
/// escaper doesn't assume that).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `astra-cli store <stats|compact|fsck> --dir <d>` — maintenance commands
/// for the persistent warm-state store `optimize --store` writes.
fn cmd_store(args: &[String]) -> Result<(), String> {
    let Some(action) = args.first().map(String::as_str) else {
        return Err("store needs an action: stats, compact, or fsck".to_owned());
    };
    let opts = Opts(&args[1..]);
    let json = opts.flag("--json");
    let dir = std::path::PathBuf::from(
        opts.get("--dir").ok_or("--dir is required (the --store directory)")?,
    );
    match action {
        "compact" => {
            let (loaded, kept) =
                astra_core::compact_store(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            if json {
                println!(
                    "{{\"records_loaded\":{loaded},\"records_in_snapshot\":{kept}}}"
                );
            } else {
                println!(
                    "compacted {}: {loaded} record(s) folded into {kept} snapshot record(s)",
                    dir.display()
                );
            }
            Ok(())
        }
        "stats" | "fsck" => {
            let report =
                astra_store::fsck(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            if json {
                let counts: Vec<String> = report
                    .counts
                    .iter()
                    .map(|(k, v)| format!("\"{k}\":{v}"))
                    .collect();
                let corrupt: Vec<String> = report
                    .corrupt
                    .iter()
                    .map(|d| {
                        format!(
                            "{{\"file\":{},\"offset\":{},\"fatal\":{},\"reason\":{}}}",
                            json_string(&d.file),
                            d.offset,
                            d.fatal,
                            json_string(&d.reason)
                        )
                    })
                    .collect();
                println!(
                    "{{\"records\":{},\"bytes\":{},\"counts\":{{{}}},\"corrupt\":[{}],\"quarantined_lines\":{}}}",
                    report.total_records(),
                    report.bytes,
                    counts.join(","),
                    corrupt.join(","),
                    report.quarantined_lines
                );
            } else {
                println!(
                    "{}: {} record(s), {} byte(s)",
                    dir.display(),
                    report.total_records(),
                    report.bytes
                );
                for (kind, n) in &report.counts {
                    println!("  {kind:<16} {n}");
                }
                for d in &report.corrupt {
                    println!(
                        "  CORRUPT {} at offset {} ({}{})",
                        d.file,
                        d.offset,
                        d.reason,
                        if d.fatal { "; scan stopped here" } else { "" }
                    );
                }
                if report.quarantined_lines > 0 {
                    println!(
                        "  {} record(s) quarantined by past recoveries (store.corrupt)",
                        report.quarantined_lines
                    );
                }
            }
            if action == "fsck" && !report.corrupt.is_empty() {
                return Err(format!(
                    "{}: {} corrupt record(s) found",
                    dir.display(),
                    report.corrupt.len()
                ));
            }
            Ok(())
        }
        other => Err(format!("unknown store action '{other}' (stats|compact|fsck)")),
    }
}

/// One verified plan for the `verify` report: where it came from and what
/// the verifier said.
struct VerifiedPlan {
    label: String,
    report: astra_verify::VerifyReport,
}

fn print_verify_results(plans: &[VerifiedPlan], json: bool) -> Result<(), String> {
    let failed = plans.iter().filter(|p| !p.report.is_clean()).count();
    if json {
        let entries: Vec<String> = plans
            .iter()
            .map(|p| format!("{{\"plan\":\"{}\",\"report\":{}}}", p.label, p.report.to_json()))
            .collect();
        println!("[{}]", entries.join(","));
    } else {
        for p in plans {
            if p.report.is_clean() {
                let summary = p.report.render();
                let summary = summary.lines().next().unwrap_or_default();
                println!("{:<40} clean: {summary}", p.label);
            } else {
                println!("{:<40} FAILED", p.label);
                for line in p.report.render().lines() {
                    println!("  {line}");
                }
            }
        }
    }
    if failed > 0 {
        return Err(format!("{failed} of {} plan(s) failed verification", plans.len()));
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let opts = Opts(args);
    let json = opts.flag("--json");
    let workers: usize = opts.parse("--workers", 1)?;
    if let Some(dir) = opts.get("--fixtures") {
        return verify_fixtures(dir, json, workers);
    }

    let model = parse_model(&opts)?;
    let streams: usize = opts.parse("--streams", 2)?;
    let built = build(model, &opts)?;
    let ctx = astra_core::PlanContext::new(&built.graph);

    // Multi-device mode: verify every candidate placement on the node —
    // the same generator–verifier gate exploration applies per trial.
    if let Some(topo) = parse_node(&opts, &device(&opts))? {
        let base = astra_core::ExecConfig::baseline();
        let units = astra_core::build_units(&ctx, &base).map_err(|e| e.to_string())?;
        let mut plans = Vec::new();
        for placement in astra_core::placement_candidates(&topo, &units) {
            let mut cfg = base.clone();
            cfg.placement = placement;
            let (sched, _) = astra_core::emit_schedule(
                &ctx,
                &cfg,
                &units,
                None,
                &astra_core::ProbeSpec::none(),
            );
            let report = astra_core::verify_plan(&ctx, &cfg, &units, &sched, workers);
            plans.push(VerifiedPlan {
                label: format!(
                    "{} {} on {} device(s)",
                    flag_name(model),
                    cfg.placement.label(),
                    topo.num_devices()
                ),
                report,
            });
        }
        return print_verify_results(&plans, json);
    }

    let strategies = ctx.alloc.strategies.len().max(1);

    let mut plans = Vec::new();
    let stream_counts: Vec<usize> = if streams > 1 { vec![1, streams] } else { vec![1] };
    for strategy in 0..strategies {
        for &n in &stream_counts {
            let mut cfg = astra_core::ExecConfig::baseline();
            cfg.strategy = strategy;
            let mut units = astra_core::build_units(&ctx, &cfg).map_err(|e| e.to_string())?;
            if n > 1 {
                // Round-robin stream assignment: a deliberately adversarial
                // mapping — emit_schedule must still thread every
                // cross-stream dependency through events.
                cfg.num_streams = n;
                for (i, u) in units.iter().enumerate() {
                    cfg.streams.insert(u.id, i % n);
                }
                units = astra_core::build_units(&ctx, &cfg).map_err(|e| e.to_string())?;
            }
            let (sched, _) = astra_core::emit_schedule(
                &ctx,
                &cfg,
                &units,
                None,
                &astra_core::ProbeSpec::none(),
            );
            let report = astra_core::verify_plan(&ctx, &cfg, &units, &sched, workers);
            plans.push(VerifiedPlan {
                label: format!("{} strategy {strategy} x {n} stream(s)", flag_name(model)),
                report,
            });
        }
    }
    print_verify_results(&plans, json)
}

/// Verifies every rendered-schedule fixture (`*.txt`) in `dir`. Fixtures
/// carry no unit footprints or allocation plan, so this audits the event
/// structure only (wait/record liveness, cycles, orphan barriers).
fn verify_fixtures(dir: &str, json: bool, workers: usize) -> Result<(), String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .txt fixtures in {dir}"));
    }
    let mut plans = Vec::new();
    for p in &paths {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let sched = astra_verify::parse_rendered(&text)
            .map_err(|e| format!("{}: {e}", p.display()))?;
        let report =
            astra_verify::verify(&sched, None, None, &astra_verify::VerifyOptions { workers });
        plans.push(VerifiedPlan { label: p.display().to_string(), report });
    }
    print_verify_results(&plans, json)
}

/// One linted plan for the `lint` report: where it came from and what the
/// linter said.
struct LintedPlan {
    label: String,
    report: astra_lint::LintReport,
}

fn print_lint_results(plans: &[LintedPlan], json: bool) -> Result<(), String> {
    let failed = plans.iter().filter(|p| p.report.errors() > 0).count();
    if json {
        let entries: Vec<String> = plans
            .iter()
            .map(|p| format!("{{\"plan\":\"{}\",\"report\":{}}}", p.label, p.report.to_json()))
            .collect();
        println!("[{}]", entries.join(","));
    } else {
        for p in plans {
            let rendered = p.report.render();
            if p.report.errors() == 0 {
                let summary = rendered.lines().next().unwrap_or_default();
                println!("{:<40} clean: {summary}", p.label);
            } else {
                println!("{:<40} FAILED", p.label);
                for line in rendered.lines() {
                    println!("  {line}");
                }
            }
        }
    }
    if failed > 0 {
        return Err(format!("{failed} of {} plan(s) failed lint", plans.len()));
    }
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    let opts = Opts(args);
    let json = opts.flag("--json");
    let workers: usize = opts.parse("--workers", 1)?;
    let mut dev = device(&opts);
    if let Some(mib) = opts.get("--mem-mib") {
        let mib: u64 = mib.parse().map_err(|_| format!("invalid --mem-mib {mib}"))?;
        dev.mem_bytes = mib << 20;
    }
    if let Some(dir) = opts.get("--fixtures") {
        return lint_fixtures(dir, json, workers, &dev);
    }

    let model = parse_model(&opts)?;
    let streams: usize = opts.parse("--streams", 2)?;
    let built = build(model, &opts)?;
    let ctx = astra_core::PlanContext::new(&built.graph);

    // Multi-device mode: lint every candidate placement on the node.
    if let Some(topo) = parse_node(&opts, &dev)? {
        let base = astra_core::ExecConfig::baseline();
        let units = astra_core::build_units(&ctx, &base).map_err(|e| e.to_string())?;
        let mut plans = Vec::new();
        for placement in astra_core::placement_candidates(&topo, &units) {
            let mut cfg = base.clone();
            cfg.placement = placement;
            let (sched, _) = astra_core::emit_schedule(
                &ctx,
                &cfg,
                &units,
                None,
                &astra_core::ProbeSpec::none(),
            );
            let report = astra_core::lint_plan(&ctx, &cfg, &units, &sched, &topo, workers);
            plans.push(LintedPlan {
                label: format!(
                    "{} {} on {} device(s)",
                    flag_name(model),
                    cfg.placement.label(),
                    topo.num_devices()
                ),
                report,
            });
        }
        return print_lint_results(&plans, json);
    }

    let topo = astra_gpu::Topology::single(dev);
    let strategies = ctx.alloc.strategies.len().max(1);
    let mut plans = Vec::new();
    let stream_counts: Vec<usize> = if streams > 1 { vec![1, streams] } else { vec![1] };
    for strategy in 0..strategies {
        for &n in &stream_counts {
            let mut cfg = astra_core::ExecConfig::baseline();
            cfg.strategy = strategy;
            let mut units = astra_core::build_units(&ctx, &cfg).map_err(|e| e.to_string())?;
            if n > 1 {
                cfg.num_streams = n;
                for (i, u) in units.iter().enumerate() {
                    cfg.streams.insert(u.id, i % n);
                }
                units = astra_core::build_units(&ctx, &cfg).map_err(|e| e.to_string())?;
            }
            let (sched, _) = astra_core::emit_schedule(
                &ctx,
                &cfg,
                &units,
                None,
                &astra_core::ProbeSpec::none(),
            );
            let report = astra_core::lint_plan(&ctx, &cfg, &units, &sched, &topo, workers);
            plans.push(LintedPlan {
                label: format!("{} strategy {strategy} x {n} stream(s)", flag_name(model)),
                report,
            });
        }
    }
    print_lint_results(&plans, json)
}

/// Lints every rendered-schedule fixture (`*.txt`) in `dir`. Fixtures
/// carry no unit footprints or allocation plan, so the peak-memory
/// analysis is skipped: sync redundancy and the critical-path floor only.
fn lint_fixtures(dir: &str, json: bool, workers: usize, dev: &DeviceSpec) -> Result<(), String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .txt fixtures in {dir}"));
    }
    let mut plans = Vec::new();
    for p in &paths {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let sched = astra_verify::parse_rendered(&text)
            .map_err(|e| format!("{}: {e}", p.display()))?;
        // Multi-device fixtures carry a device map; size a homogeneous
        // topology to it so per-device accounting has a slot for every
        // device the schedule names.
        let n = sched.stream_devices().iter().max().map_or(1, |&d| d + 1);
        let topo =
            astra_gpu::Topology::homogeneous(dev.clone(), n, astra_gpu::LinkDesc::nvlink());
        let report =
            astra_lint::lint(&sched, &topo, None, None, &astra_lint::LintOptions { workers });
        plans.push(LintedPlan { label: p.display().to_string(), report });
    }
    print_lint_results(&plans, json)
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let opts = Opts(args);
    let model = parse_model(&opts)?;
    let dev = device(&opts);
    let built = build(model, &opts)?;
    let lowering = lower(&built.graph);
    let run = |s: &astra_gpu::Schedule| -> Result<f64, String> {
        Ok(Engine::new(&dev).run(s).map_err(|e| e.to_string())?.total_ns)
    };
    let native = run(&native_schedule(&lowering))?;
    let xla = run(&xla_schedule(&built.graph, &lowering))?;
    let covered = detect_covered_layers(&built.graph);
    println!("native: {:>10.2} ms", native / 1e6);
    println!("XLA:    {:>10.2} ms ({:.2}x)", xla / 1e6, native / xla);
    if covered.is_empty() {
        println!("cuDNN:  not applicable (no covered layers)");
    } else {
        let cud = run(&cudnn_schedule(&built.graph, &lowering, &covered))?;
        println!("cuDNN:  {:>10.2} ms ({:.2}x)", cud / 1e6, native / cud);
    }
    let mut astra =
        Astra::new(&built.graph, &dev, AstraOptions { dims: Dims::all(), ..Default::default() });
    let r = astra.optimize().map_err(|e| e.to_string())?;
    println!("Astra:  {:>10.2} ms ({:.2}x)", r.steady_ns / 1e6, r.speedup());
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let opts = Opts(args);
    let model = parse_model(&opts)?;
    let dev = device(&opts);
    let out = opts.get("--out").unwrap_or("trace.json").to_owned();
    let built = build(model, &opts)?;
    let mut astra =
        Astra::new(&built.graph, &dev, AstraOptions { dims: Dims::all(), ..Default::default() });
    let r = astra.optimize().map_err(|e| e.to_string())?;
    let units = astra_core::build_units(astra.context(), &r.best).map_err(|e| e.to_string())?;
    let (sched, _) = astra_core::emit_schedule(
        astra.context(),
        &r.best,
        &units,
        None,
        &astra_core::ProbeSpec::none(),
    );
    let result = Engine::new(&dev).run(&sched).map_err(|e| e.to_string())?;
    std::fs::write(&out, trace_json(&result, model.name())).map_err(|e| e.to_string())?;
    println!("wrote {out} ({} spans, {:.2}x over native)", result.spans.len(), r.speedup());
    Ok(())
}

fn cmd_scaling(args: &[String]) -> Result<(), String> {
    let opts = Opts(args);
    let model = parse_model(&opts)?;
    let dev = device(&opts);
    let global: u64 = opts.parse("--global-batch", 256)?;
    let link = match opts.get("--link").unwrap_or("nvlink") {
        "nvlink" => LinkSpec::nvlink(),
        "pcie3" | "pcie" => LinkSpec::pcie3(),
        "ethernet" | "eth" => LinkSpec::ethernet(),
        other => return Err(format!("unknown --link '{other}'")),
    };
    let base = model.default_config(global);
    let build_fn = |b: u64| {
        let mut c = base.clone();
        c.batch = b;
        model.build(&c).graph
    };
    let opts_a = AstraOptions { dims: Dims::fk(), ..Default::default() };
    let report = explore_scaling(build_fn, global, &[1, 2, 4, 8], &dev, &link, &opts_a);
    println!("{} at global batch {global} over {}:", model.name(), link.name);
    for p in &report.points {
        println!(
            "  P={:<2} per-replica {:<4} compute {:>8.2}ms allreduce {:>7.2}ms -> {:>8.0} samples/s",
            p.replicas,
            p.per_replica_batch,
            p.compute_ns / 1e6,
            p.allreduce_ns / 1e6,
            p.samples_per_sec
        );
    }
    println!("measured best: P={}", report.best);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn opts_parser_reads_pairs_and_flags() {
        let a = opts(&["--model", "rhn", "--batch", "32", "--v100"]);
        let o = Opts(&a);
        assert_eq!(o.get("--model"), Some("rhn"));
        assert_eq!(o.parse::<u64>("--batch", 16).unwrap(), 32);
        assert!(o.flag("--v100"));
        assert!(!o.flag("--missing"));
        assert_eq!(o.parse::<u64>("--absent", 7).unwrap(), 7);
        assert!(o.parse::<u64>("--model", 0).is_err());
    }

    #[test]
    fn every_zoo_model_parses_by_its_flag_name() {
        for m in Model::all() {
            let a = opts(&["--model", flag_name(m)]);
            assert_eq!(parse_model(&Opts(&a)).unwrap(), m);
        }
        let bad = opts(&["--model", "resnet"]);
        assert!(parse_model(&Opts(&bad)).is_err());
        let none = opts(&[]);
        assert!(parse_model(&Opts(&none)).is_err());
    }

    #[test]
    fn dims_parse_all_levels() {
        for (flag, dims) in
            [("f", Dims::f()), ("fk", Dims::fk()), ("fks", Dims::fks()), ("all", Dims::all())]
        {
            let a = opts(&["--dims", flag]);
            assert_eq!(parse_dims(&Opts(&a)).unwrap(), dims);
        }
        let a = opts(&["--dims", "everything"]);
        assert!(parse_dims(&Opts(&a)).is_err());
        let empty = opts(&[]);
        assert_eq!(parse_dims(&Opts(&empty)).unwrap(), Dims::all());
    }

    #[test]
    fn fault_profiles_parse_with_seed() {
        let a = opts(&["--fault", "chaos", "--fault-seed", "9"]);
        assert_eq!(parse_faults(&Opts(&a)).unwrap(), FaultPlan::chaos(9));
        let b = opts(&["--fault", "spikes"]);
        assert_eq!(parse_faults(&Opts(&b)).unwrap(), FaultPlan::timing_spikes(42));
        let none = opts(&[]);
        assert_eq!(parse_faults(&Opts(&none)).unwrap(), FaultPlan::none());
        let bad = opts(&["--fault", "gamma-rays"]);
        assert!(parse_faults(&Opts(&bad)).is_err());
    }

    #[test]
    fn predictor_flags_parse_with_defaults() {
        let none = opts(&[]);
        assert_eq!(parse_predictor(&Opts(&none)).unwrap(), (true, 2, 0.1));
        let a = opts(&["--predictor", "off", "--top-k", "3", "--epsilon", "0.25"]);
        assert_eq!(parse_predictor(&Opts(&a)).unwrap(), (false, 3, 0.25));
        let bad = opts(&["--predictor", "maybe"]);
        assert!(parse_predictor(&Opts(&bad)).is_err());
        let out_of_range = opts(&["--epsilon", "1.5"]);
        assert!(parse_predictor(&Opts(&out_of_range)).is_err());
    }

    #[test]
    fn device_flag_selects_v100() {
        let a = opts(&["--v100"]);
        assert_eq!(device(&Opts(&a)).name, "tesla-v100-sim");
        let b = opts(&[]);
        assert_eq!(device(&Opts(&b)).name, "tesla-p100-sim");
    }
}
