//! Kernel descriptors and their cost evaluation.
//!
//! A [`KernelDesc`] is the unit of work the dispatcher launches on the
//! simulated GPU. Costing a kernel yields a [`KernelCost`]: its solo
//! execution time (excluding the fixed launch overhead, which the engine
//! charges separately) and its thread-block *demand*, which drives the
//! processor-sharing model when several streams run kernels concurrently.


use crate::device::DeviceSpec;
use crate::gemm::{time_gemm, GemmLibrary, GemmShape};

/// Arithmetic efficiency of (possibly fused) element-wise kernels.
const ELEMENTWISE_EFF: f64 = 0.5;
/// Elements covered by one thread block of an element-wise kernel.
const ELEMENTS_PER_BLOCK: u64 = 4096;
/// Efficiency of hand-optimized compound kernels (the cuDNN-like baseline).
const COMPOUND_EFF: f64 = 0.62;

/// One launchable unit of GPU work.
///
/// Every variant is a few words of plain shape/size data, so descriptors are
/// `Copy`: schedules hand them to the engine by value and the hot launch path
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelDesc {
    /// A (possibly fused) matrix multiplication executed by a chosen library.
    Gemm {
        /// Operand shape (already reflects any fusion).
        shape: GemmShape,
        /// Library whose kernel implementation runs this GEMM.
        lib: GemmLibrary,
    },
    /// A (possibly fused) element-wise kernel over `elements` values.
    Elementwise {
        /// Number of output elements.
        elements: u64,
        /// Arithmetic per element (e.g. 1 for add, ~10 for sigmoid).
        flops_per_element: f64,
        /// Distinct input tensors read from HBM.
        inputs: u32,
        /// Distinct output tensors written to HBM (fusion keeps
        /// intermediates in registers, reducing this traffic).
        outputs: u32,
    },
    /// Row-wise softmax over a `rows x cols` matrix (3 passes).
    Softmax {
        /// Number of independent rows.
        rows: u64,
        /// Width of each row.
        cols: u64,
    },
    /// Embedding-table gather: `rows` lookups of `width`-wide vectors.
    EmbeddingLookup {
        /// Number of indices gathered.
        rows: u64,
        /// Embedding dimension.
        width: u64,
    },
    /// A hand-optimized compound kernel (the cuDNN-like accelerator):
    /// executes `flops` of arithmetic and `bytes` of traffic at high
    /// efficiency with full device occupancy, in a single launch.
    Compound {
        /// Total arithmetic in the compound region.
        flops: f64,
        /// Total memory traffic of the compound region.
        bytes: f64,
    },
    /// Device-to-device copy (e.g. gathering non-contiguous fusion operands).
    MemCopy {
        /// Bytes copied.
        bytes: f64,
    },
    /// A synchronous host round trip (models XLA's embedding pathology,
    /// where lookups bounce between CPU and GPU).
    HostRoundtrip {
        /// Payload bytes transferred across PCIe.
        bytes: f64,
    },
    /// A 2-D convolution executed as im2col + GEMM (the standard GPU
    /// lowering): pays the im2col gather traffic plus the implied GEMM.
    Conv {
        /// Batch size.
        batch: u64,
        /// Rows of the implied GEMM (`batch * h_out * w_out`).
        gemm_m: u64,
        /// Reduction dim of the implied GEMM (`c_in * kh * kw`).
        gemm_k: u64,
        /// Columns of the implied GEMM (`c_out`).
        gemm_n: u64,
    },
}

/// Evaluated cost of a kernel on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Solo execution time in ns, excluding launch overhead.
    pub exec_ns: f64,
    /// Thread blocks in the kernel's grid (uncapped); `0` for work that
    /// does not occupy SMs (host round trips).
    pub demand_blocks: u32,
}

/// PCIe bandwidth for host round trips, bytes/ns (~12 GB/s).
const PCIE_BYTES_PER_NS: f64 = 12.0;

impl KernelDesc {
    /// Evaluates this kernel's solo cost on `dev`.
    ///
    /// # Examples
    ///
    /// ```
    /// use astra_gpu::{DeviceSpec, GemmLibrary, GemmShape, KernelDesc};
    ///
    /// let dev = DeviceSpec::p100();
    /// let k = KernelDesc::Gemm {
    ///     shape: GemmShape::new(64, 256, 256),
    ///     lib: GemmLibrary::CublasLike,
    /// };
    /// assert!(k.cost(&dev).exec_ns > 0.0);
    /// ```
    pub fn cost(&self, dev: &DeviceSpec) -> KernelCost {
        match *self {
            KernelDesc::Gemm { shape, lib } => {
                let t = time_gemm(shape, lib, dev);
                KernelCost { exec_ns: t.time_ns, demand_blocks: t.demand_blocks }
            }
            KernelDesc::Elementwise { elements, flops_per_element, inputs, outputs } => {
                let bytes = 4.0 * elements as f64 * (inputs + outputs) as f64;
                let flops = elements as f64 * flops_per_element;
                let mem_ns = bytes / dev.bytes_per_ns();
                let compute_ns = flops / (dev.peak_flops_per_ns() * ELEMENTWISE_EFF);
                let demand = (elements / ELEMENTS_PER_BLOCK).max(1);
                KernelCost { exec_ns: mem_ns.max(compute_ns), demand_blocks: demand as u32 }
            }
            KernelDesc::Softmax { rows, cols } => {
                let elements = rows * cols;
                // Three passes: max, exp-sum, normalize.
                let bytes = 3.0 * 2.0 * 4.0 * elements as f64;
                let flops = 8.0 * elements as f64;
                let mem_ns = bytes / dev.bytes_per_ns();
                let compute_ns = flops / (dev.peak_flops_per_ns() * ELEMENTWISE_EFF);
                let demand = rows.max(1);
                KernelCost { exec_ns: mem_ns.max(compute_ns), demand_blocks: demand as u32 }
            }
            KernelDesc::EmbeddingLookup { rows, width } => {
                // Gather: random reads of `width`-wide rows + sequential write.
                let bytes = 2.0 * 4.0 * (rows * width) as f64;
                // Random access achieves a fraction of peak bandwidth.
                let mem_ns = bytes / (dev.bytes_per_ns() * 0.35);
                let demand = rows.max(1);
                KernelCost { exec_ns: mem_ns, demand_blocks: demand as u32 }
            }
            KernelDesc::Compound { flops, bytes } => {
                let compute_ns = flops / (dev.peak_flops_per_ns() * COMPOUND_EFF);
                let mem_ns = bytes / dev.bytes_per_ns();
                KernelCost {
                    exec_ns: compute_ns.max(mem_ns),
                    demand_blocks: dev.total_slots(),
                }
            }
            KernelDesc::MemCopy { bytes } => KernelCost {
                exec_ns: 2.0 * bytes / dev.bytes_per_ns(),
                demand_blocks: (bytes as u64 / (4 * ELEMENTS_PER_BLOCK)).max(1) as u32,
            },
            KernelDesc::HostRoundtrip { bytes } => KernelCost {
                exec_ns: dev.host_roundtrip_ns + bytes / PCIE_BYTES_PER_NS,
                demand_blocks: 0,
            },
            KernelDesc::Conv { gemm_m, gemm_k, gemm_n, .. } => {
                let g = time_gemm(
                    GemmShape::new(gemm_m.max(1), gemm_k.max(1), gemm_n.max(1)),
                    GemmLibrary::CublasLike,
                    dev,
                );
                // im2col materializes the patch matrix: one read + write.
                let im2col_bytes = 2.0 * 4.0 * (gemm_m * gemm_k) as f64;
                KernelCost {
                    exec_ns: g.time_ns + im2col_bytes / dev.bytes_per_ns(),
                    demand_blocks: g.demand_blocks,
                }
            }
        }
    }

    /// Nominal FLOP count of this kernel (used for super-epoch budgeting and
    /// the "balance flops across streams" static policy, paper §4.8).
    pub fn flops(&self) -> f64 {
        match *self {
            KernelDesc::Gemm { shape, .. } => shape.flops(),
            KernelDesc::Elementwise { elements, flops_per_element, .. } => {
                elements as f64 * flops_per_element
            }
            KernelDesc::Softmax { rows, cols } => 8.0 * (rows * cols) as f64,
            KernelDesc::EmbeddingLookup { rows, width } => (rows * width) as f64,
            KernelDesc::Compound { flops, .. } => flops,
            KernelDesc::MemCopy { .. } | KernelDesc::HostRoundtrip { .. } => 0.0,
            KernelDesc::Conv { gemm_m, gemm_k, gemm_n, .. } => {
                2.0 * (gemm_m * gemm_k * gemm_n) as f64
            }
        }
    }

    /// Short human-readable label for traces.
    pub fn label(&self) -> String {
        match *self {
            KernelDesc::Gemm { shape, lib } => format!("gemm[{shape}]@{lib}"),
            KernelDesc::Elementwise { elements, .. } => format!("ew[{elements}]"),
            KernelDesc::Softmax { rows, cols } => format!("softmax[{rows}x{cols}]"),
            KernelDesc::EmbeddingLookup { rows, width } => format!("embed[{rows}x{width}]"),
            KernelDesc::Compound { flops, .. } => format!("compound[{:.1}MF]", flops / 1e6),
            KernelDesc::MemCopy { bytes } => format!("copy[{:.1}KB]", bytes / 1e3),
            KernelDesc::HostRoundtrip { .. } => "host-roundtrip".to_owned(),
            KernelDesc::Conv { gemm_m, gemm_k, gemm_n, .. } => {
                format!("conv[{gemm_m}x{gemm_k}x{gemm_n}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_is_bandwidth_bound() {
        let dev = DeviceSpec::p100();
        let k = KernelDesc::Elementwise {
            elements: 1 << 20,
            flops_per_element: 1.0,
            inputs: 2,
            outputs: 1,
        };
        let c = k.cost(&dev);
        let expected = 4.0 * (1u64 << 20) as f64 * 3.0 / dev.bytes_per_ns();
        assert!((c.exec_ns - expected).abs() < 1.0);
    }

    #[test]
    fn fused_elementwise_cheaper_than_chain() {
        // A fused chain of 3 unary ops reads input once and writes once,
        // vs 3 kernels each doing a read+write.
        let dev = DeviceSpec::p100();
        let fused = KernelDesc::Elementwise {
            elements: 1 << 20,
            flops_per_element: 12.0,
            inputs: 1,
            outputs: 1,
        };
        let single = KernelDesc::Elementwise {
            elements: 1 << 20,
            flops_per_element: 4.0,
            inputs: 1,
            outputs: 1,
        };
        let chain = 3.0 * (single.cost(&dev).exec_ns + dev.launch_overhead_ns);
        let f = fused.cost(&dev).exec_ns + dev.launch_overhead_ns;
        assert!(f < chain);
    }

    #[test]
    fn compound_kernel_is_efficient() {
        let dev = DeviceSpec::p100();
        let flops = 1e9;
        let c = KernelDesc::Compound { flops, bytes: 1e6 }.cost(&dev);
        // Must run well above the plain-library efficiencies.
        assert!(c.exec_ns <= flops / (dev.peak_flops_per_ns() * 0.55));
        assert_eq!(c.demand_blocks, dev.total_slots());
    }

    #[test]
    fn host_roundtrip_is_expensive() {
        let dev = DeviceSpec::p100();
        let c = KernelDesc::HostRoundtrip { bytes: 4096.0 }.cost(&dev);
        assert!(c.exec_ns >= dev.host_roundtrip_ns);
        assert_eq!(c.demand_blocks, 0);
    }

    #[test]
    fn labels_nonempty() {
        let dev = DeviceSpec::p100();
        let kernels = [
            KernelDesc::Gemm { shape: GemmShape::new(1, 1, 1), lib: GemmLibrary::CublasLike },
            KernelDesc::Elementwise { elements: 8, flops_per_element: 1.0, inputs: 1, outputs: 1 },
            KernelDesc::Softmax { rows: 2, cols: 2 },
            KernelDesc::EmbeddingLookup { rows: 4, width: 8 },
            KernelDesc::Compound { flops: 1.0, bytes: 1.0 },
            KernelDesc::MemCopy { bytes: 16.0 },
            KernelDesc::HostRoundtrip { bytes: 0.0 },
        ];
        for k in kernels {
            assert!(!k.label().is_empty());
            assert!(k.cost(&dev).exec_ns >= 0.0);
            assert!(k.flops() >= 0.0);
        }
    }
}
