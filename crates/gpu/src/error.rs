//! Error types for the GPU simulator.

use std::error::Error;
use std::fmt;

/// Errors from executing a schedule on the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// The schedule can make no further progress: some stream waits on an
    /// event that will never fire, or a barrier can never release.
    Deadlock(String),
    /// The schedule is structurally invalid.
    InvalidSchedule(String),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::Deadlock(why) => write!(f, "schedule deadlocked: {why}"),
            GpuError::InvalidSchedule(why) => write!(f, "invalid schedule: {why}"),
        }
    }
}

impl Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GpuError::Deadlock("stream 0 waits on unfired event".into());
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("stream 0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpuError>();
    }
}
