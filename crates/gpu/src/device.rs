//! GPU device models.
//!
//! A [`DeviceSpec`] captures the coarse architectural parameters the Astra
//! cost model depends on: parallelism (SM count and resident blocks per SM),
//! peak arithmetic throughput, memory bandwidth, and the fixed overheads of
//! the CUDA-style execution model (kernel launch, event record, stream
//! synchronization, host round trips).
//!
//! The paper's evaluation runs on a Tesla P100; [`DeviceSpec::p100`] is the
//! calibration target used by the benchmark harness. [`DeviceSpec::v100`] is
//! provided to exercise the paper's §6.7 claim that faster hardware makes even
//! large operations launch-overhead-bound.


/// Architectural parameters of a simulated GPU.
///
/// All times are in nanoseconds, throughput in GFLOP/s, bandwidth in GB/s.
///
/// # Examples
///
/// ```
/// use astra_gpu::DeviceSpec;
///
/// let dev = DeviceSpec::p100();
/// assert!(dev.total_slots() > 0);
/// assert!(dev.peak_gflops > 1_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Thread blocks resident concurrently per SM.
    pub blocks_per_sm: u32,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_gbps: f64,
    /// Fixed GPU-side cost to launch any kernel (ns). The paper cites
    /// 5-10 us; this is the dominant cost for small RNN operations.
    pub launch_overhead_ns: f64,
    /// CPU-side cost for the dispatcher to issue one asynchronous launch (ns).
    pub dispatch_cost_ns: f64,
    /// Cost of recording a cudaEvent on a stream (ns). Charged to the stream
    /// timeline, so heavy profiling has measurable (but small) overhead.
    pub event_record_cost_ns: f64,
    /// Extra latency when a kernel waits on an event recorded in a
    /// *different* stream (cross-stream synchronization, ns).
    pub stream_sync_cost_ns: f64,
    /// Cost of a device-wide barrier across all streams (ns); paid at
    /// super-epoch boundaries.
    pub barrier_sync_cost_ns: f64,
    /// Penalty for a synchronous host round trip (ns). Used to model XLA's
    /// embedding pathology where lookups bounce between CPU and GPU.
    pub host_roundtrip_ns: f64,
    /// Device memory capacity in bytes (HBM size). The static linter's
    /// peak-memory accounting rejects plans whose live placed buffers
    /// exceed this on any device.
    pub mem_bytes: u64,
}

impl DeviceSpec {
    /// Tesla P100 model: 56 SMs, ~9 TFLOP/s single precision, 732 GB/s HBM.
    ///
    /// These constants are calibrated so that the GEMM library crossovers of
    /// the paper's Table 1 reproduce (see `astra-bench` `table1`).
    pub fn p100() -> Self {
        DeviceSpec {
            name: "tesla-p100-sim".to_owned(),
            sm_count: 56,
            blocks_per_sm: 2,
            peak_gflops: 9_300.0,
            hbm_gbps: 732.0,
            launch_overhead_ns: 7_500.0,
            dispatch_cost_ns: 2_000.0,
            event_record_cost_ns: 100.0,
            stream_sync_cost_ns: 800.0,
            barrier_sync_cost_ns: 3_000.0,
            host_roundtrip_ns: 60_000.0,
            mem_bytes: 16 * (1 << 30),
        }
    }

    /// Tesla V100 model: more SMs and much higher throughput, same fixed
    /// overheads — which makes even medium-size kernels overhead-bound, the
    /// regime the paper argues favours Astra-style adaptation (§6.7).
    pub fn v100() -> Self {
        DeviceSpec {
            name: "tesla-v100-sim".to_owned(),
            sm_count: 80,
            blocks_per_sm: 2,
            peak_gflops: 15_700.0,
            hbm_gbps: 900.0,
            launch_overhead_ns: 7_500.0,
            dispatch_cost_ns: 2_000.0,
            event_record_cost_ns: 100.0,
            stream_sync_cost_ns: 800.0,
            barrier_sync_cost_ns: 3_000.0,
            host_roundtrip_ns: 60_000.0,
            mem_bytes: 32 * (1 << 30),
        }
    }

    /// Total number of concurrently resident thread blocks ("slots").
    ///
    /// A kernel whose grid is smaller than this under-utilizes the device;
    /// a grid larger than this executes in multiple waves.
    pub fn total_slots(&self) -> u32 {
        self.sm_count * self.blocks_per_sm
    }

    /// Peak throughput in FLOP/ns (convenience for the cost model).
    pub fn peak_flops_per_ns(&self) -> f64 {
        self.peak_gflops
    }

    /// Bandwidth in bytes/ns.
    pub fn bytes_per_ns(&self) -> f64 {
        self.hbm_gbps
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::p100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_slots() {
        let d = DeviceSpec::p100();
        assert_eq!(d.total_slots(), 112);
    }

    #[test]
    fn v100_faster_than_p100() {
        assert!(DeviceSpec::v100().peak_gflops > DeviceSpec::p100().peak_gflops);
    }

    #[test]
    fn unit_conversions_consistent() {
        let d = DeviceSpec::p100();
        // 9300 GFLOP/s == 9300 FLOP/ns.
        assert!((d.peak_flops_per_ns() - 9_300.0).abs() < 1e-9);
        // 732 GB/s == 732 bytes/ns.
        assert!((d.bytes_per_ns() - 732.0).abs() < 1e-9);
    }

    #[test]
    fn default_is_p100() {
        assert_eq!(DeviceSpec::default(), DeviceSpec::p100());
    }

    #[test]
    fn memory_capacities_match_the_parts() {
        assert_eq!(DeviceSpec::p100().mem_bytes, 16 << 30);
        assert_eq!(DeviceSpec::v100().mem_bytes, 32 << 30);
    }
}
